"""Regenerates Table II: Copy / zero-copy total-time ratios for the five
SPECaccel 2023 C/C++ proxies.

Expected shape (paper Table II):

=============  ========  =======  ======  ======  ======
configuration   stencil    lbm      ep      spC     bt
=============  ========  =======  ======  ======  ======
Implicit Z-C     0.99      1.05    0.89    7.80    4.88
USM              0.99      1.043   0.89    7.61    4.77
Eager Maps       0.98      1.025   0.99    8.10    5.10
=============  ========  =======  ======  ======  ======

We assert the band each value falls in and the orderings the paper
explains mechanistically (Eager best on spC/bt, Eager recovering ep,
zero-copy losing slightly on stencil/ep only).  The paper runs 8
repetitions; we default to 4 to keep the harness under ~10 minutes and
report the CoV (paper max: 0.03).
"""

from conftest import QUICK, run_once

from repro.core import RuntimeConfig
from repro.experiments import render_table2, table2_specaccel
from repro.workloads import Fidelity

REPS = 2 if QUICK else 4
IZC = RuntimeConfig.IMPLICIT_ZERO_COPY
USM = RuntimeConfig.UNIFIED_SHARED_MEMORY
EAGER = RuntimeConfig.EAGER_MAPS

#: acceptance bands: (config, benchmark) → (lo, hi)
BANDS = {
    ("stencil", IZC): (0.97, 1.01),
    ("stencil", EAGER): (0.96, 1.02),
    ("lbm", IZC): (1.01, 1.12),
    ("lbm", EAGER): (1.00, 1.11),
    ("ep", IZC): (0.85, 0.93),
    ("ep", EAGER): (0.96, 1.01),
    ("spC", IZC): (7.0, 8.7),
    ("spC", EAGER): (7.3, 9.0),
    ("bt", IZC): (4.3, 5.4),
    ("bt", EAGER): (4.6, 5.7),
}


def test_table2_specaccel_ratios(benchmark):
    result = run_once(
        benchmark,
        lambda: table2_specaccel(reps=REPS, fidelity=Fidelity.FULL, noise=True),
    )
    print()
    print(render_table2(result))

    for (bench, config), (lo, hi) in BANDS.items():
        got = result.ratios[bench][config]
        assert lo <= got <= hi, (bench, config.label, got, (lo, hi))

    # mechanistic orderings the paper explains
    assert result.ratios["spC"][EAGER] > result.ratios["spC"][IZC]
    assert result.ratios["bt"][EAGER] > result.ratios["bt"][IZC]
    assert result.ratios["ep"][EAGER] > result.ratios["ep"][IZC]
    assert result.ratios["lbm"][EAGER] < result.ratios["lbm"][IZC]
    # USM ≡ IZC up to noise (no globals in any benchmark)
    for bench in result.ratios:
        izc, usm = result.ratios[bench][IZC], result.ratios[bench][USM]
        assert abs(izc - usm) / izc < 0.1, bench

    # statistical robustness: paper reports max CoV 0.03
    assert result.max_cov() < 0.08

    benchmark.extra_info["ratios"] = {
        b: {c.value: round(r, 3) for c, r in by.items()}
        for b, by in result.ratios.items()
    }

"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not paper tables — these sweep the calibrated constants to show each
headline result is driven by the mechanism we claim drives it:

* XNACK fault cost sweep → the 452.ep slowdown scales with it.
* Prefault cost sweep → the Eager-vs-IZC gap on QMCPack scales with it.
* Pool retention threshold → flips 457.spC between "allocation-bound"
  and "cached" regimes.
* THP off (4 KiB pages) → first-touch costs explode, zero-copy ratios
  collapse (why the paper pins THP on for both configurations).
"""

from dataclasses import replace

from conftest import run_once

from repro.core import CostModel, RuntimeConfig
from repro.experiments import execute
from repro.memory import GIB, MIB, PAGE_4K
from repro.workloads import AllocChurn, Ep452, Fidelity, QmcPackNio


def _ratio(workload_factory, cost, metric="elapsed_us",
           configs=(RuntimeConfig.COPY, RuntimeConfig.IMPLICIT_ZERO_COPY)):
    runs = [execute(workload_factory(), c, cost=cost) for c in configs]
    return getattr(runs[0], metric) / getattr(runs[1], metric)


def test_ablation_xnack_fault_cost_drives_ep(benchmark):
    def sweep():
        out = {}
        for fault_us in (125.0, 500.0, 2000.0):
            cost = replace(CostModel(), xnack_fault_us_per_page=fault_us)
            out[fault_us] = _ratio(lambda: Ep452(fidelity=Fidelity.BENCH), cost)
        return out

    out = run_once(benchmark, sweep)
    print(f"\nep Copy/IZC ratio vs XNACK fault cost: {out}")
    # more expensive replay → zero-copy loses harder (ratio falls)
    assert out[125.0] > out[500.0] > out[2000.0]
    benchmark.extra_info["ratios"] = out


def test_ablation_prefault_cost_drives_eager_gap(benchmark):
    def sweep():
        out = {}
        for call_us in (0.3, 1.2, 6.0):
            cost = replace(CostModel(), prefault_call_us=call_us,
                           syscall_base_us=min(1.0, call_us))
            r_izc = _ratio(
                lambda: QmcPackNio(size=2, n_threads=4, fidelity=Fidelity.TEST),
                cost, metric="steady_us",
            )
            r_eager = _ratio(
                lambda: QmcPackNio(size=2, n_threads=4, fidelity=Fidelity.TEST),
                cost, metric="steady_us",
                configs=(RuntimeConfig.COPY, RuntimeConfig.EAGER_MAPS),
            )
            out[call_us] = r_izc - r_eager  # gap Implicit Z-C holds over Eager
        return out

    out = run_once(benchmark, sweep)
    print(f"\nQMCPack IZC-vs-Eager ratio gap vs prefault call cost: {out}")
    assert out[6.0] > out[0.3]  # pricier syscalls → bigger Eager deficit
    benchmark.extra_info["gaps"] = out


def test_ablation_pool_retention_threshold_flips_spc_regime(benchmark):
    """AllocChurn at spC's block size: retention cached vs released."""

    def sweep():
        out = {}
        block = int(1.4 * GIB)
        for retain in (256 * MIB, 2 * GIB):
            cost = replace(CostModel(), pool_retain_max_bytes=retain)
            wl = AllocChurn(nbytes=block, cycles=10)
            execute(wl, RuntimeConfig.COPY, cost=cost)
            out[retain] = wl.outputs.get("steady_cycle_us")
        return out

    out = run_once(benchmark, sweep)
    print(f"\nalloc-churn steady cycle (µs) vs retention threshold: {out}")
    released, cached = out[256 * MIB], out[2 * GIB]
    assert released > 20 * cached  # the cliff behind spC's 7.8×
    benchmark.extra_info["cycle_us"] = {str(k): v for k, v in out.items()}


def test_ablation_thp_off_collapses_zero_copy(benchmark):
    """4 KiB pages: 512× more faults per byte — the reason §V pins THP on."""

    def sweep():
        out = {}
        for page in (PAGE_4K, CostModel().page_size):
            cost = replace(
                CostModel(),
                page_size=page,
                # per-page costs scale down with page size but not 512×:
                # fault servicing has a large fixed component
                xnack_fault_us_per_page=500.0 if page != PAGE_4K else 20.0,
                pool_alloc_page_us=100.0 if page != PAGE_4K else 1.0,
                prefault_page_us=25.0 if page != PAGE_4K else 0.6,
            )
            out[page] = _ratio(
                lambda: Ep452(fidelity=Fidelity.TEST), cost
            )
        return out

    out = run_once(benchmark, sweep)
    print(f"\nep Copy/IZC ratio vs page size: {out}")
    # small pages hurt zero-copy far more than Copy
    assert out[PAGE_4K] < out[CostModel().page_size]
    benchmark.extra_info["ratios"] = {str(k): v for k, v in out.items()}


def test_ablation_usm_globals_vs_izc(benchmark):
    """USM's pointer globals vs Implicit Z-C's per-update transfers: the
    gap scales with the *size* of the republished globals (the one
    behavioural difference between the two configurations, §IV.B/C)."""
    from repro.memory import KIB
    from repro.workloads import GlobalBroadcast

    def sweep():
        out = {}
        for nbytes in (64 * KIB, 4 * MIB, 32 * MIB):
            t = {}
            for cfg in (RuntimeConfig.UNIFIED_SHARED_MEMORY,
                        RuntimeConfig.IMPLICIT_ZERO_COPY):
                wl = GlobalBroadcast(fidelity=Fidelity.FULL,
                                     full_iters=500, global_bytes=nbytes)
                t[cfg] = execute(wl, cfg).steady_us
            out[nbytes] = t[RuntimeConfig.IMPLICIT_ZERO_COPY] / t[
                RuntimeConfig.UNIFIED_SHARED_MEMORY]
        return out

    out = run_once(benchmark, sweep)
    print(f"\nIZC/USM time ratio vs global size: {out}")
    vals = list(out.values())
    assert vals[0] >= 1.0
    assert vals[-1] > vals[0]      # bigger globals, bigger USM advantage
    assert vals[-1] > 1.5          # 32 MiB of controls: USM clearly wins
    benchmark.extra_info["izc_over_usm"] = {str(k): v for k, v in out.items()}

"""Regenerates Table I: HSA API call statistics for QMCPack NiO S2 under
Copy and Implicit Zero-Copy, with 1 and 8 OpenMP threads.

Expected relationships (paper Table I):

* Implicit Z-C issues ~3 ``memory_async_copy`` calls (device-image init)
  and ~19/~90 pool allocations (1/8 threads) — storage operations happen
  only at initialization.
* Copy issues hundreds of thousands of copies (≈3 per kernel), with
  ``signal_async_handler`` ≈ ⅔ of them, and tens of thousands of pool
  allocations.
* Call counts grow with thread count; the ``memory_async_copy`` latency
  ratio reaches the thousands.

At full fidelity the absolute counts land at paper scale (≈1e5 kernels
per thread).  REPRO_QUICK runs at BENCH fidelity, preserving every
relationship with ~20× smaller counts.
"""

from conftest import QUICK, run_once

from repro.experiments import render_table1, table1_hsa_calls
from repro.workloads import Fidelity

FIDELITY = Fidelity.BENCH if QUICK else Fidelity.FULL

#: paper's Table I for reference printing
PAPER = {
    1: {
        "signal_wait_scacquire": (351_653, 99_627, 2.07),
        "memory_pool_allocate": (23_277, 19, 7.41),
        "memory_async_copy": (307_607, 3, 3_190),
        "signal_async_handler": (194_848, 0, None),
    },
    8: {
        "signal_wait_scacquire": (1_360_088, 738_483, 2.71),
        "memory_pool_allocate": (20_848, 90, 3.68),
        "memory_async_copy": (1_124_258, 3, 1.11e4),
        "signal_async_handler": (491_492, 0, None),
    },
}


def test_table1_hsa_call_statistics(benchmark):
    result = run_once(
        benchmark, lambda: table1_hsa_calls(fidelity=FIDELITY, threads=(1, 8))
    )
    print()
    print(render_table1(result))
    print("\npaper values (count_copy, count_izc, latency ratio):")
    for t, rows in PAPER.items():
        print(f"  {t} thread(s): {rows}")

    for threads in (1, 8):
        rows = {r.call: r for r in result.rows[threads]}
        izc_copies = rows["memory_async_copy"].count_b
        assert izc_copies == 3  # device image, offload table, device env
        assert rows["signal_async_handler"].count_b == 0
        assert rows["signal_async_handler"].latency_ratio is None
        # Copy ≫ Implicit Z-C on every storage-related call
        assert rows["memory_async_copy"].count_a > 1000 * izc_copies
        assert rows["memory_pool_allocate"].count_a > 100
        # handler/copy ratio ≈ 2/3 (paper: 0.63 / 0.44)
        frac = rows["signal_async_handler"].count_a / rows["memory_async_copy"].count_a
        assert 0.4 < frac < 0.75
        # latency ratios point the same way as the counts
        assert rows["memory_async_copy"].latency_ratio > 100
        assert rows["memory_pool_allocate"].latency_ratio > 1.0

    # thread scaling: waits grow ~linearly for Implicit Z-C (weak scaling
    # of kernel launches), per-thread init allocations add ~10 each
    r1 = {r.call: r for r in result.rows[1]}
    r8 = {r.call: r for r in result.rows[8]}
    wait_growth = r8["signal_wait_scacquire"].count_b / r1["signal_wait_scacquire"].count_b
    assert 6.0 < wait_growth < 8.5  # paper: 7.4×
    assert r1["memory_pool_allocate"].count_b == 19  # paper: 19
    assert r8["memory_pool_allocate"].count_b == 89  # paper: 90

    benchmark.extra_info["izc_allocs_1t"] = r1["memory_pool_allocate"].count_b
    benchmark.extra_info["copy_copies_1t"] = r1["memory_async_copy"].count_a

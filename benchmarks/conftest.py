"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints
it.  Simulations are deterministic unless a benchmark explicitly enables
the measurement-noise model (CoV studies), so a single round per bench is
meaningful; ``run_once`` wraps ``benchmark.pedantic`` accordingly.

Environment knobs:

* ``REPRO_QUICK=1`` — shrink grids/repetitions for smoke runs.
"""

import os

import pytest

QUICK = os.environ.get("REPRO_QUICK", "0") == "1"


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def quick():
    return QUICK

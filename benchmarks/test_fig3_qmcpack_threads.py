"""Regenerates Fig. 3: QMCPack Copy/zero-copy ratio vs OpenMP threads,
one panel per NiO problem size.

Expected shape (paper §V.A): all three zero-copy configurations beat Copy
(ratio > 1) at every cell; the ratio grows with thread count; Eager Maps
trails Implicit Z-C / USM below S128.
"""

from conftest import QUICK, run_once

from repro.core import RuntimeConfig
from repro.experiments import collect_qmcpack_grid, fig3_series, render_fig3
from repro.workloads import Fidelity

SIZES = (2, 8, 32) if QUICK else (2, 4, 8, 16, 24, 32, 48, 64, 128)
THREADS = (1, 8) if QUICK else (1, 2, 4, 8)


def test_fig3_qmcpack_thread_scaling(benchmark):
    grid = run_once(
        benchmark,
        lambda: collect_qmcpack_grid(
            sizes=SIZES,
            threads=THREADS,
            fidelity=Fidelity.BENCH,
            reps=1,
            noise=False,
        ),
    )
    print()
    print(render_fig3(grid))

    for size in SIZES:
        series = fig3_series(grid, size)
        for config, points in series.items():
            ratios = [r for _, r in points]
            # zero-copy never loses to Copy on QMCPack (paper Fig. 3)
            assert min(ratios) > 0.95, (size, config, ratios)
            # ratio improves with thread count
            assert ratios[-1] >= ratios[0] * 0.98, (size, config, ratios)
    # Eager trails Implicit Z-C at small sizes (§V.A.4)
    s2 = fig3_series(grid, 2)
    assert (
        s2[RuntimeConfig.EAGER_MAPS][-1][1]
        < s2[RuntimeConfig.IMPLICIT_ZERO_COPY][-1][1]
    )
    benchmark.extra_info["max_ratio"] = max(
        grid.ratio(s, t, c)
        for s in SIZES
        for t in THREADS
        for c in (RuntimeConfig.IMPLICIT_ZERO_COPY,)
    )

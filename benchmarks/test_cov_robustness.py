"""Reproduces the paper's statistical-robustness analysis (§V.A.1).

The paper reports CoV values across QMCPack repetitions: Copy ≈ 0.03,
Implicit Z-C ≈ 0.10, USM ≈ 0.08, with Eager Maps mostly at ≈ 0.03 but
exhibiting rare order-of-magnitude outliers (S32 @ 8 threads, CoV 4.2)
attributed to "random interference by the operating system" on the
syscall-heavy prefault path.

We run the repetition protocol with the noise model enabled and check
that (a) the regular configurations stay in the paper's CoV regime and
(b) the heavy-tail syscall interference can produce Eager-Maps outliers
an order of magnitude above the baseline CoV.
"""

from conftest import run_once

from repro.core import RuntimeConfig
from repro.experiments import ratio_experiment
from repro.trace.stats import cov
from repro.workloads import Fidelity, QmcPackNio


def test_cov_regime_and_eager_outliers(benchmark):
    def measure():
        out = {}
        # regular-case CoV: S2, 1 thread, 4 repetitions (paper protocol)
        result = ratio_experiment(
            lambda: QmcPackNio(size=2, n_threads=1, fidelity=Fidelity.BENCH),
            [
                RuntimeConfig.COPY,
                RuntimeConfig.IMPLICIT_ZERO_COPY,
                RuntimeConfig.UNIFIED_SHARED_MEMORY,
                RuntimeConfig.EAGER_MAPS,
            ],
            reps=4,
            noise=True,
            metric="elapsed_us",  # total time: XNACK fault variance included
        )
        out["regular"] = {c.value: result.cov(c) for c in result.times}

        # outlier hunt: many seeds of the syscall-heavy Eager config; the
        # heavy tail must be able to produce a CoV far above baseline
        from repro.experiments import execute

        covs = []
        for seed0 in range(0, 60, 4):
            vals = []
            for rep in range(4):
                run = execute(
                    QmcPackNio(size=32, n_threads=4, fidelity=Fidelity.TEST),
                    RuntimeConfig.EAGER_MAPS,
                    seed=seed0 + rep,
                    noise=True,
                )
                vals.append(run.steady_us)
            covs.append(cov(vals))
        out["eager_covs"] = covs
        return out

    out = run_once(benchmark, measure)
    print()
    print("CoV per configuration (paper: Copy 0.03, IZC 0.10, USM 0.08):")
    for cfg, c in out["regular"].items():
        print(f"  {cfg:24} {c:.4f}")
    print(f"Eager-Maps CoV across seed groups: "
          f"median={sorted(out['eager_covs'])[len(out['eager_covs'])//2]:.3f} "
          f"max={max(out['eager_covs']):.3f}")

    # regular regime: comfortably small
    for cfg, c in out["regular"].items():
        assert c < 0.12, (cfg, c)
    # baseline Eager CoV is small, but the tail produces outliers an
    # order of magnitude larger (paper: 0.03 baseline, 4.2 outlier)
    covs = sorted(out["eager_covs"])
    baseline = covs[len(covs) // 2]
    assert baseline < 0.1
    assert max(covs) > 5 * baseline

    benchmark.extra_info["regular_cov"] = out["regular"]
    benchmark.extra_info["eager_cov_max"] = max(covs)

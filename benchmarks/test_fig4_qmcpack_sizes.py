"""Regenerates Fig. 4: QMCPack Copy/zero-copy ratio vs problem size at 8
OpenMP host threads.

Expected shape (paper §V.A.3): the zero-copy advantage is largest at S2
(≈2.3× in the paper) and diminishes monotonically-ish toward S128 (≈1.2×)
as kernel time starts dominating; Eager Maps scales at a lower rate than
the other two zero-copy configurations and converges at S128.
"""

from conftest import QUICK, run_once

from repro.core import RuntimeConfig
from repro.experiments import collect_qmcpack_grid, fig4_series, render_fig4
from repro.workloads import Fidelity

SIZES = (2, 32, 128) if QUICK else (2, 4, 8, 16, 24, 32, 48, 64, 128)


def test_fig4_qmcpack_size_scaling(benchmark):
    grid = run_once(
        benchmark,
        lambda: collect_qmcpack_grid(
            sizes=SIZES,
            threads=(8,),
            fidelity=Fidelity.BENCH,
            reps=1,
            noise=False,
        ),
    )
    print()
    print(render_fig4(grid, threads=8))

    series = fig4_series(grid, threads=8)
    izc = [r for _, r in series[RuntimeConfig.IMPLICIT_ZERO_COPY]]
    eager = [r for _, r in series[RuntimeConfig.EAGER_MAPS]]
    usm = [r for _, r in series[RuntimeConfig.UNIFIED_SHARED_MEMORY]]

    # paper's headline band: 1.2×–2.3×; our shape: ≈2.4 → ≈1.1
    assert 2.0 < izc[0] < 3.2
    assert 1.0 < izc[-1] < 1.4
    # monotone-ish decline from S2 to S128
    assert izc[0] > izc[len(izc) // 2] > izc[-1] * 0.99
    # IZC ≈ USM (QMCPack has no globals)
    for a, b in zip(izc, usm, strict=True):
        assert abs(a - b) / a < 0.02
    # Eager trails at small sizes, converges at S128 (§V.A.4)
    assert eager[0] < izc[0]
    assert abs(eager[-1] - izc[-1]) < 0.12

    benchmark.extra_info["series_izc"] = izc
    benchmark.extra_info["series_eager"] = eager

"""Regenerates Table III: MM / MI overhead decomposition for 403.stencil
and 452.ep.

Expected magnitudes (paper Table III, µs):

=====================  ==========  ==========  ==========  ==========
configuration          stencil MM  stencil MI  ep MM       ep MI
=====================  ==========  ==========  ==========  ==========
Copy                   O(10^5)     O(0)        O(10^5)     O(0)
Implicit Z-C or USM    O(0)        O(10^6)     O(0)        O(10^6)
Eager Maps             O(10^4)     O(0)        O(10^5)     O(0)
=====================  ==========  ==========  ==========  ==========

Known deviation: our Eager-Maps stencil MM lands at O(10^5) rather than
O(10^4) because we charge the per-kernel prefault *verification* syscalls
to MM as well; the paper's Table III text counts only the installing
prefaults.  Every qualitative relationship (who pays MM, who pays MI,
Eager ≪ zero-copy's MI) is preserved.
"""

from conftest import run_once

from repro.experiments import render_table3, table3_overheads
from repro.workloads import Fidelity

PAPER = {
    ("stencil", "Copy"): ("O(10^5)", "O(0)"),
    ("stencil", "Implicit Z-C or USM"): ("O(0)", "O(10^6)"),
    ("stencil", "Eager Maps"): ("O(10^4)", "O(0)"),
    ("ep", "Copy"): ("O(10^5)", "O(0)"),
    ("ep", "Implicit Z-C or USM"): ("O(0)", "O(10^6)"),
    ("ep", "Eager Maps"): ("O(10^5)", "O(0)"),
}


def test_table3_overhead_decomposition(benchmark):
    result = run_once(benchmark, lambda: table3_overheads(fidelity=Fidelity.FULL))
    print()
    print(render_table3(result))
    print("\npaper magnitudes:", PAPER)

    got = {}
    for bench in ("stencil", "ep"):
        for label in ("Copy", "Implicit Z-C or USM", "Eager Maps"):
            got[(bench, label)] = result.magnitude(bench, label)

    # exact magnitude matches (all but the documented Eager-stencil MM)
    assert got[("stencil", "Copy")] == ("O(10^5)", "O(0)")
    assert got[("stencil", "Implicit Z-C or USM")] == ("O(0)", "O(10^6)")
    assert got[("ep", "Copy")][1] == "O(0)"
    assert got[("ep", "Copy")][0] in ("O(10^4)", "O(10^5)")
    assert got[("ep", "Implicit Z-C or USM")] == ("O(0)", "O(10^6)")
    assert got[("ep", "Eager Maps")] == ("O(10^5)", "O(0)")
    # documented deviation: O(10^4) in the paper
    assert got[("stencil", "Eager Maps")][0] in ("O(10^4)", "O(10^5)")
    assert got[("stencil", "Eager Maps")][1] == "O(0)"

    # quantitative orderings behind the ratios
    for bench in ("stencil", "ep"):
        rows = result.rows[bench]
        assert rows["Eager Maps"].mm_us < rows["Implicit Z-C or USM"].mi_us / 3
        assert rows["Copy"].mm_us < rows["Implicit Z-C or USM"].mi_us

    benchmark.extra_info["magnitudes"] = {f"{b}/{l}": v for (b, l), v in got.items()}

"""Declare-target global variables and their per-configuration handling.

§IV.B/IV.C devote substantial attention to globals because they are the
one place Unified Shared Memory and Implicit Zero-Copy genuinely differ:

* compiled **with** ``requires unified_shared_memory``, the GPU code
  object holds a *pointer* to the host global, initialized at load time;
  kernels pay a double indirection on every access and mapping a global
  moves no data (the host copy *is* the data).
* compiled **without** it (Copy, Implicit Z-C, Eager Maps), CPU and GPU
  each own a copy of the global; ``map(always, to: g)`` and
  ``target update`` issue transfers to keep them consistent.  Implicit
  Zero-Copy "switches handling of globals as if operating in Copy mode"
  with system-scope memory transfers.

QMCPack uses no declare-target globals — which the paper uses to explain
why USM and Implicit Z-C produce identical results there — but our
microbenchmarks (``repro.workloads.micro``) exercise the difference.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..memory.layout import AddressRange

__all__ = ["GlobalVar", "GlobalRegistry"]


class GlobalVar:
    """One ``#pragma omp declare target`` global.

    ``host_payload`` is the authoritative host-side storage.
    ``device_payload`` exists only for configurations that keep a separate
    GPU copy; under USM it is ``None`` and kernels read through the host
    payload (the double indirection the compiler emits).
    """

    __slots__ = ("name", "host_payload", "device_payload", "range", "usm_pointer")

    def __init__(self, name: str, value: np.ndarray, rng: AddressRange):
        self.name = name
        self.host_payload = value
        self.device_payload: Optional[np.ndarray] = None
        self.range = rng
        self.usm_pointer = False

    @property
    def nbytes(self) -> int:
        return self.range.nbytes

    def materialize_device_copy(self) -> None:
        """Create the per-device copy (non-USM compilation)."""
        self.device_payload = np.zeros_like(self.host_payload)
        self.usm_pointer = False

    def materialize_usm_pointer(self) -> None:
        """USM compilation: device code holds a pointer to the host global
        (assigned at initialization time, §IV.B)."""
        self.device_payload = None
        self.usm_pointer = True

    def device_view(self) -> np.ndarray:
        """The array a GPU kernel sees for this global."""
        if self.usm_pointer:
            return self.host_payload
        if self.device_payload is None:
            raise RuntimeError(
                f"global {self.name!r} accessed on device before device image init"
            )
        return self.device_payload

    def __repr__(self) -> str:  # pragma: no cover
        mode = "usm-pointer" if self.usm_pointer else "device-copy"
        return f"<GlobalVar {self.name!r} {self.nbytes}B {mode}>"


class GlobalRegistry:
    """All declare-target globals of a program image."""

    def __init__(self):
        self._globals: Dict[str, GlobalVar] = {}

    def register(self, glob: GlobalVar) -> None:
        if glob.name in self._globals:
            raise ValueError(f"duplicate declare-target global {glob.name!r}")
        self._globals[glob.name] = glob

    def get(self, name: str) -> GlobalVar:
        try:
            return self._globals[name]
        except KeyError:
            raise KeyError(f"unknown declare-target global {name!r}") from None

    def all(self):
        return list(self._globals.values())

    def find_covering(self, rng: AddressRange) -> Optional[GlobalVar]:
        """First global whose address range overlaps ``rng`` (used by the
        MapCheck coverage lint: declare-target globals are always device
        accessible, so touching them needs no map clause)."""
        for glob in self._globals.values():
            if glob.range.overlaps(rng):
                return glob
        return None

    def __len__(self) -> int:
        return len(self._globals)

"""libomptarget's device MemoryManager: a bucket cache above HSA.

The real OpenMP runtime interposes a memory manager between mapping code
and the ROCr pool: device allocations up to a size threshold are served
from per-size-class free lists after first use, so steady-state small
mappings never reach HSA at all.  Allocations above the threshold go
straight to the pool.

Observable consequences reproduced here:

* small repeated map/unmap cycles stop appearing in rocprof traces after
  warm-up (their ``memory_pool_allocate`` count stays flat);
* Table I's Copy pool-allocate count is dominated by the allocations that
  *exceed* the threshold (QMCPack's per-step walker scratch) — which is
  also why the count barely moves between 1 and 8 threads even though the
  kernel count grows 8×.

The threshold lives in :class:`~repro.core.params.CostModel`
(``memmgr_threshold_bytes``); ``memmgr_enabled=False`` disables the cache
entirely (ablation).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.params import CostModel
from ..hsa.api import HsaRuntime
from ..memory.layout import AddressRange

__all__ = ["MemoryManager"]


def _size_class(nbytes: int) -> int:
    """Next power of two >= nbytes (the manager's bucket granularity)."""
    size = 1
    while size < nbytes:
        size <<= 1
    return size


class MemoryManager:
    """Per-device small-allocation cache (libomptarget MemoryManagerTy)."""

    def __init__(self, hsa: HsaRuntime, cost: CostModel, enabled: bool = True):
        self.hsa = hsa
        self.cost = cost
        self.enabled = enabled
        self.threshold = cost.memmgr_threshold_bytes
        self._buckets: Dict[int, List[AddressRange]] = {}
        #: block backing size by start address (for free routing)
        self._backing: Dict[int, Tuple[int, bool]] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.passthrough = 0

    def allocate(self, nbytes: int):
        """(generator) Allocate device memory for a mapping.

        Small sizes hit the bucket cache (no HSA call after warm-up);
        large sizes pass straight through to the traced pool allocation.
        """
        if nbytes <= 0:
            raise ValueError(f"device allocation must be positive, got {nbytes}")
        if not self.enabled or nbytes > self.threshold:
            self.passthrough += 1
            rng = yield from self.hsa.memory_pool_allocate(nbytes)
            self._backing[rng.start] = (nbytes, False)
            return rng
        bucket = _size_class(nbytes)
        free = self._buckets.get(bucket)
        if free:
            block = free.pop()
            self.cache_hits += 1
            # cache hits never reach HSA, so they must raise the macro
            # engine's segment boundary themselves (device storage churn
            # is never part of a replayable steady-state segment)
            if self.hsa.on_boundary is not None:
                self.hsa.on_boundary("memmgr_cache_hit")
            # cache hit is pure host-side bookkeeping
            yield self.hsa.env.charge(self.cost.zc_map_call_us)
            rng = AddressRange(block.start, nbytes)
            self._backing[rng.start] = (bucket, True)
            return rng
        self.cache_misses += 1
        block = yield from self.hsa.memory_pool_allocate(bucket)
        rng = AddressRange(block.start, nbytes)
        self._backing[rng.start] = (bucket, True)
        return rng

    def free(self, rng: AddressRange):
        """(generator) Release a mapping's device memory."""
        entry = self._backing.pop(rng.start, None)
        if entry is None:
            raise ValueError(f"memory manager free of unknown range {rng}")
        backing, cached = entry
        if cached:
            self._buckets.setdefault(backing, []).append(
                AddressRange(rng.start, backing)
            )
            if self.hsa.on_boundary is not None:
                self.hsa.on_boundary("memmgr_cache_free")
            yield self.hsa.env.charge(self.cost.zc_map_call_us)
            return
        yield from self.hsa.memory_pool_free(AddressRange(rng.start, backing))

    @property
    def cached_bytes(self) -> int:
        return sum(size * len(blocks) for size, blocks in self._buckets.items())

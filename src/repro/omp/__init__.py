"""OpenMP offloading runtime model (libomptarget) and user-facing API."""

from .api import AsyncTarget, OmpThread
from .globals_ import GlobalRegistry, GlobalVar
from .mapping import MapClause, MapKind, MappingError, PresentEntry, PresentTable
from .runtime import OpenMPRuntime, RunResult

__all__ = [
    "AsyncTarget",
    "GlobalRegistry",
    "GlobalVar",
    "MapClause",
    "MapKind",
    "MappingError",
    "OmpThread",
    "OpenMPRuntime",
    "PresentEntry",
    "PresentTable",
    "RunResult",
]

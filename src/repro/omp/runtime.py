"""The OpenMP offloading runtime (libomptarget model).

Owns the present table, the device lock, the policy object for the active
:class:`~repro.core.config.RuntimeConfig`, and device initialization.
Device init reproduces the structure visible in the paper's Table I for
Implicit Zero-Copy — which performs storage operations *only* during
initialization: three ``memory_async_copy`` calls (device image, offload
table, device environment) and a small number of pool allocations (9 for
the runtime itself plus 10 per registered host thread for queues, signal
pools and kernarg regions; the paper reports 19 calls with one thread and
90 with eight).

The runtime's fixed bookkeeping delays flow through ``env.charge(us)``
(see :mod:`repro.sim.core`): sequential libomptarget/HSA call costs on a
host thread fuse into one clock adjustment, and :attr:`RunResult.sim_events`
still counts one event per charge, so run telemetry is bit-identical
between the fast and reference engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from ..core.config import RuntimeConfig
from ..core.params import CostModel
from ..core.policies import DataPolicy, make_policy
from ..core.system import ApuSystem
from ..hsa.api import HsaRuntime, KernelRecord
from ..memory.layout import KIB, MIB
from ..sim import Mutex
from ..sim.macro import MacroEnvironment, MacroExecutor
from ..trace.hsa_trace import HsaTrace
from ..trace.kernel_trace import KernelTrace, RunLedger
from .globals_ import GlobalRegistry, GlobalVar
from .mapping import PresentTable
from .memmgr import MemoryManager

__all__ = ["OpenMPRuntime", "RunResult"]

#: (name, bytes) of the host→device transfers performed at device init.
_INIT_IMAGES = (
    ("device-image", 128 * MIB),
    ("offload-table", 8 * MIB),
    ("device-environment", 1 * MIB),
)

#: runtime-owned pool allocations at init (name, bytes)
_INIT_POOL_ALLOCS = (
    ("image-memory", 24 * MIB),
    ("offload-entries", 256 * KIB),
    ("device-env", 4 * KIB),
    ("printf-buffer", 1 * MIB),
    ("device-stack", 16 * MIB),
    ("device-heap", 64 * MIB),
    ("args-pool-a", 512 * KIB),
    ("args-pool-b", 512 * KIB),
    ("trace-buffer", 2 * MIB),
)

#: per-host-thread pool allocations (AQL queue, signals, kernargs, ...)
_PER_THREAD_POOL_ALLOCS = (
    ("aql-queue", 4 * MIB),
    ("queue-ring", 1 * MIB),
    ("signal-pool", 256 * KIB),
    ("kernarg-pool", 1 * MIB),
    ("barrier-packets", 64 * KIB),
    ("doorbell-page", 4 * KIB),
    ("completion-pool", 256 * KIB),
    ("staging-a", 2 * MIB),
    ("staging-b", 2 * MIB),
    ("exception-buffer", 64 * KIB),
)


@dataclass
class RunResult:
    """Everything one simulated application run produced."""

    config: RuntimeConfig
    n_threads: int
    elapsed_us: float
    init_us: float
    hsa_trace: HsaTrace
    ledger: RunLedger
    kernel_trace: KernelTrace
    marks: Dict[str, float] = field(default_factory=dict)
    peak_hbm_bytes: int = 0
    outputs: Dict[str, object] = field(default_factory=dict)
    #: discrete-event count the run pushed through the simulation engine
    #: (throughput denominator for ``repro bench``)
    sim_events: int = 0

    @property
    def steady_us(self) -> float:
        """Steady-state duration between ``steady_start``/``steady_end``
        marks; falls back to post-init elapsed time."""
        start = self.marks.get("steady_start", self.init_us)
        end = self.marks.get("steady_end", self.elapsed_us)
        return end - start


class OpenMPRuntime:
    """One device's offloading runtime under a fixed configuration."""

    def __init__(
        self,
        system: ApuSystem,
        config: RuntimeConfig,
        kernel_trace: bool = False,
        kernel_trace_cap: Optional[int] = 200_000,
    ):
        self.system = system
        self.env = system.env
        self.cost: CostModel = system.cost
        self.hsa: HsaRuntime = system.hsa
        self.config = config
        # §IV: USM / Implicit Z-C run with XNACK enabled; Copy and Eager
        # Maps do not need (and here do not use) XNACK — any unprefaulted
        # GPU touch under those configurations is a hard error.
        system.driver.xnack_enabled = config.needs_xnack
        self.table = PresentTable()
        self.lock = Mutex(self.env, "libomptarget-device-lock")
        self.mm_lock = Mutex(self.env, "process-mm-lock")
        self.ledger = RunLedger()
        self.kernel_trace = KernelTrace(enabled=kernel_trace, max_records=kernel_trace_cap)
        self.globals = GlobalRegistry()
        self.device_mem = MemoryManager(
            self.hsa, self.cost, enabled=self.cost.memmgr_enabled
        )
        self.policy: DataPolicy = make_policy(config, self)
        self.marks: Dict[str, float] = {}
        #: optional hook adjusting a kernel's compute time from its map
        #: clauses (used by the multi-socket card model to charge remote
        #: HBM access penalties); signature (clauses, compute_us) -> us
        self.kernel_cost_adjuster = None
        #: optional MapCheck event recorder (``repro.check.events``);
        #: attached via ``repro.check.instrument``, None in normal runs
        self.recorder = None
        #: MapWarp macro-executor (``repro.sim.macro``): attached only when
        #: the system runs ``engine="macro"`` and the configuration is
        #: replayable (zero-copy policy, deterministic jitter); None
        #: otherwise, making every OmpThread hook a no-op.
        self.macro = None
        if isinstance(self.env, MacroEnvironment):
            mx = MacroExecutor(self)
            if mx.eligible:
                self.macro = mx
                self.hsa.on_boundary = mx.on_boundary
        self._initialized = False
        self._init_us = 0.0

    # ------------------------------------------------------------------
    # program image
    # ------------------------------------------------------------------
    def declare_target(self, name: str, value: np.ndarray,
                       nbytes: Optional[int] = None) -> GlobalVar:
        """Register a ``#pragma omp declare target`` global.

        Must happen before :meth:`run` (it is a property of the program
        image, not a runtime action).  ``nbytes`` sets the modeled size
        when it exceeds the functional payload (same duality as buffers).
        """
        if self._initialized:
            raise RuntimeError("declare_target after device initialization")
        value = np.asarray(value, dtype=np.float64).copy()
        rng = self.system.os_alloc.alloc(max(nbytes or 0, value.nbytes, 8))
        glob = GlobalVar(name, value, rng)
        self.globals.register(glob)
        return glob

    # ------------------------------------------------------------------
    # device init
    # ------------------------------------------------------------------
    def _init_device(self):
        """(generator) Load the device image and runtime structures."""
        sigs = []
        for name, nbytes in _INIT_IMAGES:
            sigs.append(self.hsa.memory_async_copy(None, None, nbytes, tag=name))
        yield from self.hsa.signal_wait_scacquire_all(sigs)
        for _name, nbytes in _INIT_POOL_ALLOCS:
            yield from self.hsa.memory_pool_allocate(nbytes)
        for glob in self.globals.all():
            self.policy.init_global(glob)
            if not glob.usm_pointer:
                np.copyto(glob.device_payload, glob.host_payload)
            if self.recorder is not None:
                self.recorder.note_global_sync(None, self.env.now, glob)
        self._initialized = True

    def _init_thread_resources(self):
        """(generator) Per-host-thread HSA resources (first offload)."""
        for _name, nbytes in _PER_THREAD_POOL_ALLOCS:
            yield from self.hsa.memory_pool_allocate(nbytes)

    # ------------------------------------------------------------------
    # run
    # ------------------------------------------------------------------
    def mark(self, name: str, first: bool = True) -> None:
        """Record a named time mark.  ``first=True`` keeps the earliest
        occurrence (phase starts); ``first=False`` the latest (phase ends)."""
        now = self.env.now
        if name not in self.marks:
            self.marks[name] = now
        else:
            pick = min if first else max
            self.marks[name] = pick(self.marks[name], now)

    def run(
        self,
        thread_body: Callable[["OmpThread", int], object],
        n_threads: int = 1,
        outputs: Optional[Dict[str, object]] = None,
    ) -> RunResult:
        """Execute ``thread_body(thread, tid)`` on ``n_threads`` simulated
        OpenMP host threads and return the :class:`RunResult`.

        ``thread_body`` must return a generator (it is a simulated
        process).  All threads offload to the single GPU device, sharing
        the present table, device lock and HSA runtime — the setup of the
        paper's QMCPack experiments.
        """
        from .api import OmpThread  # local import to avoid a cycle

        if n_threads < 1:
            raise ValueError(f"n_threads must be >= 1, got {n_threads}")
        env = self.env
        t_start = env.now

        def _main():
            yield from self._init_device()
            for _ in range(n_threads):
                yield from self._init_thread_resources()
            self._init_us = env.now - t_start
            threads = [OmpThread(self, tid) for tid in range(n_threads)]
            procs = [
                env.process(thread_body(th, th.tid), name=f"omp-thread-{th.tid}")
                for th in threads
            ]
            for p in procs:
                yield p

        env.run(env.process(_main(), name="omp-main"))
        if self.macro is not None:
            self.macro.flush()
        return RunResult(
            config=self.config,
            n_threads=n_threads,
            elapsed_us=env.now - t_start,
            init_us=self._init_us,
            hsa_trace=self.system.hsa_trace,
            ledger=self.ledger,
            kernel_trace=self.kernel_trace,
            marks=dict(self.marks),
            peak_hbm_bytes=self.system.physical.peak_bytes,
            outputs=outputs or {},
            sim_events=env.processed_events,
        )

    # hook used by OmpThread at kernel completion
    def _on_kernel_complete(self, rec: KernelRecord) -> None:
        self.ledger.n_kernels += 1
        self.ledger.kernel_compute_us += rec.compute_us
        self.ledger.mi_us += rec.fault_stall_us
        self.ledger.n_faulted_pages += rec.n_faults
        self.kernel_trace.record(rec)

"""Per-thread user-facing OpenMP offloading API.

Workloads are written against :class:`OmpThread`, whose methods mirror
the OpenMP constructs the paper's applications use::

    def body(th, tid):
        a = yield from th.alloc("a", 64 * MIB)
        yield from th.target_enter_data([MapClause(a, MapKind.TO)])
        rec = yield from th.target(
            "axpy", compute_us=500.0,
            maps=[MapClause(a, MapKind.ALLOC)],
            fn=lambda args, g: args["a"].__imul__(2.0),
        )
        yield from th.target_exit_data([MapClause(a, MapKind.FROM)])

Every method is a generator (it consumes simulated time) driven with
``yield from`` inside the thread body.  The *same* workload body runs
unmodified under all four runtime configurations; which storage
operations actually happen is the policy's business — that inversion is
exactly the paper's point about OpenMP data environments being an
abstraction over physical storage (§III.C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from ..core.config import RuntimeConfig
from ..hsa.api import KernelRecord
from ..hsa.signals import Signal
from ..memory.buffers import HostBuffer
from ..omp.globals_ import GlobalVar
from ..omp.mapping import MapClause, MappingError
from .runtime import OpenMPRuntime

__all__ = ["OmpThread", "AsyncTarget", "KernelFn"]

#: Functional kernel signature: (mapped arrays by name, globals by name).
KernelFn = Callable[[Dict[str, np.ndarray], Dict[str, np.ndarray]], None]


@dataclass
class AsyncTarget:
    """Handle for a ``nowait`` target region (completed via
    :meth:`OmpThread.wait`)."""

    signal: Signal
    maps: Tuple[MapClause, ...]


class OmpThread:
    """One OpenMP host thread offloading to the device."""

    def __init__(self, runtime: OpenMPRuntime, tid: int):
        self.rt = runtime
        self.env = runtime.env
        self.tid = tid
        self._policy = runtime.policy
        self._cost = runtime.cost

    # ------------------------------------------------------------------
    # host memory
    # ------------------------------------------------------------------
    def alloc(
        self,
        name: str,
        nbytes: int,
        payload: Optional[np.ndarray] = None,
        region: str = "heap",
    ):
        """(generator) Host allocation (malloc/mmap or stack array).

        Charges the OS populate cost; the CPU page table is filled
        immediately (host-side initialization is never the bottleneck in
        the paper's experiments).
        """
        osalloc = self.rt.system.os_alloc
        rng = osalloc.alloc(nbytes, region=region)
        pages = osalloc.populate_cost_pages(nbytes)
        yield self.env.timeout(pages * self._cost.os_populate_page_us)
        return HostBuffer(name, rng, payload=payload, region=region)

    def free(self, buf: HostBuffer):
        """(generator) Release host memory.

        Freeing a buffer that is still mapped is a user error the real
        runtime cannot diagnose; we can, so we do.
        """
        if self.rt.table.is_present(buf):
            raise MappingError(f"freeing host buffer {buf.name!r} while still mapped")
        buf.check_alive()
        self.rt.system.os_alloc.free(buf.range)
        buf.freed = True
        yield self.env.timeout(self._cost.syscall_base_us)

    # ------------------------------------------------------------------
    # data environment
    # ------------------------------------------------------------------
    def target_enter_data(self, maps: Sequence[MapClause]):
        """(generator) ``#pragma omp target enter data map(...)``."""
        sigs = yield from self._policy.map_enter_all(maps)
        if sigs:
            t0 = self.env.now
            yield from self.rt.hsa.signal_wait_scacquire_all(sigs)
            self.rt.ledger.wait_us += self.env.now - t0

    def target_exit_data(self, maps: Sequence[MapClause]):
        """(generator) ``#pragma omp target exit data map(...)``."""
        yield from self._policy.map_exit_all(maps)

    def update_global(self, glob: GlobalVar):
        """(generator) ``map(always, to: g)`` / ``target update to(g)``."""
        yield from self._policy.global_update(glob)

    def target_update(self, to=(), from_=()):
        """(generator) ``#pragma omp target update to(...) from(...)``.

        Motion clauses refresh *present* mappings without changing
        reference counts; absent ranges are skipped (OpenMP 5.x).  Under
        zero-copy configurations there is nothing to move.
        """
        for buf in to:
            yield from self._policy.motion_update(buf, to_device=True)
        for buf in from_:
            yield from self._policy.motion_update(buf, to_device=False)

    # ------------------------------------------------------------------
    # target regions
    # ------------------------------------------------------------------
    def target(
        self,
        name: str,
        compute_us: float,
        maps: Sequence[MapClause] = (),
        fn: Optional[KernelFn] = None,
        globals_used: Sequence[GlobalVar] = (),
        nowait: bool = False,
    ):
        """(generator) ``#pragma omp target teams ...`` region.

        Performs the implicit map-enter, launches the kernel (with XNACK
        fault charging under the zero-copy configurations), waits for
        completion and performs the implicit map-exit.  With ``nowait``
        the handle is returned immediately and :meth:`wait` finishes the
        region.  Returns the kernel's :class:`KernelRecord`.
        """
        maps = tuple(maps)
        sigs = yield from self._policy.map_enter_all(maps)
        if sigs:
            t0 = self.env.now
            yield from self.rt.hsa.signal_wait_scacquire_all(sigs)
            self.rt.ledger.wait_us += self.env.now - t0
        args, fault_ranges = self._policy.resolve_kernel_args(maps)
        if self.rt.kernel_cost_adjuster is not None:
            compute_us = self.rt.kernel_cost_adjuster(maps, compute_us)
        gviews = {g.name: self._policy.resolve_global(g) for g in globals_used}
        if self.rt.config is RuntimeConfig.UNIFIED_SHARED_MEMORY and globals_used:
            # double-indirection tax + the host global's page is GPU-touched
            compute_us = compute_us + len(gviews) * self._cost.usm_indirection_us
            fault_ranges = list(fault_ranges) + [g.range for g in globals_used]
        body = None
        if fn is not None:
            body = lambda: fn(args, gviews)  # noqa: E731
        sig = self.rt.hsa.dispatch_kernel(
            name,
            compute_us,
            fn=body,
            fault_ranges=fault_ranges if self.rt.config.is_zero_copy else [],
            on_complete=self.rt._on_kernel_complete,
        )
        handle = AsyncTarget(sig, maps)
        if nowait:
            return handle
        rec = yield from self.wait(handle)
        return rec

    def wait(self, handle: AsyncTarget):
        """(generator) Complete a target region: kernel wait + map-exit."""
        t0 = self.env.now
        yield from self.rt.hsa.signal_wait_scacquire(handle.signal)
        self.rt.ledger.wait_us += self.env.now - t0
        yield from self._policy.map_exit_all(handle.maps)
        rec: KernelRecord = handle.signal.value
        return rec

    # ------------------------------------------------------------------
    # instrumentation
    # ------------------------------------------------------------------
    def mark(self, name: str, first: bool = True) -> None:
        """Record a phase mark (aggregated across threads)."""
        self.rt.mark(name, first=first)

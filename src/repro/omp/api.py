"""Per-thread user-facing OpenMP offloading API.

Workloads are written against :class:`OmpThread`, whose methods mirror
the OpenMP constructs the paper's applications use::

    def body(th, tid):
        a = yield from th.alloc("a", 64 * MIB)
        yield from th.target_enter_data([MapClause(a, MapKind.TO)])
        rec = yield from th.target(
            "axpy", compute_us=500.0,
            maps=[MapClause(a, MapKind.ALLOC)],
            fn=lambda args, g: args["a"].__imul__(2.0),
        )
        yield from th.target_exit_data([MapClause(a, MapKind.FROM)])

Every method is a generator (it consumes simulated time) driven with
``yield from`` inside the thread body.  The *same* workload body runs
unmodified under all four runtime configurations; which storage
operations actually happen is the policy's business — that inversion is
exactly the paper's point about OpenMP data environments being an
abstraction over physical storage (§III.C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from ..core.config import RuntimeConfig
from ..hsa.api import KernelRecord
from ..hsa.signals import Signal
from ..memory.buffers import HostBuffer
from ..omp.globals_ import GlobalVar
from ..omp.mapping import MapClause, MappingError
from .runtime import OpenMPRuntime

__all__ = ["OmpThread", "AsyncTarget", "KernelFn"]

#: Functional kernel signature: (mapped arrays by name, globals by name).
KernelFn = Callable[[Dict[str, np.ndarray], Dict[str, np.ndarray]], None]


@dataclass
class AsyncTarget:
    """Handle for a ``nowait`` target region (completed via
    :meth:`OmpThread.wait`)."""

    signal: Signal
    maps: Tuple[MapClause, ...]
    #: pending MapCheck kernel event (set only when a recorder is attached)
    check_info: object = None


class OmpThread:
    """One OpenMP host thread offloading to the device."""

    def __init__(self, runtime: OpenMPRuntime, tid: int):
        self.rt = runtime
        self.env = runtime.env
        self.tid = tid
        self._policy = runtime.policy
        self._cost = runtime.cost

    # ------------------------------------------------------------------
    # host memory
    # ------------------------------------------------------------------
    def alloc(
        self,
        name: str,
        nbytes: int,
        payload: Optional[np.ndarray] = None,
        region: str = "heap",
    ):
        """(generator) Host allocation (malloc/mmap or stack array).

        Charges the OS populate cost; the CPU page table is filled
        immediately (host-side initialization is never the bottleneck in
        the paper's experiments).
        """
        mx = self.rt.macro
        if mx is not None:
            mx.note(self.tid, ("alloc", int(nbytes), region))
        osalloc = self.rt.system.os_alloc
        rng = osalloc.alloc(nbytes, region=region)
        pages = osalloc.populate_cost_pages(nbytes)
        yield self.env.charge(pages * self._cost.os_populate_page_us)
        return HostBuffer(name, rng, payload=payload, region=region)

    def free(self, buf: HostBuffer):
        """(generator) Release host memory.

        Freeing a buffer that is still mapped is a user error the real
        runtime cannot diagnose; we can, so we do.
        """
        mx = self.rt.macro
        if mx is not None:
            mx.note(self.tid, ("free", buf.nbytes))
        if self.rt.table.is_present(buf):
            raise MappingError(f"freeing host buffer {buf.name!r} while still mapped")
        buf.check_alive()
        self.rt.system.os_alloc.free(buf.range)
        buf.freed = True
        yield self.env.charge(self._cost.syscall_base_us)

    # ------------------------------------------------------------------
    # data environment
    # ------------------------------------------------------------------
    def target_enter_data(self, maps: Sequence[MapClause]):
        """(generator) ``#pragma omp target enter data map(...)``."""
        mx = self.rt.macro
        if mx is not None and mx.enter_data(self.tid, maps):
            return
        sigs = yield from self._policy.map_enter_all(maps, tid=self.tid)
        if sigs:
            t0 = self.env.now
            yield from self.rt.hsa.signal_wait_scacquire_all(sigs)
            self.rt.ledger.wait_us += self.env.now - t0

    def target_exit_data(self, maps: Sequence[MapClause]):
        """(generator) ``#pragma omp target exit data map(...)``."""
        mx = self.rt.macro
        if mx is not None and mx.exit_data(self.tid, maps):
            return
        yield from self._policy.map_exit_all(maps, tid=self.tid)

    def update_global(self, glob: GlobalVar):
        """(generator) ``map(always, to: g)`` / ``target update to(g)``."""
        mx = self.rt.macro
        if mx is not None:
            mx.note(self.tid, ("gupd", glob.name))
        yield from self._policy.global_update(glob)
        if self.rt.recorder is not None:
            self.rt.recorder.note_global_sync(self.tid, self.env.now, glob)

    def target_update(self, to=(), from_=()):
        """(generator) ``#pragma omp target update to(...) from(...)``.

        Motion clauses refresh *present* mappings without changing
        reference counts; absent ranges are skipped (OpenMP 5.x).  Under
        zero-copy configurations there is nothing to move.
        """
        mx = self.rt.macro
        if mx is not None:
            mx.note(self.tid, (
                "tupd",
                tuple(b.nbytes for b in to),
                tuple(b.nbytes for b in from_),
            ))
        rec = self.rt.recorder
        for buf in to:
            yield from self._policy.motion_update(buf, to_device=True)
            if rec is not None:
                rec.note_update(self.tid, self.env.now, buf, to_device=True,
                                present=self.rt.table.is_present(buf))
        for buf in from_:
            yield from self._policy.motion_update(buf, to_device=False)
            if rec is not None:
                rec.note_update(self.tid, self.env.now, buf, to_device=False,
                                present=self.rt.table.is_present(buf))

    def host_write(self, buf: HostBuffer, values=None) -> None:
        """Declare a host-side write to ``buf``'s payload.

        The write itself is free (host stores are never the bottleneck
        here); the point of the call is the *declaration* — MapCheck's
        race detector uses it to find host writes that overlap an
        in-flight kernel reading the same range (rule MC-R02).  If
        ``values`` is given it is written into the payload first.
        """
        buf.check_alive()
        if values is not None:
            flat = np.asarray(values, dtype=buf.payload.dtype).reshape(-1)
            buf.payload.reshape(-1)[: flat.size] = flat
        if self.rt.recorder is not None:
            self.rt.recorder.note_host_write(self.tid, self.env.now, buf)

    # ------------------------------------------------------------------
    # target regions
    # ------------------------------------------------------------------
    def target(
        self,
        name: str,
        compute_us: float,
        maps: Sequence[MapClause] = (),
        fn: Optional[KernelFn] = None,
        globals_used: Sequence[GlobalVar] = (),
        nowait: bool = False,
        touches: Sequence[HostBuffer] = (),
    ):
        """(generator) ``#pragma omp target teams ...`` region.

        Performs the implicit map-enter, launches the kernel (with XNACK
        fault charging under the zero-copy configurations), waits for
        completion and performs the implicit map-exit.  With ``nowait``
        the handle is returned immediately and :meth:`wait` finishes the
        region.  Returns the kernel's :class:`KernelRecord`.

        ``touches`` declares raw-pointer accesses: host buffers the
        kernel dereferences *without* a map clause (a pointer smuggled in
        through a struct, say).  On an APU with XNACK these silently work
        — the faults are replayed like any other first touch — but
        configurations that run with XNACK disabled (Copy, Eager Maps:
        the discrete-GPU deployment model) hard-fault on them, which is
        exactly the latent portability bug of §IV.C that MapCheck's
        MC-P01 lint exists to flag.
        """
        maps = tuple(maps)
        touches = tuple(touches)
        mx = self.rt.macro
        if mx is not None:
            if nowait or touches:
                mx.note(self.tid, ("xtarget", name, len(maps), len(touches)))
            else:
                rec = mx.target(
                    self.tid, name, compute_us, maps, fn, globals_used
                )
                if rec is not None:
                    return rec
        sigs = yield from self._policy.map_enter_all(maps, tid=self.tid)
        if sigs:
            t0 = self.env.now
            yield from self.rt.hsa.signal_wait_scacquire_all(sigs)
            self.rt.ledger.wait_us += self.env.now - t0
        args, fault_ranges = self._policy.resolve_kernel_args(maps)
        fault_ranges = list(fault_ranges) if self.rt.config.is_zero_copy else []
        uncovered = []
        for buf in touches:
            buf.check_alive()
            args.setdefault(buf.name, buf.payload)
            if (self.rt.table.find_covering(buf.range) is None
                    and self.rt.globals.find_covering(buf.range) is None):
                uncovered.append(buf)
                fault_ranges.append(buf.range)
        if self.rt.kernel_cost_adjuster is not None:
            compute_us = self.rt.kernel_cost_adjuster(maps, compute_us)
        gviews = {g.name: self._policy.resolve_global(g) for g in globals_used}
        if self.rt.config is RuntimeConfig.UNIFIED_SHARED_MEMORY and globals_used:
            # double-indirection tax + the host global's page is GPU-touched
            compute_us = compute_us + len(gviews) * self._cost.usm_indirection_us
            fault_ranges = list(fault_ranges) + [g.range for g in globals_used]
        body = None
        if fn is not None:
            body = lambda: fn(args, gviews)  # noqa: E731
        check_info = None
        if self.rt.recorder is not None:
            check_info = self.rt.recorder.begin_kernel(
                name, self.tid, self.env.now, maps, touches, uncovered, globals_used
            )
        sig = self.rt.hsa.dispatch_kernel(
            name,
            compute_us,
            fn=body,
            fault_ranges=fault_ranges,
            on_complete=self.rt._on_kernel_complete,
        )
        handle = AsyncTarget(sig, maps, check_info=check_info)
        if nowait:
            return handle
        rec = yield from self.wait(handle, _from_target=True)
        return rec

    def wait(self, handle: AsyncTarget, _from_target: bool = False):
        """(generator) Complete a target region: kernel wait + map-exit."""
        if not _from_target:
            mx = self.rt.macro
            if mx is not None:
                mx.note(self.tid, ("wait",))
        t0 = self.env.now
        yield from self.rt.hsa.signal_wait_scacquire(handle.signal)
        self.rt.ledger.wait_us += self.env.now - t0
        rec: KernelRecord = handle.signal.value
        if self.rt.recorder is not None and handle.check_info is not None:
            self.rt.recorder.end_kernel(handle.check_info, rec, self.tid, t0)
        yield from self._policy.map_exit_all(handle.maps, tid=self.tid)
        return rec

    # ------------------------------------------------------------------
    # instrumentation
    # ------------------------------------------------------------------
    def mark(self, name: str, first: bool = True) -> None:
        """Record a phase mark (aggregated across threads)."""
        self.rt.mark(name, first=first)

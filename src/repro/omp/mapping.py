"""OpenMP data-environment mapping: map kinds and the present table.

OpenMP's ``map`` clauses manipulate a per-device *present table* with
reference counting (the libomptarget ``DeviceTy::HostDataToTargetMap``):

* mapping an absent range creates an entry (and, in Copy mode, a shadow
  device allocation) with refcount 1;
* mapping a present range increments the refcount — no storage operation
  unless the ``always`` modifier forces a transfer;
* unmapping decrements; the ``from``/``tofrom`` copy-back and the device
  deallocation happen when the count reaches zero (or unconditionally
  with ``always`` / ``delete``).

The table itself is policy-agnostic: zero-copy configurations still do
the full refcount bookkeeping (OpenMP semantics require it for
``delete``/presence checks); they simply attach no device buffer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..memory.buffers import DeviceBuffer, HostBuffer

__all__ = [
    "MapKind",
    "MapClause",
    "PresentEntry",
    "PresentTable",
    "MappingError",
    "RefcountUnderflowError",
    "AlwaysMisuseError",
]


class MappingError(RuntimeError):
    """Raised on map/unmap sequences that violate OpenMP semantics."""


class RefcountUnderflowError(MappingError):
    """An unmap would drive a present entry's refcount below zero
    (unbalanced map-exit; MapCheck rule MC-S01)."""


class AlwaysMisuseError(MappingError):
    """``always`` modifier attached to a map kind that never transfers
    (MapCheck rule MC-S05)."""


class MapKind(enum.Enum):
    """OpenMP map types (the subset the paper's benchmarks exercise)."""

    ALLOC = "alloc"    #: presence + refcount only, no transfer
    TO = "to"          #: host→device on entry
    FROM = "from"      #: device→host on exit
    TOFROM = "tofrom"  #: both
    RELEASE = "release"  #: decrement only, never transfers
    DELETE = "delete"    #: force refcount to zero, never transfers

    @property
    def copies_to_device(self) -> bool:
        return self in (MapKind.TO, MapKind.TOFROM)

    @property
    def copies_to_host(self) -> bool:
        return self in (MapKind.FROM, MapKind.TOFROM)


@dataclass(frozen=True)
class MapClause:
    """One ``map([always,] kind: buffer)`` clause."""

    buffer: HostBuffer
    kind: MapKind = MapKind.TOFROM
    always: bool = False

    def __post_init__(self):
        if self.always and self.kind in (MapKind.ALLOC, MapKind.RELEASE, MapKind.DELETE):
            raise AlwaysMisuseError(
                f"'always' modifier is meaningless on map({self.kind.value})"
            )


@dataclass
class PresentEntry:
    """Present-table entry for one host range."""

    host: HostBuffer
    device: Optional[DeviceBuffer]  #: shadow allocation (Copy mode only)
    refcount: int = 0

    @property
    def key(self) -> int:
        return self.host.range.start


class PresentTable:
    """Per-device host→target mapping table with refcounts.

    ``observer`` is an optional sanitizer hook (``repro.check``): when
    set, every structural operation — and every rejected one, *before*
    the exception propagates — is reported via
    ``observer.note_table(op, buffer, refcount, locked)``.  ``lock_probe``
    lets the observer know whether the device lock was held at the time
    (operations outside the lock are themselves suspicious).
    """

    def __init__(self):
        self._entries: Dict[int, PresentEntry] = {}
        self.peak_entries = 0
        self.observer = None
        self.lock_probe = None

    def _notify(self, op: str, buffer: Optional[HostBuffer], refcount) -> None:
        if self.observer is not None:
            locked = bool(self.lock_probe()) if self.lock_probe is not None else True
            self.observer.note_table(op, buffer, refcount, locked)

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, buffer: HostBuffer) -> Optional[PresentEntry]:
        entry = self._entries.get(buffer.range.start)
        if entry is not None and entry.host is not buffer:
            raise MappingError(
                f"present-table collision at 0x{buffer.range.start:x}: "
                f"{entry.host.name!r} vs {buffer.name!r}"
            )
        return entry

    def is_present(self, buffer: HostBuffer) -> bool:
        return self.lookup(buffer) is not None

    def find_covering(self, rng) -> Optional[PresentEntry]:
        """First live entry whose host range overlaps ``rng``.

        Raw-pointer accesses do not have to start at a mapped buffer's
        base address, so coverage checks (MapCheck's missing-map lint)
        need an overlap lookup rather than the exact-start :meth:`lookup`.
        """
        for entry in self._entries.values():
            if entry.host.range.overlaps(rng):
                return entry
        return None

    def insert(self, entry: PresentEntry) -> None:
        key = entry.key
        if key in self._entries:
            raise MappingError(f"duplicate present-table entry at 0x{key:x}")
        self._entries[key] = entry
        if len(self._entries) > self.peak_entries:
            self.peak_entries = len(self._entries)
        self._notify("insert", entry.host, entry.refcount)

    def remove(self, entry: PresentEntry) -> None:
        found = self._entries.pop(entry.key, None)
        if found is not entry:
            raise MappingError(f"removing unknown present-table entry {entry.host.name!r}")
        self._notify("remove", entry.host, entry.refcount)

    def retain(self, buffer: HostBuffer) -> PresentEntry:
        """Increment the refcount of an existing entry."""
        entry = self.lookup(buffer)
        if entry is None:
            self._notify("retain_absent", buffer, None)
            raise MappingError(f"retain of absent buffer {buffer.name!r}")
        entry.refcount += 1
        self._notify("retain", buffer, entry.refcount)
        return entry

    def release(self, buffer: HostBuffer, delete: bool = False) -> PresentEntry:
        """Decrement (or zero, for ``delete``) the refcount.

        The caller inspects ``entry.refcount`` afterwards to decide on
        copy-back and deallocation; removal is explicit via
        :meth:`remove` once storage is torn down.
        """
        entry = self.lookup(buffer)
        if entry is None:
            self._notify("release_absent", buffer, None)
            raise MappingError(f"unmap of absent buffer {buffer.name!r}")
        if entry.refcount <= 0:
            self._notify("underflow", buffer, entry.refcount)
            raise RefcountUnderflowError(
                f"refcount underflow for {buffer.name!r}: release at refcount "
                f"{entry.refcount} (unbalanced map-exit)"
            )
        if delete:
            entry.refcount = 0
        else:
            entry.refcount -= 1
        self._notify("release", buffer, entry.refcount)
        return entry

    def entries(self) -> List[PresentEntry]:
        return list(self._entries.values())

    def total_refcount(self) -> int:
        return sum(e.refcount for e in self._entries.values())

"""MapWarp: steady-state macro-execution for periodic offload streams.

The paper's workloads are overwhelmingly periodic: QMCPack's steady state
is ~99.4 k near-identical kernel launches per thread, each wrapped in the
same ``always to``/``from`` map clauses, and the SPECaccel timed loops
repeat one per-thread map/kernel segment thousands of times.  The fused
engine (``ENGINE_VERSION 2``) already collapses back-to-back charges, but
every OpenMP operation still runs its full generator round-trip through
the scheduler — per-event Python dispatch dominates full-fidelity runs.

This module adds a third engine (``engine="macro"``): a segment-recording
layer fingerprints each host thread's operation stream, detects a stable
repeating segment (or takes declared periodicity from the MapCost IR's
``Loop(trips=N)`` nodes via :func:`declared_period`), and then
*macro-executes* matching iterations — the clock jump, the event
accounting, the present-table refcounts, the ledger/trace increments and
the kernel's functional payload are applied directly, with the floating-
point spans deferred into arrays and folded with a strictly sequential
``np.add.accumulate`` so every accumulator stays bit-identical to the
in-order ``+=`` chain the event path would have performed.

Macro execution is a *pure fast path*, exactly like the ENGINE_VERSION 2
playbook: any divergence from the learned segment (an allocation inside
the loop, a first XNACK fault on an unseen page, a contended lock or a
non-empty event queue) falls back to ordinary event-by-event execution
for that operation.  The bench differential (``macro_identical`` /
``macro_differential``) pins telemetry, traces and outputs bit-identical
to the fused engine for every registry workload under all four runtime
configurations.

Layering note: this module lives in ``repro.sim`` because it *is* an
engine variant (:class:`MacroEnvironment` is what ``ApuSystem`` selects),
but the replay mirrors necessarily know about the runtime layers above.
Those imports happen inside :class:`MacroExecutor` construction — by the
time a runtime exists, every layer is loaded — keeping the module-level
dependency graph of ``repro.sim`` exactly as before.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .core import Environment

__all__ = [
    "MacroEnvironment",
    "MacroExecutor",
    "MacroStats",
    "SegmentTracker",
    "declared_period",
    "OBSERVE",
    "MATCH",
    "DIVERGE",
]

#: tracker verdicts for one operation token
OBSERVE = 0  #: no segment armed yet — execute normally, keep recording
MATCH = 1    #: token matches the armed segment — eligible for replay
DIVERGE = 2  #: token broke the armed segment — disarm, execute normally

#: longest repeating segment the tracker will learn (QMCPack's steady
#: step is 103 operations; SPECaccel loops are far shorter)
MAX_PERIOD = 256

#: occurrence history kept per distinct token (candidate-period source)
_OCC_KEEP = 32

#: token stream is trimmed back to 4×MAX_PERIOD once it exceeds this
_STREAM_KEEP = 8 * MAX_PERIOD

#: programs that failed before completing one full cycle are blacklisted
#: (micro-periods inside a larger segment); bounded so a pathological
#: stream cannot grow the set forever
_BLACKLIST_MAX = 64


class MacroEnvironment(Environment):
    """Marker environment selected by ``engine="macro"``.

    Scheduling behaviour is identical to the fused :class:`Environment`;
    the runtime checks ``isinstance(env, MacroEnvironment)`` to decide
    whether to attach a :class:`MacroExecutor`.  Keeping the marker on the
    environment (rather than a flag on the runtime) means the engine
    choice travels with the system object through every construction
    path — ``ApuSystem``, ``execute``, the experiment cells, the CLI.
    """

    __slots__ = ()


@dataclass
class MacroStats:
    """Counters describing how much work the macro engine absorbed."""

    ops_seen: int = 0          #: tokenized operations observed
    ops_replayed: int = 0      #: operations macro-executed (fast path)
    guard_fallbacks: int = 0   #: segment matched but a runtime guard failed
    divergences: int = 0       #: armed segment broken by a mismatched token
    flushes: int = 0           #: deferred-accumulator folds
    boundary_events: int = 0   #: segment-boundary markers (pool/copy/memmgr)

    def as_dict(self) -> Dict[str, int]:
        return {
            "ops_seen": self.ops_seen,
            "ops_replayed": self.ops_replayed,
            "guard_fallbacks": self.guard_fallbacks,
            "divergences": self.divergences,
            "flushes": self.flushes,
            "boundary_events": self.boundary_events,
        }


class SegmentTracker:
    """Online periodicity detector over one thread's operation tokens.

    Tokens are structural fingerprints of OpenMP operations (kind, map
    clauses by ``(kind, always, nbytes)``, kernel name/compute time) —
    deliberately *free of buffer identity*, so QMCPack's rotation through
    16 spline chunks still fingerprints as one 103-operation step.  All
    replay side effects are computed from the live clause objects, so the
    coarse token never affects correctness, only *when* replay engages.

    Detection tries, for each new token, candidate periods derived from
    that token's previous occurrences — largest first, so a full
    application step wins over the ``[enter, exit]`` and ``[target]``
    micro-periods nested inside it once two full periods of history
    exist.  A candidate arms only after two consecutive occurrences of
    the full window verify equal; a declared ``hint`` period (from the
    MapCost IR) may arm early, after a single window plus one token of
    agreement.

    While a segment is armed, matching costs one tuple compare — matched
    tokens are *not* recorded live.  On divergence the armed stretch is
    spliced back into the stream retroactively (it is fully determined
    by the program and the match count), so history stays contiguous and
    detection behaves exactly as if every token had been recorded.
    """

    __slots__ = (
        "hint",
        "max_period",
        "stream",
        "off",
        "occ",
        "program",
        "pos",
        "streak",
        "blacklist",
        "arms",
    )

    def __init__(self, hint: Optional[int] = None, max_period: int = MAX_PERIOD):
        self.hint = hint if hint and 1 <= hint <= max_period else None
        self.max_period = max_period
        self.stream: List[object] = []
        self.off = 0  #: absolute index of ``stream[0]``
        self.occ: Dict[object, deque] = {}
        self.program: Optional[Tuple[object, ...]] = None
        self.pos = 0
        self.streak = 0
        self.blacklist: set = set()
        self.arms = 0

    @property
    def armed(self) -> bool:
        return self.program is not None

    def advance(self, token) -> int:
        """Feed one operation token; returns OBSERVE / MATCH / DIVERGE."""
        prog = self.program
        if prog is not None:
            if token == prog[self.pos]:
                pos = self.pos + 1
                self.pos = 0 if pos == len(prog) else pos
                self.streak += 1
                return MATCH
            # armed segment broken: programs that never survived one full
            # cycle are micro-periods — blacklist them so detection does
            # not thrash re-arming them inside the larger true period
            if self.streak < len(prog) and len(self.blacklist) < _BLACKLIST_MAX:
                self.blacklist.add(prog)
            # matched tokens were never recorded; splice the armed
            # stretch back in (it is fully determined by the program), so
            # the stream stays contiguous and a larger true period — say
            # QMCPack's 103-op step around a [target]-run micro-period —
            # can still be detected from pre-divergence occurrences
            self._rebuild()
        self._push(token)
        self._detect(token)
        return OBSERVE if prog is None else DIVERGE

    def disarm(self) -> None:
        """Externally disarm (segment boundary), splicing the armed
        stretch back into the recorded stream first."""
        if self.program is not None:
            self._rebuild()

    def _rebuild(self) -> None:
        """Record the armed stretch retroactively and disarm.

        Matched tokens are not pushed while armed (the hot path is one
        tuple compare), but they are fully determined by the program and
        the match count: the last ``streak`` tokens are the program
        cycled to end just before ``pos``.  Pushing them (capped at the
        stream's own retention bound) makes divergence exactly equivalent
        to having recorded every token, so detection quality is
        unaffected by the armed-path shortcut.
        """
        prog = self.program
        pos, streak = self.pos, self.streak
        self.program = None
        n = min(streak, 3 * self.max_period)
        if n:
            cycle = prog[pos:] + prog[:pos]  # one cycle ending at pos-1
            reps = -(-n // len(prog))
            for token in (cycle * reps)[-n:]:
                self._push(token)

    # ------------------------------------------------------------------
    def _push(self, token) -> None:
        stream = self.stream
        stream.append(token)
        k = self.off + len(stream) - 1
        d = self.occ.get(token)
        if d is None:
            if len(self.occ) > 2048:  # unbounded distinct tokens: reset
                self.occ.clear()
            d = deque(maxlen=_OCC_KEEP)
            self.occ[token] = d
        d.append(k)
        if len(stream) > _STREAM_KEEP:
            drop = len(stream) - 4 * self.max_period
            del stream[:drop]
            self.off += drop

    def _detect(self, token) -> None:
        """Try to arm a repeating segment ending at the token just pushed."""
        stream = self.stream
        off = self.off
        k = off + len(stream) - 1
        cands = set()
        for o in self.occ[token]:
            dist = k - o
            if 1 <= dist <= self.max_period:
                cands.add(dist)
        hint = self.hint
        if hint is not None:
            cands.add(hint)
        blacklist = self.blacklist
        for length in sorted(cands, reverse=True):
            s0 = k - 2 * length + 1
            if s0 < off:
                continue
            i = s0 - off
            window = stream[i + length:]
            if stream[i:i + length] == window:
                prog = tuple(window)
                if prog in blacklist:
                    continue
                self.program = prog
                self.pos = 0
                self.streak = 0
                self.arms += 1
                return
        # hint-assisted early arming: one declared period plus a single
        # token of agreement, used before 2×hint history exists
        if hint is not None and k - 2 * hint + 1 < off <= k - hint:
            j = k - hint - off
            if stream[j] == token:
                prog = tuple(stream[j + 1:])
                if prog not in blacklist:
                    self.program = prog
                    self.pos = 0
                    self.streak = 0
                    self.arms += 1


def _clause_token(maps) -> Tuple:
    """Identity-free fingerprint of a map-clause list."""
    return tuple([(c.kind, c.always, c.buffer.range.nbytes) for c in maps])


def _match_clauses(ct, maps) -> bool:
    """``ct == _clause_token(maps)`` without building the token.

    The armed-segment hot path compares every operation against its
    expected token; doing it field-by-field on the live clauses skips
    two tuple allocations per operation.
    """
    if len(ct) != len(maps):
        return False
    for (kind, always, nbytes), c in zip(ct, maps):
        if (
            c.kind is not kind
            or c.always != always
            or c.buffer.range.nbytes != nbytes
        ):
            return False
    return True


def _acc(x0: float, vals: List[float]) -> float:
    """Fold ``vals`` onto ``x0`` exactly as a sequential ``+=`` chain.

    ``np.add.accumulate`` is a strictly sequential recurrence (unlike
    ``np.add.reduce``/``np.sum``, which are pairwise and therefore NOT
    bit-identical to in-order addition).
    """
    arr = np.empty(len(vals) + 1)
    arr[0] = x0
    arr[1:] = vals
    return float(np.add.accumulate(arr)[-1])


class MacroExecutor:
    """Replays steady-state OpenMP operations without the event loop.

    Attached by :class:`~repro.omp.runtime.OpenMPRuntime` when its system
    runs a :class:`MacroEnvironment` and the configuration is replayable
    (a zero-copy policy with deterministic jitter).  ``OmpThread`` hooks
    route every operation through :meth:`enter_data`/:meth:`exit_data`/
    :meth:`target` (replayable) or :meth:`note` (pass-through): the
    tracker consumes one token per operation either way, so the learned
    segment always reflects true program order.

    Replay mirrors the event path's arithmetic *exactly*: the clock is a
    sequence of single-charge settles (``now = now + c`` in program
    order), event counts are the known per-operation constants of the
    fused engine, live-clock spans (signal waits, prefault durations,
    resource busy time) are computed from the replayed clock, and all
    float accumulators are deferred and folded sequentially at the next
    flush point — which always happens before any event-path operation
    can touch the same accumulator.
    """

    def __init__(self, runtime):
        # runtime-layer imports at construction time (see module docstring)
        from ..core.config import RuntimeConfig
        from ..core.policies import EagerMapsPolicy, ZeroCopyPolicy
        from ..hsa.api import KernelRecord
        from ..omp.mapping import MapKind, MappingError, PresentEntry

        self.rt = runtime
        self.env = runtime.env
        self.hsa = runtime.hsa
        self.cost = runtime.cost
        self.policy = runtime.policy
        self.table = runtime.table
        self.ledger = runtime.ledger
        self.lock = runtime.lock
        self.mm_lock = runtime.mm_lock
        self.queues = runtime.hsa.queues
        self.syscalls = runtime.hsa.syscalls
        self.trace = runtime.hsa.trace
        self._kt = runtime.kernel_trace
        self.driver = runtime.system.driver
        self.gpu_pt = runtime.system.gpu_pt

        opj = runtime.hsa.op_jitter
        syj = runtime.hsa.syscalls.jitter
        #: replay is exact only for zero-copy policies (Copy's pool
        #: allocations and SDMA copies stay on the event path) with
        #: deterministic per-op jitter; the correlated per-run ``scale``
        #: factor is a plain multiplier and is mirrored exactly.
        self.eligible = (
            isinstance(runtime.policy, ZeroCopyPolicy)
            and opj.sigma == 0.0
            and opj.tail_p == 0.0
            and syj.sigma == 0.0
            and syj.tail_p == 0.0
            and not runtime.hsa.trace.detailed
        )
        self.is_eager = isinstance(runtime.policy, EagerMapsPolicy)
        self.is_usm = runtime.config is RuntimeConfig.UNIFIED_SHARED_MEMORY
        self.scale = opj.scale
        c = self.cost
        self.zc_us = c.zc_map_call_us
        self.wait_base = c.signal_wait_base_us * self.scale
        self.dispatch_us = c.dispatch_us
        self.usm_indirection_us = c.usm_indirection_us
        self.sys_base = c.syscall_base_us
        self.pf_extra = max(0.0, c.prefault_call_us - c.syscall_base_us)
        self.verify_us = c.prefault_verify_page_us
        self.page_size = self.driver.page_size

        self._MapKind = MapKind
        self._DELETE = MapKind.DELETE
        self._RELEASE = MapKind.RELEASE
        self._MappingError = MappingError
        self._PresentEntry = PresentEntry
        self._KernelRecord = KernelRecord

        self.stats = MacroStats()
        self.hint: Optional[int] = None
        self.trackers: Dict[int, SegmentTracker] = {}
        # one-entry tracker cache (single-thread steady state never misses)
        self._last_tid = -1
        self._last_tr: Optional[SegmentTracker] = None

        # deferred float accumulators (flushed with _acc); signal-wait
        # spans land in the trace deferral list and are folded into
        # ledger.wait_us from there (the event path computes both from
        # the same ``env.now - t0`` subtraction, so the values coincide)
        self._d_prefault: List[float] = []  # ledger.prefault_us
        self._d_sys: List[float] = []       # syscalls.total_us
        self._d_lock: List[float] = []      # device-lock busy time
        self._d_queues: List[float] = []    # gpu-queue busy time
        # keys appear in trace.stats only when their list is non-empty at
        # a flush, and replay can only engage after the event path has
        # already recorded both call names during segment observation —
        # so pre-creating the deferral lists never perturbs the trace's
        # name-insertion order.
        self._d_trace: Dict[str, List[float]] = {
            "signal_wait_scacquire": [],
            "svm_attributes_set": [],
        }
        self._dt_wait = self._d_trace["signal_wait_scacquire"]
        self._dt_svm = self._d_trace["svm_attributes_set"]
        self._dirty = False

        # residency memo: ranges verified fully GPU-resident, valid while
        # the page table's install/evict epoch stamp is unchanged
        self._pt_stamp = (-1, -1)
        self._resident: set = set()

    # ------------------------------------------------------------------
    # tracker plumbing
    # ------------------------------------------------------------------
    def _tracker(self, tid: int) -> SegmentTracker:
        if tid == self._last_tid:
            return self._last_tr
        tr = self.trackers.get(tid)
        if tr is None:
            tr = SegmentTracker(hint=self.hint)
            self.trackers[tid] = tr
        self._last_tid = tid
        self._last_tr = tr
        return tr

    def note(self, tid: int, token) -> None:
        """Consume one pass-through operation token (never replayed)."""
        st = self._tracker(tid).advance(token)
        self.stats.ops_seen += 1
        if st == DIVERGE:
            self.stats.divergences += 1
        if self._dirty:
            self.flush()

    def on_boundary(self, kind: str) -> None:
        """Segment-boundary marker from the HSA/memmgr layers.

        Pool allocations, SDMA copies and memory-manager traffic mark
        phase boundaries (init, Copy-mode storage churn): flush deferred
        state and disarm every tracker so detection restarts cleanly.
        """
        self.stats.boundary_events += 1
        if self._dirty:
            self.flush()
        for tr in self.trackers.values():
            tr.disarm()

    # ------------------------------------------------------------------
    # guards
    # ------------------------------------------------------------------
    def _ready(self) -> bool:
        """Whole-engine preconditions for replaying one operation.

        The event queue must be empty (no other runnable process — their
        float adds would interleave with ours) and both shared resources
        idle, so the operation's event path would run uncontended from
        start to finish.  A pending zero-value charge cannot be settled
        exactly (the engine's ``if pending:`` guards skip 0.0), so it
        forces a fallback.
        """
        env = self.env
        if env._pending:
            env._settle()
        elif env._pending_n:
            return False
        if env._queue:
            return False
        if self.lock._in_use or self.queues._in_use:
            return False
        if self.is_eager and self.mm_lock._in_use:
            return False
        if self.rt.recorder is not None or self.table.observer is not None:
            return False
        return True

    def _all_resident(self, ranges) -> bool:
        """True when every range is fully GPU-resident (no XNACK faults,
        no prefault installs).  Memoized per page-table epoch."""
        pt = self.gpu_pt
        stamp = (pt.install_count, pt.evict_count)
        if stamp != self._pt_stamp:
            self._resident.clear()
            self._pt_stamp = stamp
        res = self._resident
        missing = self.driver.has_missing_pages
        for rng in ranges:
            key = (rng.start, rng.nbytes)
            if key not in res:
                if missing((rng,)):
                    return False
                res.add(key)
        return True

    def _maps_resident(self, maps) -> bool:
        """:meth:`_all_resident` over a clause list's buffer ranges,
        without materializing the range list (the per-target hot path)."""
        pt = self.gpu_pt
        stamp = (pt.install_count, pt.evict_count)
        if stamp != self._pt_stamp:
            self._resident.clear()
            self._pt_stamp = stamp
        res = self._resident
        missing = self.driver.has_missing_pages
        for clause in maps:
            rng = clause.buffer.range
            key = (rng.start, rng.nbytes)
            if key not in res:
                if missing((rng,)):
                    return False
                res.add(key)
        return True

    def _fallback(self, st: int) -> None:
        if st == DIVERGE:
            self.stats.divergences += 1
        else:
            self.stats.guard_fallbacks += 1
        if self._dirty:
            self.flush()

    # ------------------------------------------------------------------
    # replayable operations
    # ------------------------------------------------------------------
    def enter_data(self, tid: int, maps) -> bool:
        """Try to macro-execute one ``target enter data``; False = event path."""
        tr = self._last_tr if tid == self._last_tid else self._tracker(tid)
        prog = tr.program
        if prog is not None:
            exp = prog[tr.pos]
            if (
                len(exp) == 2
                and exp[0] == "enter"
                and _match_clauses(exp[1], maps)
            ):
                pos = tr.pos + 1
                tr.pos = 0 if pos == len(prog) else pos
                tr.streak += 1
                self.stats.ops_seen += 1
                if not self._ready() or (
                    self.is_eager
                    and not self._all_resident([c.buffer.range for c in maps])
                ):
                    self._fallback(MATCH)
                    return False
                self._replay_enters(maps)
                self.stats.ops_replayed += 1
                return True
        st = tr.advance(("enter", _clause_token(maps)))
        self.stats.ops_seen += 1
        self._fallback(st)
        return False

    def exit_data(self, tid: int, maps) -> bool:
        """Try to macro-execute one ``target exit data``; False = event path."""
        tr = self._last_tr if tid == self._last_tid else self._tracker(tid)
        prog = tr.program
        if prog is not None:
            exp = prog[tr.pos]
            if (
                len(exp) == 2
                and exp[0] == "exit"
                and _match_clauses(exp[1], maps)
            ):
                pos = tr.pos + 1
                tr.pos = 0 if pos == len(prog) else pos
                tr.streak += 1
                self.stats.ops_seen += 1
                if not self._ready():
                    self._fallback(MATCH)
                    return False
                self._replay_exits(maps)
                self.stats.ops_replayed += 1
                return True
        st = tr.advance(("exit", _clause_token(maps)))
        self.stats.ops_seen += 1
        self._fallback(st)
        return False

    def target(self, tid: int, name: str, compute_us: float, maps, fn,
               globals_used):
        """Try to macro-execute one synchronous ``target`` region.

        Returns the :class:`KernelRecord` on success, None to fall back.
        """
        tr = self._last_tr if tid == self._last_tid else self._tracker(tid)
        prog = tr.program
        matched = False
        if prog is not None:
            exp = prog[tr.pos]
            if (
                len(exp) == 5
                and exp[0] == "target"
                and exp[1] == name
                and exp[2] == compute_us
                and _match_clauses(exp[3], maps)
                and len(exp[4]) == len(globals_used)
                and (
                    not globals_used
                    or all(g.name == n for g, n in zip(globals_used, exp[4]))
                )
            ):
                pos = tr.pos + 1
                tr.pos = 0 if pos == len(prog) else pos
                tr.streak += 1
                matched = True
        if not matched:
            st = tr.advance((
                "target",
                name,
                compute_us,
                _clause_token(maps),
                tuple(g.name for g in globals_used),
            ))
            self.stats.ops_seen += 1
            self._fallback(st)
            return None
        self.stats.ops_seen += 1
        rt = self.rt
        usm_globals = self.is_usm and bool(globals_used)
        if not self._ready() or rt.kernel_cost_adjuster is not None:
            self._fallback(MATCH)
            return None
        if usm_globals:
            resident = self._all_resident(
                [c.buffer.range for c in maps]
                + [g.range for g in globals_used]
            )
        else:
            resident = self._maps_resident(maps)
        if not resident:
            self._fallback(MATCH)
            return None

        # ---- implicit map-enter --------------------------------------
        self._replay_enters(maps)
        # ---- kernel dispatch + completion wait -----------------------
        env = self.env
        queues = self.queues
        args = {c.buffer.name: c.buffer.payload for c in maps}
        if globals_used:
            policy = self.policy
            gviews = {g.name: policy.resolve_global(g) for g in globals_used}
            if usm_globals:
                compute_us = compute_us + len(gviews) * self.usm_indirection_us
        else:
            gviews = {}
        self.hsa.kernels_dispatched += 1
        t_submit = env._now
        # six events per synchronous target: kernel-process bootstrap,
        # uncontended queue acquire, fused kernel charge (settled at
        # release), completion signal, kernel-process terminal event and
        # the post-wait base charge — batched here (pure int adds)
        env._event_count += 6
        if t_submit > queues._last_change:
            queues._last_change = t_submit
        dur = (self.dispatch_us + compute_us) * self.scale
        t_end = t_submit + dur
        if fn is not None:
            fn(args, gviews)
        dt = t_end - t_submit  # NOT ``dur``: (a+b)-a is not bitwise b
        if dt > 0.0:
            self._d_queues.append(dt)
            queues._last_change = t_end
        rec = self._KernelRecord(
            name=name,
            submit_us=t_submit,
            start_us=t_submit,
            end_us=t_end,
            compute_us=compute_us,
            fault_stall_us=0.0,
            n_faults=0,
        )
        if self._kt.enabled:
            rt._on_kernel_complete(rec)
        else:
            # inlined completion bookkeeping (the zero fault-stall/fault-
            # count adds are exact no-ops and are skipped)
            ledger = self.ledger
            ledger.n_kernels += 1
            ledger.kernel_compute_us += compute_us
        # the post-wait base charge is a real timeout: the kernel
        # process's terminal event shares the completion timestamp
        env._now = t_end + self.wait_base
        # ledger.wait_us and the traced scacquire span are the same
        # ``env.now - t0`` value in the event path; one deferral list
        # feeds both at flush
        self._dt_wait.append(env._now - t_submit)
        self._dirty = True
        # ---- implicit map-exit ---------------------------------------
        self._replay_exits(maps)
        self.stats.ops_replayed += 1
        return rec

    # ------------------------------------------------------------------
    # replay mirrors (exact event-path arithmetic)
    # ------------------------------------------------------------------
    def _replay_enters(self, maps) -> None:
        """Mirror of ``ZeroCopyPolicy.map_enter_all`` (+ Eager prefault).

        Present-table operations are inlined (``_ready`` guarantees no
        observer is attached, so ``lookup``/``insert``'s ``_notify`` calls
        are no-ops); the error paths route back through the real table
        methods so exceptions stay identical.
        """
        env = self.env
        table = self.table
        entries = table._entries
        lock = self.lock
        zc = self.zc_us
        d_lock = self._d_lock
        delete, release = self._DELETE, self._RELEASE
        eager = self.is_eager
        PresentEntry = self._PresentEntry
        self._dirty = True
        # clock / lock-stamp / counters run in locals and are written back
        # once; the ``finally`` keeps error-path state identical to the
        # per-clause event path (the raising clause has already advanced
        # the clock and its ledger count, exactly as ``map_enter_all``
        # would have)
        now = env._now
        lc = lock._last_change
        n = 0
        try:
            for clause in maps:
                kind = clause.kind
                if kind is release or kind is delete:
                    raise self._MappingError(f"map({kind.value}) is exit-only")
                buf = clause.buffer
                if buf.freed:
                    buf.check_alive()
                n += 1
                if now > lc:  # uncontended acquire accounting
                    lc = now
                t1 = now + zc
                dt = t1 - now
                if dt > 0.0:  # release accounting while held
                    d_lock.append(dt)
                    lc = t1
                now = t1
                start = buf.range.start
                entry = entries.get(start)
                if entry is None:
                    entries[start] = PresentEntry(
                        host=buf, device=None, refcount=1
                    )
                    ne = len(entries)
                    if ne > table.peak_entries:
                        table.peak_entries = ne
                elif entry.host is buf:
                    entry.refcount += 1
                else:
                    table.lookup(buf)  # raises the collision MappingError
                if eager:
                    now = self._replay_prefault(buf.range, now)
        finally:
            env._now = now
            # acquire event + fused map-call charge (+ fused syscall
            # charge per Eager prefault)
            env._event_count += 3 * n if eager else 2 * n
            lock._last_change = lc
            self.ledger.n_map_enters += n

    def _replay_exits(self, maps) -> None:
        """Mirror of ``ZeroCopyPolicy.map_exit_all`` (table ops inlined)."""
        env = self.env
        table = self.table
        entries = table._entries
        lock = self.lock
        zc = self.zc_us
        d_lock = self._d_lock
        delete = self._DELETE
        self._dirty = True
        now = env._now
        lc = lock._last_change
        n = 0
        try:
            for clause in maps:
                buf = clause.buffer
                if buf.freed:
                    buf.check_alive()
                n += 1
                if now > lc:
                    lc = now
                t1 = now + zc
                dt = t1 - now
                if dt > 0.0:
                    d_lock.append(dt)
                    lc = t1
                now = t1
                start = buf.range.start
                entry = entries.get(start)
                if (
                    entry is None
                    or entry.host is not buf
                    or entry.refcount <= 0
                ):
                    # absent / collision / underflow: identical error paths
                    table.release(buf, delete=clause.kind is delete)
                    raise AssertionError("unreachable")  # pragma: no cover
                if clause.kind is delete:
                    entry.refcount = 0
                else:
                    entry.refcount -= 1
                if entry.refcount == 0:
                    del entries[start]
        finally:
            env._now = now
            env._event_count += 2 * n
            lock._last_change = lc
            self.ledger.n_map_exits += n

    def _replay_prefault(self, rng, now: float) -> float:
        """Mirror of ``EagerMapsPolicy._post_enter``'s verified fast path.

        Only reached when the range is fully resident, so the driver
        prefault is pure verification: no installs, no RNG draws, and the
        syscall duration reduces to the deterministic expression below.
        Runs on the caller's local clock (``now`` in → new ``now`` out);
        the caller accounts the fused syscall charge's event.
        """
        n_present = rng.n_pages(self.page_size)
        self.syscalls.invocations += 1
        work = n_present * self.verify_us
        dur = (self.sys_base + (self.pf_extra + work)) * self.scale
        self._d_sys.append(dur)
        t1 = now + dur
        self._dt_svm.append(dur)
        self._d_prefault.append(t1 - now)
        return t1

    # ------------------------------------------------------------------
    # deferred-accumulator flush
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Fold every deferred float list into its live accumulator.

        Called before any event-path operation can touch the same
        accumulators (pass-through notes, guard fallbacks, divergences,
        boundary markers) and once after the run completes — so the
        in-order addition chain each accumulator sees is identical to
        pure event-by-event execution.
        """
        if not self._dirty:
            return
        self._dirty = False
        self.stats.flushes += 1
        ledger = self.ledger
        if self._dt_wait:
            # the scacquire deferral list doubles as the wait_us list:
            # both are ``env.now - t0`` with the same ``t0`` on the event
            # path, hence bitwise-identical contents (cleared below by
            # the trace fold)
            ledger.wait_us = _acc(ledger.wait_us, self._dt_wait)
        if self._d_prefault:
            ledger.prefault_us = _acc(ledger.prefault_us, self._d_prefault)
            self._d_prefault.clear()
        if self._d_sys:
            sysm = self.syscalls
            sysm.total_us = _acc(sysm.total_us, self._d_sys)
            self._d_sys.clear()
        if self._d_lock:
            lock = self.lock
            lock._busy_time = _acc(lock._busy_time, self._d_lock)
            self._d_lock.clear()
        if self._d_queues:
            queues = self.queues
            queues._busy_time = _acc(queues._busy_time, self._d_queues)
            self._d_queues.clear()
        stats = self.trace.stats
        CallStats = None
        for name, vals in self._d_trace.items():
            if not vals:
                continue
            st = stats.get(name)
            if st is None:
                if CallStats is None:
                    from ..trace.hsa_trace import CallStats
                st = CallStats()
                stats[name] = st
            st.count += len(vals)
            st.total_us = _acc(st.total_us, vals)
            vals.clear()


# ---------------------------------------------------------------------------
# declared periodicity from the MapCost IR
# ---------------------------------------------------------------------------

#: memoized ``declared_period`` results keyed by workload class + scalar
#: attributes.  The hint only tunes *when* replay engages — a stale or
#: wrong hint can never affect simulated results — so memoizing on the
#: scalar configuration surface is safe even if a complex attribute were
#: to change the extracted IR.
_PERIOD_MEMO: Dict[tuple, Optional[int]] = {}


def _period_memo_key(workload) -> Optional[tuple]:
    import enum

    try:
        attrs = vars(workload)
    except TypeError:
        return None
    scalars = tuple(sorted(
        (k, v) for k, v in attrs.items()
        if isinstance(v, (int, float, str, bool, enum.Enum, type(None)))
    ))
    return (type(workload), scalars)


def declared_period(workload) -> Optional[int]:
    """Operation count of the workload's dominant steady loop, or None.

    Uses the MapCost static extractor: a top-level ``Loop(trips=N)`` node
    whose body folds to a fixed operation count declares the workload's
    periodicity, letting the tracker arm after a single period instead of
    two.  Any imprecision (branches, unresolved loops, extraction errors)
    degrades to None — auto-detection remains the ground truth.
    """
    key = _period_memo_key(workload)
    if key is not None and key in _PERIOD_MEMO:
        return _PERIOD_MEMO[key]
    period = _declared_period_uncached(workload)
    if key is not None:
        if len(_PERIOD_MEMO) > 256:
            _PERIOD_MEMO.clear()
        _PERIOD_MEMO[key] = period
    return period


def _declared_period_uncached(workload) -> Optional[int]:
    try:
        from ..check.static import ir as _ir
        from ..check.static.extract import extract_workload

        wir = extract_workload(workload)
    except Exception:
        return None
    counted = (
        _ir.AllocOp, _ir.FreeOp, _ir.EnterOp, _ir.ExitOp, _ir.TargetOp,
        _ir.WaitOp, _ir.UpdateOp, _ir.GlobalSyncOp,
    )
    silent = (_ir.HostWriteOp, _ir.OutputOp, _ir.ReturnNode)

    def count(seq) -> Optional[int]:
        n = 0
        for node in seq.items:
            if isinstance(node, counted):
                n += 1
            elif isinstance(node, silent):
                continue
            elif isinstance(node, _ir.Loop):
                if node.trips is None:
                    return None
                inner = count(node.body)
                if inner is None:
                    return None
                n += node.trips * inner
            else:  # Branch or unknown node: imprecise
                return None
        return n

    best: Optional[int] = None
    best_total = 0
    try:
        threads = wir.threads
    except Exception:
        return None
    for prog in threads:
        for node in prog.body.items:
            if not isinstance(node, _ir.Loop) or node.trips is None:
                continue
            period = count(node.body)
            if period is None or not 1 <= period <= MAX_PERIOD:
                continue
            total = node.trips * period
            if total > best_total:
                best_total = total
                best = period
    return best

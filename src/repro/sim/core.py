"""Deterministic discrete-event simulation engine.

This is the substrate every other subsystem runs on.  It is a compact,
from-scratch engine in the style of SimPy: an :class:`Environment` owns a
priority queue of scheduled events, a :class:`Process` wraps a Python
generator that ``yield``\\ s events, and composite events (:class:`AllOf`,
:class:`AnyOf`) build barriers.

Design constraints that shaped this module:

* **Determinism.**  Two events scheduled for the same simulated time fire in
  schedule order (a monotonically increasing sequence number breaks ties).
  There is no wall-clock anywhere; repeated runs are bit-identical.
* **Throughput.**  QMCPack full-fidelity runs push a few million events
  through the queue, so the hot path (schedule/pop/callback) avoids
  allocation beyond the event objects themselves and uses ``heapq`` on
  plain tuples.
* **Debuggability.**  Failures inside a process propagate to whoever waits
  on it, and unhandled failures abort :meth:`Environment.run` with the
  original traceback.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for misuse of the engine (e.g. re-triggering an event)."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event states.
PENDING = 0
TRIGGERED = 1  # scheduled, sitting in the queue
PROCESSED = 2  # callbacks have run


class Event:
    """A single occurrence that processes can wait on.

    An event starts *pending*.  Calling :meth:`succeed` or :meth:`fail`
    *triggers* it: the environment schedules it (optionally after a delay)
    and, when its time arrives, runs all registered callbacks exactly once.
    """

    __slots__ = ("env", "callbacks", "_state", "_value", "_ok")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: List[Callable[["Event"], None]] = []
        self._state = PENDING
        self._value: Any = None
        self._ok = True

    # -- inspection ------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._state >= TRIGGERED

    @property
    def processed(self) -> bool:
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        """Whether the event succeeded. Only meaningful once triggered."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._state == PENDING:
            raise SimulationError("event value read before it was triggered")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        if self._state != PENDING:
            raise SimulationError("event already triggered")
        self._state = TRIGGERED
        self._value = value
        self._ok = True
        self.env._schedule(self, delay)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        if self._state != PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() expects an exception instance")
        self._state = TRIGGERED
        self._value = exc
        self._ok = False
        self.env._schedule(self, delay)
        return self

    # -- callback plumbing -------------------------------------------------
    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register ``fn`` to run when the event fires.

        If the event was already processed the callback runs immediately;
        this keeps "wait on an already-completed operation" race-free.
        """
        if self._state == PROCESSED:
            fn(self)
        else:
            self.callbacks.append(fn)

    def _process(self) -> None:
        self._state = PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for fn in callbacks:
            fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = {PENDING: "pending", TRIGGERED: "triggered", PROCESSED: "processed"}
        return f"<{type(self).__name__} {state[self._state]} at t={self.env.now}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated microseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._state = TRIGGERED
        self._value = value
        env._schedule(self, delay)


class Process(Event):
    """Wraps a generator; itself an event that fires when the generator ends.

    The generator yields :class:`Event` instances.  When a yielded event
    succeeds, its value is sent back into the generator; when it fails, the
    exception is thrown into the generator (giving it a chance to handle
    failure).  The process event's value is the generator's return value.
    """

    __slots__ = ("_gen", "_waiting_on", "name")

    def __init__(self, env: "Environment", gen: Generator, name: str = ""):
        if not hasattr(gen, "send"):
            raise TypeError(f"Process expects a generator, got {type(gen)!r}")
        super().__init__(env)
        self._gen = gen
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(gen, "__name__", "process")
        # Bootstrap: start executing at the current time.
        init = Event(env)
        init.succeed()
        init.add_callback(self._resume)

    @property
    def is_alive(self) -> bool:
        return self._state == PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self.name!r}")
        target = self._waiting_on
        if target is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        self._waiting_on = None
        wakeup = Event(self.env)
        wakeup.fail(Interrupt(cause))
        wakeup.add_callback(self._resume)

    def _resume(self, trigger: Event) -> None:
        # Iterative resume loop: if the yielded event is already processed we
        # feed its value straight back in rather than recursing through
        # add_callback — a process draining a long list of completed signals
        # must not grow the Python stack.
        while True:
            self._waiting_on = None
            try:
                if trigger.ok:
                    nxt = self._gen.send(trigger.value)
                else:
                    nxt = self._gen.throw(trigger._value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except Interrupt as exc:
                # An unhandled interrupt terminates the process with failure.
                self.fail(exc)
                return
            except BaseException as exc:
                if self.callbacks or self._anyone_cares():
                    self.fail(exc)
                else:
                    raise
                return
            if not isinstance(nxt, Event):
                raise SimulationError(
                    f"process {self.name!r} yielded {type(nxt).__name__}, expected Event"
                )
            if nxt.env is not self.env:
                raise SimulationError("yielded event belongs to a different Environment")
            if nxt._state == PROCESSED:
                trigger = nxt
                continue
            self._waiting_on = nxt
            nxt.add_callback(self._resume)
            return

    def _anyone_cares(self) -> bool:
        return bool(self.callbacks)


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("events",)

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            ev.add_callback(self._check)

    def _check(self, ev: Event) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every constituent event has fired; value is {event: value}."""

    __slots__ = ("_n_done",)

    def __init__(self, env: "Environment", events: Iterable[Event]):
        self._n_done = 0
        super().__init__(env, events)

    def _check(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev._value)
            return
        self._n_done += 1
        if self._n_done == len(self.events):
            self.succeed({e: e._value for e in self.events})


class AnyOf(_Condition):
    """Fires when the first constituent event fires; value is that event's."""

    __slots__ = ()

    def _check(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev._value)
            return
        self.succeed(ev._value)


class Environment:
    """The simulation clock and event queue.

    Time is a float in **microseconds**.  All scheduling goes through
    :meth:`_schedule`; user code creates events with :meth:`event`,
    :meth:`timeout` and :meth:`process`.
    """

    __slots__ = ("now", "_queue", "_seq", "_event_count")

    def __init__(self, initial_time: float = 0.0):
        self.now: float = float(initial_time)
        self._queue: List[tuple] = []
        self._seq = 0
        self._event_count = 0

    # -- factories --------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "") -> Process:
        return Process(self, gen, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, self._seq, event))

    @property
    def processed_events(self) -> int:
        """Total number of events processed so far (diagnostics)."""
        return self._event_count

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        t, _, event = heapq.heappop(self._queue)
        if t < self.now:
            raise SimulationError("time went backwards; corrupted queue")
        self.now = t
        self._event_count += 1
        event._process()

    def run(self, until: Optional[Any] = None) -> Any:
        """Run until ``until`` fires (an Event), until time ``until`` (a
        number), or until the queue drains (``None``).

        Returns the event's value when ``until`` is an event.
        """
        if isinstance(until, Event):
            stop = until
            while not stop.triggered or not stop.processed:
                if not self._queue:
                    raise SimulationError(
                        f"event queue drained before {stop!r} fired (deadlock?)"
                    )
                self.step()
            if not stop.ok:
                raise stop._value
            return stop._value
        if until is not None:
            horizon = float(until)
            while self._queue and self._queue[0][0] <= horizon:
                self.step()
            self.now = max(self.now, horizon)
            return None
        while self._queue:
            self.step()
        return None

"""Deterministic discrete-event simulation engine.

This is the substrate every other subsystem runs on.  It is a compact,
from-scratch engine in the style of SimPy: an :class:`Environment` owns a
priority queue of scheduled events, a :class:`Process` wraps a Python
generator that ``yield``\\ s events, and composite events (:class:`AllOf`,
:class:`AnyOf`) build barriers.

Design constraints that shaped this module:

* **Determinism.**  Two events scheduled for the same simulated time fire in
  schedule order (a monotonically increasing sequence number breaks ties).
  There is no wall-clock anywhere; repeated runs are bit-identical.
* **Throughput.**  QMCPack full-fidelity runs push a few million events
  through the queue, so the hot path is engineered around three costs:

  - *allocation*: processed :class:`Timeout` and bootstrap :class:`Event`
    objects are recycled through per-environment free lists.  Recycling is
    gated on ``sys.getrefcount`` — an object is only reclaimed when the
    engine holds the sole remaining reference — so user-held events keep
    their historical semantics, and a generation counter stored in every
    heap entry makes any engine-internal stale reference fail loudly
    instead of silently firing a reincarnated event.
  - *heap traffic*: uncontended fixed delays are **fused**.  Modeled code
    yields ``env.charge(us)`` instead of ``env.timeout(us)``; charges
    accumulate in a scalar as long as no other scheduled event falls
    inside the charged window (strict comparison, so exact-time ties
    still interleave exactly as separate timeouts would) and settle —
    one clock jump, no heap event — before anything observable: reading
    ``env.now``, scheduling any event, or suspending on a real event.
    A contended charge falls back to a real per-charge timeout, which is
    byte-for-byte the reference behaviour.
  - *dispatch*: ``run(until=Event)`` inlines the pop/advance/process
    loop with hoisted locals instead of calling :meth:`step` per event.

* **Auditability.**  :class:`ReferenceEnvironment` retains the historical
  one-heap-event-per-delay scheduler (the ``FlatPageTable`` precedent):
  ``charge`` degrades to a real timeout and nothing is recycled or fused.
  Both engines count one processed event per charge, so
  ``processed_events`` — and every simulated-time observable — is
  bit-identical between them; ``repro bench`` pins that equivalence with
  a randomized differential.
* **Debuggability.**  Failures inside a process propagate to whoever waits
  on it, and unhandled failures abort :meth:`Environment.run` with the
  original traceback.
"""

from __future__ import annotations

import heapq
from sys import getrefcount as _getrefcount
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Environment",
    "ReferenceEnvironment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
    "ENGINE_VERSION",
]

#: Bumped whenever engine changes could alter simulated-time arithmetic or
#: event accounting.  Part of the experiment cell-cache key: a cached
#: result can never be served across an engine whose numbers might differ.
#: Version 3 adds the MapWarp macro-execution engine (``repro.sim.macro``):
#: steady-state segments replay outside the event loop, bit-identical to
#: the fused path by construction and pinned by the bench differential.
ENGINE_VERSION = 3


class SimulationError(RuntimeError):
    """Raised for misuse of the engine (e.g. re-triggering an event)."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event states.
PENDING = 0
TRIGGERED = 1  # scheduled, sitting in the queue
PROCESSED = 2  # callbacks have run
RECYCLED = 3   # returned to the environment's free list


class _Charge:
    """Marker yielded by :meth:`Environment.charge`.

    Not an event: the process trampoline consumes it inline (accumulating
    the charged microseconds) without touching the heap.  Yielding it
    anywhere else — e.g. into :class:`AllOf` — fails immediately.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<charge marker (yield only from a Process)>"


_CHARGE = _Charge()

#: free lists are bounded so a one-off burst cannot pin memory forever
_POOL_MAX = 1024


class Event:
    """A single occurrence that processes can wait on.

    An event starts *pending*.  Calling :meth:`succeed` or :meth:`fail`
    *triggers* it: the environment schedules it (optionally after a delay)
    and, when its time arrives, runs all registered callbacks exactly once.
    """

    __slots__ = ("env", "callbacks", "_state", "_value", "_ok", "_era")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: List[Optional[Callable[["Event"], None]]] = []
        self._state = PENDING
        self._value: Any = None
        self._ok = True
        #: generation counter: bumped when the event is recycled, recorded
        #: in every heap entry, checked on pop — stale queue entries for a
        #: recycled event raise instead of firing the new incarnation.
        self._era = 0

    # -- inspection ------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._state == TRIGGERED or self._state == PROCESSED

    @property
    def processed(self) -> bool:
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        """Whether the event succeeded. Only meaningful once triggered."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._state == PENDING:
            raise SimulationError("event value read before it was triggered")
        if self._state == RECYCLED:
            raise SimulationError("stale reference: event was recycled")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        if self._state != PENDING:
            if self._state == RECYCLED:
                raise SimulationError("stale reference: event was recycled")
            raise SimulationError("event already triggered")
        self._state = TRIGGERED
        self._value = value
        self._ok = True
        self.env._schedule(self, delay)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        if self._state != PENDING:
            if self._state == RECYCLED:
                raise SimulationError("stale reference: event was recycled")
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() expects an exception instance")
        self._state = TRIGGERED
        self._value = exc
        self._ok = False
        self.env._schedule(self, delay)
        return self

    # -- callback plumbing -------------------------------------------------
    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register ``fn`` to run when the event fires.

        If the event was already processed the callback runs immediately;
        this keeps "wait on an already-completed operation" race-free.
        """
        if self._state == PROCESSED:
            fn(self)
        elif self._state == RECYCLED:
            raise SimulationError("stale reference: event was recycled")
        else:
            self.callbacks.append(fn)

    def _process(self) -> None:
        self._state = PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for fn in callbacks:
            if fn is not None:  # None = tombstone left by Process.interrupt
                fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = {PENDING: "pending", TRIGGERED: "triggered",
                 PROCESSED: "processed", RECYCLED: "recycled"}
        return f"<{type(self).__name__} {state[self._state]} at t={self.env.now}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated microseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._state = TRIGGERED
        self._value = value
        env._schedule(self, delay)


class Process(Event):
    """Wraps a generator; itself an event that fires when the generator ends.

    The generator yields :class:`Event` instances.  When a yielded event
    succeeds, its value is sent back into the generator; when it fails, the
    exception is thrown into the generator (giving it a chance to handle
    failure).  The process event's value is the generator's return value.

    Generators may also yield the marker returned by
    :meth:`Environment.charge`: the trampoline consumes it inline (see the
    module docstring) and resumes the generator immediately with ``None``
    — exactly the value a plain ``Timeout`` would have delivered.
    """

    __slots__ = ("_gen", "_waiting_on", "_waiting_slot", "_interrupt_ev",
                 "_cb", "name")

    def __init__(self, env: "Environment", gen: Generator, name: str = ""):
        if not hasattr(gen, "send"):
            raise TypeError(f"Process expects a generator, got {type(gen)!r}")
        super().__init__(env)
        self._gen = gen
        self._waiting_on: Optional[Event] = None
        self._waiting_slot = -1
        self._interrupt_ev: Optional[Event] = None
        #: one bound method reused for every registration — avoids a fresh
        #: method object per wait and makes interrupt's tombstone check an
        #: identity test
        self._cb = self._resume
        self.name = name or getattr(gen, "__name__", "process")
        # Bootstrap: start executing at the current time.
        env._bootstrap(self._cb)

    @property
    def is_alive(self) -> bool:
        return self._state == PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Detaching the process from whatever it was waiting on is O(1): the
        registration slot recorded at suspension is tombstoned (set to
        ``None``) instead of searched-and-removed.  Interrupting a process
        whose previous interrupt wakeup is still queued is an error — the
        second wakeup would resume the generator a second time while it is
        already running its interrupt handler (a silent double-resume in
        the historical engine).
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self.name!r}")
        prior = self._interrupt_ev
        if prior is not None and prior._state != PROCESSED:
            raise SimulationError(
                f"process {self.name!r} already has a queued interrupt "
                "wakeup (double interrupt before delivery)"
            )
        target = self._waiting_on
        if target is not None:
            slot = self._waiting_slot
            cbs = target.callbacks
            if 0 <= slot < len(cbs) and cbs[slot] is self._cb:
                cbs[slot] = None  # O(1) tombstone; _process skips it
        self._waiting_on = None
        self._waiting_slot = -1
        wakeup = Event(self.env)
        self._interrupt_ev = wakeup
        wakeup.fail(Interrupt(cause))
        wakeup.add_callback(self._cb)

    def _resume(self, trigger: Event) -> None:
        # Iterative resume loop: if the yielded event is already processed we
        # feed its value straight back in rather than recursing through
        # add_callback — a process draining a long list of completed signals
        # must not grow the Python stack.  Charge markers are consumed in
        # the inner loop without ever suspending the generator.
        env = self.env
        gen = self._gen
        send = gen.send
        while True:
            self._waiting_on = None
            self._waiting_slot = -1
            if trigger is self._interrupt_ev:
                self._interrupt_ev = None
            try:
                nxt = (send(trigger._value) if trigger._ok
                       else gen.throw(trigger._value))
                while nxt is _CHARGE:
                    d = env._charge_val
                    q = env._queue
                    # Uncontended: nothing else scheduled inside the charged
                    # window (strictly — an exact-time tie must interleave in
                    # FIFO order, which needs a real heap event).
                    if not q or q[0][0] > env._now + env._pending + d:
                        env._pending += d
                        env._pending_n += 1
                        nxt = send(None)
                    else:
                        # Contended fallback: one real timeout.  Creating it
                        # settles the accumulator first (via _schedule), so
                        # it lands at exactly the reference engine's time.
                        nxt = env.timeout(d)
                        break
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except Interrupt as exc:
                # An unhandled interrupt terminates the process with failure.
                self.fail(exc)
                return
            except BaseException as exc:
                if self.callbacks or self._anyone_cares():
                    self.fail(exc)
                else:
                    raise
                return
            if not isinstance(nxt, Event):
                raise SimulationError(
                    f"process {self.name!r} yielded {type(nxt).__name__}, expected Event"
                )
            if nxt.env is not env:
                raise SimulationError("yielded event belongs to a different Environment")
            state = nxt._state
            if state == PROCESSED:
                trigger = nxt
                continue
            if state == RECYCLED:
                raise SimulationError(
                    f"process {self.name!r} yielded a recycled event "
                    "(stale reference)"
                )
            # Suspending on a real event: settle fused charges first so the
            # clock the next event fires against is fully advanced.
            if env._pending:
                env._settle()
            self._waiting_on = nxt
            self._waiting_slot = len(nxt.callbacks)
            nxt.callbacks.append(self._cb)
            return

    def _anyone_cares(self) -> bool:
        return bool(self.callbacks)


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("events",)

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            ev.add_callback(self._check)

    def _check(self, ev: Event) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every constituent event has fired; value is {event: value}."""

    __slots__ = ("_n_done",)

    def __init__(self, env: "Environment", events: Iterable[Event]):
        self._n_done = 0
        super().__init__(env, events)

    def _check(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev._value)
            return
        self._n_done += 1
        if self._n_done == len(self.events):
            self.succeed({e: e._value for e in self.events})


class AnyOf(_Condition):
    """Fires when the first constituent event fires; value is that event's."""

    __slots__ = ()

    def _check(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev._value)
            return
        self.succeed(ev._value)


class Environment:
    """The simulation clock and event queue.

    Time is a float in **microseconds**.  All scheduling goes through
    :meth:`_schedule`; user code creates events with :meth:`event`,
    :meth:`timeout`, :meth:`charge` and :meth:`process`.

    Reading :attr:`now` settles any fused-but-unsettled charges of the
    currently executing process, so the clock is always fully advanced at
    every observable point — the fusion invariant the differential bench
    pins.
    """

    __slots__ = ("_now", "_queue", "_seq", "_event_count",
                 "_pending", "_pending_n", "_charge_val",
                 "_timeout_pool", "_event_pool")

    def __init__(self, initial_time: float = 0.0):
        self._now: float = float(initial_time)
        self._queue: List[tuple] = []
        self._seq = 0
        self._event_count = 0
        # fused-charge accumulator (owned by the running process)
        self._pending = 0.0
        self._pending_n = 0
        self._charge_val = 0.0
        # free lists of recycled event objects
        self._timeout_pool: List[Timeout] = []
        self._event_pool: List[Event] = []

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        if self._pending:
            self._settle()
        return self._now

    @now.setter
    def now(self, value: float) -> None:
        if self._pending:
            self._settle()
        self._now = value

    def _settle(self) -> None:
        """Fold accumulated charges into the clock.

        Safe whenever the accumulation invariant holds (no scheduled event
        inside the charged window, maintained by :meth:`charge` and
        :meth:`_schedule`); each fused charge counts as one processed
        event so ``processed_events`` matches the reference engine.
        """
        self._now += self._pending
        self._event_count += self._pending_n
        self._pending = 0.0
        self._pending_n = 0

    # -- factories --------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        pool = self._timeout_pool
        if pool and value is None:
            if delay < 0:
                raise ValueError(f"negative timeout delay: {delay}")
            t = pool.pop()
            t._state = TRIGGERED
            t._ok = True
            t.delay = delay
            self._schedule(t, delay)
            return t
        return Timeout(self, delay, value)

    def charge(self, delay: float):
        """Consume ``delay`` fused microseconds: ``yield env.charge(us)``.

        Semantically identical to ``yield env.timeout(us)`` (including the
        ``None`` value delivered to the generator), but back-to-back
        uncontended charges coalesce into a single clock adjustment with
        no heap traffic.  Under :class:`ReferenceEnvironment` this *is* a
        plain timeout.
        """
        if delay < 0:
            raise ValueError(f"negative charge delay: {delay}")
        self._charge_val = delay
        return _CHARGE

    def process(self, gen: Generator, name: str = "") -> Process:
        return Process(self, gen, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if self._pending:
            self._settle()
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, self._seq, event._era, event))

    def _bootstrap(self, fn: Callable[[Event], None]) -> Event:
        """An immediately-succeeding event carrying a process's first resume
        (recycled through the event free list)."""
        pool = self._event_pool
        if pool:
            ev = pool.pop()
            ev._state = TRIGGERED
            ev._ok = True
            self._schedule(ev, 0.0)
            ev.callbacks.append(fn)
            return ev
        ev = Event(self)
        ev.succeed()
        ev.add_callback(fn)
        return ev

    @property
    def processed_events(self) -> int:
        """Total number of events processed so far (diagnostics).

        Fused charges count one each, so the total matches the reference
        engine event-for-event.
        """
        if self._pending:
            self._settle()
        return self._event_count

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._pending:
            self._settle()
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        t, _seq, era, event = heapq.heappop(self._queue)
        if era != event._era:
            raise SimulationError(
                "stale heap entry: event was recycled while scheduled"
            )
        if t < self._now:
            raise SimulationError("time went backwards; corrupted queue")
        self._now = t
        self._event_count += 1
        event._process()
        # Recycle iff the engine held the only reference (local + arg = 2):
        # user-held events keep their full post-processing semantics.
        cls = event.__class__
        if (cls is Timeout and _getrefcount(event) == 2
                and len(self._timeout_pool) < _POOL_MAX):
            event._state = RECYCLED
            event._era += 1
            event._value = None
            self._timeout_pool.append(event)
        elif (cls is Event and _getrefcount(event) == 2
                and len(self._event_pool) < _POOL_MAX):
            event._state = RECYCLED
            event._era += 1
            event._value = None
            self._event_pool.append(event)

    def run(self, until: Optional[Any] = None) -> Any:
        """Run until ``until`` fires (an Event), until time ``until`` (a
        number), or until the queue drains (``None``).

        Returns the event's value when ``until`` is an event.
        """
        if isinstance(until, Event):
            stop = until
            # Inlined stepping loop: hoists the queue, heap pop, free lists
            # and the refcount probe into locals, and batches the processed
            # counter — per-event method dispatch through step() costs ~25%
            # on charge-light runs.
            q = self._queue
            pop = heapq.heappop
            tpool = self._timeout_pool
            epool = self._event_pool
            getref = _getrefcount
            count = 0
            try:
                while stop._state != PROCESSED:
                    if not q:
                        raise SimulationError(
                            f"event queue drained before {stop!r} fired (deadlock?)"
                        )
                    t, _seq, era, event = pop(q)
                    if era != event._era:
                        raise SimulationError(
                            "stale heap entry: event was recycled while scheduled"
                        )
                    if t < self._now:
                        raise SimulationError("time went backwards; corrupted queue")
                    self._now = t
                    count += 1
                    event._process()
                    cls = event.__class__
                    if (cls is Timeout and getref(event) == 2
                            and len(tpool) < _POOL_MAX):
                        event._state = RECYCLED
                        event._era += 1
                        event._value = None
                        tpool.append(event)
                    elif (cls is Event and getref(event) == 2
                            and len(epool) < _POOL_MAX):
                        event._state = RECYCLED
                        event._era += 1
                        event._value = None
                        epool.append(event)
            finally:
                self._event_count += count
            if not stop.ok:
                raise stop._value
            return stop._value
        if until is not None:
            horizon = float(until)
            while self._queue and self._queue[0][0] <= horizon:
                self.step()
            self.now = max(self.now, horizon)
            return None
        while self._queue:
            self.step()
        return None


class ReferenceEnvironment(Environment):
    """The retained pre-fast-path scheduler (differential reference).

    Every delay is its own heap-scheduled :class:`Timeout` (``charge``
    degrades to one), nothing is recycled, and stepping goes through the
    un-inlined per-event loop.  Kept — like ``FlatPageTable`` — so a
    randomized differential can pin the fast path's equivalence on every
    simulated-time observable, including ``processed_events``.
    """

    __slots__ = ()

    def charge(self, delay: float) -> Timeout:
        # Validation (including delay < 0) happens in Timeout.__init__.
        return Timeout(self, delay)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def _bootstrap(self, fn: Callable[[Event], None]) -> Event:
        ev = Event(self)
        ev.succeed()
        ev.add_callback(fn)
        return ev

    def step(self) -> None:
        t, _seq, _era, event = heapq.heappop(self._queue)
        if t < self._now:
            raise SimulationError("time went backwards; corrupted queue")
        self._now = t
        self._event_count += 1
        event._process()

    def run(self, until: Optional[Any] = None) -> Any:
        if isinstance(until, Event):
            stop = until
            while stop._state != PROCESSED:
                if not self._queue:
                    raise SimulationError(
                        f"event queue drained before {stop!r} fired (deadlock?)"
                    )
                self.step()
            if not stop.ok:
                raise stop._value
            return stop._value
        if until is not None:
            horizon = float(until)
            while self._queue and self._queue[0][0] <= horizon:
                self.step()
            self.now = max(self.now, horizon)
            return None
        while self._queue:
            self.step()
        return None

"""Deterministic named random streams for measurement noise.

Every source of variance in the paper's measurements (OS scheduling jitter
on syscalls, interrupt interference, rare long stalls that produce the
Eager-Maps CoV outliers in §V.A.1) is modeled with an explicit, seeded
random stream.  Streams are derived from a root seed plus a stable string
name, so adding a new noise source never perturbs existing ones — a
requirement for regression-testing calibrated experiment outputs.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["RngHub", "Jitter"]


def _derive_seed(root_seed: int, name: str) -> int:
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class RngHub:
    """Factory of independent, reproducible per-purpose generators."""

    def __init__(self, root_seed: int = 0):
        self.root_seed = int(root_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(_derive_seed(self.root_seed, name))
            self._streams[name] = gen
        return gen

    def fork(self, name: str, index: int) -> "RngHub":
        """A child hub (e.g. one per repetition) with an independent seed."""
        return RngHub(_derive_seed(self.root_seed, f"{name}[{index}]"))


class Jitter:
    """Multiplicative noise model for operation latencies.

    Latencies are scaled by ``exp(N(0, sigma))`` (lognormal around 1), and
    with probability ``tail_p`` an additional heavy-tail stall of
    ``tail_scale`` times an Exp(1) draw is added.  The heavy tail is what
    produces the order-of-magnitude Eager-Maps outlier the paper reports
    for S32 at 8 threads (CoV 4.2): a syscall-heavy configuration
    occasionally eats an OS-interference stall.

    ``sigma=0`` and ``tail_p=0`` make the jitter an exact no-op, which the
    test suite relies on for deterministic latency assertions.
    """

    __slots__ = ("rng", "sigma", "tail_p", "tail_scale_us", "scale")

    def __init__(
        self,
        rng: np.random.Generator,
        sigma: float = 0.0,
        tail_p: float = 0.0,
        tail_scale_us: float = 0.0,
        scale: float = 1.0,
    ):
        if sigma < 0 or not (0.0 <= tail_p <= 1.0) or tail_scale_us < 0 or scale <= 0:
            raise ValueError("invalid jitter parameters")
        self.rng = rng
        self.sigma = sigma
        self.tail_p = tail_p
        self.tail_scale_us = tail_scale_us
        #: correlated per-run factor (machine state: clocks, thermal,
        #: co-located load).  Constant within one simulation, drawn per
        #: run — this is what gives whole-run CoVs of a few percent, as
        #: per-operation noise averages out over ~1e5 operations.
        self.scale = scale

    def apply(self, latency_us: float) -> float:
        """Return the jittered latency; never less than zero."""
        out = latency_us * self.scale
        if self.sigma > 0.0:
            out *= float(np.exp(self.rng.normal(0.0, self.sigma)))
        if self.tail_p > 0.0 and self.rng.random() < self.tail_p:
            out += self.tail_scale_us * float(self.rng.exponential(1.0))
        return out

    @classmethod
    def none(cls) -> "Jitter":
        """A jitter that changes nothing (deterministic runs)."""
        return cls(np.random.default_rng(0), 0.0, 0.0, 0.0)

"""Deterministic discrete-event simulation engine (simpy-like, from scratch).

Public surface:

* :class:`Environment`, :class:`Event`, :class:`Timeout`, :class:`Process`,
  :class:`AllOf`, :class:`AnyOf` — the core engine (``repro.sim.core``).
* :class:`ReferenceEnvironment` — the retained pre-fast-path scheduler
  used by the ``repro bench`` fused-vs-reference differential.
* :class:`MacroEnvironment` — the MapWarp macro-execution engine
  (``repro.sim.macro``): steady-state segment replay above the fused
  scheduler, selected with ``engine="macro"``.
* :class:`Resource`, :class:`Mutex` — contention primitives
  (``repro.sim.resources``).
* :class:`RngHub`, :class:`Jitter` — reproducible noise (``repro.sim.rng``).
"""

from .core import (
    ENGINE_VERSION,
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    ReferenceEnvironment,
    SimulationError,
    Timeout,
)
from .macro import MacroEnvironment
from .resources import Grant, Mutex, Resource
from .rng import Jitter, RngHub

__all__ = [
    "ENGINE_VERSION",
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Grant",
    "Interrupt",
    "Jitter",
    "MacroEnvironment",
    "Mutex",
    "Process",
    "ReferenceEnvironment",
    "Resource",
    "RngHub",
    "SimulationError",
    "Timeout",
]

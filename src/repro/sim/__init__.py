"""Deterministic discrete-event simulation engine (simpy-like, from scratch).

Public surface:

* :class:`Environment`, :class:`Event`, :class:`Timeout`, :class:`Process`,
  :class:`AllOf`, :class:`AnyOf` — the core engine (``repro.sim.core``).
* :class:`Resource`, :class:`Mutex` — contention primitives
  (``repro.sim.resources``).
* :class:`RngHub`, :class:`Jitter` — reproducible noise (``repro.sim.rng``).
"""

from .core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from .resources import Grant, Mutex, Resource
from .rng import Jitter, RngHub

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Grant",
    "Interrupt",
    "Jitter",
    "Mutex",
    "Process",
    "Resource",
    "RngHub",
    "SimulationError",
    "Timeout",
]

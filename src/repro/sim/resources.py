"""Shared-resource primitives for the simulation engine.

Models everything in the stack that serializes concurrent activity:

* :class:`Resource` — a counted resource with FIFO queuing.  Used for GPU
  compute queues (capacity = number of concurrently running kernels the
  hardware sustains for our workloads), SDMA copy engines, and the
  page-fault service unit.
* :class:`Mutex` — capacity-1 convenience wrapper.  Used for the
  libomptarget/ROCr allocation lock that makes Legacy Copy scale poorly
  with host threads (paper §V.A.2).

Requests are context-manager friendly inside processes::

    with (yield res.acquire()) :   # not valid python - use pattern below
        ...

Because generators cannot ``yield`` inside a ``with`` header cleanly, the
idiomatic pattern here is explicit::

    grant = yield res.acquire()
    try:
        ...
    finally:
        res.release(grant)
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from .core import Environment, Event, SimulationError

__all__ = ["Resource", "Mutex", "Grant"]


class Grant:
    """Token proving ownership of one unit of a resource."""

    __slots__ = ("resource", "active")

    def __init__(self, resource: "Resource"):
        self.resource = resource
        self.active = True

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Grant of {self.resource.name!r} active={self.active}>"


class Resource:
    """A counted, FIFO-fair shared resource.

    ``capacity`` units exist; :meth:`acquire` returns an event that fires
    (with a :class:`Grant` value) once a unit is available.  Fairness is
    strict FIFO, which mirrors the in-order servicing of hardware queues
    and keeps the simulation deterministic.
    """

    def __init__(self, env: Environment, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name or f"resource@{id(self):x}"
        self._in_use = 0
        self._waiters: Deque[tuple[Event, Grant]] = deque()
        # occupancy bookkeeping for utilization diagnostics
        self._busy_time = 0.0
        self._last_change = env.now

    # -- stats -------------------------------------------------------------
    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def utilization(self, since: float = 0.0) -> float:
        """Mean fraction of capacity busy since time ``since``."""
        self._account()
        horizon = self.env.now - since
        if horizon <= 0:
            return 0.0
        return self._busy_time / (horizon * self.capacity)

    def _account(self) -> None:
        dt = self.env.now - self._last_change
        if dt > 0:
            self._busy_time += dt * self._in_use
            self._last_change = self.env.now

    # -- acquire/release -----------------------------------------------------
    def acquire(self) -> Event:
        """Return an event firing with a :class:`Grant` when a unit frees."""
        ev = self.env.event()
        grant = Grant(self)
        if self._in_use < self.capacity and not self._waiters:
            self._account()
            self._in_use += 1
            ev.succeed(grant)
        else:
            self._waiters.append((ev, grant))
        return ev

    def try_acquire(self) -> Optional[Grant]:
        """Non-blocking acquire; returns a Grant or None."""
        if self._in_use < self.capacity and not self._waiters:
            self._account()
            self._in_use += 1
            return Grant(self)
        return None

    def release(self, grant: Grant) -> None:
        if grant.resource is not self:
            raise SimulationError("grant released to the wrong resource")
        if not grant.active:
            raise SimulationError("grant released twice")
        grant.active = False
        self._account()
        if self._waiters:
            ev, next_grant = self._waiters.popleft()
            # hand the unit straight over: in_use stays constant
            ev.succeed(next_grant)
        else:
            self._in_use -= 1
            if self._in_use < 0:  # pragma: no cover - internal invariant
                raise SimulationError(f"negative occupancy on {self.name!r}")


class Mutex(Resource):
    """Capacity-1 resource; models a host-side lock."""

    def __init__(self, env: Environment, name: str = ""):
        super().__init__(env, capacity=1, name=name or f"mutex@{id(self):x}")

    @property
    def locked(self) -> bool:
        return self._in_use > 0

"""Command-line interface: regenerate any paper artifact from the shell.

::

    python -m repro fig3   [--sizes 2,8,32] [--threads 1,2,4,8] [--quick] [--jobs N] [--cache]
                           [--engine fast|reference|macro]
    python -m repro fig4
    python -m repro table1 [--quick]
    python -m repro table2 [--reps 4] [--jobs N]
    python -m repro table3
    python -m repro all    [--quick] [--out report.txt]
    python -m repro check [workload|all] [--json] [--no-cross] [--rules]
                          [--static] [--perf] [--place] [--no-sim]
                          [--sarif FILE] [--perf-json FILE]
                          [--place-json FILE] [--topology N]
                          [--placement SPEC] [--baseline FILE]
                          [--write-baseline FILE] [--jobs N]
                          [--fix-dry-run] [--fix-out DIR] [--fix-json FILE]
    python -m repro bench  [--quick] [--jobs N] [--bench-json BENCH.json]
                           [--only scheduler|pagetable|meso|macro|static]
                           [--bench-history DIR]

``check`` runs the MapCheck sanitizer/lint over a bundled workload (or
all of them) and exits 1 if any finding survives — suitable for CI.
``--static`` adds the MapFlow static dataflow analysis; ``--perf`` adds
the MapCost perf lint (MC-W rules) and ``--perf-json FILE`` writes the
static-vs-simulated cost differential (predicted HSA call counts must be
bit-exact); ``--place`` adds the MapPlace affinity lint (MC-A rules) at
the ``--topology N`` / ``--placement SPEC`` analysis point (placement
specs: ``first-touch``, ``interleave``, ``pinned:<home>``) and
``--place-json FILE`` writes the per-socket place differential
(predicted vs. instrumented multi-socket card telemetry); with
``--no-sim`` the static analyses are the only ones and no simulation
runs at all.  ``--sarif`` writes the findings as SARIF 2.1.0.  ``--baseline FILE`` suppresses findings whose fingerprints were
accepted by an earlier ``--write-baseline FILE`` run (suppressed
findings stay in SARIF, carrying ``suppressions``).  For ``check all``,
``--jobs`` fans the workloads out over a process pool with
byte-identical output.

``--fix-dry-run`` switches ``check`` into MapFix mode: for every faulty
corpus workload (or one named corpus entry) it synthesizes candidate
remediations, verifies each in a sandbox (the target finding must
disappear and zero new findings may appear across the full 27-rule
report), ranks accepted fixes by MapCost's predicted per-configuration
cost delta, and prints the verdicts — nothing in the repo is modified.
``--fix-out DIR`` additionally writes one unified-diff patch file per
remediated workload; ``--fix-json FILE`` writes the corpus fix
differential as JSON; ``--sarif`` in fix mode attaches SARIF 2.1.0
``fixes[]`` to the findings.  Exit status 1 if any workload misses its
pinned remediation class.

``--jobs N`` fans the independent (workload, config, repetition) cells
of an experiment out over N worker processes; results are bit-identical
to ``--jobs 1``.  ``--cache`` additionally serves unchanged cells from a
content-addressed on-disk store (``--cache-dir``), so a warm rerun of
fig3/fig4/table2 performs zero simulations; any input change (workload
parameters, cost model, engine version) changes the digest and re-runs
the cell.  ``bench`` times scheduler/pagetable micro-ops, a QMCPack run,
a full ratio experiment and the steady-state macro engine, runs the
fused-vs-reference and macro-vs-fused differentials, writes
``BENCH.json`` plus a timestamped history copy, and exits 1 if any
run-equivalence invariant (never a timing) regresses.  ``--only TIER``
restricts the run to one tier.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .experiments import (
    collect_qmcpack_grid,
    render_fig3,
    render_fig4,
    render_table1,
    render_table2,
    render_table3,
    table1_hsa_calls,
    table2_specaccel,
    table3_overheads,
)
from .workloads import Fidelity

__all__ = ["main"]


def _ints(text: str) -> List[int]:
    return [int(x) for x in text.split(",") if x]


def _progress(msg: str) -> None:
    print(f"  running {msg}", file=sys.stderr, flush=True)


def _cell_cache(args):
    """The on-disk cell cache, or ``None`` when ``--cache`` is off."""
    if not getattr(args, "cache", False):
        return None
    from .experiments.cache import CellCache

    return CellCache(args.cache_dir)


def _fig_grid(args, threads):
    return collect_qmcpack_grid(
        sizes=tuple(args.sizes),
        threads=threads,
        fidelity=Fidelity.BENCH,
        reps=1 if args.quick else args.reps,
        noise=not args.quick and args.reps > 1,
        progress=_progress,
        jobs=args.jobs,
        cache=_cell_cache(args),
        engine=args.engine,
    )


def cmd_fig3(args) -> str:
    return render_fig3(_fig_grid(args, tuple(args.threads)))


def cmd_fig4(args) -> str:
    return render_fig4(_fig_grid(args, (8,)), threads=8)


def cmd_table1(args) -> str:
    fidelity = Fidelity.BENCH if args.quick else Fidelity.FULL
    return render_table1(table1_hsa_calls(fidelity=fidelity, threads=(1, 8)))


def cmd_table2(args) -> str:
    fidelity = Fidelity.BENCH if args.quick else Fidelity.FULL
    result = table2_specaccel(
        reps=2 if args.quick else args.reps,
        fidelity=fidelity,
        progress=_progress,
        jobs=args.jobs,
        cache=_cell_cache(args),
        engine=args.engine,
    )
    return render_table2(result)


def cmd_table3(args) -> str:
    fidelity = Fidelity.BENCH if args.quick else Fidelity.FULL
    return render_table3(table3_overheads(fidelity=fidelity))


def cmd_all(args) -> str:
    parts = [
        cmd_fig3(args),
        cmd_fig4(args),
        cmd_table1(args),
        cmd_table2(args),
        cmd_table3(args),
    ]
    return ("\n\n" + "=" * 72 + "\n\n").join(parts)


def _check_fix(args) -> str:
    """MapFix dry run over the faulty corpus; sets args.exit_code."""
    import json

    from .check.corpus import CORPUS, PERF_CORPUS
    from .check.static.fix import fix_differential, remediate, write_patches

    dynamic = not args.no_sim
    target = args.workload or "all"
    entries = {**CORPUS, **PERF_CORPUS}
    if target == "all":
        diff = fix_differential(dynamic=dynamic, progress=_progress)
        results = list(diff.results.values())
        args.exit_code = 0 if diff.ok else 1
        payload = diff.to_dict()
        body = diff.render()
    else:
        if target not in entries:
            raise SystemExit(
                f"unknown corpus workload {target!r}; fix mode targets the "
                f"faulty corpus: {', '.join(sorted(entries))} or 'all'")
        res = remediate(entries[target], entries[target]().name,
                        dynamic=dynamic)
        results = [res]
        args.exit_code = 0 if res.ok else 1
        payload = res.to_dict()
        body = res.render()
    if args.fix_json:
        with open(args.fix_json, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.fix_json}", file=sys.stderr)
    if args.fix_out:
        written = write_patches(results, args.fix_out)
        print(f"wrote {len(written)} patch file(s) to {args.fix_out}",
              file=sys.stderr)
    if args.sarif:
        from .check.sarif import write_sarif

        write_sarif([r.report for r in results if r.report is not None],
                    args.sarif)
        print(f"wrote {args.sarif}", file=sys.stderr)
    return body


def cmd_check(args) -> str:
    """MapCheck over one bundled workload (or all); sets args.exit_code."""
    import json

    from .check import (
        check_all,
        check_named,
        merge_reports,
        render_rule_table,
        workload_names,
    )

    args.exit_code = 0
    if args.rules:
        return render_rule_table()
    if args.fix_dry_run or args.fix_out or args.fix_json:
        return _check_fix(args)
    if args.no_sim and not (args.static or args.perf or args.place):
        raise SystemExit("--no-sim requires --static, --perf or --place")
    target = args.workload or "all"
    # recording + 3 differential runs per workload: TEST fidelity keeps
    # `check all` in CI territory
    fidelity = Fidelity.TEST
    static = args.static
    dynamic = not args.no_sim
    if target == "all":
        reports = check_all(
            fidelity, cross_check=not args.no_cross, progress=_progress,
            jobs=args.jobs, static=static, dynamic=dynamic, perf=args.perf,
        )
    else:
        if target not in workload_names():
            raise SystemExit(
                f"unknown workload {target!r}; choose from "
                f"{', '.join(workload_names())} or 'all'"
            )
        reports = [check_named(
            target, fidelity, cross_check=not args.no_cross,
            static=static, dynamic=dynamic, perf=args.perf,
        )]
    if args.place:
        from .check.registry import make_workload
        from .check.static.place import PlaceSpec, place_report

        spec = PlaceSpec.parse(args.topology, args.placement)
        names = sorted(workload_names()) if target == "all" else [target]
        for name in names:
            rep = place_report(
                make_workload(name, fidelity), name=name, spec=spec
            )
            rep.workload = f"{name}[place:{spec.label()}]"
            reports.append(rep)
    if args.baseline:
        from .check.baseline import apply_baseline, load_baseline

        stats = apply_baseline(reports, load_baseline(args.baseline))
        print(
            f"baseline {args.baseline}: {stats['suppressed']} of "
            f"{stats['findings']} finding(s) suppressed, "
            f"{stats['stale_fingerprints']} stale fingerprint(s)",
            file=sys.stderr,
        )
    if args.write_baseline:
        from .check.baseline import write_baseline

        n = write_baseline(reports, args.write_baseline)
        print(
            f"wrote {args.write_baseline} ({n} fingerprint(s))",
            file=sys.stderr,
        )
    if any(not r.ok for r in reports):
        args.exit_code = 1
    if args.perf_json:
        from .check.static.cost import cost_differential

        names = sorted(workload_names()) if target == "all" else [target]
        cells = cost_differential(names, fidelity=fidelity)
        with open(args.perf_json, "w") as fh:
            json.dump({
                "ok": all(c.ok for c in cells),
                "cells": [{
                    "workload": c.workload,
                    "config": c.config.value,
                    "predicted": c.prediction.to_dict(),
                    "measured": c.measured,
                    "mismatches": c.mismatches,
                } for c in cells],
            }, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.perf_json}", file=sys.stderr)
        if not all(c.ok for c in cells):
            args.exit_code = 1
    if args.race_json:
        from .check.static.race import race_differential

        result = race_differential(fidelity=fidelity)
        with open(args.race_json, "w") as fh:
            json.dump(result.to_dict(), fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.race_json}", file=sys.stderr)
        print(result.render(), file=sys.stderr)
        if not result.ok:
            args.exit_code = 1
    if args.place_json:
        from .check.static.place import place_differential

        names = sorted(workload_names()) if target == "all" else [target]
        result = place_differential(names, fidelity=fidelity)
        with open(args.place_json, "w") as fh:
            json.dump(result.to_dict(), fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.place_json}", file=sys.stderr)
        # the per-cell table is large; the summary line carries the verdict
        print(result.render().splitlines()[-1], file=sys.stderr)
        if not result.ok:
            args.exit_code = 1
    if args.sarif:
        from .check.sarif import write_sarif

        write_sarif(reports, args.sarif)
        print(f"wrote {args.sarif}", file=sys.stderr)
    if args.json:
        return json.dumps([r.to_dict() for r in reports], indent=2)
    parts = [r.render() for r in reports]
    if len(reports) > 1:
        parts.append(merge_reports(reports))
    return ("\n\n" + "=" * 72 + "\n\n").join(parts)


def cmd_bench(args) -> str:
    """Benchmark harness; writes BENCH.json and gates on equivalence."""
    from .experiments.bench import write_bench

    report = write_bench(
        args.bench_json,
        quick=args.quick,
        jobs=args.jobs if args.jobs and args.jobs > 1 else 4,
        progress=_progress,
        only=args.only,
        history_dir=args.bench_history,
    )
    print(f"wrote {args.bench_json}", file=sys.stderr)
    args.exit_code = 0 if report.ok else 1
    return report.render()


_COMMANDS = {
    "fig3": cmd_fig3,
    "fig4": cmd_fig4,
    "table1": cmd_table1,
    "table2": cmd_table2,
    "table3": cmd_table3,
    "all": cmd_all,
    "check": cmd_check,
    "bench": cmd_bench,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate tables/figures of the SC'24 MI300A "
        "zero-copy paper from the simulation.",
    )
    parser.add_argument("command", choices=sorted(_COMMANDS))
    parser.add_argument(
        "workload", nargs="?", default=None,
        help="for 'check': bundled workload name, or 'all' (default)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="for 'check': emit the report as JSON",
    )
    parser.add_argument(
        "--no-cross", action="store_true",
        help="for 'check': skip the differential runs under the other "
        "three configurations",
    )
    parser.add_argument(
        "--rules", action="store_true",
        help="for 'check': print the MapCheck rule table and exit",
    )
    parser.add_argument(
        "--static", action="store_true",
        help="for 'check': additionally run the MapFlow static dataflow "
        "analysis (abstract interpretation of the workload source; no "
        "simulation needed for its findings)",
    )
    parser.add_argument(
        "--perf", action="store_true",
        help="for 'check': additionally run the MapCost perf lint "
        "(MC-W rules: map churn, redundant maps, fault storms, global "
        "indirection, no-op updates — static, no simulation needed)",
    )
    parser.add_argument(
        "--perf-json", default=None, metavar="FILE",
        help="for 'check': write the MapCost static-vs-simulated cost "
        "differential (predicted HSA call counts, map ops, copy bytes, "
        "fault pages per configuration) as JSON; exits 1 on any "
        "prediction mismatch",
    )
    parser.add_argument(
        "--race-json", default=None, metavar="FILE",
        help="for 'check': run the MapRace static-vs-dynamic race "
        "differential (every dynamic MC-R finding on the faulty corpus "
        "must have a static MC-S20/S21/S22 match; zero static race "
        "findings on every clean workload under all four "
        "configurations) and write it as JSON; exits 1 on any "
        "unmatched race or false-positive cell",
    )
    parser.add_argument(
        "--place", action="store_true",
        help="for 'check': additionally run the MapPlace affinity lint "
        "(MC-A rules: remote first-touch storms, cross-socket map churn, "
        "unpinned hot buffers, link-saturating shadow copies) at the "
        "--topology/--placement analysis point — static, no simulation "
        "needed",
    )
    parser.add_argument(
        "--place-json", default=None, metavar="FILE",
        help="for 'check': run the MapPlace differential (per-socket "
        "predicted counters vs. instrumented multi-socket card telemetry "
        "for every workload x config x (topology, placement) point, plus "
        "the MC-A false-positive gate on the clean registry) and write "
        "it as JSON; exits 1 on any mismatch",
    )
    parser.add_argument(
        "--topology", type=int, default=2, metavar="N",
        help="for 'check' --place: socket count of the analysis point "
        "(default: 2)",
    )
    parser.add_argument(
        "--placement", default="first-touch", metavar="SPEC",
        help="for 'check' --place: placement policy of the analysis "
        "point — first-touch, interleave, or pinned:<home> "
        "(default: first-touch)",
    )
    parser.add_argument(
        "--no-sim", action="store_true",
        help="for 'check' with --static/--perf: skip the instrumented "
        "and differential runs entirely — pure static analysis, zero "
        "simulation events",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="for 'check': suppress findings whose fingerprints appear "
        "in this baseline file (they stay in the SARIF output with a "
        "'suppressions' entry but do not fail the run)",
    )
    parser.add_argument(
        "--write-baseline", default=None, metavar="FILE",
        help="for 'check': record the current findings' fingerprints as "
        "the accepted baseline",
    )
    parser.add_argument(
        "--fix-dry-run", action="store_true",
        help="for 'check': run MapFix over the faulty corpus (or one "
        "named corpus entry): synthesize remediations, verify each in a "
        "sandbox against the full rule catalog, rank by MapCost cost "
        "delta, and report — the repo itself is never modified; with "
        "--no-sim the dynamic acceptance gate is skipped",
    )
    parser.add_argument(
        "--fix-out", default=None, metavar="DIR",
        help="for 'check' fix mode: write one unified-diff patch file "
        "per remediated workload into DIR (implies --fix-dry-run)",
    )
    parser.add_argument(
        "--fix-json", default=None, metavar="FILE",
        help="for 'check' fix mode: write the corpus fix differential "
        "(statuses, verified fixes, per-config cost deltas, refusals) "
        "as JSON (implies --fix-dry-run)",
    )
    parser.add_argument(
        "--sarif", default=None, metavar="FILE",
        help="for 'check': additionally write the findings as SARIF 2.1.0 "
        "(for GitHub code scanning and SARIF viewers)",
    )
    parser.add_argument(
        "--sizes", type=_ints, default=[2, 8, 32, 128],
        help="NiO sizes for the figures (comma separated)",
    )
    parser.add_argument(
        "--threads", type=_ints, default=[1, 2, 4, 8],
        help="thread counts for fig3 (comma separated)",
    )
    parser.add_argument("--reps", type=int, default=4, help="repetitions")
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for experiment fan-out (0 = one per CPU); "
        "results are identical for any value",
    )
    parser.add_argument(
        "--cache", action="store_true",
        help="for fig3/fig4/table2: serve unchanged experiment cells from "
        "the content-addressed on-disk cache (composes with --jobs; a "
        "warm rerun performs zero simulations)",
    )
    parser.add_argument(
        "--cache-dir", default=".repro-cache",
        help="cell-cache directory (default: .repro-cache)",
    )
    parser.add_argument(
        "--engine", default="fast",
        choices=("fast", "reference", "macro"),
        help="simulation engine for fig3/fig4/table2 cells: the fused "
        "fast path (default), the retained reference scheduler, or the "
        "steady-state macro-execution engine — all three produce "
        "bit-identical numbers (gated by 'bench'); only wall clock "
        "differs",
    )
    parser.add_argument(
        "--bench-json", default="BENCH.json",
        help="for 'bench': where to write the JSON results",
    )
    parser.add_argument(
        "--only", default=None, metavar="TIER",
        choices=("scheduler", "pagetable", "meso", "macro", "static"),
        help="for 'bench': run a single tier (scheduler|pagetable|meso|"
        "macro|static) instead of all of them",
    )
    parser.add_argument(
        "--bench-history", default="benchmarks/history", metavar="DIR",
        help="for 'bench': directory receiving a timestamped copy of "
        "every report (empty string disables the history write)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="scaled-down fidelity/repetitions for smoke runs",
    )
    parser.add_argument("--out", default=None, help="write report to a file")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    args.exit_code = 0
    report = _COMMANDS[args.command](args)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(report)
    return args.exit_code

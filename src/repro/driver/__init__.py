"""AMDGPU driver + OS syscall models."""

from .kfd import FaultResult, GpuMemoryError, Kfd, PrefaultResult
from .syscall import SyscallModel

__all__ = [
    "FaultResult",
    "GpuMemoryError",
    "Kfd",
    "PrefaultResult",
    "SyscallModel",
]

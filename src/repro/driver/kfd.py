"""AMDGPU kernel driver model ("KFD"): the GPU side of the page tables.

Implements the three translation-installation mechanisms the paper
distinguishes (§III.B, §IV):

* :meth:`service_xnack_faults` — the XNACK-replay protocol.  A GPU thread
  touching an untranslated page stalls while the driver walks the CPU page
  table and installs the entry into the GPU table.  "This cost is one-off
  per page" — subsequent touches are free.  The cost is charged to the
  running kernel by the OpenMP target layer.
* :meth:`bulk_map_new_memory` — allocation of "device" memory through the
  ROCr pool: the driver allocates HBM frames and installs GPU translations
  in bulk, XNACK-disabled style, so kernels touching pool memory never
  fault (this is why Copy has MI = 0 in Table III).
* :meth:`prefault` — the Eager-Maps path: a host-initiated, privileged
  update that walks the CPU table and inserts any missing entries;
  re-prefaulting present pages still costs a (cheaper) verification pass.

Freeing host memory triggers :meth:`mmu_unmap` (an mmu-notifier analogue):
GPU translations for the range are shot down, which is what forces
re-faulting of 452.ep's re-allocated buffers and spC/bt's per-invocation
stack arrays.

All four mechanisms operate at *run* granularity: the missing portion of
a range is computed as coalesced extents (one ``bisect`` walk), CPU
frames for each extent are gathered in one pass, and GPU translations are
installed or shot down per extent.  Fault counts, per-page counters, and
stall/work microseconds are identical to the historical page-by-page
walk — only the number of Python-level operations changes.

The driver itself never touches the simulation clock: every method
returns *durations* (stall/work microseconds) that the calling layer
charges, which is what lets the HSA facade fuse them through
``env.charge(us)`` without this module knowing about the fast path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..core.params import CostModel
from ..memory.layout import DEVICE_POOL_BASE, AddressRange, align_up
from ..memory.pagetable import MapOrigin, PageTable
from ..memory.physical import PhysicalMemory

__all__ = ["Kfd", "GpuMemoryError", "PrefaultResult", "FaultResult"]


class GpuMemoryError(RuntimeError):
    """GPU accessed untranslated memory with XNACK disabled (fatal on HW)."""


@dataclass(frozen=True)
class PrefaultResult:
    """Outcome of one prefault ioctl."""

    n_new: int
    n_present: int
    work_us: float  #: kernel-side work excluding the syscall base cost


@dataclass(frozen=True)
class FaultResult:
    """Outcome of XNACK servicing for one kernel launch."""

    n_faults: int
    stall_us: float  #: added to the kernel's execution time


class Kfd:
    """Driver state: GPU page table + device-pool VA window."""

    def __init__(
        self,
        cost: CostModel,
        physical: PhysicalMemory,
        cpu_pt: PageTable,
        gpu_pt: PageTable,
        xnack_enabled: bool = True,
    ):
        self.cost = cost
        self.physical = physical
        self.cpu_pt = cpu_pt
        self.gpu_pt = gpu_pt
        self.xnack_enabled = xnack_enabled
        #: optional jitter applied to XNACK stall costs (fault servicing on
        #: real systems has high variance: interrupt coalescing, page-table
        #: walk contention).  Set by ApuSystem when noise is enabled.
        self.stall_jitter = None
        #: optional ``(installed_frames, stall_us) -> stall_us`` hook: the
        #: multi-socket card charges the Infinity Fabric surcharge for
        #: faults resolved to a remote socket's frames here.  ``None`` (the
        #: default) keeps the single-socket cost path byte-identical.
        self.fault_cost_adjuster = None
        self.page_size = cost.page_size
        self._pool_cursor = DEVICE_POOL_BASE
        # counters
        self.xnack_faults_serviced = 0
        self.pages_prefaulted = 0
        self.pages_bulk_mapped = 0
        self.shootdowns = 0

    # -- shared plumbing ----------------------------------------------------
    def _cpu_frames(self, rng: AddressRange, what: str) -> List[int]:
        """CPU-table frames for every page of ``rng``; raises if any page
        has no CPU translation (the GPU cannot replay what the OS never
        mapped)."""
        frames: List[int] = []
        cursor = rng.page_span(self.page_size)[0]
        for start, run_frames, _ in self.cpu_pt.present_runs(rng):
            if start != cursor:
                break
            frames.extend(run_frames)
            cursor = start + len(run_frames) * self.page_size
        if cursor < rng.end:
            raise GpuMemoryError(
                f"{what} 0x{cursor:x} with no CPU translation"
            )
        return frames

    # -- XNACK replay (GPU-initiated) ------------------------------------
    def service_xnack_faults(self, ranges: List[AddressRange]) -> FaultResult:
        """Install translations for every missing page of the given host
        ranges, as a kernel touching them would.  Returns the stall time to
        charge to the kernel.  Raises if XNACK is disabled and a
        translation is missing — on hardware this is a fatal memory
        violation, and catching it in tests guards the configuration
        matrix (Eager Maps must have prefaulted everything).
        """
        n = 0
        installed: List[int] = []
        for rng in ranges:
            for gap in self.gpu_pt.missing_runs(rng):
                if not self.xnack_enabled:
                    raise GpuMemoryError(
                        f"GPU touched unmapped page 0x{gap.start:x} "
                        "with XNACK disabled"
                    )
                frames = self._cpu_frames(gap, "GPU touched page")
                if self.fault_cost_adjuster is not None:
                    installed.extend(frames)
                n += self.gpu_pt.install_range(
                    gap, frames, MapOrigin.XNACK_REPLAY
                )
        self.xnack_faults_serviced += n
        stall = 0.0
        if n:
            stall = self.cost.xnack_kernel_entry_us + n * self.cost.xnack_fault_us_per_page
            if self.stall_jitter is not None:
                stall = self.stall_jitter.apply(stall)
            if self.fault_cost_adjuster is not None:
                stall = self.fault_cost_adjuster(installed, stall)
        return FaultResult(n, stall)

    def count_missing_pages(self, ranges: List[AddressRange]) -> int:
        """How many pages a kernel touching these ranges would fault on."""
        return sum(self.gpu_pt.coverage(rng)[1] for rng in ranges)

    def has_missing_pages(self, ranges: List[AddressRange]) -> bool:
        """Early-exit presence probe: True as soon as any page of any
        range lacks a GPU translation (the Eager-Maps fast/slow path
        decision only needs the boolean, not the count)."""
        return any(self.gpu_pt.coverage(rng)[1] for rng in ranges)

    # -- ROCr pool path (bulk, XNACK-disabled style) -----------------------
    def bulk_map_new_memory(self, nbytes: int) -> Tuple[AddressRange, float]:
        """Allocate fresh driver memory for the ROCr pool.

        Allocates frames, installs GPU translations in bulk (one run),
        and returns the new range plus the driver-side work time
        (per-page: page-table writes + zeroing).
        """
        if nbytes <= 0:
            raise ValueError(f"pool growth must be positive, got {nbytes}")
        size = align_up(nbytes, self.page_size)
        rng = AddressRange(self._pool_cursor, nbytes)
        self._pool_cursor += size
        frames = self.physical.alloc_frames(rng.n_pages(self.page_size))
        n_pages = self.gpu_pt.install_range(rng, frames, MapOrigin.BULK_ALLOC)
        self.pages_bulk_mapped += n_pages
        return rng, n_pages * self.cost.pool_alloc_page_us

    def release_pool_memory(self, rng: AddressRange) -> float:
        """Return pool memory to the driver; GPU translations die.

        One batched evict — no per-page membership test + re-pop."""
        n, frames = self.gpu_pt.evict_range_frames(rng)
        self.physical.free_frames(frames)
        return n * self.cost.pool_release_page_us

    # -- Eager-Maps prefault ioctl -----------------------------------------
    def prefault(self, rng: AddressRange) -> PrefaultResult:
        """Host-initiated GPU page-table prefault over a host range.

        Missing extents are walked in the CPU table and installed; present
        pages cost a (syscall-side) verification.  The caller wraps this
        in a traced ``svm_attributes_set`` syscall.
        """
        n_new = 0
        for gap in self.gpu_pt.missing_runs(rng):
            frames = self._cpu_frames(gap, "prefault of page")
            n_new += self.gpu_pt.install_range(gap, frames, MapOrigin.PREFAULT)
        n_present = rng.n_pages(self.page_size) - n_new
        self.pages_prefaulted += n_new
        work = (
            n_new * self.cost.prefault_page_us
            + n_present * self.cost.prefault_verify_page_us
        )
        return PrefaultResult(n_new, n_present, work)

    # -- mmu notifier ---------------------------------------------------------
    def mmu_unmap(self, rng: AddressRange) -> None:
        """Shoot down GPU translations when host memory is unmapped.

        Frames are owned (and freed) by the OS allocator for host memory;
        the driver only drops its translations.
        """
        n, _ = self.gpu_pt.evict_range_frames(rng)
        self.shootdowns += n

"""System-call cost model.

Eager Maps turns OpenMP mapping into GPU page-table prefaulting, which —
unlike the GPU-initiated XNACK path — "is issued from the host side and
requires supervisor privilege to modify page tables, using a system call"
(§IV.D).  Syscalls are also where OS interference lands: the paper's
Eager-Maps outliers (S32 @ 8 threads, CoV 4.2) are attributed to "random
interference by the operating system" on the prefault path.  The heavy
tail in :class:`~repro.sim.rng.Jitter` is therefore attached here.
"""

from __future__ import annotations

from ..sim import Environment, Jitter

__all__ = ["SyscallModel"]


class SyscallModel:
    """Computes jittered syscall durations and counts invocations."""

    def __init__(self, env: Environment, base_us: float, jitter: Jitter):
        self.env = env
        self.base_us = base_us
        self.jitter = jitter
        self.invocations = 0
        self.total_us = 0.0

    def duration(self, extra_us: float = 0.0) -> float:
        """Duration of one syscall doing ``extra_us`` of kernel-side work."""
        self.invocations += 1
        dur = self.jitter.apply(self.base_us + extra_us)
        self.total_us += dur
        return dur

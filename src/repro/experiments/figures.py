"""Figure regeneration: Fig. 3 and Fig. 4 of the paper.

* **Fig. 3** — one panel per NiO problem size: the Copy/zero-copy
  execution-time ratio as a function of OpenMP host-thread count
  (1, 2, 4, 8), three series (USM, Implicit Z-C, Eager Maps).
* **Fig. 4** — the same data at 8 threads, plotted against problem size.

Both figures come from one data grid, so :func:`collect_qmcpack_grid`
computes it once and the two figure builders slice it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import ZERO_COPY_CONFIGS, RuntimeConfig
from ..core.params import CostModel
from ..workloads.base import Fidelity
from ..workloads.qmcpack import QmcPackNio
from .parallel import ExperimentCell, run_cells
from .runner import RatioResult, assemble_ratio

__all__ = ["QmcPackGrid", "collect_qmcpack_grid", "fig3_series", "fig4_series"]

#: the paper's figure axes
FIG_SIZES = (2, 4, 8, 16, 24, 32, 48, 64, 128)
FIG_THREADS = (1, 2, 4, 8)


@dataclass
class QmcPackGrid:
    """Ratio grid over (size, threads, config) plus CoV bookkeeping."""

    fidelity: Fidelity
    reps: int
    cells: Dict[Tuple[int, int], RatioResult] = field(default_factory=dict)

    def ratio(self, size: int, threads: int, config: RuntimeConfig) -> float:
        return self.cells[(size, threads)].ratio(config)

    def cov(self, size: int, threads: int, config: RuntimeConfig) -> float:
        return self.cells[(size, threads)].cov(config)

    def max_cov(self, config: RuntimeConfig) -> float:
        return max(r.cov(config) for r in self.cells.values())

    def sizes(self) -> List[int]:
        return sorted({s for s, _ in self.cells})

    def threads(self) -> List[int]:
        return sorted({t for _, t in self.cells})


def collect_qmcpack_grid(
    sizes: Sequence[int] = FIG_SIZES,
    threads: Sequence[int] = FIG_THREADS,
    *,
    fidelity: Fidelity = Fidelity.BENCH,
    reps: int = 4,
    noise: bool = True,
    cost: Optional[CostModel] = None,
    configs: Sequence[RuntimeConfig] = ZERO_COPY_CONFIGS,
    progress=None,
    jobs: int = 1,
    seed0: int = 1000,
    cache=None,
    engine: str = "fast",
) -> QmcPackGrid:
    """Run the full QMCPack measurement grid (the data behind Figs. 3+4).

    QMCPack runs 4 repetitions per cell in the paper (§V); ratios use
    steady-state time, matching §V.A.1's note that the figures exclude
    initialization.

    Every ``(size, threads, config, rep)`` cell is independent, so
    ``jobs > 1`` fans the *whole grid* out over a process pool at once
    (not one ratio experiment at a time); results are bit-identical to
    the serial order for any ``jobs``.  ``cache`` (a
    :class:`~repro.experiments.cache.CellCache`) serves unchanged cells
    from disk — a warm rerun regenerates both figures with zero
    simulations.
    """
    grid = QmcPackGrid(fidelity=fidelity, reps=reps)
    all_configs = [RuntimeConfig.COPY] + list(configs)
    cells = []
    for size in sizes:
        for t in threads:
            if progress is not None:
                progress(f"qmcpack S{size} x {t} threads")
            factory = partial(
                QmcPackNio, size=size, n_threads=t, fidelity=fidelity
            )
            cells.extend(
                ExperimentCell(
                    key=(size, t, config, rep),
                    factory=factory,
                    config=config,
                    seed=seed0 + rep,
                    metric="steady_us",
                    noise=noise,
                    cost=cost,
                    engine=engine,
                )
                for config in all_configs
                for rep in range(reps)
            )
    outcomes = run_cells(cells, jobs=jobs, cache=cache)
    for size in sizes:
        for t in threads:
            name = QmcPackNio(size=size, n_threads=t, fidelity=fidelity).name
            grid.cells[(size, t)] = assemble_ratio(
                name,
                all_configs,
                reps,
                outcomes,
                metric="steady_us",
                key=lambda config, rep, s=size, t=t: (s, t, config, rep),
            )
    return grid


def fig3_series(
    grid: QmcPackGrid, size: int
) -> Dict[RuntimeConfig, List[Tuple[int, float]]]:
    """One Fig. 3 panel: ratio vs thread count for a fixed size."""
    out: Dict[RuntimeConfig, List[Tuple[int, float]]] = {}
    for config in ZERO_COPY_CONFIGS:
        out[config] = [
            (t, grid.ratio(size, t, config)) for t in grid.threads()
        ]
    return out


def fig4_series(
    grid: QmcPackGrid, threads: int = 8
) -> Dict[RuntimeConfig, List[Tuple[int, float]]]:
    """Fig. 4: ratio vs problem size at a fixed thread count."""
    out: Dict[RuntimeConfig, List[Tuple[int, float]]] = {}
    for config in ZERO_COPY_CONFIGS:
        out[config] = [
            (s, grid.ratio(s, threads, config)) for s in grid.sizes()
        ]
    return out

"""Experiment execution: repetitions, medians, CoV — the paper's method.

§V: SPECaccel experiments run 8 times, QMCPack 4 times; "the median value
is used to compute ratios and we report the Coefficient of Variation".
:func:`ratio_experiment` reproduces exactly that protocol: N noisy,
independently-seeded simulations per configuration, medians ratioed
against the Copy baseline, CoV per configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence

from ..core.config import RuntimeConfig
from ..core.params import CostModel
from ..core.system import ApuSystem
from ..omp.runtime import OpenMPRuntime, RunResult
from ..trace.stats import RepetitionStats
from ..workloads.base import Workload

__all__ = ["execute", "ratio_experiment", "RatioResult", "WorkloadFactory"]

#: builds a *fresh* workload instance for every run (simulated state,
#: payload arrays and outputs must not leak between repetitions)
WorkloadFactory = Callable[[], Workload]


def execute(
    workload: Workload,
    config: RuntimeConfig,
    *,
    cost: Optional[CostModel] = None,
    seed: int = 0,
    noise: bool = False,
    kernel_trace: bool = False,
    detailed_trace: bool = False,
) -> RunResult:
    """Run one workload under one configuration on a fresh system."""
    c = cost or CostModel()
    if noise:
        c = c.with_noise()
    system = ApuSystem(cost=c, seed=seed, detailed_trace=detailed_trace)
    runtime = OpenMPRuntime(system, config, kernel_trace=kernel_trace)
    prepare = getattr(workload, "prepare", None)
    if prepare is not None:
        prepare(runtime)
    return runtime.run(
        workload.make_body(),
        n_threads=workload.n_threads,
        outputs=workload.outputs.values,
    )


@dataclass
class RatioResult:
    """Outcome of one ratio experiment (one workload, all configurations)."""

    workload_name: str
    metric: str
    baseline: RuntimeConfig
    times: Dict[RuntimeConfig, RepetitionStats] = field(default_factory=dict)

    def ratio(self, config: RuntimeConfig) -> float:
        """median(baseline) / median(config) — >1 means ``config`` wins."""
        return self.times[self.baseline].ratio_of_medians(self.times[config])

    def cov(self, config: RuntimeConfig) -> float:
        return self.times[config].cov

    def ratios(self) -> Dict[RuntimeConfig, float]:
        return {
            cfg: self.ratio(cfg) for cfg in self.times if cfg is not self.baseline
        }

    def summary(self) -> Dict[str, float]:
        out = {}
        for cfg, stats in self.times.items():
            out[f"{cfg.value}_median_us"] = stats.median
            out[f"{cfg.value}_cov"] = stats.cov
            if cfg is not self.baseline:
                out[f"{cfg.value}_ratio"] = self.ratio(cfg)
        return out


def ratio_experiment(
    factory: WorkloadFactory,
    configs: Sequence[RuntimeConfig],
    *,
    baseline: RuntimeConfig = RuntimeConfig.COPY,
    metric: str = "steady_us",
    reps: int = 4,
    noise: bool = True,
    cost: Optional[CostModel] = None,
    seed0: int = 1000,
) -> RatioResult:
    """The paper's measurement protocol for one workload.

    ``metric`` selects :attr:`RunResult.steady_us` (QMCPack figures, which
    report steady-state computation ratios) or :attr:`RunResult.elapsed_us`
    (SPECaccel, where start-up effects are part of the story).
    """
    if baseline not in configs:
        configs = [baseline] + [c for c in configs if c is not baseline]
    first = factory()
    result = RatioResult(
        workload_name=first.name, metric=metric, baseline=baseline
    )
    for config in configs:
        values = []
        for rep in range(reps):
            workload = factory()
            run = execute(
                workload, config, cost=cost, seed=seed0 + rep, noise=noise
            )
            values.append(getattr(run, metric))
        result.times[config] = RepetitionStats.from_values(values)
    return result

"""Experiment execution: repetitions, medians, CoV — the paper's method.

§V: SPECaccel experiments run 8 times, QMCPack 4 times; "the median value
is used to compute ratios and we report the Coefficient of Variation".
:func:`ratio_experiment` reproduces exactly that protocol: N noisy,
independently-seeded simulations per configuration, medians ratioed
against the Copy baseline, CoV per configuration.

Each (configuration, repetition) cell is an independent simulation, so
``ratio_experiment(..., jobs=N)`` fans the cells out over a process pool
(:mod:`repro.experiments.parallel`); ``jobs=1`` is the strictly serial
path and any ``jobs`` value produces bit-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence

from ..core.config import RuntimeConfig
from ..core.params import CostModel
from ..core.system import ApuSystem
from ..omp.runtime import OpenMPRuntime, RunResult
from ..trace.stats import RepetitionStats
from ..workloads.base import Workload

__all__ = [
    "execute",
    "ratio_experiment",
    "assemble_ratio",
    "RatioResult",
    "WorkloadFactory",
]

#: builds a *fresh* workload instance for every run (simulated state,
#: payload arrays and outputs must not leak between repetitions)
WorkloadFactory = Callable[[], Workload]


def execute(
    workload: Workload,
    config: RuntimeConfig,
    *,
    cost: Optional[CostModel] = None,
    seed: int = 0,
    noise: bool = False,
    kernel_trace: bool = False,
    detailed_trace: bool = False,
    engine: str = "fast",
) -> RunResult:
    """Run one workload under one configuration on a fresh system.

    ``engine="reference"`` runs the retained per-timeout scheduler; the
    bench differential uses it to pin the fast path's equivalence.
    """
    c = cost or CostModel()
    if noise:
        c = c.with_noise()
    system = ApuSystem(
        cost=c, seed=seed, detailed_trace=detailed_trace, engine=engine
    )
    runtime = OpenMPRuntime(system, config, kernel_trace=kernel_trace)
    if runtime.macro is not None:
        # MapCost-declared periodicity lets the macro engine arm its
        # segment tracker without waiting out the auto-detect window
        from ..sim.macro import declared_period

        hint = declared_period(workload)
        if hint:
            runtime.macro.hint = hint
    prepare = getattr(workload, "prepare", None)
    if prepare is not None:
        prepare(runtime)
    return runtime.run(
        workload.make_body(),
        n_threads=workload.n_threads,
        outputs=workload.outputs.values,
    )


@dataclass
class RatioResult:
    """Outcome of one ratio experiment (one workload, all configurations)."""

    workload_name: str
    metric: str
    baseline: RuntimeConfig
    times: Dict[RuntimeConfig, RepetitionStats] = field(default_factory=dict)
    #: per-configuration ledger counters summed over repetitions
    #: (deterministic — used by the parallel-equivalence checks)
    ledgers: Dict[RuntimeConfig, Dict[str, float]] = field(default_factory=dict)
    #: total discrete events across every repetition of every config
    sim_events: int = 0

    def ratio(self, config: RuntimeConfig) -> float:
        """median(baseline) / median(config) — >1 means ``config`` wins."""
        return self.times[self.baseline].ratio_of_medians(self.times[config])

    def cov(self, config: RuntimeConfig) -> float:
        return self.times[config].cov

    def ratios(self) -> Dict[RuntimeConfig, float]:
        return {
            cfg: self.ratio(cfg) for cfg in self.times if cfg is not self.baseline
        }

    def summary(self) -> Dict[str, float]:
        out = {}
        for cfg, stats in self.times.items():
            out[f"{cfg.value}_median_us"] = stats.median
            out[f"{cfg.value}_cov"] = stats.cov
            if cfg is not self.baseline:
                out[f"{cfg.value}_ratio"] = self.ratio(cfg)
        return out


def assemble_ratio(
    workload_name: str,
    configs: Sequence[RuntimeConfig],
    reps: int,
    outcomes,
    *,
    baseline: RuntimeConfig = RuntimeConfig.COPY,
    metric: str = "steady_us",
    key=lambda config, rep: (config, rep),
) -> RatioResult:
    """Build a :class:`RatioResult` from completed experiment cells.

    ``outcomes`` maps cell keys to
    :class:`~repro.experiments.parallel.CellOutcome`; ``key`` translates
    ``(config, rep)`` into the caller's cell-key scheme.  Assembly order
    is fixed by ``configs``/``reps``, so results are independent of the
    order the cells actually executed in.
    """
    result = RatioResult(
        workload_name=workload_name, metric=metric, baseline=baseline
    )
    for config in configs:
        outs = [outcomes[key(config, rep)] for rep in range(reps)]
        result.times[config] = RepetitionStats.from_values(
            [o.value for o in outs]
        )
        result.sim_events += sum(o.sim_events for o in outs)
        ledger: Dict[str, float] = {}
        for o in outs:
            for name, v in o.ledger.items():
                ledger[name] = ledger.get(name, 0) + v
        result.ledgers[config] = ledger
    return result


def ratio_experiment(
    factory: WorkloadFactory,
    configs: Sequence[RuntimeConfig],
    *,
    baseline: RuntimeConfig = RuntimeConfig.COPY,
    metric: str = "steady_us",
    reps: int = 4,
    noise: bool = True,
    cost: Optional[CostModel] = None,
    seed0: int = 1000,
    jobs: int = 1,
    progress=None,
    cache=None,
    engine: str = "fast",
) -> RatioResult:
    """The paper's measurement protocol for one workload.

    ``metric`` selects :attr:`RunResult.steady_us` (QMCPack figures, which
    report steady-state computation ratios) or :attr:`RunResult.elapsed_us`
    (SPECaccel, where start-up effects are part of the story).

    ``jobs`` fans the (config, rep) cells out over a process pool; the
    factory must be picklable for ``jobs > 1`` (use ``functools.partial``
    over a workload class, not a lambda) or the runner falls back to the
    serial path with a warning.

    ``cache`` (a :class:`~repro.experiments.cache.CellCache`) serves
    previously computed cells from disk and persists the fresh ones;
    only cache misses are simulated (and fanned out over ``jobs``).
    """
    from .parallel import ExperimentCell, run_cells

    if baseline not in configs:
        configs = [baseline] + [c for c in configs if c is not baseline]
    first = factory()
    cells = [
        ExperimentCell(
            key=(config, rep),
            factory=factory,
            config=config,
            seed=seed0 + rep,
            metric=metric,
            noise=noise,
            cost=cost,
            engine=engine,
        )
        for config in configs
        for rep in range(reps)
    ]
    outcomes = run_cells(cells, jobs=jobs, progress=progress, cache=cache)
    return assemble_ratio(
        first.name, configs, reps, outcomes, baseline=baseline, metric=metric
    )

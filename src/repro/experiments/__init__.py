"""Experiment harness: runners, figure/table regeneration, reporting."""

from .plot import ascii_chart
from .figures import (
    FIG_SIZES,
    FIG_THREADS,
    QmcPackGrid,
    collect_qmcpack_grid,
    fig3_series,
    fig4_series,
)
from .report import (
    render_cost_table,
    render_place_table,
    render_fig3,
    render_fig4,
    render_table1,
    render_table2,
    render_table3,
)
from .bench import BenchEntry, BenchReport, run_bench, write_bench
from .cache import CACHE_SCHEMA, CellCache, cell_digest
from .deepdive import EagerVsIzc, eager_vs_izc_analysis
from .parallel import CellOutcome, ExperimentCell, run_cells
from .runner import RatioResult, assemble_ratio, execute, ratio_experiment
from .tables import (
    PAPER_TABLE2,
    Table1Result,
    Table2Result,
    Table3Result,
    table1_hsa_calls,
    table2_specaccel,
    table3_overheads,
)

__all__ = [
    "BenchEntry",
    "BenchReport",
    "CACHE_SCHEMA",
    "CellCache",
    "cell_digest",
    "CellOutcome",
    "ExperimentCell",
    "FIG_SIZES",
    "FIG_THREADS",
    "PAPER_TABLE2",
    "QmcPackGrid",
    "RatioResult",
    "Table1Result",
    "Table2Result",
    "Table3Result",
    "EagerVsIzc",
    "ascii_chart",
    "assemble_ratio",
    "collect_qmcpack_grid",
    "eager_vs_izc_analysis",
    "execute",
    "fig3_series",
    "fig4_series",
    "ratio_experiment",
    "run_bench",
    "run_cells",
    "write_bench",
    "render_cost_table",
    "render_place_table",
    "render_fig3",
    "render_fig4",
    "render_table1",
    "render_table2",
    "render_table3",
    "table1_hsa_calls",
    "table2_specaccel",
    "table3_overheads",
]

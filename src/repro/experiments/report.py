"""ASCII/markdown rendering of regenerated figures and tables.

Everything the benchmark harness prints flows through here, so the rows
and series appear in the same layout the paper uses (and EXPERIMENTS.md
can be regenerated mechanically).
"""

from __future__ import annotations

from typing import Sequence

from ..core.config import ZERO_COPY_CONFIGS, RuntimeConfig
from .figures import QmcPackGrid, fig3_series, fig4_series
from .tables import PAPER_TABLE2, Table1Result, Table2Result, Table3Result

__all__ = [
    "render_cost_table",
    "render_place_table",
    "render_fig3",
    "render_fig4",
    "render_table1",
    "render_table2",
    "render_table3",
]

_SHORT = {
    RuntimeConfig.COPY: "Copy",
    RuntimeConfig.UNIFIED_SHARED_MEMORY: "USM",
    RuntimeConfig.IMPLICIT_ZERO_COPY: "Implicit Z-C",
    RuntimeConfig.EAGER_MAPS: "Eager Maps",
}


def _rule(width: int = 72) -> str:
    return "-" * width


def render_fig3(grid: QmcPackGrid, sizes: Sequence[int] = ()) -> str:
    """Fig. 3: one block per problem size, ratio vs thread count."""
    sizes = list(sizes) or grid.sizes()
    lines = ["Fig. 3 — Copy/zero-copy steady-state time ratio vs OpenMP threads"]
    for size in sizes:
        lines.append(_rule())
        lines.append(f"NiO S{size}")
        header = "  threads | " + " | ".join(f"{_SHORT[c]:>12}" for c in ZERO_COPY_CONFIGS)
        lines.append(header)
        series = fig3_series(grid, size)
        for i, t in enumerate(grid.threads()):
            row = " | ".join(
                f"{series[c][i][1]:12.2f}" for c in ZERO_COPY_CONFIGS
            )
            lines.append(f"  {t:>7} | {row}")
    return "\n".join(lines)


def render_fig4(grid: QmcPackGrid, threads: int = 8) -> str:
    """Fig. 4: ratio vs problem size at a fixed thread count."""
    lines = [
        f"Fig. 4 — Copy/zero-copy steady-state time ratio vs problem size "
        f"({threads} OpenMP threads)",
        _rule(),
    ]
    series = fig4_series(grid, threads)
    header = "  size | " + " | ".join(f"{_SHORT[c]:>12}" for c in ZERO_COPY_CONFIGS)
    lines.append(header)
    for i, s in enumerate(grid.sizes()):
        row = " | ".join(f"{series[c][i][1]:12.2f}" for c in ZERO_COPY_CONFIGS)
        lines.append(f"  S{s:<4} | {row}")
    return "\n".join(lines)


def render_table1(result: Table1Result) -> str:
    """Table I layout: per thread count, counts + latency ratio."""
    lines = [
        f"Table I — HSA API call statistics, QMCPack NiO S{result.size} "
        f"(Copy vs Implicit Z-C), fidelity={result.fidelity.value}"
    ]
    for threads, rows in sorted(result.rows.items()):
        lines.append(_rule(86))
        lines.append(f"{threads} OpenMP thread(s)")
        lines.append(
            f"  {'ROCr/HSA call':<24}{'Used for':<24}{'Copy #':>12}"
            f"{'Impl Z-C #':>12}{'Lat. ratio':>12}"
        )
        for r in rows:
            lines.append(
                f"  {r.call:<24}{r.used_for:<24}{r.count_a:>12,}"
                f"{r.count_b:>12,}{r.ratio_str():>12}"
            )
    return "\n".join(lines)


def render_table2(result: Table2Result, compare_paper: bool = True) -> str:
    """Table II layout, optionally with the paper's values alongside."""
    benchmarks = list(result.ratios)
    lines = [
        f"Table II — Copy / zero-copy total-time ratios, SPECaccel 2023 "
        f"({result.reps} reps, median)",
        _rule(86),
        "  " + f"{'Configuration':<24}" + "".join(f"{b:>12}" for b in benchmarks),
    ]
    for config in ZERO_COPY_CONFIGS:
        cells = "".join(f"{result.ratios[b][config]:>12.3f}" for b in benchmarks)
        lines.append(f"  {_SHORT[config]:<24}{cells}")
        if compare_paper:
            paper = "".join(
                f"{PAPER_TABLE2[b][config]:>12.3f}" for b in benchmarks
            )
            lines.append(f"  {'  (paper)':<24}{paper}")
    lines.append(f"  max CoV observed: {result.max_cov():.3f} (paper: 0.03)")
    return "\n".join(lines)


def render_cost_table(name: str, predictions) -> str:
    """MapCost predicted per-configuration costs, one row per counter.

    ``predictions`` maps :class:`~repro.core.config.RuntimeConfig` to a
    :class:`~repro.check.static.cost.CostPrediction` (the porting
    advisor's static phase, and the README quickstart, feed this the
    output of ``predict_costs`` — zero simulation events).  Exact
    predictions render as ``=n``; widened ones as ``[lo,hi]``.
    """
    from ..check.static.cost import ALL_KEYS

    configs = list(predictions)
    width = 22 + 16 * len(configs)
    lines = [
        f"MapCost prediction — {name} (static, no simulation)",
        _rule(width),
        "  " + f"{'counter':<20}"
        + "".join(f"{_SHORT[c]:>16}" for c in configs),
    ]
    for key in ALL_KEYS:
        ivs = [predictions[c].interval(key) for c in configs]
        if all(iv.is_zero for iv in ivs):
            continue
        lines.append(
            "  " + f"{key:<20}" + "".join(f"{iv!r:>16}" for iv in ivs)
        )
    return "\n".join(lines)


def render_place_table(name: str, rankings) -> str:
    """MapPlace placement ranking, one row per candidate placement.

    ``rankings`` is a sequence of ``(PlaceSpec, prediction)`` pairs
    (best — fewest predicted remote bytes — first, as produced by the
    porting advisor's placement phase from ``predict_place``; zero
    simulation events).
    """
    width = 24 + 3 * 18
    lines = [
        f"MapPlace placement ranking — {name} (static, no simulation)",
        _rule(width),
        "  " + f"{'placement':<22}"
        + f"{'remote kernel MiB':>18}{'remote faults':>18}{'local pages':>18}",
    ]
    for spec, pred in rankings:
        rkb = pred.interval("remote_kernel_bytes")
        rfp = pred.interval("remote_fault_pages")
        lkp = pred.interval("local_kernel_pages")
        mib = (
            f"={rkb.lo / (1 << 20):.1f}" if rkb.is_exact
            else f"[{rkb.lo / (1 << 20):.1f},"
            + ("inf]" if rkb.hi is None else f"{rkb.hi / (1 << 20):.1f}]")
        )
        lines.append(
            "  " + f"{spec.label():<22}"
            + f"{mib:>18}{rfp!r:>18}{lkp!r:>18}"
        )
    return "\n".join(lines)


def render_table3(result: Table3Result) -> str:
    """Table III layout: orders of magnitude for MM and MI."""
    benchmarks = list(result.rows)
    lines = [
        "Table III — overhead decomposition (µs, orders of magnitude)",
        _rule(86),
        "  "
        + f"{'Configuration':<24}"
        + "".join(f"{b + ' MM':>12}{b + ' MI':>12}" for b in benchmarks),
    ]
    labels = list(next(iter(result.rows.values())))
    for label in labels:
        cells = ""
        for b in benchmarks:
            row = result.rows[b][label]
            cells += f"{row.mm_magnitude:>12}{row.mi_magnitude:>12}"
        lines.append(f"  {label:<24}{cells}")
    return "\n".join(lines)

"""Terminal plotting: ASCII line charts for figure series.

No plotting dependency is available offline, so the figure benchmarks and
examples render their series as compact ASCII charts — enough to *see*
Fig. 3's growth with threads and Fig. 4's decline with problem size.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = ["ascii_chart"]

_MARKERS = "ox+*#@"


def ascii_chart(
    series: Dict[str, List[Tuple[float, float]]],
    *,
    width: int = 60,
    height: int = 14,
    title: str = "",
    y_label: str = "",
    x_label: str = "",
    y_floor: float = None,
) -> str:
    """Render named (x, y) series as an ASCII chart.

    X positions are spaced by rank (categorical axis — problem sizes and
    thread counts are log-ish scales in the paper's figures), y is linear.
    """
    if not series:
        raise ValueError("no series to plot")
    xs = sorted({x for pts in series.values() for x, _ in pts})
    ys = [y for pts in series.values() for _, y in pts]
    if not xs or not ys:
        raise ValueError("empty series")
    lo = min(ys) if y_floor is None else min(min(ys), y_floor)
    hi = max(ys)
    if hi == lo:
        hi = lo + 1.0
    pad = 0.06 * (hi - lo)
    lo, hi = lo - pad, hi + pad

    grid = [[" "] * width for _ in range(height)]
    x_pos = {x: round(i * (width - 1) / max(len(xs) - 1, 1)) for i, x in enumerate(xs)}

    def y_row(y: float) -> int:
        frac = (y - lo) / (hi - lo)
        return (height - 1) - round(frac * (height - 1))

    legend = []
    for (name, pts), marker in zip(series.items(), _MARKERS, strict=False):
        legend.append(f"{marker}={name}")
        for x, y in pts:
            r, c = y_row(y), x_pos[x]
            grid[r][c] = marker if grid[r][c] == " " else "&"

    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        y_at = hi - (hi - lo) * i / (height - 1)
        axis = f"{y_at:7.2f} |"
        lines.append(axis + "".join(row))
    lines.append(" " * 8 + "+" + "-" * width)
    ticks = [" "] * width
    for x, c in x_pos.items():
        label = str(int(x)) if float(x).is_integer() else f"{x:g}"
        start = min(c, width - len(label))  # keep the label on the canvas
        for j, ch in enumerate(label):
            ticks[start + j] = ch
    lines.append(" " * 9 + "".join(ticks) + (f"   {x_label}" if x_label else ""))
    lines.append(" " * 9 + "  ".join(legend) + ("   (&=overlap)" if any(
        "&" in "".join(r) for r in grid) else ""))
    if y_label:
        lines.insert(1 if title else 0, f"  [{y_label}]")
    return "\n".join(lines)

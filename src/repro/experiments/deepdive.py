"""§V.A.4 deep-dive: why Eager Maps trails Implicit Zero-Copy on QMCPack.

The paper quantifies the Eager-vs-IZC trade through four claims:

1. during the first ~hundred kernel launches, Implicit Z-C absorbs fault
   stalls "in the order of tens of milliseconds" that Eager avoids;
2. after the initial phase the difference drops to "milliseconds and
   lower", persisting only through the periodically re-allocated
   host-side reduction arrays;
3. the total first-touch advantage of Eager "sums to less than a second,
   in the order of a tenth of a second";
4. the prefault syscalls (>1.5 M ``svm_attributes_set`` calls) cost
   "a few seconds" over the whole run — more than the advantage buys.

:func:`eager_vs_izc_analysis` reruns the measurement and returns every
quantity, so the claims can be checked mechanically (see the Table I
benchmark and ``tests/test_deepdive.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.config import RuntimeConfig
from ..core.params import CostModel
from ..workloads.base import Fidelity
from ..workloads.qmcpack import QmcPackNio
from .runner import execute

__all__ = ["EagerVsIzc", "eager_vs_izc_analysis"]


@dataclass(frozen=True)
class EagerVsIzc:
    """Quantities behind the §V.A.4 narrative (all µs)."""

    first_n: int
    izc_first_n_stall_us: float     #: fault stalls in the first N launches
    izc_remaining_stall_us: float   #: fault stalls afterwards
    izc_total_stall_us: float       #: Eager's total first-touch advantage
    eager_svm_total_us: float       #: what Eager pays in prefault syscalls
    eager_svm_calls: int
    izc_steady_us: float
    eager_steady_us: float

    @property
    def eager_net_us(self) -> float:
        """Negative = Eager loses overall (the paper's QMCPack finding)."""
        return self.izc_total_stall_us - self.eager_svm_total_us


def eager_vs_izc_analysis(
    *,
    size: int = 2,
    n_threads: int = 1,
    fidelity: Fidelity = Fidelity.FULL,
    first_n: int = 100,
    cost: Optional[CostModel] = None,
) -> EagerVsIzc:
    """Run the §V.A.4 comparison with per-kernel tracing."""
    izc = execute(
        QmcPackNio(size=size, n_threads=n_threads, fidelity=fidelity),
        RuntimeConfig.IMPLICIT_ZERO_COPY,
        cost=cost,
        kernel_trace=True,
    )
    eager = execute(
        QmcPackNio(size=size, n_threads=n_threads, fidelity=fidelity),
        RuntimeConfig.EAGER_MAPS,
        cost=cost,
    )
    head = izc.kernel_trace.total_fault_stall_us(first_n=first_n)
    total = izc.kernel_trace.total_fault_stall_us()
    return EagerVsIzc(
        first_n=first_n,
        izc_first_n_stall_us=head,
        izc_remaining_stall_us=total - head,
        izc_total_stall_us=total,
        eager_svm_total_us=eager.hsa_trace.total_us("svm_attributes_set"),
        eager_svm_calls=eager.hsa_trace.count("svm_attributes_set"),
        izc_steady_us=izc.steady_us,
        eager_steady_us=eager.steady_us,
    )

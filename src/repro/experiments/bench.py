"""``python -m repro bench`` — micro/meso benchmark harness.

Seven tiers, each emitting ``{name, wall_s, sim_events, events_per_s,
engine}`` entries into ``BENCH.json`` (schema ``repro-bench-v4``;
``--only scheduler|pagetable|meso|macro|static`` restricts the run, and
every invocation also appends a timestamped copy of the report under
``benchmarks/history/``):

* **scheduler micro** — a host-thread call-chain workout (fused
  ``env.charge`` chains punctuated by real timeouts) run on the fast
  :class:`~repro.sim.Environment` and on
  :class:`~repro.sim.ReferenceEnvironment` — the events/sec ratio is the
  headline number for the engine fast path;
* **pagetable micro** — a translation workout (OS populate, XNACK fault
  service, prefault verify, bulk pool map/release, free + mmu shootdown)
  driven through the real :class:`~repro.driver.kfd.Kfd` /
  :class:`~repro.memory.os_alloc.OsAllocator` stack, once on the
  run-coalesced :class:`~repro.memory.pagetable.PageTable` and once on
  the historical :class:`~repro.memory.pagetable.FlatPageTable`;
* **meso** — one QMCPack NiO run end-to-end (events/s of the simulation
  engine as a whole);
* **experiment** — a full ``ratio_experiment`` serial vs. ``--jobs N``,
  which doubles as the parallel-equivalence check;
* **cell cache** — a small Fig. 3 grid collected cold then warm through
  a fresh :class:`~repro.experiments.cache.CellCache`;
* **macro** — the steady-state macro engine (``engine="macro"``,
  ``ENGINE_VERSION 3``) vs. the fused engine on a single-thread QMCPack
  run, measured in interleaved rounds so machine-speed drift hits both
  engines equally;
* **static** — the static pipeline over the faulty corpus, per phase
  (extract, abstract interpretation, MapCost prediction, MapRace,
  MapFix remediation) plus an end-to-end ``check all --static --perf
  --no-sim`` pass; gated by the MapFix zero-fix pins.

Wall-clock numbers are hardware-dependent and never gate anything; the
**run-equivalence invariants** do (CI fails on them):

* fused fast-path engine vs. reference scheduler on a randomized
  differential (QMCPack + one SPECaccel workload, several configs):
  final ``env.now``, all ``*_us``/``*_faults`` telemetry, HSA call
  counts/rows, event counts, and functional kernel outputs bit-identical;
* run-table vs. flat-table parity on a randomized operation sequence
  (identical present/missing pages, per-origin histograms, per-page
  install/evict counters);
* ``jobs=N`` ratio-experiment summaries, ledgers, and event counts
  bit-identical to ``jobs=1``;
* the warm cache run performs **zero** simulation cells and reproduces
  the cold run's ratio grid exactly;
* macro engine vs. fused engine: the measured run's full observable
  tuple (``macro_identical``) plus a randomized three-workload ×
  four-configuration differential (``macro_differential``), all
  bit-identical.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional, Tuple

from ..core.config import ZERO_COPY_CONFIGS, RuntimeConfig
from ..core.params import CostModel
from ..driver.kfd import Kfd
from ..memory.layout import AddressRange
from ..memory.os_alloc import OsAllocator
from ..memory.pagetable import FlatPageTable, MapOrigin, PageTable
from ..memory.physical import PhysicalMemory
from ..sim import Environment, Mutex, ReferenceEnvironment
from ..workloads.base import Fidelity
from ..workloads.qmcpack import QmcPackNio
from ..workloads.specaccel import Stencil403
from .runner import execute, ratio_experiment

__all__ = [
    "BenchEntry",
    "BenchReport",
    "run_bench",
    "write_bench",
    "pagetable_parity",
    "engine_differential",
    "macro_differential",
    "BENCH_TIERS",
]

#: ``--only`` tier names.  ``meso`` covers the end-to-end simulation
#: tiers (single QMCPack run, ratio experiment, cell cache); ``macro``
#: is the steady-state macro-engine tier; ``static`` times the static
#: pipeline (extract / interp / cost / race / fix) over the faulty
#: corpus plus a ``check all --static --perf --no-sim`` end-to-end pass.
BENCH_TIERS = ("scheduler", "pagetable", "meso", "macro", "static")


@dataclass(frozen=True)
class BenchEntry:
    """One benchmark measurement (the BENCH.json entry schema).

    ``engine`` names the simulation engine that produced the entry
    (``fast`` / ``reference`` / ``macro``), or ``n/a`` for measurements
    that do not run the event engine at all (pagetable micro-ops).
    """

    name: str
    wall_s: float
    sim_events: int
    events_per_s: float
    engine: str = "fast"

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "wall_s": self.wall_s,
            "sim_events": self.sim_events,
            "events_per_s": self.events_per_s,
            "engine": self.engine,
        }


@dataclass
class BenchReport:
    """Everything one bench invocation produced."""

    quick: bool
    jobs: int
    #: tier filter the run was invoked with (None = all tiers)
    only: Optional[str] = None
    #: UTC timestamp of the run (ISO-8601, set by :func:`run_bench`)
    generated_utc: str = ""
    entries: List[BenchEntry] = field(default_factory=list)
    #: derived ratios (e.g. flat/runs pagetable wall-clock)
    speedups: Dict[str, float] = field(default_factory=dict)
    #: named invariants; *these* gate CI, timing never does
    equivalence: Dict[str, bool] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(self.equivalence.values())

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": "repro-bench-v4",
            "quick": self.quick,
            "jobs": self.jobs,
            "only": self.only,
            "generated_utc": self.generated_utc,
            "entries": [e.to_dict() for e in self.entries],
            "speedups": self.speedups,
            "equivalence": self.equivalence,
        }

    def write_json(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2)
            fh.write("\n")

    def render(self) -> str:
        lines = [
            f"repro bench ({'quick' if self.quick else 'full'}, jobs={self.jobs})",
            "",
            f"  {'benchmark':<34} {'engine':>9} {'wall_s':>9} "
            f"{'events':>10} {'events/s':>12}",
        ]
        for e in self.entries:
            lines.append(
                f"  {e.name:<34} {e.engine:>9} {e.wall_s:>9.4f} "
                f"{e.sim_events:>10d} {e.events_per_s:>12.0f}"
            )
        lines.append("")
        for name, ratio in self.speedups.items():
            lines.append(f"  speedup {name}: {ratio:.2f}x")
        for name, passed in self.equivalence.items():
            lines.append(f"  equivalence {name}: {'PASS' if passed else 'FAIL'}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# scheduler micro tier (fused fast path vs. reference engine)
# ---------------------------------------------------------------------------


def _scheduler_workout(env, chains: int, chain_len: int) -> Tuple[float, int]:
    """A host-thread modeled-call pattern: chains of fixed bookkeeping
    charges around an uncontended lock, punctuated by real waits.

    This is the shape the HSA facade and the policies produce on one
    OpenMP host thread — exactly what ``env.charge`` fusion targets.
    Returns ``(final_now, processed_events)``.
    """
    lock = Mutex(env)

    def worker():
        for i in range(chains):
            for _ in range(chain_len):
                yield env.charge(0.25)
            grant = yield lock.acquire()
            try:
                yield env.charge(0.5)
            finally:
                lock.release(grant)
            if i % 8 == 0:
                yield env.timeout(2.0)

    env.run(env.process(worker(), name="sched-workout"))
    return env.now, env.processed_events


def _bench_scheduler(
    chains: int, chain_len: int
) -> Tuple[List[BenchEntry], Dict[str, float], Dict[str, bool]]:
    entries = []
    walls = {}
    observed = {}
    for label, cls in (("fused", Environment), ("reference", ReferenceEnvironment)):
        env = cls()
        t0 = time.perf_counter()
        observed[label] = _scheduler_workout(env, chains, chain_len)
        wall = time.perf_counter() - t0
        walls[label] = wall
        _, events = observed[label]
        entries.append(
            BenchEntry(
                name=f"scheduler_{label}_micro_{chains}c",
                wall_s=wall,
                sim_events=events,
                events_per_s=events / wall if wall > 0 else 0.0,
                engine="fast" if label == "fused" else "reference",
            )
        )
    speedup = (
        walls["reference"] / walls["fused"] if walls["fused"] > 0 else 0.0
    )
    equivalence = {
        "scheduler_micro_identical": observed["fused"] == observed["reference"]
    }
    return entries, {"scheduler_fused_vs_reference": speedup}, equivalence


def engine_differential(seed: int = 11, quick: bool = False) -> bool:
    """Randomized differential: fused fast-path engine vs. the reference
    scheduler on real workloads.

    QMCPack NiO and one SPECaccel proxy (403.stencil), several runtime
    configurations, randomized per-case seeds.  Every simulated-time
    observable must be bit-identical: final clock, init/steady/elapsed
    times, phase marks, ledger telemetry (``*_us``/fault counts), HSA
    call rows, engine event counts, HBM high-water mark, and the
    functional kernel outputs.
    """
    rnd = random.Random(seed)
    fidelity = Fidelity.TEST
    cases = [
        (partial(QmcPackNio, size=4, n_threads=2, fidelity=fidelity),
         RuntimeConfig.COPY),
        (partial(QmcPackNio, size=4, n_threads=2, fidelity=fidelity),
         RuntimeConfig.IMPLICIT_ZERO_COPY),
        (partial(Stencil403, fidelity=fidelity),
         RuntimeConfig.EAGER_MAPS),
        (partial(Stencil403, fidelity=fidelity),
         RuntimeConfig.UNIFIED_SHARED_MEMORY),
    ]
    if quick:
        cases = cases[1:3]
    for factory, config in cases:
        case_seed = rnd.randrange(1 << 30)
        sides = {}
        for eng in ("fast", "reference"):
            workload = factory()
            run = execute(
                workload, config, seed=case_seed, noise=True, engine=eng
            )
            sides[eng] = _run_observables(run, workload)
        if sides["fast"] != sides["reference"]:
            return False
    return True


# ---------------------------------------------------------------------------
# macro tier (steady-state macro engine vs. fused engine)
# ---------------------------------------------------------------------------


def _run_observables(run, workload) -> Tuple:
    """Every simulated-time observable of one run (for differentials)."""
    import numpy as np

    return (
        run.elapsed_us,
        run.init_us,
        run.steady_us,
        run.sim_events,
        run.peak_hbm_bytes,
        dict(run.marks),
        run.ledger.summary(),
        run.hsa_trace.as_rows(),
        {k: np.asarray(v).tobytes()
         for k, v in sorted(workload.outputs.values.items())},
    )


def macro_differential(seed: int = 13, quick: bool = False) -> bool:
    """Randomized differential: macro engine vs. the fused fast path.

    QMCPack NiO, 403.stencil and 404.lbm under **all four** runtime
    configurations with several randomized seeds each (noise randomized
    too — noisy runs exercise the macro engine's eligibility fallback,
    noiseless runs its replay path).  Every observable must be
    bit-identical: clocks, phase marks, ledger telemetry, HSA call rows,
    event counts, HBM high-water mark and functional kernel outputs.
    """
    from ..workloads.specaccel import Lbm404

    rnd = random.Random(seed)
    fidelity = Fidelity.TEST
    factories = [
        partial(QmcPackNio, size=2, n_threads=1, fidelity=fidelity),
        partial(Stencil403, fidelity=fidelity),
        partial(Lbm404, fidelity=fidelity),
    ]
    n_seeds = 1 if quick else 3
    for factory in factories:
        for config in RuntimeConfig:
            for i in range(n_seeds):
                case_seed = rnd.randrange(1 << 30)
                # first seed per case always runs noiseless (replay
                # engaged); later seeds flip a coin
                noise = bool(rnd.getrandbits(1)) if i else False
                sides = {}
                for eng in ("fast", "macro"):
                    workload = factory()
                    run = execute(
                        workload, config, seed=case_seed, noise=noise,
                        engine=eng,
                    )
                    sides[eng] = _run_observables(run, workload)
                if sides["fast"] != sides["macro"]:
                    return False
    return True


def _bench_macro(
    quick: bool,
) -> Tuple[List[BenchEntry], Dict[str, float], Dict[str, bool]]:
    """Steady-state macro engine vs. the fused engine, interleaved.

    One single-thread QMCPack NiO run per engine per round (the macro
    engine's replayable shape: multi-thread runs keep the event queue
    non-empty and fall back wholesale).  Rounds alternate fused/macro so
    machine-speed drift hits both engines equally; the recorded speedup
    is the best paired-round ratio (the least noise-contaminated
    estimate of the code-speed ratio) with the median alongside.
    """
    size = 8 if quick else 32
    fidelity = Fidelity.TEST if quick else Fidelity.BENCH
    rounds = 2 if quick else 5
    config = RuntimeConfig.IMPLICIT_ZERO_COPY

    def one(engine):
        wl = QmcPackNio(size=size, n_threads=1, fidelity=fidelity)
        t0 = time.perf_counter()
        run = execute(wl, config, seed=0, engine=engine)
        return time.perf_counter() - t0, run, wl

    # warm-up pair (module imports, declared-period memo) — not timed
    one("fast")
    one("macro")
    best = {"fast": float("inf"), "macro": float("inf")}
    ratios = []
    sides = {}
    events = 0
    for _ in range(rounds):
        wf, rf, wlf = one("fast")
        wm, rm, wlm = one("macro")
        events = rf.sim_events
        best["fast"] = min(best["fast"], wf)
        best["macro"] = min(best["macro"], wm)
        if wf > 0 and wm > 0:
            ratios.append(wf / wm)  # same sim_events on both sides
        sides = {
            "fast": _run_observables(rf, wlf),
            "macro": _run_observables(rm, wlm),
        }
    entries = [
        BenchEntry(
            name=f"qmcpack_s{size}_t1_izc_fused",
            wall_s=best["fast"],
            sim_events=events,
            events_per_s=events / best["fast"] if best["fast"] > 0 else 0.0,
            engine="fast",
        ),
        BenchEntry(
            name=f"qmcpack_s{size}_t1_izc_macro",
            wall_s=best["macro"],
            sim_events=events,
            events_per_s=events / best["macro"] if best["macro"] > 0 else 0.0,
            engine="macro",
        ),
    ]
    ratios.sort()
    speedups = {
        "macro_vs_fused": ratios[-1] if ratios else 0.0,
        "macro_vs_fused_median": (
            ratios[len(ratios) // 2] if ratios else 0.0
        ),
    }
    equivalence = {
        "macro_identical": sides.get("fast") == sides.get("macro"),
        "macro_differential": macro_differential(quick=quick),
    }
    return entries, speedups, equivalence


# ---------------------------------------------------------------------------
# cell cache tier (cold vs. warm)
# ---------------------------------------------------------------------------


def _bench_cell_cache(
    jobs: int,
) -> Tuple[List[BenchEntry], Dict[str, float], Dict[str, bool]]:
    """Collect a small Fig. 3 grid cold then warm through a fresh cache."""
    import shutil
    import tempfile

    from .cache import CellCache
    from .figures import collect_qmcpack_grid

    root = tempfile.mkdtemp(prefix="repro-bench-cache-")
    entries = []
    walls = {}
    grids = {}
    caches = {}
    try:
        for label in ("cold", "warm"):
            cache = CellCache(root)
            t0 = time.perf_counter()
            grid = collect_qmcpack_grid(
                sizes=(2,),
                threads=(1, 2),
                fidelity=Fidelity.TEST,
                reps=2,
                noise=True,
                jobs=jobs,
                cache=cache,
            )
            wall = time.perf_counter() - t0
            walls[label] = wall
            grids[label] = grid
            caches[label] = cache
            events = sum(r.sim_events for r in grid.cells.values())
            entries.append(
                BenchEntry(
                    name=f"fig3_cache_{label}",
                    wall_s=wall,
                    sim_events=events,
                    events_per_s=events / wall if wall > 0 else 0.0,
                )
            )
    finally:
        shutil.rmtree(root, ignore_errors=True)
    speedups = {
        "cache_warm_vs_cold": (
            walls["cold"] / walls["warm"] if walls["warm"] > 0 else 0.0
        )
    }
    summaries = {
        label: {
            str(key): ratio.summary()
            for key, ratio in sorted(grid.cells.items())
        }
        for label, grid in grids.items()
    }
    equivalence = {
        # a warm run must simulate nothing: every cell served from disk
        "cache_warm_zero_cells": (
            caches["warm"].misses == 0 and caches["warm"].stores == 0
        ),
        "cache_values_identical": (
            json.dumps(summaries["cold"], sort_keys=True)
            == json.dumps(summaries["warm"], sort_keys=True)
        ),
    }
    return entries, speedups, equivalence


# ---------------------------------------------------------------------------
# pagetable micro tier
# ---------------------------------------------------------------------------


def _translation_workout(table_cls, n_pages: int, iters: int) -> int:
    """Drive every paper mechanism through a fresh driver stack built on
    ``table_cls``; returns the number of page-granular operations."""
    cost = CostModel()
    ps = cost.page_size
    physical = PhysicalMemory(
        total_bytes=max(4 * n_pages, 64) * ps, frame_bytes=ps
    )
    cpu_pt = table_cls(ps, "bench-cpu")
    gpu_pt = table_cls(ps, "bench-gpu")
    kfd = Kfd(cost, physical, cpu_pt, gpu_pt)
    os_alloc = OsAllocator(physical, cpu_pt, on_unmap=kfd.mmu_unmap)
    nbytes = n_pages * ps
    ops = 0
    for _ in range(iters):
        rng = os_alloc.alloc(nbytes)            # OS populate (install)
        kfd.service_xnack_faults([rng])         # XNACK replay (install)
        kfd.prefault(rng)                       # Eager verify pass
        dev, _ = kfd.bulk_map_new_memory(nbytes)  # bulk pool map
        kfd.release_pool_memory(dev)            # bulk evict
        os_alloc.free(rng)                      # evict + mmu shootdown
        ops += 6 * n_pages
    return ops


def _bench_pagetables(
    n_pages: int, iters: int
) -> Tuple[List[BenchEntry], Dict[str, float]]:
    entries = []
    walls = {}
    for label, cls in (("runs", PageTable), ("flat", FlatPageTable)):
        t0 = time.perf_counter()
        ops = _translation_workout(cls, n_pages, iters)
        wall = time.perf_counter() - t0
        walls[label] = wall
        entries.append(
            BenchEntry(
                name=f"pagetable_{label}_micro_{n_pages}p",
                wall_s=wall,
                sim_events=ops,
                events_per_s=ops / wall if wall > 0 else 0.0,
                engine="n/a",
            )
        )
    speedup = walls["flat"] / walls["runs"] if walls["runs"] > 0 else 0.0
    return entries, {"pagetable_runs_vs_flat": speedup}


# ---------------------------------------------------------------------------
# parity invariant (run engine vs. flat reference)
# ---------------------------------------------------------------------------


def _observable_state(pt, probe: AddressRange):
    return (
        len(pt),
        sorted(pt.pages()),
        pt.missing_pages(probe),
        pt.present_pages(probe),
        pt.coverage(probe),
        [(s, f, o.value) for s, f, o in pt.present_runs(probe)],
        [(r.start, r.nbytes) for r in pt.missing_runs(probe)],
        pt.frames_for(probe),
        {o.value: n for o, n in pt.origins_histogram().items()},
        pt.install_count,
        pt.evict_count,
    )


def pagetable_parity(seed: int = 7, rounds: int = 300) -> bool:
    """Randomized differential test: apply one operation sequence to both
    engines and compare every observable after each step."""
    import random

    rnd = random.Random(seed)
    ps = 4096  # small page size keeps arithmetic honest without big loops
    span_pages = 64
    probe = AddressRange(0, span_pages * ps)
    runs = PageTable(ps, "runs")
    flat = FlatPageTable(ps, "flat")
    origins = list(MapOrigin)
    for _step in range(rounds):
        op = rnd.random()
        start = rnd.randrange(span_pages) * ps
        n = rnd.randrange(1, min(9, span_pages - start // ps + 1))
        rng = AddressRange(start, n * ps)
        origin = rnd.choice(origins)
        frames = [rnd.randrange(1 << 20) for _ in range(n)]
        if op < 0.45:
            outcomes = []
            for pt in (runs, flat):
                try:
                    pt.install_range(rng, frames, origin)
                    outcomes.append("ok")
                except KeyError as exc:
                    # errors carry the table name; compare the page only
                    outcomes.append("err:" + str(exc).split(" already")[0])
            if outcomes[0] != outcomes[1]:
                return False
        elif op < 0.75:
            a = runs.evict_range(rng)
            b = flat.evict_range(rng)
            if a != b:
                return False
        elif op < 0.9:
            outcomes = []
            for pt in (runs, flat):
                try:
                    outcomes.append(("pte", pt.evict(start)))
                except KeyError:
                    outcomes.append(("err",))
            if outcomes[0] != outcomes[1]:
                return False
        else:
            na, fa = runs.evict_range_frames(rng)
            nb, fb = flat.evict_range_frames(rng)
            if (na, fa) != (nb, fb):
                return False
        if _observable_state(runs, probe) != _observable_state(flat, probe):
            return False
    return True


# ---------------------------------------------------------------------------
# static-pipeline tier (extract / interp / cost / race / fix + end-to-end)
# ---------------------------------------------------------------------------


def _bench_static(
    quick: bool,
) -> Tuple[List[BenchEntry], Dict[str, float], Dict[str, bool]]:
    """Time the static-analysis pipeline, per phase and end-to-end.

    Per-phase entries walk the whole faulty corpus (the static
    analyses' design target); ``sim_events`` counts the IR ops (or
    op x config cells) each phase processed, so events/s tracks
    analysis throughput the way the engine tiers track event
    throughput.  The end-to-end entry is ``check all --static --perf
    --no-sim`` over the bundled workloads.  The gating invariant is the
    MapFix corpus differential in static-only mode: every zero-fix pin
    must hold (no speculative edits) regardless of timing.
    """
    from ..check.corpus import CORPUS, PERF_CORPUS
    from ..check.runner import check_all
    from ..check.static.cost import CostEnv, predict_costs
    from ..check.static.extract import extract_workload
    from ..check.static.fix import fix_differential
    from ..check.static.interp import analyze_ir
    from ..check.static.ir import Branch, Loop
    from ..check.static.race.rules import race_findings

    corpus = {**CORPUS, **PERF_CORPUS}

    def _count_ops(ir) -> int:
        def walk(seq) -> int:
            total = 0
            for item in seq.items:
                if isinstance(item, Branch):
                    total += walk(item.then) + walk(item.orelse)
                elif isinstance(item, Loop):
                    total += walk(item.body)
                else:
                    total += 1
            return total

        return sum(walk(th.body) for th in ir.threads)

    entries: List[BenchEntry] = []

    t0 = time.perf_counter()
    irs = {name: extract_workload(cls(), name=cls().name)
           for name, cls in corpus.items()}
    wall = time.perf_counter() - t0
    ops = sum(_count_ops(ir) for ir in irs.values())
    entries.append(BenchEntry(
        name="static_extract_corpus", wall_s=wall, sim_events=ops,
        events_per_s=ops / wall if wall > 0 else 0.0, engine="n/a"))

    t0 = time.perf_counter()
    for ir in irs.values():
        analyze_ir(ir)
    wall = time.perf_counter() - t0
    entries.append(BenchEntry(
        name="static_interp_corpus", wall_s=wall, sim_events=ops,
        events_per_s=ops / wall if wall > 0 else 0.0, engine="n/a"))

    t0 = time.perf_counter()
    cells = 0
    for ir in irs.values():
        for config in RuntimeConfig:
            predict_costs(ir, CostEnv.for_config(config))
            cells += _count_ops(ir)
    wall = time.perf_counter() - t0
    entries.append(BenchEntry(
        name="static_cost_corpus", wall_s=wall, sim_events=cells,
        events_per_s=cells / wall if wall > 0 else 0.0, engine="n/a"))

    t0 = time.perf_counter()
    for ir in irs.values():
        race_findings(ir)
    wall = time.perf_counter() - t0
    entries.append(BenchEntry(
        name="static_race_corpus", wall_s=wall, sim_events=ops,
        events_per_s=ops / wall if wall > 0 else 0.0, engine="n/a"))

    t0 = time.perf_counter()
    fix_diff = fix_differential(dynamic=False)
    wall = time.perf_counter() - t0
    n_corpus = len(corpus)
    entries.append(BenchEntry(
        name="static_fix_corpus", wall_s=wall, sim_events=n_corpus,
        events_per_s=n_corpus / wall if wall > 0 else 0.0, engine="n/a"))

    t0 = time.perf_counter()
    reports = check_all(Fidelity.TEST, static=True, dynamic=False, perf=True)
    wall = time.perf_counter() - t0
    n_findings = max(1, sum(len(r.findings) for r in reports))
    entries.append(BenchEntry(
        name="static_check_all_e2e", wall_s=wall, sim_events=n_findings,
        events_per_s=n_findings / wall if wall > 0 else 0.0, engine="n/a"))

    equivalence = {"static_fix_differential": fix_diff.ok}
    return entries, {}, equivalence


# ---------------------------------------------------------------------------
# top level
# ---------------------------------------------------------------------------


def run_bench(
    *,
    quick: bool = False,
    jobs: int = 4,
    progress=None,
    only: Optional[str] = None,
) -> BenchReport:
    """Run the bench tiers; returns the report (``report.ok`` gates CI).

    ``only`` restricts the run to one tier from :data:`BENCH_TIERS`
    (``meso`` covers the single-run, ratio-experiment and cell-cache
    tiers); None runs everything.
    """
    if only is not None and only not in BENCH_TIERS:
        raise ValueError(
            f"unknown bench tier {only!r}; expected one of {BENCH_TIERS}"
        )
    report = BenchReport(
        quick=quick,
        jobs=jobs,
        only=only,
        generated_utc=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    )

    def note(msg):
        if progress is not None:
            progress(msg)

    def want(tier):
        return only is None or only == tier

    # -- tier 0: scheduler micro (fused vs reference engine) ------------
    if want("scheduler"):
        chains, chain_len = (5000, 8) if quick else (20000, 8)
        note(f"scheduler micro ({chains} chains x {chain_len} charges)")
        entries, speedups, equivalence = _bench_scheduler(chains, chain_len)
        report.entries.extend(entries)
        report.speedups.update(speedups)
        report.equivalence.update(equivalence)

        note("engine differential (fused vs reference, randomized)")
        report.equivalence["scheduler_differential"] = engine_differential(
            quick=quick
        )

    # -- tier 1: pagetable micro-ops ------------------------------------
    if want("pagetable"):
        n_pages, iters = (256, 30) if quick else (1024, 60)
        note(f"pagetable micro ({n_pages} pages x {iters} iters)")
        entries, speedups = _bench_pagetables(n_pages, iters)
        report.entries.extend(entries)
        report.speedups.update(speedups)

        note("pagetable parity (randomized differential)")
        report.equivalence["pagetable_parity"] = pagetable_parity()

    if want("meso"):
        # -- tier 2: one QMCPack run ------------------------------------
        size = 8 if quick else 32
        fidelity = Fidelity.TEST if quick else Fidelity.BENCH
        note(f"qmcpack S{size} single run")
        t0 = time.perf_counter()
        run = execute(
            QmcPackNio(size=size, n_threads=8, fidelity=fidelity),
            RuntimeConfig.IMPLICIT_ZERO_COPY,
        )
        wall = time.perf_counter() - t0
        report.entries.append(
            BenchEntry(
                name=f"qmcpack_s{size}_izc",
                wall_s=wall,
                sim_events=run.sim_events,
                events_per_s=run.sim_events / wall if wall > 0 else 0.0,
            )
        )

        # -- tier 3: full ratio experiment, serial vs parallel -----------
        reps = 2 if quick else 4
        exp_size = 2 if quick else 32
        exp_fidelity = Fidelity.TEST if quick else Fidelity.BENCH
        factory = partial(
            QmcPackNio, size=exp_size, n_threads=4, fidelity=exp_fidelity
        )
        configs = [RuntimeConfig.COPY] + list(ZERO_COPY_CONFIGS)
        results = {}
        walls = {}
        for label, n_jobs in (("serial", 1), (f"jobs{jobs}", jobs)):
            note(f"ratio experiment S{exp_size} x {reps} reps ({label})")
            t0 = time.perf_counter()
            results[label] = ratio_experiment(
                factory, configs, reps=reps, jobs=n_jobs
            )
            walls[label] = time.perf_counter() - t0
            report.entries.append(
                BenchEntry(
                    name=f"ratio_qmcpack_s{exp_size}_{label}",
                    wall_s=walls[label],
                    sim_events=results[label].sim_events,
                    events_per_s=(
                        results[label].sim_events / walls[label]
                        if walls[label] > 0
                        else 0.0
                    ),
                )
            )
        serial, par = results["serial"], results[f"jobs{jobs}"]
        report.speedups["ratio_parallel_vs_serial"] = (
            walls["serial"] / walls[f"jobs{jobs}"]
            if walls[f"jobs{jobs}"] > 0
            else 0.0
        )
        report.equivalence["parallel_summary_identical"] = (
            json.dumps(serial.summary(), sort_keys=True)
            == json.dumps(par.summary(), sort_keys=True)
        )
        report.equivalence["parallel_ledgers_identical"] = (
            serial.ledgers == par.ledgers
            and serial.sim_events == par.sim_events
        )

        # -- tier 5: cell cache cold vs warm ----------------------------
        note("cell cache (fig3 grid, cold vs warm)")
        entries, speedups, equivalence = _bench_cell_cache(jobs)
        report.entries.extend(entries)
        report.speedups.update(speedups)
        report.equivalence.update(equivalence)

    # -- tier 6: steady-state macro engine ------------------------------
    if want("macro"):
        note("macro engine (steady-state replay vs fused, interleaved)")
        entries, speedups, equivalence = _bench_macro(quick)
        report.entries.extend(entries)
        report.speedups.update(speedups)
        report.equivalence.update(equivalence)

    # -- tier 7: static pipeline (extract/interp/cost/race/fix) ---------
    if want("static"):
        note("static pipeline (corpus phases + check all --static --perf)")
        entries, speedups, equivalence = _bench_static(quick)
        report.entries.extend(entries)
        report.speedups.update(speedups)
        report.equivalence.update(equivalence)
    return report


def write_bench(
    path: str = "BENCH.json",
    *,
    quick: bool = False,
    jobs: int = 4,
    progress=None,
    only: Optional[str] = None,
    history_dir: Optional[str] = "benchmarks/history",
) -> BenchReport:
    """Run the bench and persist BENCH.json (the CI entry point).

    ``path`` always holds the *latest* report; every invocation also
    appends a timestamped copy under ``history_dir`` (schema
    ``repro-bench-v4``), giving CI an artifact trail of events/s over
    time.  Pass ``history_dir=None`` to skip the history write.
    """
    import os

    report = run_bench(quick=quick, jobs=jobs, progress=progress, only=only)
    report.write_json(path)
    if history_dir:
        os.makedirs(history_dir, exist_ok=True)
        stamp = report.generated_utc.replace(":", "").replace("-", "")
        report.write_json(
            os.path.join(history_dir, f"bench-{stamp}.json")
        )
    return report

"""Content-addressed on-disk cache for experiment cells.

Every ``(workload, configuration, repetition)`` cell of an experiment is
a pure function of its spec: the workload's parameters, the runtime
configuration, the explicit seed, the metric, the noise flag, the cost
model and the simulation engine.  :func:`cell_digest` hashes exactly that
closure — canonical JSON, SHA-256 — and :class:`CellCache` stores each
:class:`~repro.experiments.parallel.CellOutcome` in a file named by its
digest.  The consequences:

* **a warm run performs zero simulation cells** — ``--cache`` composes
  with ``--jobs``: only the misses fan out over the process pool;
* **a stale entry cannot be served**: any input that could change a
  number (a cost constant, the workload's size, the engine version
  :data:`~repro.sim.core.ENGINE_VERSION`, this module's
  :data:`CACHE_SCHEMA`) changes the digest, so the old entry is simply
  never looked up again.  There is no invalidation logic to get wrong.

Layout: ``<root>/<digest[:2]>/<digest>.json`` (sharded to keep
directories small).  Writes go through a temp file + ``os.replace`` so a
crashed run never leaves a truncated entry; unreadable or corrupt
entries count as misses.
"""

from __future__ import annotations

import contextlib
import enum
import hashlib
import json
import os
import tempfile
from typing import Dict, Optional

from ..core.params import CostModel
from ..sim import ENGINE_VERSION
from .parallel import CellOutcome, ExperimentCell

__all__ = ["CACHE_SCHEMA", "CellCache", "cell_digest", "workload_fingerprint"]

#: Bumped when the entry format or digest recipe changes; part of the key.
CACHE_SCHEMA = "repro-cell-v1"

#: scalar types admitted into the workload fingerprint
_SCALARS = (int, float, str, bool)


def workload_fingerprint(workload) -> Dict[str, object]:
    """Everything about a workload instance that can influence results.

    ``describe()`` carries the declared identity (name — which embeds
    e.g. the QMCPack size — thread count, fidelity); on top of that,
    every scalar instance attribute is folded in, so a workload parameter
    that someone forgets to surface in ``describe()`` still invalidates
    the cache.  Arrays/outputs are excluded: they are *produced* by the
    run, not inputs to it.
    """
    fp: Dict[str, object] = dict(workload.describe())
    for name, value in sorted(vars(workload).items()):
        if name == "outputs" or name.startswith("_"):
            continue
        if isinstance(value, enum.Enum):
            fp.setdefault(f"attr.{name}", value.value)
        elif isinstance(value, _SCALARS):
            fp.setdefault(f"attr.{name}", value)
    return fp


def cell_digest(cell: ExperimentCell) -> str:
    """SHA-256 over the canonical JSON of the cell's full input closure."""
    cost = cell.cost if cell.cost is not None else CostModel()
    payload = {
        "schema": CACHE_SCHEMA,
        "engine_version": ENGINE_VERSION,
        # engine *name* as well as version: macro/fast/reference results
        # are equivalence-gated to be identical, but their cache entries
        # must never alias — a macro regression could otherwise hide
        # behind a fast-engine entry (and vice versa)
        "engine": getattr(cell, "engine", "fast"),
        "workload": workload_fingerprint(cell.factory()),
        "config": cell.config.value,
        "seed": cell.seed,
        "metric": cell.metric,
        "noise": bool(cell.noise),
        "cost": cost.describe(),
        # multi-socket card cells: socket count + placement spec join the
        # digest (alongside engine/engine_version above) so a card entry
        # can never alias a plain single-system entry or another topology
        "topology": getattr(cell, "topology", None),
        "placement": getattr(cell, "placement", None),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class CellCache:
    """Digest-keyed persistent store of :class:`CellOutcome` values."""

    def __init__(self, root: str):
        self.root = str(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, digest: str) -> str:
        return os.path.join(self.root, digest[:2], digest + ".json")

    def get(self, digest: str) -> Optional[CellOutcome]:
        """The cached outcome, or ``None`` (corrupt entries are misses)."""
        try:
            with open(self._path(digest)) as fh:
                raw = json.load(fh)
            if raw.get("schema") != CACHE_SCHEMA:
                raise ValueError("schema mismatch")
            outcome = CellOutcome(
                value=float(raw["value"]),
                sim_events=int(raw["sim_events"]),
                ledger={str(k): v for k, v in raw["ledger"].items()},
            )
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return outcome

    def put(self, digest: str, outcome: CellOutcome) -> None:
        """Atomically persist one outcome (tmp file + rename)."""
        path = self._path(digest)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA,
            "value": outcome.value,
            "sim_events": outcome.sim_events,
            "ledger": outcome.ledger,
        }
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise
        self.stores += 1

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}

"""Table regeneration: Tables I, II and III of the paper.

* **Table I** — HSA API call statistics (counts + Copy/IZC total-latency
  ratios) for QMCPack NiO S2 with 1 and 8 OpenMP threads, from
  rocprof-style traces.
* **Table II** — Copy / zero-copy total-execution-time ratios for the
  five SPECaccel 2023 C/C++ proxies under each zero-copy configuration.
* **Table III** — MM / MI overhead decomposition for 403.stencil and
  452.ep under Copy, Implicit Z-C (≡ USM), and Eager Maps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import ZERO_COPY_CONFIGS, RuntimeConfig
from ..core.params import CostModel
from ..trace.analysis import HsaCallRow, OverheadRow, hsa_call_comparison, overhead_decomposition
from ..workloads.base import Fidelity
from ..workloads.qmcpack import QmcPackNio
from ..workloads.specaccel import ALL_BENCHMARKS, Ep452, Stencil403
from .parallel import ExperimentCell, run_cells
from .runner import assemble_ratio, execute

__all__ = [
    "Table1Result",
    "table1_hsa_calls",
    "Table2Result",
    "table2_specaccel",
    "Table3Result",
    "table3_overheads",
]


# ---------------------------------------------------------------------------
# Table I
# ---------------------------------------------------------------------------


@dataclass
class Table1Result:
    """HSA call comparison for each thread count."""

    size: int
    fidelity: Fidelity
    #: thread count → comparison rows (Copy vs Implicit Z-C)
    rows: Dict[int, List[HsaCallRow]] = field(default_factory=dict)

    def row(self, threads: int, call: str) -> HsaCallRow:
        for r in self.rows[threads]:
            if r.call == call:
                return r
        raise KeyError(call)


def table1_hsa_calls(
    *,
    size: int = 2,
    threads: Sequence[int] = (1, 8),
    fidelity: Fidelity = Fidelity.FULL,
    cost: Optional[CostModel] = None,
) -> Table1Result:
    """Regenerate Table I.

    Runs QMCPack S2 under Copy and Implicit Zero-Copy with rocprof-style
    tracing for each thread count.  Full fidelity reproduces paper-scale
    absolute call counts (≈1e5 kernels per thread); lower fidelities
    scale the counts but preserve every count *relationship* the paper
    discusses.  Deterministic (single run per cell — call counts carry no
    measurement noise).
    """
    result = Table1Result(size=size, fidelity=fidelity)
    for t in threads:
        run_copy = execute(
            QmcPackNio(size=size, n_threads=t, fidelity=fidelity),
            RuntimeConfig.COPY,
            cost=cost,
        )
        run_izc = execute(
            QmcPackNio(size=size, n_threads=t, fidelity=fidelity),
            RuntimeConfig.IMPLICIT_ZERO_COPY,
            cost=cost,
        )
        result.rows[t] = hsa_call_comparison(run_copy.hsa_trace, run_izc.hsa_trace)
    return result


# ---------------------------------------------------------------------------
# Table II
# ---------------------------------------------------------------------------

#: paper's Table II for shape comparison in reports/tests
PAPER_TABLE2 = {
    "stencil": {
        RuntimeConfig.IMPLICIT_ZERO_COPY: 0.99,
        RuntimeConfig.UNIFIED_SHARED_MEMORY: 0.99,
        RuntimeConfig.EAGER_MAPS: 0.98,
    },
    "lbm": {
        RuntimeConfig.IMPLICIT_ZERO_COPY: 1.05,
        RuntimeConfig.UNIFIED_SHARED_MEMORY: 1.043,
        RuntimeConfig.EAGER_MAPS: 1.025,
    },
    "ep": {
        RuntimeConfig.IMPLICIT_ZERO_COPY: 0.89,
        RuntimeConfig.UNIFIED_SHARED_MEMORY: 0.89,
        RuntimeConfig.EAGER_MAPS: 0.99,
    },
    "spC": {
        RuntimeConfig.IMPLICIT_ZERO_COPY: 7.80,
        RuntimeConfig.UNIFIED_SHARED_MEMORY: 7.61,
        RuntimeConfig.EAGER_MAPS: 8.10,
    },
    "bt": {
        RuntimeConfig.IMPLICIT_ZERO_COPY: 4.88,
        RuntimeConfig.UNIFIED_SHARED_MEMORY: 4.77,
        RuntimeConfig.EAGER_MAPS: 5.10,
    },
}


@dataclass
class Table2Result:
    """Measured SPECaccel ratios per benchmark per configuration."""

    reps: int
    fidelity: Fidelity
    ratios: Dict[str, Dict[RuntimeConfig, float]] = field(default_factory=dict)
    covs: Dict[str, Dict[RuntimeConfig, float]] = field(default_factory=dict)

    def max_cov(self) -> float:
        return max(v for by_cfg in self.covs.values() for v in by_cfg.values())


def table2_specaccel(
    *,
    benchmarks: Sequence[str] = ("stencil", "lbm", "ep", "spC", "bt"),
    reps: int = 8,
    fidelity: Fidelity = Fidelity.FULL,
    noise: bool = True,
    cost: Optional[CostModel] = None,
    progress=None,
    jobs: int = 1,
    seed0: int = 1000,
    cache=None,
    engine: str = "fast",
) -> Table2Result:
    """Regenerate Table II (8 repetitions, medians, as in §V).

    Uses total execution time: the SPEC corner cases are start-up and
    allocation effects, which steady-state windows would hide.

    ``jobs > 1`` fans every (benchmark, config, rep) cell out over one
    process pool; results are bit-identical to the serial order.
    ``cache`` serves unchanged cells from disk (content-addressed).
    """
    result = Table2Result(reps=reps, fidelity=fidelity)
    configs = [RuntimeConfig.COPY] + list(ZERO_COPY_CONFIGS)
    cells = []
    for name in benchmarks:
        if progress is not None:
            progress(f"specaccel {name}")
        factory = partial(ALL_BENCHMARKS[name], fidelity=fidelity)
        cells.extend(
            ExperimentCell(
                key=(name, config, rep),
                factory=factory,
                config=config,
                seed=seed0 + rep,
                metric="elapsed_us",
                noise=noise,
                cost=cost,
                engine=engine,
            )
            for config in configs
            for rep in range(reps)
        )
    outcomes = run_cells(cells, jobs=jobs, cache=cache)
    for name in benchmarks:
        ratio = assemble_ratio(
            name,
            configs,
            reps,
            outcomes,
            metric="elapsed_us",
            key=lambda config, rep, n=name: (n, config, rep),
        )
        result.ratios[name] = ratio.ratios()
        result.covs[name] = {cfg: ratio.cov(cfg) for cfg in configs}
    return result


# ---------------------------------------------------------------------------
# Table III
# ---------------------------------------------------------------------------


@dataclass
class Table3Result:
    """MM/MI decomposition rows per benchmark per configuration."""

    #: benchmark name → config label → OverheadRow
    rows: Dict[str, Dict[str, OverheadRow]] = field(default_factory=dict)

    def magnitude(self, benchmark: str, config_label: str) -> Tuple[str, str]:
        row = self.rows[benchmark][config_label]
        return row.mm_magnitude, row.mi_magnitude


#: Table III's row labels: Implicit Z-C and USM share one row in the paper
TABLE3_CONFIGS = (
    (RuntimeConfig.COPY, "Copy"),
    (RuntimeConfig.IMPLICIT_ZERO_COPY, "Implicit Z-C or USM"),
    (RuntimeConfig.EAGER_MAPS, "Eager Maps"),
)


def table3_overheads(
    *,
    fidelity: Fidelity = Fidelity.FULL,
    cost: Optional[CostModel] = None,
) -> Table3Result:
    """Regenerate Table III from kernel-trace ledgers (deterministic)."""
    result = Table3Result()
    for name, cls in (("stencil", Stencil403), ("ep", Ep452)):
        result.rows[name] = {}
        for config, label in TABLE3_CONFIGS:
            run = execute(cls(fidelity=fidelity), config, cost=cost)
            result.rows[name][label] = overhead_decomposition(label, run.ledger)
    return result

"""Parallel fan-out of independent experiment cells.

The paper's measurement protocol (§V) is embarrassingly parallel: every
``(workload, configuration, repetition)`` cell of a ratio experiment is
an independent simulation on a fresh :class:`~repro.core.system.ApuSystem`
with its own seed.  Serial execution order therefore carries no
information — results are a pure function of the cell spec — and the
drivers behind the figures and tables can fan cells out across a process
pool without changing a single reported number.

Determinism contract: each cell is seeded explicitly (``seed0 + rep``),
results are keyed by cell and re-assembled in spec order, and the worker
returns plain floats/ints (no shared state crosses the pool boundary).
``jobs=1`` bypasses the pool entirely; ``jobs>1`` falls back to the
serial path — with a warning, never with different results — when the
platform cannot run a process pool or a workload factory does not
pickle (e.g. an ad-hoc lambda or closure).
"""

from __future__ import annotations

import os
import pickle
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Optional, Sequence, Tuple

from ..core.config import RuntimeConfig
from ..core.params import CostModel

__all__ = [
    "ExperimentCell",
    "CellOutcome",
    "run_cells",
    "resolve_jobs",
]


@dataclass(frozen=True)
class ExperimentCell:
    """One independent simulation: a workload under a configuration with
    a fixed seed.  The full spec is picklable so the cell can execute in
    a worker process."""

    key: Hashable
    factory: Callable[[], object]  #: builds a fresh Workload instance
    config: RuntimeConfig
    seed: int
    metric: str = "steady_us"
    noise: bool = True
    cost: Optional[CostModel] = None
    #: simulation engine (``fast`` / ``reference`` / ``macro``); part of
    #: the cell's cache identity — results are engine-invariant by the
    #: bench equivalence gates, but digests must never alias across
    #: engines
    engine: str = "fast"
    #: socket count of a multi-socket :class:`~repro.multisocket.card.ApuCard`
    #: cell; ``None`` (the default) runs a plain single-system cell.  Card
    #: cells must select a :class:`~repro.multisocket.card.CardResult`
    #: metric (e.g. ``elapsed_us`` or ``remote_page_fraction``).
    topology: Optional[int] = None
    #: page-placement spec for a card cell (``first-touch`` / ``interleave``
    #: / ``pinned:<home>``); both fields join the cache digest so card
    #: entries never alias plain ones
    placement: Optional[str] = None


@dataclass(frozen=True)
class CellOutcome:
    """What one cell reports back across the process boundary."""

    value: float                       #: the selected RunResult metric
    sim_events: int                    #: engine events the run processed
    ledger: Dict[str, float] = field(default_factory=dict)


def _execute_card_cell(cell: ExperimentCell) -> CellOutcome:
    """Run one multi-socket card cell (module-level so it pickles)."""
    from ..multisocket.card import ApuCard
    from ..multisocket.topology import Topology

    cost = cell.cost or CostModel()
    if cell.noise:
        cost = cost.with_noise()
    card = ApuCard(
        topology=Topology(n_sockets=cell.topology),
        placement=cell.placement or "first-touch",
        cost=cost,
        seed=cell.seed,
    )
    res = card.run_workload(cell.factory(), cell.config)
    ledger: Dict[str, float] = {}
    for lg in res.per_socket_ledgers:
        for name, v in lg.summary().items():
            ledger[name] = ledger.get(name, 0) + v
    return CellOutcome(
        value=float(getattr(res, cell.metric)),
        sim_events=res.sim_events,
        ledger=ledger,
    )


def _execute_cell(cell: ExperimentCell) -> Tuple[Hashable, CellOutcome]:
    """Worker entry point (module-level so it pickles)."""
    from .runner import execute  # deferred: runner imports this module

    if cell.topology is not None:
        return cell.key, _execute_card_cell(cell)
    workload = cell.factory()
    run = execute(
        workload,
        cell.config,
        cost=cell.cost,
        seed=cell.seed,
        noise=cell.noise,
        engine=cell.engine,
    )
    return cell.key, CellOutcome(
        value=float(getattr(run, cell.metric)),
        sim_events=run.sim_events,
        ledger=run.ledger.summary(),
    )


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` means one process per
    CPU, negative is an error."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def _run_serial(
    cells: Sequence[ExperimentCell], progress: Optional[Callable[[str], None]]
) -> Dict[Hashable, CellOutcome]:
    out: Dict[Hashable, CellOutcome] = {}
    for cell in cells:
        if progress is not None:
            progress(f"cell {cell.key}")
        key, outcome = _execute_cell(cell)
        out[key] = outcome
    return out


def run_cells(
    cells: Sequence[ExperimentCell],
    *,
    jobs: int = 1,
    progress: Optional[Callable[[str], None]] = None,
    cache=None,
) -> Dict[Hashable, CellOutcome]:
    """Execute every cell and return ``{key: outcome}``.

    Results are bit-identical for any ``jobs`` value: cells carry their
    own seeds and run on fresh systems, so scheduling order is
    irrelevant, and the caller re-assembles by key in its own order.

    ``cache`` (a :class:`~repro.experiments.cache.CellCache`) composes
    with ``jobs``: cached cells are served from disk, only the misses
    fan out over the pool, and every fresh outcome is persisted.  The
    cache is content-addressed, so a hit is by construction the outcome
    the simulation would have produced.
    """
    keys = [c.key for c in cells]
    if len(set(keys)) != len(keys):
        raise ValueError("duplicate experiment-cell keys")
    if cache is not None:
        from .cache import cell_digest

        digests = {cell.key: cell_digest(cell) for cell in cells}
        out = {}
        misses = []
        for cell in cells:
            got = cache.get(digests[cell.key])
            if got is not None:
                out[cell.key] = got
            else:
                misses.append(cell)
        if progress is not None and cells:
            progress(f"cache: {len(out)} hits, {len(misses)} misses")
        if misses:
            fresh = run_cells(misses, jobs=jobs, progress=progress)
            for cell in misses:
                cache.put(digests[cell.key], fresh[cell.key])
            out.update(fresh)
        return out
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(cells) <= 1:
        return _run_serial(cells, progress)
    try:
        pickle.dumps(cells)
    except Exception as exc:  # unpicklable factory (lambda/closure)
        warnings.warn(
            f"experiment cells not picklable ({exc}); running serially",
            RuntimeWarning,
            stacklevel=2,
        )
        return _run_serial(cells, progress)
    out: Dict[Hashable, CellOutcome] = {}
    try:
        with ProcessPoolExecutor(max_workers=min(jobs, len(cells))) as pool:
            pending = {pool.submit(_execute_cell, cell): cell for cell in cells}
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for fut in done:
                    cell = pending.pop(fut)
                    key, outcome = fut.result()
                    out[key] = outcome
                    if progress is not None:
                        progress(f"cell {cell.key} done")
    except (OSError, PermissionError) as exc:  # sandboxed / no semaphores
        warnings.warn(
            f"process pool unavailable ({exc}); running serially",
            RuntimeWarning,
            stacklevel=2,
        )
        return _run_serial(cells, progress)
    return out

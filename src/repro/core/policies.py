"""Data-management policies: the behavioural core of the four
runtime configurations (§IV.A–D).

Each policy implements how ``map`` clauses manipulate storage, what
pointer a kernel receives for a mapped buffer, which host ranges a kernel
can fault on, and how declare-target globals are kept consistent:

================  ==========  =====================  =================
configuration      map storage  kernel arg             first GPU touch
================  ==========  =====================  =================
Copy               pool alloc  shadow device buffer   none (bulk mapped)
                   + copies
USM                none        host pointer           XNACK replay
Implicit Z-C       none        host pointer           XNACK replay
Eager Maps         prefault    host pointer           none (prefaulted)
                   syscall
================  ==========  =====================  =================

Globals: USM reads the host global through a pointer (double
indirection); the other three keep a device copy refreshed by
``map(always, to:)`` / ``target update`` transfers.

All methods that consume simulated time are generators driven with
``yield from`` inside a host-thread process.  The policies hold the
libomptarget device lock across present-table manipulation (and, for
Copy, across pool allocation) — which is exactly the serialization that
makes Copy scale poorly with host threads (§V.A.2) — and Eager Maps
serializes its prefault syscalls on the process ``mm`` lock, reproducing
the concurrent-prefault slowdown noted in §VI.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

import numpy as np

from ..memory.buffers import DeviceBuffer, HostBuffer
from ..memory.layout import AddressRange
from ..omp.globals_ import GlobalVar
from ..omp.mapping import MapClause, MapKind, MappingError, PresentEntry
from .config import RuntimeConfig

if TYPE_CHECKING:  # pragma: no cover
    from ..omp.runtime import OpenMPRuntime

__all__ = ["DataPolicy", "CopyPolicy", "ZeroCopyPolicy", "UsmPolicy",
           "ImplicitZeroCopyPolicy", "EagerMapsPolicy", "make_policy"]


class DataPolicy:
    """Shared plumbing for all configurations."""

    config: RuntimeConfig

    def __init__(self, runtime: "OpenMPRuntime"):
        self.rt = runtime
        self.env = runtime.env
        self.hsa = runtime.hsa
        self.cost = runtime.cost
        self.table = runtime.table
        self.ledger = runtime.ledger

    # -- helpers ---------------------------------------------------------
    def _bookkeep(self):
        """(generator) One libomptarget runtime-call bookkeeping charge,
        performed under the device lock."""
        grant = yield self.rt.lock.acquire()
        try:
            yield self.env.charge(self.cost.omp_runtime_call_us)
        finally:
            self.rt.lock.release(grant)

    def _note_map(self, op, clause, tid, t0, *, is_new, refcount, removed):
        """Report one map operation to the MapCheck recorder (if attached)."""
        rec = self.rt.recorder
        if rec is not None:
            rec.note_map(
                op, clause, tid, t0, self.env.now,
                is_new=is_new, refcount=refcount, removed=removed,
            )

    # -- interface ----------------------------------------------------------
    def map_enter_all(self, clauses: Sequence[MapClause], tid=None):  # pragma: no cover
        raise NotImplementedError

    def map_exit_all(self, clauses: Sequence[MapClause], tid=None):  # pragma: no cover
        raise NotImplementedError

    def resolve_kernel_args(
        self, clauses: Sequence[MapClause]
    ) -> Tuple[Dict[str, np.ndarray], List[AddressRange]]:  # pragma: no cover
        raise NotImplementedError

    def resolve_global(self, glob: GlobalVar) -> np.ndarray:
        return glob.device_view()

    def global_update(self, glob: GlobalVar):  # pragma: no cover
        raise NotImplementedError

    def motion_update(self, buf: HostBuffer, to_device: bool):
        """(generator) ``#pragma omp target update to(...)/from(...)``.

        OpenMP motion clauses move data for *present* ranges without
        touching reference counts; updates of absent ranges are no-ops
        (OpenMP 5.x semantics).  Zero-copy configurations have one copy
        of the data, so the construct is pure bookkeeping for them.
        """
        raise NotImplementedError  # pragma: no cover

    def init_global(self, glob: GlobalVar) -> None:
        """Set up the global's device-side representation at image load."""
        glob.materialize_device_copy()


class CopyPolicy(DataPolicy):
    """§IV.A "Legacy" Copy: device pool allocations + HBM-to-HBM copies.

    Host-to-device transfers are submitted asynchronously and completed
    through the async-handler path; the caller barrier-waits before the
    kernel launch.  Device-to-host transfers are synchronous.  This split
    is what produces Table I's ``signal_async_handler`` ≈ ⅔ ×
    ``memory_async_copy`` call-count relationship.
    """

    config = RuntimeConfig.COPY

    def map_enter_all(self, clauses: Sequence[MapClause], tid=None):
        h2d_signals = []
        for clause in clauses:
            if clause.kind in (MapKind.RELEASE, MapKind.DELETE):
                raise MappingError(f"map({clause.kind.value}) is exit-only")
            buf = clause.buffer
            buf.check_alive()
            self.ledger.n_map_enters += 1
            t_op = self.env.now
            grant = yield self.rt.lock.acquire()
            try:
                yield self.env.charge(self.cost.omp_runtime_call_us)
                entry = self.table.lookup(buf)
                is_new = entry is None
                if is_new:
                    t0 = self.env.now
                    rng = yield from self.rt.device_mem.allocate(buf.nbytes)
                    self.ledger.mm_alloc_us += self.env.now - t0
                    entry = PresentEntry(
                        host=buf, device=DeviceBuffer(rng, buf.payload), refcount=0
                    )
                    self.table.insert(entry)
                entry.refcount += 1
            finally:
                self.rt.lock.release(grant)
            if clause.kind.copies_to_device and (is_new or clause.always):
                sig = self.hsa.memory_async_copy(
                    entry.device.payload, buf.payload, buf.nbytes, tag=f"h2d:{buf.name}"
                )
                self.hsa.attach_async_handler(sig)
                self.ledger.mm_copy_us += self.cost.copy_us(buf.nbytes)
                self.ledger.h2d_bytes += buf.nbytes
                h2d_signals.append(sig)
            self._note_map("enter", clause, tid, t_op,
                           is_new=is_new, refcount=entry.refcount, removed=False)
        return h2d_signals

    def map_exit_all(self, clauses: Sequence[MapClause], tid=None):
        for clause in clauses:
            buf = clause.buffer
            buf.check_alive()
            self.ledger.n_map_exits += 1
            t_op = self.env.now
            grant = yield self.rt.lock.acquire()
            try:
                yield self.env.charge(self.cost.omp_runtime_call_us)
                entry = self.table.release(buf, delete=clause.kind is MapKind.DELETE)
                last = entry.refcount == 0
            finally:
                self.rt.lock.release(grant)
            if clause.kind.copies_to_host and (last or clause.always):
                t0 = self.env.now
                sig = self.hsa.memory_async_copy(
                    buf.payload, entry.device.payload, buf.nbytes, tag=f"d2h:{buf.name}"
                )
                yield from self.hsa.signal_wait_scacquire(sig)
                self.ledger.mm_copy_us += self.env.now - t0
                self.ledger.d2h_bytes += buf.nbytes
            if last:
                grant = yield self.rt.lock.acquire()
                try:
                    t0 = self.env.now
                    yield from self.rt.device_mem.free(entry.device.range)
                    entry.device.freed = True
                    self.ledger.mm_alloc_us += self.env.now - t0
                    self.table.remove(entry)
                finally:
                    self.rt.lock.release(grant)
            self._note_map("exit", clause, tid, t_op,
                           is_new=False, refcount=entry.refcount, removed=last)

    def resolve_kernel_args(self, clauses):
        args: Dict[str, np.ndarray] = {}
        for clause in clauses:
            entry = self.table.lookup(clause.buffer)
            if entry is None or entry.device is None:
                raise MappingError(
                    f"kernel references unmapped buffer {clause.buffer.name!r} "
                    "(Copy configuration requires every accessed range to be mapped)"
                )
            args[clause.buffer.name] = entry.device.payload
        # pool memory is bulk-mapped at allocation: kernels never fault
        return args, []

    def global_update(self, glob: GlobalVar):
        """map(always, to: g): HBM-to-HBM transfer into the device copy."""
        t0 = self.env.now
        sig = self.hsa.memory_async_copy(
            glob.device_view(), glob.host_payload, glob.nbytes, tag=f"glob:{glob.name}"
        )
        yield from self.hsa.signal_wait_scacquire(sig)
        self.ledger.mm_copy_us += self.env.now - t0
        self.ledger.h2d_bytes += glob.nbytes

    def motion_update(self, buf: HostBuffer, to_device: bool):
        buf.check_alive()
        entry = self.table.lookup(buf)
        if entry is None or entry.device is None:
            # motion clauses for absent data are no-ops
            yield self.env.charge(self.cost.omp_runtime_call_us)
            return
        t0 = self.env.now
        dst, src, tag = (
            (entry.device.payload, buf.payload, f"upd-to:{buf.name}")
            if to_device
            else (buf.payload, entry.device.payload, f"upd-from:{buf.name}")
        )
        sig = self.hsa.memory_async_copy(dst, src, buf.nbytes, tag=tag)
        yield from self.hsa.signal_wait_scacquire(sig)
        self.ledger.mm_copy_us += self.env.now - t0
        if to_device:
            self.ledger.h2d_bytes += buf.nbytes
        else:
            self.ledger.d2h_bytes += buf.nbytes


class ZeroCopyPolicy(DataPolicy):
    """Shared behaviour of the three zero-copy configurations: maps do
    presence bookkeeping only; kernels receive host pointers."""

    def map_enter_all(self, clauses: Sequence[MapClause], tid=None):
        for clause in clauses:
            if clause.kind in (MapKind.RELEASE, MapKind.DELETE):
                raise MappingError(f"map({clause.kind.value}) is exit-only")
            buf = clause.buffer
            buf.check_alive()
            self.ledger.n_map_enters += 1
            t_op = self.env.now
            grant = yield self.rt.lock.acquire()
            try:
                yield self.env.charge(self.cost.zc_map_call_us)
                entry = self.table.lookup(buf)
                is_new = entry is None
                if is_new:
                    entry = PresentEntry(host=buf, device=None, refcount=0)
                    self.table.insert(entry)
                entry.refcount += 1
            finally:
                self.rt.lock.release(grant)
            self._note_map("enter", clause, tid, t_op,
                           is_new=is_new, refcount=entry.refcount, removed=False)
            yield from self._post_enter(clause)
        return []

    def _post_enter(self, clause: MapClause):
        """Hook for Eager Maps' prefaulting; default does nothing."""
        return
        yield  # pragma: no cover - makes this a generator

    def map_exit_all(self, clauses: Sequence[MapClause], tid=None):
        for clause in clauses:
            clause.buffer.check_alive()
            self.ledger.n_map_exits += 1
            t_op = self.env.now
            grant = yield self.rt.lock.acquire()
            try:
                yield self.env.charge(self.cost.zc_map_call_us)
                entry = self.table.release(
                    clause.buffer, delete=clause.kind is MapKind.DELETE
                )
                removed = entry.refcount == 0
                if removed:
                    self.table.remove(entry)
            finally:
                self.rt.lock.release(grant)
            self._note_map("exit", clause, tid, t_op,
                           is_new=False, refcount=entry.refcount, removed=removed)

    def resolve_kernel_args(self, clauses):
        args = {c.buffer.name: c.buffer.payload for c in clauses}
        faultable = [c.buffer.range for c in clauses]
        return args, faultable

    def motion_update(self, buf: HostBuffer, to_device: bool):
        """One shared copy of the data: the update is bookkeeping only."""
        buf.check_alive()
        yield self.env.charge(self.cost.zc_map_call_us)

    def global_update(self, glob: GlobalVar):
        """Implicit Z-C / Eager handle globals "as if operating in Copy
        mode" (§IV.C): a system-scope transfer into the device copy."""
        dur = self.cost.copy_us(glob.nbytes)
        yield self.env.charge(dur)
        np.copyto(glob.device_view(), glob.host_payload)
        self.hsa.trace.record("memory_copy", self.env.now - dur, dur)
        self.ledger.mm_copy_us += dur
        self.ledger.shadow_bytes += glob.nbytes


class UsmPolicy(ZeroCopyPolicy):
    """§IV.B Unified Shared Memory: maps are no-ops; globals are pointers."""

    config = RuntimeConfig.UNIFIED_SHARED_MEMORY

    def init_global(self, glob: GlobalVar) -> None:
        glob.materialize_usm_pointer()

    def global_update(self, glob: GlobalVar):
        """The device pointer aliases the host global: mapping a global
        moves no data (runtime bookkeeping only)."""
        yield self.env.charge(self.cost.omp_runtime_call_us)


class ImplicitZeroCopyPolicy(ZeroCopyPolicy):
    """§IV.C Implicit Zero-Copy: auto-detected zero-copy, Copy-style globals."""

    config = RuntimeConfig.IMPLICIT_ZERO_COPY


class EagerMapsPolicy(ZeroCopyPolicy):
    """§IV.D Eager Maps: every map-enter prefaults the GPU page table.

    The prefault is a privileged syscall serialized on the process ``mm``
    lock — concurrent prefaulting from many OpenMP host threads contends
    here (§VI) — and it is issued on *every* map of the range: first time
    it installs translations page-by-page from the CPU table, afterwards
    it only verifies presence (§IV.D).
    """

    config = RuntimeConfig.EAGER_MAPS

    def _post_enter(self, clause: MapClause):
        t0 = self.env.now
        rng = clause.buffer.range
        if not self.rt.system.driver.has_missing_pages([rng]):
            # fast path: presence verification reads the page table under
            # a shared lock — no cross-thread serialization
            yield from self.hsa.svm_attributes_set(rng)
        else:
            # installing translations takes the process mm lock
            # exclusively; concurrent prefaults from many host threads
            # serialize here (§VI)
            grant = yield self.rt.mm_lock.acquire()
            try:
                yield from self.hsa.svm_attributes_set(rng)
            finally:
                self.rt.mm_lock.release(grant)
        self.ledger.prefault_us += self.env.now - t0


_POLICY_CLASSES = {
    RuntimeConfig.COPY: CopyPolicy,
    RuntimeConfig.UNIFIED_SHARED_MEMORY: UsmPolicy,
    RuntimeConfig.IMPLICIT_ZERO_COPY: ImplicitZeroCopyPolicy,
    RuntimeConfig.EAGER_MAPS: EagerMapsPolicy,
}


def make_policy(config: RuntimeConfig, runtime: "OpenMPRuntime") -> DataPolicy:
    return _POLICY_CLASSES[config](runtime)

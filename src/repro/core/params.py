"""The calibrated hardware/software cost model.

Every latency constant used anywhere in the stack lives here, with the
paper observation that pins it.  Units: microseconds, bytes.  All values
refer to 2 MiB (THP) pages unless stated otherwise; the paper enables THP
for every experiment (§V) "so that both configurations work with 2MB page
sizes".

Calibration notes (derived jointly from §V and Tables I–III):

* ``xnack_fault_us_per_page`` ≈ 500 µs / 2 MiB page.  Pins three
  observations at once: 452.ep's MI of "a few million microseconds" for a
  multi-GiB first-touch (≈ 6 k pages), QMCPack S2's total first-touch
  advantage "in the order of a tenth of a second" (≈ 150 pages ≈ 75 ms),
  and the spC/bt per-invocation stack-array penalty small enough that
  Implicit Zero-Copy still wins 7.8×.
* ``prefault_page_us`` ≈ 25 µs / page: 452.ep under Eager Maps pays MM of
  O(1e5) µs for the same ≈ 6 k pages Copy bulk-maps (Table III), and the
  per-page cost must be well below the XNACK replay cost for Eager to beat
  IZC on bulk first touch (§V.A.4).
* ``prefault_call_us`` ≈ 2.5 µs: QMCPack issues >1.5 M
  ``svm_attributes_set`` calls costing "a few seconds" total (§V.A.4).
* ``pool_alloc_page_us`` ≈ 100 µs / *new* page: spC's GB-scale allocations
  take tens of ms each ("kernel executions … up to 6% the time of a single
  allocation"), and ep's one-time multi-GiB pool allocation gives Copy an
  MM of O(1e5) µs (Table III).  Re-allocating memory the ROCr pool already
  holds costs only ``pool_alloc_base_us``: Table I's pool-allocate latency
  ratio of 7.41 with a 1200× call-count ratio requires steady-state Copy
  allocations to be ~100× cheaper than first-time ones.
* ``copy_base_us`` ≈ 2.5 µs and ``copy_bytes_per_us`` ≈ 1.4e6 B/µs
  (≈ 1.4 TB/s effective HBM-to-HBM SDMA): Table I's async-copy latency
  totals imply an average of ~3 µs per (mostly tiny) QMCPack copy, while
  GB-scale SPEC transfers land at ~1 ms/GiB-class times ("HBM-to-HBM
  copies", §IV.A).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from ..memory.layout import GIB, PAGE_2M

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """All latency/bandwidth constants for the simulated MI300A socket."""

    # -- geometry ----------------------------------------------------------
    page_size: int = PAGE_2M            #: THP on (paper §V)
    hbm_bytes: int = 128 * GIB          #: MI300A socket HBM capacity

    # -- GPU page-fault path (XNACK replay, §III.B) -------------------------
    xnack_fault_us_per_page: float = 500.0
    #: pipeline restart tax per kernel that faulted at all
    xnack_kernel_entry_us: float = 10.0

    # -- Eager-Maps prefault syscall (§IV.D) ----------------------------------
    prefault_call_us: float = 1.2       #: per svm_attributes_set invocation
    prefault_page_us: float = 25.0      #: per page newly added to GPU PT
    prefault_verify_page_us: float = 0.03  #: per already-present page check

    # -- ROCr pool allocator (§IV.A) -----------------------------------------
    pool_alloc_base_us: float = 10.0    #: allocation served from pool cache
    pool_alloc_page_us: float = 100.0   #: per page of new driver memory
    pool_free_base_us: float = 5.0
    pool_release_page_us: float = 4.0   #: per page returned to the driver
    #: blocks larger than this are released to the driver on free rather
    #: than retained in the pool (GB-scale spC/bt allocations stay slow)
    pool_retain_max_bytes: int = 512 * 1024 * 1024

    # -- SDMA copies -----------------------------------------------------------
    copy_base_us: float = 2.5
    copy_bytes_per_us: float = 1.4e6    #: ≈1.4 TB/s effective HBM↔HBM
    n_sdma_engines: int = 2

    # -- kernel dispatch / signals ---------------------------------------------
    dispatch_us: float = 4.0            #: packet write + doorbell
    signal_wait_base_us: float = 1.0    #: scacquire bookkeeping per wait
    signal_handler_us: float = 1.5      #: async-handler completion callback
    n_gpu_queues: int = 8               #: concurrently running kernels (one per XCD-pair queue)

    # -- host-side software costs ------------------------------------------------
    syscall_base_us: float = 1.0
    omp_runtime_call_us: float = 0.5    #: libomptarget entry bookkeeping (Copy path)
    #: zero-copy mapping bookkeeping: presence/refcount lookup only, no
    #: allocation decision or transfer submission under the lock — "a
    #: smaller number of calls to the runtime" (§V.A.2)
    zc_map_call_us: float = 0.2
    os_populate_page_us: float = 1.0    #: host-side page populate at malloc
    usm_indirection_us: float = 0.05    #: per-kernel double-indirection tax
    #: memory-manager (libomptarget) cache threshold: allocations at or
    #: below this size are served from per-size buckets after first use
    memmgr_threshold_bytes: int = 1 * 1024 * 1024
    memmgr_enabled: bool = True

    # -- measurement noise (enabled for experiment runs, zero for unit tests)
    jitter_sigma: float = 0.0      #: per-operation lognormal sigma
    run_sigma: float = 0.0         #: per-run correlated machine factor
    fault_sigma: float = 0.0       #: XNACK fault-service variance
    syscall_tail_p: float = 0.0
    syscall_tail_scale_us: float = 0.0

    def with_noise(
        self,
        sigma: float = 0.01,
        run_sigma: float = 0.03,
        fault_sigma: float = 0.9,
        tail_p: float = 2e-6,
        tail_scale_us: float = 2.5e5,
    ) -> "CostModel":
        """A copy with measurement noise enabled.

        The defaults reproduce the paper's CoV regime (§V.A.1): per-run
        correlated machine noise gives every configuration a baseline CoV
        of ≈0.03; high-variance XNACK fault servicing pushes the
        unified-memory configurations toward ≈0.08–0.10; and a rare
        heavy tail on syscalls produces the order-of-magnitude Eager-Maps
        outliers the paper attributes to OS interference (CoV 4.2 at
        S32 / 8 threads).
        """
        return replace(
            self,
            jitter_sigma=sigma,
            run_sigma=run_sigma,
            fault_sigma=fault_sigma,
            syscall_tail_p=tail_p,
            syscall_tail_scale_us=tail_scale_us,
        )

    @classmethod
    def discrete_gpu(cls) -> "CostModel":
        """A discrete-GPU deployment (PCIe-attached, e.g. MI210-class).

        Used for the performance-portability story of §IV.C: an
        application built *without* the USM pragma runs as Copy here and
        as Implicit Zero-Copy on the APU.  Relative to the APU model:

        * host↔device copies cross PCIe (~45 GB/s, higher latency) instead
          of HBM↔HBM;
        * device (VRAM) pool allocations skip the unified-memory page
          machinery and are cheaper per page;
        * XNACK-style unified memory exists but each replayed page
          migrates over PCIe — far more expensive than on the APU (the
          oversubscription cliffs of the paper's related work [18], [19]).
        """
        return cls(
            copy_base_us=8.0,
            copy_bytes_per_us=4.5e4,       # ≈45 GB/s effective PCIe
            pool_alloc_page_us=25.0,
            xnack_fault_us_per_page=3000.0,
            prefault_page_us=1500.0,       # host-initiated page migration
        )

    def copy_us(self, nbytes: int) -> float:
        """SDMA transfer duration for ``nbytes``."""
        return self.copy_base_us + nbytes / self.copy_bytes_per_us

    def describe(self) -> Dict[str, float]:
        """Flat dict of all constants (for experiment metadata)."""
        out = {}
        for name in self.__dataclass_fields__:
            out[name] = getattr(self, name)
        return out

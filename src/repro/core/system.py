"""System assembly: one simulated MI300A socket.

:class:`ApuSystem` wires the full substrate together — simulation
environment, physical HBM, CPU/GPU page tables, driver, OS allocator and
the traced HSA runtime — from a single :class:`~repro.core.params.CostModel`.
The experiments in this reproduction run on a single-socket APU, matching
the paper's setup (§V: "Experiments were performed on an AMD Instinct
MI300A series accelerator with a single socket, with one CPU and one
GPU").
"""

from __future__ import annotations

from typing import Optional

from ..driver.kfd import Kfd
from ..hsa.api import HsaRuntime
from ..memory.os_alloc import OsAllocator
from ..memory.pagetable import PageTable
from ..memory.physical import PhysicalMemory
from ..sim import Environment, Jitter, MacroEnvironment, ReferenceEnvironment, RngHub
from ..trace.hsa_trace import HsaTrace
from .params import CostModel

__all__ = ["ApuSystem"]

_ENGINES = {
    "fast": Environment,
    "reference": ReferenceEnvironment,
    "macro": MacroEnvironment,
}


class ApuSystem:
    """A fully wired single-socket APU simulation.

    ``engine`` selects the simulation scheduler: ``"fast"`` (default —
    charge fusion, event recycling, inlined stepping), ``"reference"``
    (the retained one-heap-event-per-delay scheduler) or ``"macro"``
    (MapWarp: the fused scheduler plus steady-state segment replay, see
    ``repro.sim.macro``).  All engines produce bit-identical
    simulated-time results; the bench differentials gate it.
    """

    def __init__(
        self,
        cost: Optional[CostModel] = None,
        seed: int = 0,
        detailed_trace: bool = False,
        xnack_enabled: bool = True,
        engine: str = "fast",
    ):
        if engine not in _ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; choose from {sorted(_ENGINES)}"
            )
        self.cost = cost or CostModel()
        self.seed = seed
        self.engine = engine
        self.env = _ENGINES[engine]()
        self.rng_hub = RngHub(seed)
        self.physical = PhysicalMemory(
            total_bytes=self.cost.hbm_bytes, frame_bytes=self.cost.page_size
        )
        self.cpu_pt = PageTable(self.cost.page_size, "cpu-pt")
        self.gpu_pt = PageTable(self.cost.page_size, "gpu-pt")
        self.driver = Kfd(
            self.cost,
            self.physical,
            self.cpu_pt,
            self.gpu_pt,
            xnack_enabled=xnack_enabled,
        )
        self.os_alloc = OsAllocator(
            self.physical, self.cpu_pt, on_unmap=self.driver.mmu_unmap
        )
        self.hsa_trace = HsaTrace(detailed=detailed_trace)
        self.hsa = HsaRuntime(
            self.env, self.cost, self.driver, self.hsa_trace, self.rng_hub
        )
        if self.cost.fault_sigma > 0.0:
            self.driver.stall_jitter = Jitter(
                self.rng_hub.stream("driver.faults"),
                sigma=self.cost.fault_sigma,
                scale=self.hsa.speed,
            )

    @classmethod
    def mi300a(
        cls,
        cost: Optional[CostModel] = None,
        seed: int = 0,
        noise: bool = False,
        detailed_trace: bool = False,
    ) -> "ApuSystem":
        """The paper's testbed: one MI300A socket, THP on.

        ``noise=True`` enables the measurement-noise model used by the
        repetition/CoV experiments; deterministic otherwise.
        """
        c = cost or CostModel()
        if noise:
            c = c.with_noise()
        return cls(cost=c, seed=seed, detailed_trace=detailed_trace)

    @property
    def now(self) -> float:
        return self.env.now

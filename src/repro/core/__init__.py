"""Core: runtime configurations, policies, cost model, system assembly."""

from .config import (
    ALL_CONFIGS,
    ZERO_COPY_CONFIGS,
    ConfigError,
    RunEnvironment,
    RuntimeConfig,
    select_config,
)
from .params import CostModel
from .system import ApuSystem

__all__ = [
    "ALL_CONFIGS",
    "ApuSystem",
    "ConfigError",
    "CostModel",
    "RunEnvironment",
    "RuntimeConfig",
    "ZERO_COPY_CONFIGS",
    "select_config",
]

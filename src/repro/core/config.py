"""Runtime configurations and the environment-driven selection logic.

§IV of the paper defines four runtime *configurations* — all equivalent
under OpenMP semantics, differing only in how data environments are
realized on the APU:

* :attr:`RuntimeConfig.COPY` — "Legacy" Copy: device-pool allocations and
  HBM-to-HBM transfers, exactly as on a discrete GPU.
* :attr:`RuntimeConfig.UNIFIED_SHARED_MEMORY` — the app was compiled with
  ``#pragma omp requires unified_shared_memory``; maps are no-ops and GPU
  globals are pointers into host memory (double indirection).
* :attr:`RuntimeConfig.IMPLICIT_ZERO_COPY` — the runtime detects an APU
  with XNACK enabled and toggles zero-copy automatically; globals keep the
  per-device-copy protocol of Copy mode.
* :attr:`RuntimeConfig.EAGER_MAPS` — zero-copy where every map operation
  prefaults the GPU page table through a syscall; does not require XNACK.

:func:`select_config` reproduces the decision procedure described in
§IV.C and footnote 1 (``HSA_XNACK`` / ``OMPX_APU_MAPS`` environment
variables, APU detection, the USM requirement pragma).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict

__all__ = ["RuntimeConfig", "RunEnvironment", "ConfigError", "select_config"]


class ConfigError(RuntimeError):
    """Raised for impossible deployment combinations (e.g. USM app on a
    system without unified-memory support)."""


class RuntimeConfig(enum.Enum):
    """The four runtime configurations of §IV."""

    COPY = "copy"
    UNIFIED_SHARED_MEMORY = "usm"
    IMPLICIT_ZERO_COPY = "implicit_zero_copy"
    EAGER_MAPS = "eager_maps"

    @property
    def is_zero_copy(self) -> bool:
        """Whether kernels receive host pointers (no shadow allocations)."""
        return self is not RuntimeConfig.COPY

    @property
    def needs_xnack(self) -> bool:
        """USM and Implicit Z-C rely on XNACK replay; Eager Maps and Copy
        run with XNACK disabled (§IV.D: "the GPU does not need to run
        with XNACK support")."""
        return self in (
            RuntimeConfig.UNIFIED_SHARED_MEMORY,
            RuntimeConfig.IMPLICIT_ZERO_COPY,
        )

    @property
    def globals_as_pointer(self) -> bool:
        """USM compiles GPU globals as pointers to the host global; every
        other configuration keeps a per-device copy (§IV.B/IV.C)."""
        return self is RuntimeConfig.UNIFIED_SHARED_MEMORY

    @property
    def label(self) -> str:
        return {
            RuntimeConfig.COPY: "Copy",
            RuntimeConfig.UNIFIED_SHARED_MEMORY: "Unified Shared Memory",
            RuntimeConfig.IMPLICIT_ZERO_COPY: "Implicit Z-C",
            RuntimeConfig.EAGER_MAPS: "Eager Maps",
        }[self]


@dataclass(frozen=True)
class RunEnvironment:
    """Deployment facts the runtime inspects at startup."""

    is_apu: bool = True                      #: MI300A socket vs discrete GPU
    hsa_xnack: bool = True                   #: HSA_XNACK environment variable
    ompx_apu_maps: bool = False              #: OMPX_APU_MAPS=1 (footnote 1)
    ompx_eager_maps: bool = False            #: opt-in eager prefaulting
    app_requires_usm: bool = False           #: compiled with the USM pragma
    extra: Dict[str, str] = field(default_factory=dict)


def select_config(env: RunEnvironment) -> RuntimeConfig:
    """Pick the runtime configuration for a deployment (§IV.C, fn. 1).

    Priority order mirrors the implementation the paper describes:

    1. An application built with ``requires unified_shared_memory`` *must*
       run as USM; it "can only be deployed on GPUs that support Unified
       Memory" — anything else is a :class:`ConfigError`.
    2. Eager Maps is an explicit opt-in and takes effect on any APU
       regardless of XNACK.
    3. On an APU with XNACK enabled the runtime automatically toggles
       Implicit Zero-Copy; the same applies on a discrete GPU when
       ``OMPX_APU_MAPS=1`` and XNACK is enabled.
    4. Otherwise the legacy Copy configuration is used.
    """
    if env.app_requires_usm:
        if not env.hsa_xnack:
            raise ConfigError(
                "application requires unified_shared_memory but XNACK "
                "(unified memory support) is disabled in this environment"
            )
        return RuntimeConfig.UNIFIED_SHARED_MEMORY
    if env.ompx_eager_maps and env.is_apu:
        return RuntimeConfig.EAGER_MAPS
    if env.is_apu and env.hsa_xnack:
        return RuntimeConfig.IMPLICIT_ZERO_COPY
    if env.ompx_apu_maps and env.hsa_xnack:
        # footnote 1: opt-in Implicit Zero-Copy on discrete GPUs
        return RuntimeConfig.IMPLICIT_ZERO_COPY
    return RuntimeConfig.COPY


#: Convenient iteration order used throughout experiments: the baseline
#: first, then the three zero-copy configurations in the paper's order.
ALL_CONFIGS = (
    RuntimeConfig.COPY,
    RuntimeConfig.UNIFIED_SHARED_MEMORY,
    RuntimeConfig.IMPLICIT_ZERO_COPY,
    RuntimeConfig.EAGER_MAPS,
)

ZERO_COPY_CONFIGS = (
    RuntimeConfig.UNIFIED_SHARED_MEMORY,
    RuntimeConfig.IMPLICIT_ZERO_COPY,
    RuntimeConfig.EAGER_MAPS,
)

__all__ += ["ALL_CONFIGS", "ZERO_COPY_CONFIGS"]

"""Microbenchmarks isolating single mechanisms of the cost model.

These aren't paper experiments; they exist for ablations and for pinning
each calibrated constant to an observable effect:

* :class:`TriadStream` — bandwidth/overhead balance of per-kernel
  ``always`` maps (the QMCPack steady-state pattern in isolation).
* :class:`FirstTouchSweep` — one large buffer, one kernel: isolates
  XNACK replay vs bulk-map vs prefault cost per page.
* :class:`GlobalBroadcast` — declare-target global updated between
  kernels: the only workload where USM and Implicit Z-C diverge
  (§IV.B vs §IV.C global handling).
* :class:`AllocChurn` — map/unmap cycles of a given size: exposes the
  pool retention threshold (spC/bt's GB-scale cliff).
"""

from __future__ import annotations

import numpy as np

from ..memory.layout import MIB
from ..omp.api import OmpThread
from ..omp.mapping import MapClause, MapKind
from .base import Fidelity, ThreadBody, Workload

__all__ = ["TriadStream", "FirstTouchSweep", "GlobalBroadcast", "AllocChurn"]


class TriadStream(Workload):
    """STREAM-triad style kernels with per-kernel always-maps."""

    name = "micro-triad"

    def __init__(
        self,
        fidelity: Fidelity = Fidelity.BENCH,
        n_threads: int = 1,
        buffer_bytes: int = 8 * MIB,
        kernel_us: float = 20.0,
        full_iters: int = 2000,
    ):
        super().__init__(fidelity)
        self.n_threads = n_threads
        self.buffer_bytes = buffer_bytes
        self.kernel_us = kernel_us
        self.iters = fidelity.steps(full_iters)

    def make_body(self) -> ThreadBody:
        outputs = self.outputs
        n, kernel_us, iters = self.buffer_bytes, self.kernel_us, self.iters

        def body(th: OmpThread, tid: int):
            a = yield from th.alloc(f"a{tid}", n, payload=np.arange(32.0))
            b = yield from th.alloc(f"b{tid}", n, payload=np.ones(32))
            c = yield from th.alloc(f"c{tid}", n, payload=np.zeros(32))
            yield from th.target_enter_data(
                [MapClause(a, MapKind.TO), MapClause(b, MapKind.TO),
                 MapClause(c, MapKind.TO)]
            )
            aname, bname, cname = a.name, b.name, c.name

            def triad(args, _g):
                args[cname][:] = args[aname] + 2.0 * args[bname]

            for it in range(iters):
                if it == 1:
                    th.mark("steady_start", first=False)
                yield from th.target(
                    "triad",
                    kernel_us,
                    maps=[
                        MapClause(a, MapKind.TO, always=True),
                        MapClause(b, MapKind.ALLOC),
                        MapClause(c, MapKind.FROM, always=True),
                    ],
                    fn=triad,
                )
            th.mark("steady_end", first=False)
            yield from th.target_exit_data(
                [MapClause(a, MapKind.DELETE), MapClause(b, MapKind.DELETE),
                 MapClause(c, MapKind.FROM)]
            )
            outputs.put(f"c{tid}", c.payload.copy())

        return body


class FirstTouchSweep(Workload):
    """One buffer of ``nbytes``, mapped and touched by one kernel."""

    name = "micro-first-touch"

    def __init__(self, nbytes: int = 512 * MIB, kernel_us: float = 1000.0,
                 fidelity: Fidelity = Fidelity.FULL):
        super().__init__(fidelity)
        self.nbytes = nbytes
        self.kernel_us = kernel_us

    def make_body(self) -> ThreadBody:
        outputs = self.outputs
        nbytes, kernel_us = self.nbytes, self.kernel_us

        def body(th: OmpThread, tid: int):
            buf = yield from th.alloc("data", nbytes, payload=np.zeros(64))
            rec = yield from th.target(
                "first_touch",
                kernel_us,
                maps=[MapClause(buf, MapKind.TOFROM)],
                fn=lambda a, g: a["data"].__iadd__(1.0),
            )
            outputs.put("fault_stall_us", rec.fault_stall_us)
            outputs.put("n_faults", rec.n_faults)
            outputs.put("data", buf.payload.copy())

        return body


class GlobalBroadcast(Workload):
    """Repeated global update + kernel read: USM vs per-device-copy."""

    name = "micro-global-broadcast"

    def __init__(self, fidelity: Fidelity = Fidelity.BENCH, full_iters: int = 2000,
                 kernel_us: float = 10.0, global_bytes: int = 4 * MIB):
        super().__init__(fidelity)
        self.iters = fidelity.steps(full_iters)
        self.kernel_us = kernel_us
        self.global_bytes = global_bytes

    def prepare(self, runtime) -> None:
        """Register the declare-target global (call before ``run``)."""
        self.glob = runtime.declare_target(
            "coeffs",
            np.zeros(max(1, min(self.global_bytes // 8, 1024))),
            nbytes=self.global_bytes,
        )

    def make_body(self) -> ThreadBody:
        outputs = self.outputs
        iters, kernel_us, glob = self.iters, self.kernel_us, self.glob

        def body(th: OmpThread, tid: int):
            out = yield from th.alloc("out", 2 * MIB, payload=np.zeros(4))
            yield from th.target_enter_data([MapClause(out, MapKind.TO)])
            acc = 0.0
            for it in range(iters):
                if it == 1:
                    th.mark("steady_start", first=False)
                glob.host_payload[0] = float(it)
                yield from th.update_global(glob)
                yield from th.target(
                    "read_global",
                    kernel_us,
                    maps=[MapClause(out, MapKind.FROM, always=True)],
                    fn=lambda a, g: a["out"].__setitem__(0, g["coeffs"][0] * 2.0),
                    globals_used=[glob],
                )
                acc += out.payload[0]
            th.mark("steady_end", first=False)
            yield from th.target_exit_data([MapClause(out, MapKind.DELETE)])
            outputs.put("acc", acc)

        return body


class AllocChurn(Workload):
    """Map/unmap cycles of one buffer size: the pool-retention cliff."""

    name = "micro-alloc-churn"

    def __init__(self, nbytes: int, cycles: int = 50,
                 fidelity: Fidelity = Fidelity.FULL):
        super().__init__(fidelity)
        self.nbytes = nbytes
        self.cycles = cycles

    def make_body(self) -> ThreadBody:
        outputs = self.outputs
        nbytes, cycles = self.nbytes, self.cycles

        def body(th: OmpThread, tid: int):
            buf = yield from th.alloc("churn", nbytes, payload=np.zeros(16))
            t0 = None
            for cycle in range(cycles):
                if cycle == 1:
                    t0 = th.env.now  # first cycle grows the pool
                yield from th.target_enter_data([MapClause(buf, MapKind.TO)])
                yield from th.target(
                    "touch", 50.0, maps=[MapClause(buf, MapKind.ALLOC)],
                    fn=lambda a, g: None,
                )
                yield from th.target_exit_data([MapClause(buf, MapKind.DELETE)])
            outputs.put("steady_cycle_us", (th.env.now - t0) / max(cycles - 1, 1))

        return body

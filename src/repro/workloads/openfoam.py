"""OpenFOAM-style USM application proxy.

The paper's §IV.B notes that the Unified Shared Memory implementation "is
the main mechanism underlying the OpenFOAM MI300A porting results" of its
reference [29].  This proxy models that application class — an
unstructured CFD solver compiled with ``#pragma omp requires
unified_shared_memory``:

* large mesh/field arrays that are *not* explicitly transferred (maps are
  presence bookkeeping only; the solver relies on unified memory);
* declare-target **globals** holding solver controls (relaxation factors,
  time-step) that the host updates every outer iteration — the one
  pattern where USM's pointer-globals and Implicit Z-C's per-device
  copies genuinely diverge (§IV.B vs §IV.C);
* per-iteration structure: matrix assembly, ``n_smoother`` sweeps, and a
  residual reduction read back on the host.

Functionally the proxy runs a damped Jacobi iteration on a small payload
system, so results are checkable across configurations.
"""

from __future__ import annotations

import numpy as np

from ..memory.layout import GIB, KIB
from ..omp.api import OmpThread
from ..omp.mapping import MapClause, MapKind
from .base import Fidelity, ThreadBody, Workload

__all__ = ["OpenFoamUsm"]

#: mesh + field working set (cells, faces, coefficients)
FIELD_BYTES = (int(1.0 * GIB), int(1.5 * GIB), int(0.5 * GIB))
FULL_ITERS = 400
ASSEMBLY_US = 4_000.0
SMOOTHER_US = 1_500.0
N_SMOOTHERS = 4
REDUCE_US = 300.0
PAYLOAD_N = 64


class OpenFoamUsm(Workload):
    """An OpenFOAM-like solver; pair with
    ``RuntimeConfig.UNIFIED_SHARED_MEMORY`` for the intended deployment
    (other configurations run it too, for comparison)."""

    name = "openfoam-usm"
    n_threads = 1

    def __init__(self, fidelity: Fidelity = Fidelity.BENCH):
        super().__init__(fidelity)
        self.iters = fidelity.steps(FULL_ITERS)
        self.relax = None   # declare-target global, set in prepare()
        self.dt = None

    def prepare(self, runtime) -> None:
        """Register the solver-control globals (called by the runner
        before device initialization)."""
        self.relax = runtime.declare_target("relax", np.array([0.7]))
        self.dt = runtime.declare_target("dt", np.array([1e-3]))

    def make_body(self) -> ThreadBody:
        outputs = self.outputs
        iters = self.iters
        relax, dt = self.relax, self.dt
        if relax is None or dt is None:
            raise RuntimeError("prepare(runtime) must run before make_body()")

        def body(th: OmpThread, tid: int):
            x = yield from th.alloc(
                "field_x", FIELD_BYTES[0], payload=np.zeros(PAYLOAD_N)
            )
            b = yield from th.alloc(
                "field_b", FIELD_BYTES[1],
                payload=np.sin(np.linspace(0.0, 3.0, PAYLOAD_N)),
            )
            coeffs = yield from th.alloc(
                "coeffs", FIELD_BYTES[2], payload=np.full(PAYLOAD_N, 0.25)
            )
            residual = yield from th.alloc(
                "residual", 64 * KIB, payload=np.zeros(1)
            )
            yield from th.target_enter_data(
                [
                    MapClause(x, MapKind.TO),
                    MapClause(b, MapKind.TO),
                    MapClause(coeffs, MapKind.TO),
                    MapClause(residual, MapKind.TO),
                ]
            )

            def assembly(args, g):
                args["coeffs"][:] = 0.25 + 0.001 * g["dt"][0]

            def smoother(args, g):
                w = g["relax"][0]
                xx, bb, cc = args["field_x"], args["field_b"], args["coeffs"]
                xx += w * cc * (bb - xx)

            def reduce(args, g):
                args["residual"][0] = float(
                    np.abs(args["field_b"] - args["field_x"]).sum()
                )

            history = []
            for it in range(iters):
                if it == 1:
                    th.mark("steady_start", first=False)
                # host updates solver controls, publishes them to the GPU
                relax.host_payload[0] = 0.7 - 0.2 * (it / max(iters, 1))
                yield from th.update_global(relax)
                yield from th.update_global(dt)
                yield from th.target(
                    "assembly", ASSEMBLY_US,
                    maps=[MapClause(coeffs, MapKind.ALLOC)],
                    fn=assembly, globals_used=[dt],
                )
                for _s in range(N_SMOOTHERS):
                    yield from th.target(
                        "smoother", SMOOTHER_US,
                        maps=[
                            MapClause(x, MapKind.ALLOC),
                            MapClause(b, MapKind.ALLOC),
                            MapClause(coeffs, MapKind.ALLOC),
                        ],
                        fn=smoother, globals_used=[relax],
                    )
                yield from th.target(
                    "residual", REDUCE_US,
                    maps=[
                        MapClause(x, MapKind.ALLOC),
                        MapClause(b, MapKind.ALLOC),
                        MapClause(residual, MapKind.FROM, always=True),
                    ],
                    fn=reduce,
                )
                history.append(float(residual.payload[0]))
            th.mark("steady_end", first=False)

            yield from th.target_exit_data(
                [
                    MapClause(x, MapKind.FROM),
                    MapClause(b, MapKind.RELEASE),
                    MapClause(coeffs, MapKind.RELEASE),
                    MapClause(residual, MapKind.RELEASE),
                ]
            )
            outputs.put("x", x.payload.copy())
            outputs.put("residual_history", np.array(history))

        return body

"""Workload infrastructure: fidelity scaling and the workload protocol.

A *workload* is a factory producing a thread body — a generator function
``body(th: OmpThread, tid: int)`` — plus metadata.  The same body runs
unmodified under every runtime configuration; that is the whole point.

Fidelity
--------
The paper's runs execute for minutes; a discrete-event simulation of the
full call stream is feasible but slow, so workloads scale their
steady-state iteration counts by a fidelity preset:

* ``full``  — paper-scale call counts (used for the Table I regeneration,
  where absolute call counts are the result);
* ``bench`` — ~1/20 of full (figures and ratio tables; ratios are
  insensitive to the scale because both numerator and denominator shrink
  together, which ``tests/test_workload_qmcpack.py`` verifies);
* ``test``  — ~1/100 of full (unit/integration tests).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Generator

from ..omp.api import OmpThread

__all__ = ["Fidelity", "WorkloadResult", "Workload", "ThreadBody"]

ThreadBody = Callable[[OmpThread, int], Generator]


class Fidelity(enum.Enum):
    """Steady-state scale presets."""

    TEST = "test"
    BENCH = "bench"
    FULL = "full"

    @property
    def scale(self) -> float:
        return {Fidelity.TEST: 0.01, Fidelity.BENCH: 0.05, Fidelity.FULL: 1.0}[self]

    def steps(self, full_steps: int) -> int:
        """Scaled step count, never below 2."""
        return max(2, round(full_steps * self.scale))


@dataclass
class WorkloadResult:
    """Functional outputs a workload wants checked across configurations."""

    values: Dict[str, object] = field(default_factory=dict)

    def put(self, key: str, value) -> None:
        self.values[key] = value

    def get(self, key: str):
        return self.values[key]


class Workload:
    """Base class: subclasses implement :meth:`make_body`.

    ``outputs`` is filled during the run with functional results used by
    the cross-configuration equivalence tests.
    """

    name: str = "workload"
    n_threads: int = 1

    def __init__(self, fidelity: Fidelity = Fidelity.BENCH):
        self.fidelity = fidelity
        self.outputs = WorkloadResult()

    def make_body(self) -> ThreadBody:  # pragma: no cover - interface
        raise NotImplementedError

    def describe(self) -> Dict[str, object]:
        return {"name": self.name, "n_threads": self.n_threads,
                "fidelity": self.fidelity.value}

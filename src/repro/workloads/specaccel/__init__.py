"""SPECaccel 2023 C/C++ benchmark proxies (§V.B).

One module per benchmark, each encoding the allocation/copy/first-touch
structure the paper uses to explain its Table II ratio:

* :mod:`.stencil` — 403.stencil: two data copies (begin/end of the
  simulation), long compute, modest first-touch → zero-copy ≈ 0.99.
* :mod:`.lbm` — 404.lbm: one large initial transfer plus per-timestep
  parameter maps → zero-copy ≈ 1.03–1.05.
* :mod:`.ep` — 452.ep: GPU-side first-touch initialization of large
  re-allocated buffers → zero-copy ≈ 0.89, Eager ≈ 0.99.
* :mod:`.spc` — 457.spC: GB-scale allocations/deletions every 13 kernels
  → zero-copy ≈ 7.8, Eager best.
* :mod:`.bt` — 470.bt: >2 GB allocations, 10 kernels per cycle →
  zero-copy ≈ 4.9, Eager best.
"""

from .bt import Bt470
from .ep import Ep452
from .lbm import Lbm404
from .spc import SpC457
from .stencil import Stencil403

#: all five benchmarks in the paper's Table II column order
ALL_BENCHMARKS = {
    "stencil": Stencil403,
    "lbm": Lbm404,
    "ep": Ep452,
    "spC": SpC457,
    "bt": Bt470,
}

__all__ = ["ALL_BENCHMARKS", "Bt470", "Ep452", "Lbm404", "SpC457", "Stencil403"]

"""470.bt proxy: block-tridiagonal solver with >2 GB allocation cycles.

Paper structure (§V.B): "470.bt is similar [to 457.spC], except that the
largest data allocation is above 2GBs, 10 kernels are executed between
the data allocation and data deletion sequence, and the most time
consuming kernel is approximately 30% of the time it takes to execute the
largest data allocation."  Like spC it re-faults per-invocation stack
arrays under the XNACK configurations, which is why Eager Maps wins
(Table II: 5.10 vs 4.88/4.77).
"""

from __future__ import annotations

import numpy as np

from ...memory.layout import GIB, MIB
from ...omp.api import OmpThread
from ...omp.mapping import MapClause, MapKind
from ..base import Fidelity, ThreadBody, Workload

__all__ = ["Bt470"]

#: largest allocation "above 2GBs" plus two companions
ARRAY_BYTES = (int(2.5 * GIB), GIB, GIB)
KERNELS_PER_CYCLE = 10
#: top kernel ≈ 30 % of the largest allocation (1280 pages × 100 µs)
TOP_KERNEL_US = 38_400.0
OTHER_KERNEL_US = 2_000.0
N_STACK_ARRAYS = 6
STACK_BYTES = 2 * MIB
FULL_CYCLES = 500
PAYLOAD_N = 96


class Bt470(Workload):
    """The 470.bt proxy (single host thread)."""

    name = "470.bt"
    n_threads = 1

    def __init__(self, fidelity: Fidelity = Fidelity.FULL):
        super().__init__(fidelity)
        self.cycles = fidelity.steps(FULL_CYCLES)

    def make_body(self) -> ThreadBody:
        outputs = self.outputs
        cycles = self.cycles

        def body(th: OmpThread, tid: int):
            arrays = []
            for i, nbytes in enumerate(ARRAY_BYTES):
                buf = yield from th.alloc(
                    f"bt_u{i}", nbytes,
                    payload=np.linspace(-1.0, 1.0, PAYLOAD_N) * (i + 1),
                )
                arrays.append(buf)

            def bt_solve(args, _g):
                u, lhs, rhs = (args[f"bt_u{i}"] for i in range(3))
                rhs[:] = u - 0.25 * (np.roll(u, 1) + np.roll(u, -1) - 2 * u)
                lhs[:] = 0.5 * (rhs + np.roll(rhs, 1))
                u -= 0.001 * lhs

            for _cycle in range(cycles):
                yield from th.target_enter_data(
                    [MapClause(b, MapKind.TO) for b in arrays]
                )
                stack_bufs = []
                for i in range(N_STACK_ARRAYS):
                    sb = yield from th.alloc(
                        f"bt_stack{i}", STACK_BYTES,
                        payload=np.zeros(8), region="stack",
                    )
                    stack_bufs.append(sb)
                yield from th.target_enter_data(
                    [MapClause(b, MapKind.TO) for b in stack_bufs]
                )

                for k in range(KERNELS_PER_CYCLE):
                    yield from th.target(
                        "bt_top" if k == 0 else "bt_sweep",
                        TOP_KERNEL_US if k == 0 else OTHER_KERNEL_US,
                        maps=[MapClause(b, MapKind.ALLOC) for b in arrays]
                        + [MapClause(stack_bufs[k % N_STACK_ARRAYS], MapKind.ALLOC)],
                        fn=bt_solve,
                    )

                yield from th.target_exit_data(
                    [MapClause(arrays[0], MapKind.FROM)]
                    + [MapClause(b, MapKind.DELETE) for b in arrays[1:]]
                )
                yield from th.target_exit_data(
                    [MapClause(b, MapKind.DELETE) for b in stack_bufs]
                )
                for sb in stack_bufs:
                    yield from th.free(sb)

            outputs.put("u0", arrays[0].payload.copy())
            outputs.put("residual", float(np.abs(arrays[0].payload).sum()))

        return body

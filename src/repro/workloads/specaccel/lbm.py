"""404.lbm proxy: lattice-Boltzmann flow with periodic field stores.

Paper structure (§V.B): "404.lbm performs a large data transfer at the
beginning of the application, when running in Copy configuration.  This
is not executed for the zero-copy configurations, which consequently
perform slightly better" (Table II: 1.025–1.05).

The proxy maps two distribution grids once at start (the large initial
transfer), then runs timesteps whose target launches carry the usual
per-kernel parameter maps plus ``always from`` stores of observable
fields — per-launch mapping traffic that exists in the OpenMP port of a
streaming code and that Copy pays with allocations, copies and waits
while zero-copy pays only bookkeeping.  The zero-copy configurations
additionally absorb the grids' first-touch, which is why their advantage
here is only a few percent.
"""

from __future__ import annotations

import numpy as np

from ...memory.layout import GIB, KIB, MIB
from ...omp.api import OmpThread
from ...omp.mapping import MapClause, MapKind
from ..base import Fidelity, ThreadBody, Workload

__all__ = ["Lbm404"]

#: two distribution grids, mapped once at start (the big initial transfer)
GRID_BYTES = int(1.5 * GIB)
#: per-timestep parameter buffers (always to)
PARAM_BYTES = 64 * KIB
#: per-timestep observable stores (always from)
STORE_BYTES = 32 * MIB
FULL_STEPS = 15_000
KERNEL_US = 600.0
PAYLOAD_N = 256


class Lbm404(Workload):
    """The 404.lbm proxy (single host thread)."""

    name = "404.lbm"
    n_threads = 1

    def __init__(self, fidelity: Fidelity = Fidelity.FULL):
        super().__init__(fidelity)
        self.steps = fidelity.steps(FULL_STEPS)

    def make_body(self) -> ThreadBody:
        outputs = self.outputs
        steps = self.steps

        def body(th: OmpThread, tid: int):
            f_even = yield from th.alloc(
                "f_even", GRID_BYTES, payload=np.full(PAYLOAD_N, 1.0 / 9.0)
            )
            f_odd = yield from th.alloc(
                "f_odd", GRID_BYTES, payload=np.zeros(PAYLOAD_N)
            )
            omega = yield from th.alloc("omega", PARAM_BYTES, payload=np.array([1.85]))
            body_force = yield from th.alloc(
                "body_force", PARAM_BYTES, payload=np.array([5e-5])
            )
            density = yield from th.alloc(
                "density", STORE_BYTES, payload=np.zeros(4)
            )
            velocity = yield from th.alloc(
                "velocity", STORE_BYTES, payload=np.zeros(4)
            )

            # the large data transfer at the beginning (§V.B)
            yield from th.target_enter_data(
                [
                    MapClause(f_even, MapKind.TO),
                    MapClause(f_odd, MapKind.ALLOC),
                    MapClause(density, MapKind.ALLOC),
                    MapClause(velocity, MapKind.ALLOC),
                ]
            )

            def collide_stream(args, _g):
                src = args["f_even"] if args["__even__"][0] else args["f_odd"]
                dst = args["f_odd"] if args["__even__"][0] else args["f_even"]
                w, g = args["omega"][0], args["body_force"][0]
                dst[:] = src - w * (src - src.mean()) + g
                args["density"][0] = float(dst.sum())
                args["velocity"][0] = float(dst[0] - dst[-1])

            # tiny flag buffer steering the ping-pong inside the kernel
            flag = yield from th.alloc("__even__", 4096, payload=np.array([1.0]))
            yield from th.target_enter_data([MapClause(flag, MapKind.TO)])

            for step in range(steps):
                flag.payload[0] = 1.0 if step % 2 == 0 else 0.0
                yield from th.target(
                    "collide_stream",
                    KERNEL_US,
                    maps=[
                        MapClause(omega, MapKind.TO, always=True),
                        MapClause(body_force, MapKind.TO, always=True),
                        MapClause(flag, MapKind.TO, always=True),
                        MapClause(density, MapKind.FROM, always=True),
                        MapClause(velocity, MapKind.FROM, always=True),
                        MapClause(f_even, MapKind.ALLOC),
                        MapClause(f_odd, MapKind.ALLOC),
                    ],
                    fn=collide_stream,
                )

            result = f_odd if steps % 2 else f_even
            yield from th.target_exit_data(
                [
                    MapClause(result, MapKind.FROM),
                    MapClause(f_even if result is f_odd else f_odd, MapKind.RELEASE),
                    MapClause(density, MapKind.RELEASE),
                    MapClause(velocity, MapKind.RELEASE),
                    MapClause(flag, MapKind.RELEASE),
                ]
            )
            outputs.put("flow_checksum", float(result.payload.sum()))
            outputs.put("density", float(density.payload[0]))

        return body

"""403.stencil proxy: iterative grid relaxation.

Paper structure (§V.B): "In Copy configuration, 403.stencil performs two
data copies, between host thread allocated memory and ROCr allocated
memory, at the beginning and at the end of the simulation" — a
``map(to:)`` of the input grid at start, a ``map(from:)`` of the result
at the end — and "steady-state computations of both kernels access memory
exclusively from the GPU".  The first-touch of the multi-GiB grids is
what zero-copy pays instead (MI of O(1e6) µs, Table III), but the long
compute phase dilutes it to a ~1 % slowdown (Table II: 0.98–0.99).

Functionally the proxy runs a real 5-point Jacobi relaxation on a small
payload grid, ping-ponging between the two mapped arrays *on the device
side* (the buffers stay mapped for the whole simulation, so the data
lives wherever the configuration put it); the converged field must be
bit-identical across all four runtime configurations.
"""

from __future__ import annotations

import numpy as np

from ...memory.layout import GIB, MIB
from ...omp.api import OmpThread
from ...omp.mapping import MapClause, MapKind
from ..base import Fidelity, ThreadBody, Workload

__all__ = ["Stencil403"]

#: two grid arrays (src/dst), ~2 GiB each: 2048 huge pages of first touch
GRID_BYTES = 2 * GIB
#: the "much smaller array" 403.stencil initializes (§V.B)
COEFF_BYTES = 32 * MIB
#: full-fidelity iteration count and per-iteration kernel time: total
#: compute ≈ 100 s, so the ~1e6 µs MI lands at ≈ 1 %
FULL_ITERS = 4000
KERNEL_US = 25_000.0
#: functional payload grid edge (payload is a PAYLOAD_N × PAYLOAD_N field)
PAYLOAD_N = 48


def _sweep(src: np.ndarray, dst: np.ndarray, c: float) -> None:
    """One 5-point Jacobi sweep; boundaries carry over unchanged."""
    dst[1:-1, 1:-1] = c * (
        src[:-2, 1:-1] + src[2:, 1:-1] + src[1:-1, :-2] + src[1:-1, 2:]
    )
    dst[0, :] = src[0, :]
    dst[-1, :] = src[-1, :]
    dst[:, 0] = src[:, 0]
    dst[:, -1] = src[:, -1]


class Stencil403(Workload):
    """The 403.stencil proxy (single host thread, as in SPECaccel)."""

    name = "403.stencil"
    n_threads = 1

    def __init__(self, fidelity: Fidelity = Fidelity.FULL):
        super().__init__(fidelity)
        self.iters = fidelity.steps(FULL_ITERS)

    def make_body(self) -> ThreadBody:
        outputs = self.outputs
        iters = self.iters

        def body(th: OmpThread, tid: int):
            field = np.zeros((PAYLOAD_N, PAYLOAD_N))
            field[0, :] = 1.0  # hot boundary
            grid_a = yield from th.alloc("grid_a", GRID_BYTES, payload=field)
            grid_b = yield from th.alloc(
                "grid_b", GRID_BYTES, payload=np.zeros((PAYLOAD_N, PAYLOAD_N))
            )
            coeff = yield from th.alloc(
                "coeff", COEFF_BYTES, payload=np.array([0.25])
            )

            # begin-of-simulation copy (§V.B) + coefficient init on GPU
            yield from th.target_enter_data(
                [
                    MapClause(grid_a, MapKind.TO),
                    MapClause(grid_b, MapKind.ALLOC),
                    MapClause(coeff, MapKind.ALLOC),
                ]
            )
            yield from th.target(
                "init_coeff",
                200.0,
                maps=[MapClause(coeff, MapKind.ALLOC)],
                fn=lambda a, g: a["coeff"].__setitem__(0, 0.25),
            )

            def forward(args, _g):
                _sweep(args["grid_a"], args["grid_b"], args["coeff"][0])

            def backward(args, _g):
                _sweep(args["grid_b"], args["grid_a"], args["coeff"][0])

            for it in range(iters):
                yield from th.target(
                    "jacobi_sweep",
                    KERNEL_US,
                    maps=[
                        MapClause(grid_a, MapKind.ALLOC),
                        MapClause(grid_b, MapKind.ALLOC),
                        MapClause(coeff, MapKind.ALLOC),
                    ],
                    fn=forward if it % 2 == 0 else backward,
                )

            # end-of-simulation copy (§V.B): result lives in the array the
            # last sweep wrote
            result, other = (grid_b, grid_a) if iters % 2 else (grid_a, grid_b)
            yield from th.target_exit_data(
                [
                    MapClause(result, MapKind.FROM),
                    MapClause(other, MapKind.RELEASE),
                    MapClause(coeff, MapKind.RELEASE),
                ]
            )
            outputs.put("field", result.payload.copy())
            outputs.put("checksum", float(result.payload.sum()))

        return body

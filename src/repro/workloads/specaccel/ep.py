"""452.ep proxy: embarrassingly parallel random-number batches.

Paper structure (§V.B): "452.ep allocates GPU memory using ROCr but does
not perform memory copies" and "initializes memory in a target region,
which performs worse if the memory being initialized was obtained using
an OS-allocator […] GPU TLB page faults are performed while the kernel is
running, upon touch of a memory page and page-by-page".

The proxy runs batch cycles; each cycle allocates a fresh working buffer
(an OS allocation that glibc ``munmap``\\ s on free, so the GPU
translations die with it), initializes it *inside a target region* (the
first-touch kernel), reduces it, and frees it.  A large table persists
for the whole run.

Cost consequences per configuration:

* Copy: pool allocations are bulk-mapped (no kernel-time faults, MI = 0)
  and the per-cycle buffer is pool-retained, so only the first cycle and
  the persistent table pay driver work — MM of O(1e5) µs (Table III).
* Implicit Z-C / USM: every cycle's init kernel absorbs XNACK replay for
  the whole fresh buffer — MI of O(1e6) µs, the 0.89 ratio of Table II.
* Eager Maps: each cycle's map prefaults instead — MM of O(1e5) µs,
  recovering to ≈ 0.99.
"""

from __future__ import annotations

import numpy as np

from ...memory.layout import GIB, MIB
from ...omp.api import OmpThread
from ...omp.mapping import MapClause, MapKind
from ..base import Fidelity, ThreadBody, Workload

__all__ = ["Ep452"]

#: persistent Gaussian table, mapped once
TABLE_BYTES = int(2.25 * GIB)
#: fresh per-cycle batch buffer (re-allocated from the OS every cycle)
BATCH_BYTES = 192 * MIB
#: full-fidelity cycles; per-cycle kernels sized so total compute ≈ 29 s
#: (the 0.89 ratio then follows from MI ≈ 3.1e6 µs of per-cycle re-faulting)
FULL_CYCLES = 64
INIT_KERNEL_US = 64_000.0
COMPUTE_KERNELS_PER_CYCLE = 6
COMPUTE_KERNEL_US = 64_000.0
PAYLOAD_ELEMS = 1024


class Ep452(Workload):
    """The 452.ep proxy (single host thread)."""

    name = "452.ep"
    n_threads = 1

    def __init__(self, fidelity: Fidelity = Fidelity.FULL):
        super().__init__(fidelity)
        self.cycles = fidelity.steps(FULL_CYCLES)

    def make_body(self) -> ThreadBody:
        outputs = self.outputs
        cycles = self.cycles

        def body(th: OmpThread, tid: int):
            table = yield from th.alloc(
                "gauss_table", TABLE_BYTES, payload=np.linspace(0.0, 1.0, 256)
            )
            yield from th.target_enter_data([MapClause(table, MapKind.ALLOC)])
            # table itself is initialized on the GPU too
            yield from th.target(
                "init_table",
                INIT_KERNEL_US,
                maps=[MapClause(table, MapKind.ALLOC)],
                fn=lambda a, g: np.copyto(
                    a["gauss_table"], np.linspace(0.0, 1.0, a["gauss_table"].size)
                ),
            )

            total = 0.0
            for cycle in range(cycles):
                batch = yield from th.alloc(
                    "batch", BATCH_BYTES, payload=np.zeros(PAYLOAD_ELEMS)
                )
                yield from th.target_enter_data([MapClause(batch, MapKind.ALLOC)])

                # first-touch initialization inside a target region: this
                # kernel absorbs the XNACK replay for the whole batch
                def init_batch(args, _g, c=cycle):
                    x = np.arange(args["batch"].size, dtype=np.float64)
                    args["batch"][:] = np.sin(0.001 * (x + c))

                yield from th.target(
                    "init_batch",
                    INIT_KERNEL_US,
                    maps=[MapClause(batch, MapKind.ALLOC)],
                    fn=init_batch,
                )
                for _k in range(COMPUTE_KERNELS_PER_CYCLE):
                    yield from th.target(
                        "ep_compute",
                        COMPUTE_KERNEL_US,
                        maps=[
                            MapClause(batch, MapKind.ALLOC),
                            MapClause(table, MapKind.ALLOC),
                        ],
                        fn=lambda a, g: a["batch"].__imul__(1.0000001),
                    )
                # scalar reduction result crosses back via a from-map
                result = yield from th.alloc("result", 4096, payload=np.zeros(1))
                yield from th.target(
                    "ep_reduce",
                    500.0,
                    maps=[
                        MapClause(batch, MapKind.ALLOC),
                        MapClause(result, MapKind.TOFROM),
                    ],
                    fn=lambda a, g: a["result"].__setitem__(0, a["batch"].sum()),
                )
                total += float(result.payload[0])
                yield from th.free(result)
                yield from th.target_exit_data([MapClause(batch, MapKind.DELETE)])
                yield from th.free(batch)  # munmap: GPU translations die

            yield from th.target_exit_data([MapClause(table, MapKind.RELEASE)])
            outputs.put("total", total)

        return body

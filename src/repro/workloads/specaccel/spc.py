"""457.spC proxy: scalar-pentadiagonal solver with GB-scale map churn.

Paper structure (§V.B): "457.spC performs data allocations and data
deletions every 13 kernel launches, and the memory being allocated is in
the order of GBs.  Data allocations are synchronous w.r.t. subsequent
kernel launches […] Kernel executions inside the data allocation and data
deletion sequence may take up to 6% the time it takes to perform a single
allocation."  Additionally "host data is allocated on the program stack
at each of the containing host function invocation, and is first-touched
on the GPU every time the function is called" — the stack-array
re-faulting that makes Eager Maps the best configuration (8.10 vs 7.80).

Per cycle the proxy maps three ~1.4 GiB heap arrays (``to``), launches 13
solver kernels, and deletes the mappings; the host heap arrays persist,
but fresh 2 MiB *stack* arrays are allocated per invocation.  Under Copy
the GB-scale pool allocations dominate (they exceed the pool's retention
threshold, so every cycle pays full driver work); under zero-copy the
cycles cost only kernels plus (for XNACK configs) stack re-faults.
"""

from __future__ import annotations

import numpy as np

from ...memory.layout import GIB, MIB
from ...omp.api import OmpThread
from ...omp.mapping import MapClause, MapKind
from ..base import Fidelity, ThreadBody, Workload

__all__ = ["SpC457"]

#: three solver arrays mapped/unmapped per cycle ("order of GBs")
ARRAY_BYTES = int(1.4 * GIB)
N_ARRAYS = 3
#: per-invocation stack arrays (fresh addresses every call)
N_STACK_ARRAYS = 3
STACK_BYTES = 2 * MIB
KERNELS_PER_CYCLE = 13   #: "every 13 kernel launches"
KERNEL_US = 2300.0       #: ≲6 % of a single ~72 ms allocation
FULL_CYCLES = 600
PAYLOAD_N = 128


class SpC457(Workload):
    """The 457.spC proxy (single host thread)."""

    name = "457.spC"
    n_threads = 1

    def __init__(self, fidelity: Fidelity = Fidelity.FULL):
        super().__init__(fidelity)
        self.cycles = fidelity.steps(FULL_CYCLES)

    def make_body(self) -> ThreadBody:
        outputs = self.outputs
        cycles = self.cycles

        def body(th: OmpThread, tid: int):
            # heap arrays persist on the host for the whole run
            arrays = []
            for i in range(N_ARRAYS):
                buf = yield from th.alloc(
                    f"sp_u{i}", ARRAY_BYTES,
                    payload=np.linspace(0.0, 1.0, PAYLOAD_N) + i,
                )
                arrays.append(buf)

            def adi_sweep(args, _g):
                u, rhs, lhs = (args[f"sp_u{i}"] for i in range(N_ARRAYS))
                s = args["sp_stack0"]
                rhs[:] = 0.5 * (u + np.roll(u, 1))
                lhs[:] = 0.5 * (u + np.roll(u, -1))
                u += 0.01 * (rhs - lhs)
                s[0] = float(u.sum())

            for _cycle in range(cycles):
                # "data allocations … every 13 kernel launches"
                yield from th.target_enter_data(
                    [MapClause(b, MapKind.TO) for b in arrays]
                )
                # fresh per-invocation stack arrays (re-faulted by XNACK
                # configurations every call)
                stack_bufs = []
                for i in range(N_STACK_ARRAYS):
                    sb = yield from th.alloc(
                        f"sp_stack{i}", STACK_BYTES,
                        payload=np.zeros(8), region="stack",
                    )
                    stack_bufs.append(sb)
                yield from th.target_enter_data(
                    [MapClause(b, MapKind.TO) for b in stack_bufs]
                )

                for _k in range(KERNELS_PER_CYCLE):
                    yield from th.target(
                        "adi_sweep",
                        KERNEL_US,
                        maps=[MapClause(b, MapKind.ALLOC) for b in arrays]
                        + [MapClause(stack_bufs[0], MapKind.ALLOC)],
                        fn=adi_sweep,
                    )
                # data deletions end the cycle; one array carries results
                # out (stack payloads are never read on the host: without
                # a from-map their host visibility is configuration
                # dependent, i.e. not OpenMP-portable)
                yield from th.target_exit_data(
                    [MapClause(arrays[0], MapKind.FROM)]
                    + [MapClause(b, MapKind.DELETE) for b in arrays[1:]]
                )
                yield from th.target_exit_data(
                    [MapClause(b, MapKind.DELETE) for b in stack_bufs]
                )
                for sb in stack_bufs:
                    yield from th.free(sb)  # stack frame dies

            outputs.put("u0", arrays[0].payload.copy())
            outputs.put("u0_sum", float(arrays[0].payload.sum()))

        return body

"""QMCPack NiO proxy: the paper's production-application workload.

QMCPack (§V.A) is a quantum Monte Carlo application with >50 target
constructs, two discrete-GPU optimizations the paper studies —
ahead-of-time bulk data transfer and multi-threaded data-transfer latency
hiding — and a steady state dominated by many small kernels each wrapped
in ``always``-modified maps of small parameter/result buffers.

The proxy encodes the structural features §V.A uses to explain every
observed trend:

* **Fixed walker population, per-thread crowds.**  ``WALKERS`` total
  walkers are split across the OpenMP host threads; every thread runs the
  same number of MC steps and launches the same number of kernels per
  step, so total kernel count scales ~linearly with threads (Table I:
  Implicit Z-C signal waits 99,627 → 738,483 from 1 to 8 threads) while
  total compute stays fixed (each kernel processes a smaller crowd).
* **Ahead-of-time transfer.**  Thread 0 maps the read-only spline table
  (split into chunks so first-touch spreads over the first kernels) with
  ``map(to:)`` at setup — a single bulk HBM-to-HBM copy under Copy, a
  first-touch XNACK stream under Implicit Z-C/USM, a prefault under
  Eager.
* **Steady-state always-maps.**  Every kernel carries two ``always to``
  parameter buffers and one ``always from`` cross-team-reduction buffer:
  under Copy that is 2 async H2D (async-handler completion) + 1 barrier
  wait + 1 synchronous D2H per kernel — the 3:2 ratio between
  ``memory_async_copy`` and ``signal_async_handler`` in Table I.
* **Per-step scratch (re)allocation.**  Each step allocates/deletes
  per-walker-batch scratch: a constant total of ``BATCH_ALLOCS_PER_STEP``
  device allocations per step under Copy (Table I's ~23 k pool-allocate
  calls at full fidelity), pure bookkeeping under zero-copy.
* **Host-side reduction buffers refreshed periodically** — the §V.A.4
  "persisting difference" between Eager Maps and Implicit Z-C: a fresh
  host allocation re-faults under XNACK but is cheaply prefaulted by
  Eager.

Sizes follow NiO problem scaling: kernel time grows ~``s^0.96`` (the
paper reports ×10 total kernel time from S2 to S24, a ×12 size step) and
per-kernel transfer sizes grow ``s^0.65`` (copy traffic grows about half
as fast as kernel time, §V.A.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..memory.layout import KIB, MIB
from ..omp.api import OmpThread
from ..omp.mapping import MapClause, MapKind
from .base import Fidelity, ThreadBody, Workload

__all__ = ["QmcPackNio", "NIO_SIZES", "nio_parameters"]

#: NiO problem sizes studied in the paper (S1 exists but is excluded from
#: the figures as runtime-dominated; we keep it available).
NIO_SIZES = (1, 2, 4, 8, 16, 24, 32, 48, 64, 128)

#: fixed total walker population (crowds = walkers / threads)
WALKERS = 128

#: full-fidelity steady state: steps × kernels/step ≈ 99.4 k kernels per
#: thread, matching Table I's Implicit Z-C signal-wait count (99,627)
FULL_STEPS = 1400
KERNELS_PER_STEP = 71

#: per-step device scratch allocations (total across threads); at full
#: fidelity 1400 × 16 = 22,400 ≈ Table I's 23,277 Copy pool allocations
BATCH_ALLOCS_PER_STEP = 16

#: reduction host buffers are reallocated every this many steps
REDUCTION_REFRESH_STEPS = 64

#: spline table is split into chunks so zero-copy first touch spreads
#: over the first kernel launches (§V.A.4's "first hundred launches")
SPLINE_CHUNKS = 16

#: steps before the steady-state measurement window opens — the window
#: must exclude working-set first touch so that scaled-down fidelities
#: report the same steady-state ratios as paper-scale runs
WARMUP_STEPS = 2


@dataclass(frozen=True)
class NioParams:
    """Derived sizing for one problem size and thread count."""

    size: int
    n_threads: int
    steps: int
    kernels_per_step: int
    walkers_per_thread: int
    spline_bytes: int
    walker_bytes_per_thread: int
    param_bytes: int
    reduction_bytes: int
    scratch_bytes: int
    kernel_compute_us: float


def nio_parameters(size: int, n_threads: int, fidelity: Fidelity) -> NioParams:
    """Sizing model for NiO S{size} with ``n_threads`` host threads."""
    if size not in NIO_SIZES:
        raise ValueError(f"unknown NiO size S{size}; choose from {NIO_SIZES}")
    if not 1 <= n_threads <= WALKERS:
        raise ValueError(f"n_threads must be in [1, {WALKERS}]")
    rel = size / 2.0  # S2 is the reference point
    walkers_t = max(1, WALKERS // n_threads)
    return NioParams(
        size=size,
        n_threads=n_threads,
        steps=fidelity.steps(FULL_STEPS),
        kernels_per_step=KERNELS_PER_STEP,
        walkers_per_thread=walkers_t,
        # read-only shared spline table: ~260 MiB at S2 (first-touch cost
        # "in the order of a tenth of a second", §V.A.4)
        spline_bytes=int(260 * MIB * rel**0.7),
        walker_bytes_per_thread=int(2 * MIB * walkers_t * rel**0.9 / 8),
        param_bytes=int(48 * KIB * rel**1.45),
        reduction_bytes=int(16 * KIB * rel**0.8),
        scratch_bytes=int(1.5 * MIB * rel**0.65),
        # per-kernel compute: ~30 µs for the full crowd at S2, split
        # across crowds; grows s^0.96 (×10 kernel time S2→S24, §V.A.3)
        kernel_compute_us=30.0 * rel**0.96 * (walkers_t / WALKERS),
    )


class QmcPackNio(Workload):
    """The NiO performance test proxy."""

    def __init__(
        self,
        size: int = 2,
        n_threads: int = 1,
        fidelity: Fidelity = Fidelity.BENCH,
    ):
        super().__init__(fidelity)
        self.name = f"qmcpack-nio-S{size}"
        self.n_threads = n_threads
        self.params = nio_parameters(size, n_threads, fidelity)

    # ------------------------------------------------------------------
    def make_body(self) -> ThreadBody:
        p = self.params
        outputs = self.outputs
        spline_chunks: List = []  # shared across threads (read-only)
        setup_done = {"count": 0}
        teardown_done = {"count": 0}

        def body(th: OmpThread, tid: int):
            env = th.env
            # ---------------- setup: ahead-of-time data transfer --------
            if tid == 0:
                chunk = max(p.spline_bytes // SPLINE_CHUNKS, 1)
                for c in range(SPLINE_CHUNKS):
                    rng = np.arange(16.0) + c
                    buf = yield from th.alloc(f"spline{c}", chunk, payload=rng)
                    spline_chunks.append(buf)
                # bulk transfer at application start (§V.A optimization 1)
                yield from th.target_enter_data(
                    [MapClause(b, MapKind.TO) for b in spline_chunks]
                )
            else:
                # other threads wait for the shared table to be published
                while len(spline_chunks) < SPLINE_CHUNKS:
                    yield env.timeout(50.0)

            walkers = yield from th.alloc(
                f"walkers{tid}",
                max(p.walker_bytes_per_thread, 1),
                payload=np.full(p.walkers_per_thread * 4, float(tid + 1)),
            )
            par_a = yield from th.alloc(
                f"par_a{tid}", p.param_bytes, payload=np.full(8, 1.000001)
            )
            par_b = yield from th.alloc(
                f"par_b{tid}", p.param_bytes, payload=np.full(8, 1e-7)
            )
            scratch = yield from th.alloc(f"scratch{tid}", p.scratch_bytes)
            yield from th.target_enter_data(
                [
                    MapClause(walkers, MapKind.TO),
                    MapClause(par_a, MapKind.TO),
                    MapClause(par_b, MapKind.TO),
                ]
            )
            setup_done["count"] += 1
            while setup_done["count"] < p.n_threads:
                yield env.timeout(50.0)

            # ---------------- steady state -----------------------------
            reduction = yield from th.alloc(
                f"red{tid}", p.reduction_bytes, payload=np.zeros(8)
            )
            yield from th.target_enter_data([MapClause(reduction, MapKind.TO)])
            acc = 0.0
            red_gen = 0
            batch_allocs = max(1, BATCH_ALLOCS_PER_STEP // p.n_threads)
            kid = 0
            wname, aname, bname, rname = (
                walkers.name, par_a.name, par_b.name, reduction.name,
            )

            def kernel(args: Dict[str, np.ndarray], _g, kid_=None):
                w = args[wname]
                w *= args[aname][0]
                w += args[bname][0]
                args[rname][0] = float(w[0]) + float(w[-1])

            for step in range(p.steps):
                if step == WARMUP_STEPS:
                    # first-touch of the working set is over; the steady
                    # window starts once the *last* thread gets here
                    th.mark("steady_start", first=False)
                # per-step scratch (re)mapping: device alloc/free per step
                # under Copy, bookkeeping under zero-copy
                for _ in range(batch_allocs):
                    yield from th.target_enter_data([MapClause(scratch, MapKind.TO)])
                    yield from th.target_exit_data([MapClause(scratch, MapKind.DELETE)])
                # drift/diffusion/energy kernels over the crowd
                for _k in range(p.kernels_per_step):
                    chunk = spline_chunks[kid % SPLINE_CHUNKS]
                    yield from th.target(
                        "mc_step",
                        p.kernel_compute_us,
                        maps=[
                            MapClause(par_a, MapKind.TO, always=True),
                            MapClause(par_b, MapKind.TO, always=True),
                            MapClause(reduction, MapKind.FROM, always=True),
                            MapClause(walkers, MapKind.ALLOC),
                            MapClause(chunk, MapKind.ALLOC),
                        ],
                        fn=kernel,
                    )
                    acc += reduction.payload[0]
                    kid += 1
                # periodic host-side reduction-buffer refresh (§V.A.4)
                if (step + 1) % REDUCTION_REFRESH_STEPS == 0:
                    yield from th.target_exit_data(
                        [MapClause(reduction, MapKind.DELETE)]
                    )
                    yield from th.free(reduction)
                    red_gen += 1
                    reduction = yield from th.alloc(
                        f"red{tid}", p.reduction_bytes, payload=np.zeros(8)
                    )
                    yield from th.target_enter_data(
                        [MapClause(reduction, MapKind.TO)]
                    )

            th.mark("steady_end", first=False)
            # ---------------- teardown ---------------------------------
            yield from th.target_exit_data([MapClause(reduction, MapKind.DELETE)])
            yield from th.target_exit_data(
                [
                    MapClause(walkers, MapKind.FROM),
                    MapClause(par_a, MapKind.RELEASE),
                    MapClause(par_b, MapKind.RELEASE),
                ]
            )
            # the shared spline table is unmapped once every thread is
            # done with it (outside the measurement window, so Table I
            # call counts and steady-state ratios are unaffected)
            teardown_done["count"] += 1
            if tid == 0:
                while teardown_done["count"] < p.n_threads:
                    yield env.timeout(50.0)
                yield from th.target_exit_data(
                    [MapClause(b, MapKind.RELEASE) for b in spline_chunks]
                )
            outputs.put(f"acc{tid}", acc)
            outputs.put(f"walkers{tid}", walkers.payload.copy())

        return body

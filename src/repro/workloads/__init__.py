"""Workloads: the QMCPack NiO proxy, SPECaccel 2023 proxies, and
mechanism-isolating microbenchmarks."""

from .base import Fidelity, ThreadBody, Workload, WorkloadResult
from .micro import AllocChurn, FirstTouchSweep, GlobalBroadcast, TriadStream
from .openfoam import OpenFoamUsm
from .qmcpack import NIO_SIZES, QmcPackNio, nio_parameters
from .specaccel import ALL_BENCHMARKS, Bt470, Ep452, Lbm404, SpC457, Stencil403

__all__ = [
    "ALL_BENCHMARKS",
    "AllocChurn",
    "Bt470",
    "Ep452",
    "Fidelity",
    "FirstTouchSweep",
    "GlobalBroadcast",
    "Lbm404",
    "NIO_SIZES",
    "OpenFoamUsm",
    "QmcPackNio",
    "SpC457",
    "Stencil403",
    "ThreadBody",
    "TriadStream",
    "Workload",
    "WorkloadResult",
    "nio_parameters",
]

"""repro — a simulation-based reproduction of "Performance Analysis of
Runtime Handling of Zero-Copy for OpenMP Programs on MI300A APUs"
(Bertolli et al., SC 2024).

Quick start::

    from repro import ApuSystem, OpenMPRuntime, RuntimeConfig
    from repro.omp import MapClause, MapKind

    system = ApuSystem.mi300a()
    runtime = OpenMPRuntime(system, RuntimeConfig.IMPLICIT_ZERO_COPY)

    def body(th, tid):
        import numpy as np
        x = yield from th.alloc("x", 1 << 24, payload=np.arange(16.0))
        yield from th.target(
            "double", 100.0,
            maps=[MapClause(x, MapKind.TOFROM)],
            fn=lambda args, g: args["x"].__imul__(2.0),
        )

    result = runtime.run(body)
    print(result.elapsed_us, result.hsa_trace.as_rows())

See ``examples/`` for realistic scenarios and ``benchmarks/`` for the
regeneration of every table and figure in the paper.
"""

from .core.config import (
    ALL_CONFIGS,
    ZERO_COPY_CONFIGS,
    ConfigError,
    RunEnvironment,
    RuntimeConfig,
    select_config,
)
from .core.params import CostModel
from .core.system import ApuSystem
from .omp.api import OmpThread
from .omp.mapping import MapClause, MapKind
from .omp.runtime import OpenMPRuntime, RunResult

__version__ = "1.0.0"

__all__ = [
    "ALL_CONFIGS",
    "ApuSystem",
    "ConfigError",
    "CostModel",
    "MapClause",
    "MapKind",
    "OmpThread",
    "OpenMPRuntime",
    "RunEnvironment",
    "RunResult",
    "RuntimeConfig",
    "ZERO_COPY_CONFIGS",
    "select_config",
    "__version__",
]

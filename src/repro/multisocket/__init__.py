"""Multi-socket APU card composition (paper §III.A)."""

from .card import ApuCard, CardResult, SocketSystem, frame_owner

__all__ = ["ApuCard", "CardResult", "SocketSystem", "frame_owner"]

"""Multi-socket APU card composition (paper §III.A + Inter-APU model)."""

from .card import ApuCard, CardResult, SocketSystem, frame_owner
from .topology import (
    FirstTouch,
    Interleave,
    PinnedHome,
    PlacementPolicy,
    PlacementView,
    Topology,
    make_placement,
)

__all__ = [
    "ApuCard",
    "CardResult",
    "SocketSystem",
    "frame_owner",
    "Topology",
    "PlacementPolicy",
    "PlacementView",
    "FirstTouch",
    "Interleave",
    "PinnedHome",
    "make_placement",
]

"""N-socket card topology and page-placement policies (Inter-APU model).

The paper's experiments are single-socket; the Inter-APU deep dive
(Schieffer et al., PAPERS.md) characterizes what dominates once several
MI300A sockets share one address space: Infinity Fabric link traffic,
remote-socket XNACK fault service, and page placement.  This module
holds the pieces the :class:`~repro.multisocket.card.ApuCard` composes:

* :class:`Topology` — socket count plus per-link bandwidth/latency
  parameters, from which the distinct remote-fault stall cost is
  derived (a remote XNACK service pays the link round trip plus the
  page transfer over the link);
* :class:`_SocketMemory` — per-socket HBM frame pool issuing
  globally-unique, owner-tagged frames (``frame_owner`` recovers the
  socket from a frame id);
* placement policies (:class:`FirstTouch`, :class:`Interleave`,
  :class:`PinnedHome`) deciding which socket's pool backs each page of
  a host allocation, and :class:`PlacementView`, the
  ``PhysicalMemory``-shaped facade that routes one socket's OS
  allocator through the per-socket pools according to a policy —
  including cross-socket frees (each frame returns to its owner's
  pool) and first-touch spill when one socket's HBM is exhausted.

Placement is deliberately a pure function of ``(policy, allocating
socket, page index, socket count)``: the static MapPlace analysis
(:mod:`repro.check.static.place`) predicts remote-page counts from
exactly this rule, and the place differential holds the two sides to
each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..memory.physical import OutOfMemoryError, PhysicalMemory

__all__ = [
    "Topology",
    "PlacementPolicy",
    "FirstTouch",
    "Interleave",
    "PinnedHome",
    "PlacementView",
    "make_placement",
    "frame_owner",
]

#: frame-id stride marking socket ownership
_FRAME_STRIDE = 1 << 30


def frame_owner(frame: int) -> int:
    """Which socket's HBM a frame belongs to."""
    return frame // _FRAME_STRIDE


@dataclass(frozen=True)
class Topology:
    """Geometry and Infinity Fabric link parameters of an N-socket card.

    ``remote_fault_extra_us_per_page`` overrides the derived per-page
    stall surcharge a remote-socket XNACK service pays; when ``None``
    it is computed from the link parameters (one round trip of link
    latency plus moving the page's translation+data over the link).
    """

    n_sockets: int = 2
    link_bandwidth_gbps: float = 64.0       #: per-direction link GB/s
    link_latency_us: float = 0.8            #: one-way link latency
    remote_access_penalty: float = 0.45     #: kernel slowdown at 100% remote
    remote_fault_extra_us_per_page: Optional[float] = None

    def __post_init__(self):
        if self.n_sockets < 1:
            raise ValueError(f"n_sockets must be >= 1, got {self.n_sockets}")
        if self.link_bandwidth_gbps <= 0 or self.link_latency_us < 0:
            raise ValueError("invalid link parameters")
        if self.remote_access_penalty < 0:
            raise ValueError("remote_access_penalty must be >= 0")

    def fault_extra_us_per_page(self, page_bytes: int) -> float:
        """Per-page stall surcharge for XNACK service of a remote frame."""
        if self.remote_fault_extra_us_per_page is not None:
            return self.remote_fault_extra_us_per_page
        # 1 GB/s == 1e3 bytes/us
        transfer = page_bytes / (self.link_bandwidth_gbps * 1e3)
        return 2.0 * self.link_latency_us + transfer

    def describe(self) -> Dict[str, object]:
        return {
            "n_sockets": self.n_sockets,
            "link_bandwidth_gbps": self.link_bandwidth_gbps,
            "link_latency_us": self.link_latency_us,
            "remote_access_penalty": self.remote_access_penalty,
            "remote_fault_extra_us_per_page": self.remote_fault_extra_us_per_page,
        }


class _SocketMemory(PhysicalMemory):
    """Per-socket HBM pool issuing globally-unique, owner-tagged frames.

    Frees are validated against the tag: handing a foreign socket's
    frame to this pool is a routing bug upstream (the
    :class:`PlacementView` routes mixed-owner batches), not something
    to absorb silently.
    """

    def __init__(self, socket: int, total_bytes: int, frame_bytes: int):
        super().__init__(total_bytes=total_bytes, frame_bytes=frame_bytes)
        self.socket = socket
        self._tag = socket * _FRAME_STRIDE

    def alloc_frame(self) -> int:
        return super().alloc_frame() + self._tag

    def free_frame(self, frame: int) -> None:
        if frame_owner(frame) != self.socket:
            raise ValueError(
                f"frame {frame} belongs to socket {frame_owner(frame)}, "
                f"not socket {self.socket}"
            )
        super().free_frame(frame - self._tag)

    def alloc_frames(self, count: int) -> List[int]:
        return [f + self._tag for f in super().alloc_frames(count)]

    def free_frames(self, frames: List[int]) -> None:
        for f in frames:
            if frame_owner(f) != self.socket:
                raise ValueError(
                    f"frame {f} belongs to socket {frame_owner(f)}, "
                    f"not socket {self.socket}"
                )
        super().free_frames([f - self._tag for f in frames])


# ---------------------------------------------------------------------------
# placement policies
# ---------------------------------------------------------------------------


class PlacementPolicy:
    """Decides which socket's HBM backs each page of a host allocation."""

    name = "?"
    #: whether an exhausted owner socket may spill to the next socket
    spill = True

    def plan(self, socket: int, count: int, n_sockets: int) -> List[int]:
        """Owner socket for each page index of one ``count``-page
        allocation performed by ``socket``."""
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


class FirstTouch(PlacementPolicy):
    """NUMA first-touch: pages land on the allocating socket's HBM,
    spilling to the next socket (in id order) only on exhaustion."""

    name = "first-touch"

    def plan(self, socket: int, count: int, n_sockets: int) -> List[int]:
        return [socket] * count


class Interleave(PlacementPolicy):
    """Round-robin page striping across all sockets, starting at socket
    0 for every allocation — page ``i`` lands on socket ``i % N``,
    independent of who allocates (deterministic, statically exact)."""

    name = "interleave"

    def plan(self, socket: int, count: int, n_sockets: int) -> List[int]:
        return [i % n_sockets for i in range(count)]


class PinnedHome(PlacementPolicy):
    """Every page lands on one fixed home socket; exhaustion is an
    error (pinned means pinned — there is no spill)."""

    name = "pinned"
    spill = False

    def __init__(self, home: int = 0):
        if home < 0:
            raise ValueError(f"home socket must be >= 0, got {home}")
        self.home = home

    def plan(self, socket: int, count: int, n_sockets: int) -> List[int]:
        if self.home >= n_sockets:
            raise ValueError(
                f"home socket {self.home} on a {n_sockets}-socket card"
            )
        return [self.home] * count

    def describe(self) -> str:
        return f"pinned:{self.home}"


def make_placement(spec: str) -> PlacementPolicy:
    """Parse a placement spec: ``first-touch``, ``interleave``,
    ``pinned`` or ``pinned:<home>``."""
    spec = (spec or "first-touch").strip()
    if spec == FirstTouch.name:
        return FirstTouch()
    if spec == Interleave.name:
        return Interleave()
    if spec == PinnedHome.name:
        return PinnedHome(0)
    if spec.startswith(PinnedHome.name + ":"):
        return PinnedHome(int(spec.split(":", 1)[1]))
    raise ValueError(
        f"unknown placement {spec!r}; choose first-touch, interleave, "
        "or pinned[:<home>]"
    )


class PlacementView:
    """``PhysicalMemory``-shaped facade for one socket's OS allocator.

    Allocations are routed across the per-socket pools according to the
    placement policy (frames come back in page order, so page ``i`` of
    the allocation is backed by the policy's owner for index ``i``);
    frees route every frame back to its owner's pool regardless of who
    frees — the cross-socket ``free_frames`` case a bare
    :class:`_SocketMemory` rejects.
    """

    def __init__(
        self,
        socket: int,
        pools: Sequence[_SocketMemory],
        policy: PlacementPolicy,
    ):
        self.socket = socket
        self.pools = list(pools)
        self.policy = policy

    # -- allocation ---------------------------------------------------------
    def alloc_frames(self, count: int) -> List[int]:
        if count < 0:
            raise ValueError(f"negative frame count: {count}")
        owners = self.policy.plan(self.socket, count, len(self.pools))
        by_owner: Dict[int, List[int]] = {}
        for i, owner in enumerate(owners):
            by_owner.setdefault(owner, []).append(i)
        frames: List[int] = [0] * count
        taken: List[int] = []
        try:
            for owner in sorted(by_owner):
                idxs = by_owner[owner]
                got = self._take(owner, len(idxs))
                taken.extend(got)
                for i, frame in zip(idxs, got):
                    frames[i] = frame
        except OutOfMemoryError:
            # a failed allocation is atomic: return every frame an
            # earlier owner group already handed out
            self.free_frames(taken)
            raise
        return frames

    def alloc_frame(self) -> int:
        return self.alloc_frames(1)[0]

    def _take(self, owner: int, count: int) -> List[int]:
        pool = self.pools[owner]
        if pool.frames_free >= count or not self.policy.spill:
            return pool.alloc_frames(count)
        # first-touch spill: drain the owner, then the next sockets in
        # id order — capacity elsewhere must not fail the allocation
        got = pool.alloc_frames(pool.frames_free)
        need = count - len(got)
        for step in range(1, len(self.pools)):
            nxt = self.pools[(owner + step) % len(self.pools)]
            take = min(need, nxt.frames_free)
            if take:
                got.extend(nxt.alloc_frames(take))
                need -= take
            if not need:
                break
        if need:
            # roll the partial drain back before failing: an allocation
            # that raises must leave the pools exactly as it found them
            self.free_frames(got)
            raise OutOfMemoryError(
                f"all {len(self.pools)} socket pools exhausted "
                f"({need} of {count} frames short)"
            )
        return got

    # -- release ------------------------------------------------------------
    def free_frames(self, frames: List[int]) -> None:
        by_owner: Dict[int, List[int]] = {}
        for f in frames:
            by_owner.setdefault(frame_owner(f), []).append(f)
        for owner in sorted(by_owner):
            if not 0 <= owner < len(self.pools):
                raise ValueError(
                    f"frame {by_owner[owner][0]} owned by unknown socket {owner}"
                )
            self.pools[owner].free_frames(by_owner[owner])

    def free_frame(self, frame: int) -> None:
        self.free_frames([frame])

    # -- accounting ---------------------------------------------------------
    @property
    def frames_free(self) -> int:
        return sum(p.frames_free for p in self.pools)

    @property
    def frames_in_use(self) -> int:
        return sum(p.frames_in_use for p in self.pools)

"""Multi-socket APU card model (paper §III.A + Inter-APU deep dive).

"APU sockets can be composed together in a multi-socket accelerator card,
where either CPU or GPU threads on a socket can access memory located in
a different socket.  GPUs in different sockets are seen by OpenMP as
multiple devices."  The paper's experiments are single-socket; this
module implements the composition it describes, so the two programming
patterns of §III.A can be studied:

* one OpenMP program with careful CPU/GPU affinity (a CPU thread on a
  socket offloads to that socket's GPU), or
* sloppy affinity, where kernels read remote-socket HBM and pay a NUMA
  penalty.

Model: one shared process address space (one CPU page table, one
simulation clock), per-socket HBM frame pools behind a pluggable
page-placement policy (first-touch, interleave, pinned-home — see
:mod:`repro.multisocket.topology`), and one GPU device (page table,
driver, HSA runtime, OpenMP runtime) per socket.  A kernel's compute
time is scaled by the fraction of its mapped pages whose frames live on
a remote socket (``remote_access_penalty``), and XNACK faults that
resolve to a remote socket's frames pay an extra per-page stall derived
from the :class:`~repro.multisocket.topology.Topology` link parameters
(via the driver's ``fault_cost_adjuster`` hook).

The card keeps per-socket telemetry — remote fault pages, remote/local
kernel page visits — that the static MapPlace analysis
(:mod:`repro.check.static.place`) predicts and the place differential
checks.  A 1-socket card under the default first-touch placement is
bit-identical to a plain :class:`~repro.core.system.ApuSystem` run
(pinned by ``tests/test_multisocket.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..core.config import RuntimeConfig
from ..core.params import CostModel
from ..driver.kfd import Kfd
from ..hsa.api import HsaRuntime
from ..memory.layout import HOST_HEAP_BASE, HOST_STACK_BASE, AddressRange
from ..memory.os_alloc import OsAllocator
from ..memory.pagetable import PageTable
from ..omp.api import OmpThread
from ..omp.mapping import MapClause
from ..omp.runtime import OpenMPRuntime
from ..sim import Environment, RngHub
from ..trace.hsa_trace import HsaTrace
from ..trace.kernel_trace import RunLedger
from .topology import (
    PlacementPolicy,
    PlacementView,
    Topology,
    _SocketMemory,
    frame_owner,
    make_placement,
)

__all__ = ["ApuCard", "SocketSystem", "CardResult", "frame_owner"]

#: VA window stride between sockets' OS allocators (they share one
#: process address space but carve disjoint arenas, like NUMA-aware
#: allocators do)
_VA_STRIDE = 1 << 42


@dataclass
class SocketSystem:
    """ApuSystem-shaped view of one socket (duck-typed for OpenMPRuntime)."""

    env: Environment
    cost: CostModel
    rng_hub: RngHub
    physical: _SocketMemory
    cpu_pt: PageTable
    gpu_pt: PageTable
    driver: Kfd
    os_alloc: OsAllocator
    hsa_trace: HsaTrace
    hsa: HsaRuntime


@dataclass
class CardResult:
    """Outcome of one multi-socket run."""

    n_sockets: int
    config: RuntimeConfig
    elapsed_us: float
    per_socket_traces: List[HsaTrace]
    per_socket_kernels: List[int]
    remote_page_fraction: float  #: mean over kernel launches
    per_socket_ledgers: List[RunLedger] = field(default_factory=list)
    #: per-socket counter dicts (driver counters + remote telemetry);
    #: the measured side of the MapPlace differential
    per_socket_counters: List[Dict[str, int]] = field(default_factory=list)
    outputs: Dict[str, object] = field(default_factory=dict)
    sim_events: int = 0

    def merged_trace(self) -> HsaTrace:
        out = HsaTrace()
        for tr in self.per_socket_traces:
            out = out.merge(tr)
        return out

    @property
    def remote_kernel_bytes(self) -> int:
        return sum(c.get("remote_kernel_bytes", 0) for c in self.per_socket_counters)


class ApuCard:
    """An N-socket MI300A card in one shared address space.

    ``topology`` (when given) wins over the ``n_sockets`` count;
    ``placement`` is a :class:`PlacementPolicy` or spec string
    (default first-touch, which reproduces the historical behavior);
    ``remote_access_penalty`` defaults to the topology's value.
    """

    def __init__(
        self,
        n_sockets: int = 2,
        cost: Optional[CostModel] = None,
        seed: int = 0,
        hbm_per_socket: Optional[int] = None,
        remote_access_penalty: Optional[float] = None,
        topology: Optional[Topology] = None,
        placement: Union[PlacementPolicy, str, None] = None,
    ):
        if topology is None:
            topology = Topology(n_sockets=n_sockets)
        if topology.n_sockets < 1:
            raise ValueError(f"n_sockets must be >= 1, got {topology.n_sockets}")
        if isinstance(placement, str) or placement is None:
            placement = make_placement(placement or "first-touch")
        self.cost = cost or CostModel()
        self.topology = topology
        self.placement = placement
        self.n_sockets = topology.n_sockets
        self.remote_access_penalty = (
            topology.remote_access_penalty
            if remote_access_penalty is None
            else remote_access_penalty
        )
        self.env = Environment()
        self.rng_hub = RngHub(seed)
        # one process: one CPU page table shared by every socket's cores
        self.cpu_pt = PageTable(self.cost.page_size, "cpu-pt")
        hbm = hbm_per_socket or self.cost.hbm_bytes
        # per-socket HBM pools first, so every socket's PlacementView can
        # route allocations across all of them
        pools = [
            _SocketMemory(s, hbm, self.cost.page_size)
            for s in range(self.n_sockets)
        ]
        # per-socket telemetry (the measured side of MapPlace)
        self.remote_fault_pages = [0] * self.n_sockets
        self.remote_kernel_pages = [0] * self.n_sockets
        self.local_kernel_pages = [0] * self.n_sockets
        self.sockets: List[SocketSystem] = []
        for s in range(self.n_sockets):
            physical = pools[s]
            gpu_pt = PageTable(self.cost.page_size, f"gpu-pt[{s}]")
            # the device pool (Copy's shadow allocations) stays on the
            # socket's own HBM: only host memory is placement-routed
            driver = Kfd(self.cost, physical, self.cpu_pt, gpu_pt)
            driver.fault_cost_adjuster = self._make_fault_adjuster(s)
            os_alloc = OsAllocator(
                PlacementView(s, pools, self.placement),
                self.cpu_pt,
                on_unmap=self._shootdown_all,
                heap_base=HOST_HEAP_BASE + s * _VA_STRIDE,
                stack_base=HOST_STACK_BASE + s * _VA_STRIDE,
            )
            trace = HsaTrace()
            hsa = HsaRuntime(
                self.env, self.cost, driver, trace, self.rng_hub.fork("socket", s)
            )
            self.sockets.append(
                SocketSystem(
                    env=self.env, cost=self.cost, rng_hub=self.rng_hub,
                    physical=physical, cpu_pt=self.cpu_pt, gpu_pt=gpu_pt,
                    driver=driver, os_alloc=os_alloc, hsa_trace=trace, hsa=hsa,
                )
            )
        self._runtimes: List[OpenMPRuntime] = []
        self._remote_samples: List[float] = []

    def _shootdown_all(self, rng: AddressRange) -> None:
        """Host unmap invalidates every socket's GPU translations."""
        for sock in self.sockets:
            sock.driver.mmu_unmap(rng)

    # ------------------------------------------------------------------
    def _make_fault_adjuster(self, socket: int) -> Callable:
        """XNACK services that resolve to a remote socket's frames pay
        the Infinity Fabric surcharge (link round trip + page transfer
        over the link) on top of the base fault cost."""
        extra = self.topology.fault_extra_us_per_page(self.cost.page_size)

        def adjust(installed_frames: Sequence[int], stall_us: float) -> float:
            n_remote = sum(1 for f in installed_frames if frame_owner(f) != socket)
            if n_remote:
                self.remote_fault_pages[socket] += n_remote
                stall_us += n_remote * extra
            return stall_us

        return adjust

    def _make_adjuster(self, socket: int) -> Callable:
        def adjust(maps: Sequence[MapClause], compute_us: float) -> float:
            remote = local = 0
            for clause in maps:
                for page in clause.buffer.range.pages(self.cost.page_size):
                    pte = self.cpu_pt.lookup(page)
                    if pte is None:
                        continue
                    if frame_owner(pte.frame) == socket:
                        local += 1
                    else:
                        remote += 1
            self.remote_kernel_pages[socket] += remote
            self.local_kernel_pages[socket] += local
            total = remote + local
            if total == 0:
                return compute_us
            frac = remote / total
            self._remote_samples.append(frac)
            return compute_us * (1.0 + self.remote_access_penalty * frac)

        return adjust

    # ------------------------------------------------------------------
    def _setup(self, config: RuntimeConfig) -> List[OpenMPRuntime]:
        """Fresh per-socket OpenMP runtimes with kernel adjusters installed."""
        self._runtimes = [
            OpenMPRuntime(sock, config) for sock in self.sockets
        ]
        for s, rt in enumerate(self._runtimes):
            rt.kernel_cost_adjuster = self._make_adjuster(s)
        return self._runtimes

    def run(
        self,
        thread_plan: Sequence[Tuple[int, Callable]],
        config: RuntimeConfig = RuntimeConfig.IMPLICIT_ZERO_COPY,
    ) -> CardResult:
        """Run ``(socket, body)`` pairs: each body is an OpenMP host
        thread pinned to a socket, offloading to that socket's GPU."""
        self._setup(config)
        return self._run(thread_plan, config)

    def run_workload(
        self,
        workload,
        config: RuntimeConfig = RuntimeConfig.IMPLICIT_ZERO_COPY,
        plan: Optional[Sequence[int]] = None,
    ) -> CardResult:
        """Run a registry :class:`~repro.workloads.base.Workload` on the
        card: ``plan[tid]`` pins host thread ``tid`` to a socket
        (default: everything on socket 0, the executing socket of the
        MapPlace differential).  Workload ``prepare`` (declare-target
        globals) flows through the first planned socket's runtime, so
        global allocations see the placement policy too.
        """
        if plan is None:
            plan = [0] * max(1, workload.n_threads)
        plan = list(plan)
        if not plan:
            raise ValueError("empty socket plan")
        self._setup(config)
        prepare = getattr(workload, "prepare", None)
        if prepare is not None:
            prepare(self._runtimes[plan[0]])
        body = workload.make_body()
        result = self._run([(s, body) for s in plan], config)
        result.outputs = dict(workload.outputs.values)
        return result

    def _run(
        self,
        thread_plan: Sequence[Tuple[int, Callable]],
        config: RuntimeConfig,
    ) -> CardResult:
        for socket, _ in thread_plan:
            if not 0 <= socket < self.n_sockets:
                raise ValueError(f"no socket {socket} on a {self.n_sockets}-socket card")
        env = self.env
        t0 = env.now
        threads_per_socket: Dict[int, int] = {}
        for socket, _ in thread_plan:
            threads_per_socket[socket] = threads_per_socket.get(socket, 0) + 1

        def _main():
            # sockets boot their devices concurrently
            def _boot(s, rt):
                yield from rt._init_device()
                for _ in range(threads_per_socket.get(s, 0)):
                    yield from rt._init_thread_resources()

            boots = [
                env.process(_boot(s, rt), name=f"boot-socket{s}")
                for s, rt in enumerate(self._runtimes)
            ]
            for b in boots:
                yield b
            procs = []
            for tid, (socket, body) in enumerate(thread_plan):
                th = OmpThread(self._runtimes[socket], tid)
                procs.append(env.process(body(th, tid), name=f"sock{socket}-t{tid}"))
            for p in procs:
                yield p

        env.run(env.process(_main(), name="card-main"))
        samples = self._remote_samples
        return CardResult(
            n_sockets=self.n_sockets,
            config=config,
            elapsed_us=env.now - t0,
            per_socket_traces=[s.hsa_trace for s in self.sockets],
            per_socket_kernels=[rt.ledger.n_kernels for rt in self._runtimes],
            remote_page_fraction=(sum(samples) / len(samples)) if samples else 0.0,
            per_socket_ledgers=[rt.ledger for rt in self._runtimes],
            per_socket_counters=self._counters(),
            sim_events=env.processed_events,
        )

    def _counters(self) -> List[Dict[str, int]]:
        out: List[Dict[str, int]] = []
        for s, sock in enumerate(self.sockets):
            out.append({
                "pages_prefaulted": sock.driver.pages_prefaulted,
                "pages_faulted": sock.driver.xnack_faults_serviced,
                "pages_bulk_mapped": sock.driver.pages_bulk_mapped,
                "remote_fault_pages": self.remote_fault_pages[s],
                "remote_kernel_pages": self.remote_kernel_pages[s],
                "local_kernel_pages": self.local_kernel_pages[s],
                "remote_kernel_bytes":
                    self.remote_kernel_pages[s] * self.cost.page_size,
            })
        return out

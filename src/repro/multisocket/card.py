"""Multi-socket APU card model (paper §III.A).

"APU sockets can be composed together in a multi-socket accelerator card,
where either CPU or GPU threads on a socket can access memory located in
a different socket.  GPUs in different sockets are seen by OpenMP as
multiple devices."  The paper's experiments are single-socket; this
module implements the composition it describes, so the two programming
patterns of §III.A can be studied:

* one OpenMP program with careful CPU/GPU affinity (a CPU thread on a
  socket offloads to that socket's GPU), or
* sloppy affinity, where kernels read remote-socket HBM and pay a NUMA
  penalty.

Model: one shared process address space (one CPU page table, one
simulation clock), per-socket HBM frame pools with first-touch NUMA
placement, and one GPU device (page table, driver, HSA runtime, OpenMP
runtime) per socket.  A kernel's compute time is scaled by the fraction
of its mapped pages whose frames live on a remote socket
(``remote_access_penalty``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.config import RuntimeConfig
from ..core.params import CostModel
from ..driver.kfd import Kfd
from ..hsa.api import HsaRuntime
from ..memory.layout import HOST_HEAP_BASE, HOST_STACK_BASE, AddressRange
from ..memory.os_alloc import OsAllocator
from ..memory.pagetable import PageTable
from ..memory.physical import PhysicalMemory
from ..omp.api import OmpThread
from ..omp.mapping import MapClause
from ..omp.runtime import OpenMPRuntime
from ..sim import Environment, RngHub
from ..trace.hsa_trace import HsaTrace

__all__ = ["ApuCard", "SocketSystem", "CardResult"]

#: VA window stride between sockets' OS allocators (they share one
#: process address space but carve disjoint arenas, like NUMA-aware
#: allocators do)
_VA_STRIDE = 1 << 42

#: frame-id stride marking socket ownership
_FRAME_STRIDE = 1 << 30


class _SocketMemory(PhysicalMemory):
    """Per-socket HBM pool issuing globally-unique, owner-tagged frames."""

    def __init__(self, socket: int, total_bytes: int, frame_bytes: int):
        super().__init__(total_bytes=total_bytes, frame_bytes=frame_bytes)
        self.socket = socket
        self._tag = socket * _FRAME_STRIDE

    def alloc_frame(self) -> int:
        return super().alloc_frame() + self._tag

    def free_frame(self, frame: int) -> None:
        super().free_frame(frame - self._tag)

    def alloc_frames(self, count: int) -> List[int]:
        return [f + self._tag for f in super().alloc_frames(count)]

    def free_frames(self, frames: List[int]) -> None:
        super().free_frames([f - self._tag for f in frames])


def frame_owner(frame: int) -> int:
    """Which socket's HBM a frame belongs to."""
    return frame // _FRAME_STRIDE


@dataclass
class SocketSystem:
    """ApuSystem-shaped view of one socket (duck-typed for OpenMPRuntime)."""

    env: Environment
    cost: CostModel
    rng_hub: RngHub
    physical: _SocketMemory
    cpu_pt: PageTable
    gpu_pt: PageTable
    driver: Kfd
    os_alloc: OsAllocator
    hsa_trace: HsaTrace
    hsa: HsaRuntime


@dataclass
class CardResult:
    """Outcome of one multi-socket run."""

    n_sockets: int
    config: RuntimeConfig
    elapsed_us: float
    per_socket_traces: List[HsaTrace]
    per_socket_kernels: List[int]
    remote_page_fraction: float  #: mean over kernel launches

    def merged_trace(self) -> HsaTrace:
        out = HsaTrace()
        for tr in self.per_socket_traces:
            out = out.merge(tr)
        return out


class ApuCard:
    """An ``n_sockets``-socket MI300A card in one shared address space."""

    def __init__(
        self,
        n_sockets: int = 2,
        cost: Optional[CostModel] = None,
        seed: int = 0,
        hbm_per_socket: Optional[int] = None,
        remote_access_penalty: float = 0.45,
    ):
        if n_sockets < 1:
            raise ValueError(f"n_sockets must be >= 1, got {n_sockets}")
        self.cost = cost or CostModel()
        self.n_sockets = n_sockets
        self.remote_access_penalty = remote_access_penalty
        self.env = Environment()
        self.rng_hub = RngHub(seed)
        # one process: one CPU page table shared by every socket's cores
        self.cpu_pt = PageTable(self.cost.page_size, "cpu-pt")
        hbm = hbm_per_socket or self.cost.hbm_bytes
        self.sockets: List[SocketSystem] = []
        for s in range(n_sockets):
            physical = _SocketMemory(s, hbm, self.cost.page_size)
            gpu_pt = PageTable(self.cost.page_size, f"gpu-pt[{s}]")
            driver = Kfd(self.cost, physical, self.cpu_pt, gpu_pt)
            os_alloc = OsAllocator(
                physical,
                self.cpu_pt,
                on_unmap=self._shootdown_all,
                heap_base=HOST_HEAP_BASE + s * _VA_STRIDE,
                stack_base=HOST_STACK_BASE + s * _VA_STRIDE,
            )
            trace = HsaTrace()
            hsa = HsaRuntime(
                self.env, self.cost, driver, trace, self.rng_hub.fork("socket", s)
            )
            self.sockets.append(
                SocketSystem(
                    env=self.env, cost=self.cost, rng_hub=self.rng_hub,
                    physical=physical, cpu_pt=self.cpu_pt, gpu_pt=gpu_pt,
                    driver=driver, os_alloc=os_alloc, hsa_trace=trace, hsa=hsa,
                )
            )
        self._runtimes: List[OpenMPRuntime] = []
        self._remote_samples: List[float] = []

    def _shootdown_all(self, rng: AddressRange) -> None:
        """Host unmap invalidates every socket's GPU translations."""
        for sock in self.sockets:
            sock.driver.mmu_unmap(rng)

    # ------------------------------------------------------------------
    def _make_adjuster(self, socket: int) -> Callable:
        def adjust(maps: Sequence[MapClause], compute_us: float) -> float:
            remote = local = 0
            for clause in maps:
                for page in clause.buffer.range.pages(self.cost.page_size):
                    pte = self.cpu_pt.lookup(page)
                    if pte is None:
                        continue
                    if frame_owner(pte.frame) == socket:
                        local += 1
                    else:
                        remote += 1
            total = remote + local
            if total == 0:
                return compute_us
            frac = remote / total
            self._remote_samples.append(frac)
            return compute_us * (1.0 + self.remote_access_penalty * frac)

        return adjust

    def run(
        self,
        thread_plan: Sequence[Tuple[int, Callable]],
        config: RuntimeConfig = RuntimeConfig.IMPLICIT_ZERO_COPY,
    ) -> CardResult:
        """Run ``(socket, body)`` pairs: each body is an OpenMP host
        thread pinned to a socket, offloading to that socket's GPU."""
        for socket, _ in thread_plan:
            if not 0 <= socket < self.n_sockets:
                raise ValueError(f"no socket {socket} on a {self.n_sockets}-socket card")
        self._runtimes = [
            OpenMPRuntime(sock, config) for sock in self.sockets
        ]
        for s, rt in enumerate(self._runtimes):
            rt.kernel_cost_adjuster = self._make_adjuster(s)
        env = self.env
        t0 = env.now
        threads_per_socket: Dict[int, int] = {}
        for socket, _ in thread_plan:
            threads_per_socket[socket] = threads_per_socket.get(socket, 0) + 1

        def _main():
            # sockets boot their devices concurrently
            def _boot(s, rt):
                yield from rt._init_device()
                for _ in range(threads_per_socket.get(s, 0)):
                    yield from rt._init_thread_resources()

            boots = [
                env.process(_boot(s, rt), name=f"boot-socket{s}")
                for s, rt in enumerate(self._runtimes)
            ]
            for b in boots:
                yield b
            procs = []
            for tid, (socket, body) in enumerate(thread_plan):
                th = OmpThread(self._runtimes[socket], tid)
                procs.append(env.process(body(th, tid), name=f"sock{socket}-t{tid}"))
            for p in procs:
                yield p

        env.run(env.process(_main(), name="card-main"))
        samples = self._remote_samples
        return CardResult(
            n_sockets=self.n_sockets,
            config=config,
            elapsed_us=env.now - t0,
            per_socket_traces=[s.hsa_trace for s in self.sockets],
            per_socket_kernels=[rt.ledger.n_kernels for rt in self._runtimes],
            remote_page_fraction=(sum(samples) / len(samples)) if samples else 0.0,
        )

"""SARIF 2.1.0 export for MapCheck/MapFlow reports.

One ``run`` per invocation, one ``result`` per finding, with the full
rule catalog (ids, titles, summaries, severities, per-configuration
applicability matrices from the registry) embedded in the tool
component so SARIF viewers (GitHub code scanning, VS Code) render the
findings with stable rule metadata.  Findings are emitted in
:meth:`~repro.check.findings.Finding.sort_key` order, so the file is
byte-identical regardless of ``--jobs``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from .findings import RULES, CheckReport, Finding, Severity
from .registry import (
    CANONICAL_MATRICES,
    dynamic_counterparts,
    static_counterparts,
)

__all__ = ["to_sarif", "write_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: MapCheck severity -> SARIF result level
_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def _rule_descriptor(rule_id: str) -> Dict[str, object]:
    rule = RULES[rule_id]
    matrix = CANONICAL_MATRICES.get(rule_id)
    properties: Dict[str, object] = {
        "analysis": rule.analysis.value,
        "family": rule.family,
    }
    if matrix is not None:
        breaks_under, passes_under = matrix
        properties["breaksUnder"] = [c.value for c in breaks_under]
        properties["passesUnder"] = [c.value for c in passes_under]
    counterparts = static_counterparts(rule_id) or dynamic_counterparts(rule_id)
    if counterparts:
        properties["counterparts"] = list(counterparts)
    return {
        "id": rule.id,
        "name": rule.title,
        "shortDescription": {"text": rule.title},
        "fullDescription": {"text": rule.summary},
        "defaultConfiguration": {"level": _LEVELS[rule.severity]},
        "properties": properties,
    }


def _sarif_fix(fix: Dict[str, object]) -> Dict[str, object]:
    """A SARIF ``fix`` object from a :class:`Finding.fix` attachment
    (produced by MapFix's :class:`~.static.fix.engine.AppliedFix`)."""
    from .static.fix.edits import SourceEdit, sarif_replacements

    edits = [
        SourceEdit(
            start=int(e["start"]), end=int(e["end"]),
            new_lines=tuple(e["new_lines"]), note=str(e.get("note", "")),
        )
        for e in fix["edits"]
    ]
    return {
        "description": {"text": fix["description"]},
        "artifactChanges": [{
            "artifactLocation": {
                "uri": str(fix["path"]).replace("\\", "/"),
            },
            "replacements": sarif_replacements(edits),
        }],
    }


def _result(finding: Finding) -> Dict[str, object]:
    result: Dict[str, object] = {
        "ruleId": finding.rule_id,
        "level": _LEVELS[finding.severity],
        "message": {"text": finding.message},
        "properties": {
            "workload": finding.workload,
            "buffer": finding.buffer,
            "breaksUnder": [c.value for c in finding.breaks_under],
            "passesUnder": [c.value for c in finding.passes_under],
            "confirmedBy": [c.value for c in finding.confirmed_by],
        },
    }
    if finding.fix:
        result["fixes"] = [_sarif_fix(finding.fix)]
        result["properties"]["fix"] = {
            "kind": finding.fix["kind"],
            "round": finding.fix["round"],
            "costDelta": finding.fix["cost_delta"],
            "savedExact": finding.fix["saved_exact"],
        }
    if finding.suppressed:
        # stays visible to SARIF viewers, marked as reviewed/accepted
        result["suppressions"] = [{
            "kind": "external",
            "justification": "accepted by MapCheck baseline file",
        }]
    if finding.tid is not None:
        result["properties"]["tid"] = finding.tid
    if finding.time_us is not None:
        result["properties"]["timeUs"] = finding.time_us
    if finding.related:
        result["properties"]["related"] = list(finding.related)
    if finding.source:
        path, line = finding.source
        result["locations"] = [{
            "physicalLocation": {
                "artifactLocation": {"uri": path.replace("\\", "/")},
                "region": {"startLine": max(int(line), 1)},
            },
        }]
    else:
        # SARIF results want a location; fall back to a logical one
        result["locations"] = [{
            "logicalLocations": [{
                "name": finding.buffer or finding.workload,
                "kind": "resource",
            }],
        }]
    return result


def to_sarif(reports: Sequence[CheckReport]) -> Dict[str, object]:
    """Assemble the SARIF log object for a sequence of check reports."""
    findings: List[Finding] = []
    for report in reports:
        findings.extend(report.sorted_findings())
    findings.sort(key=Finding.sort_key)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "MapCheck",
                    "version": "1.0.0",
                    "rules": [_rule_descriptor(rid) for rid in RULES],
                },
            },
            "results": [_result(f) for f in findings],
            "properties": {
                "workloads": [r.workload for r in reports],
                "aborted": {
                    r.workload: r.aborted
                    for r in reports if r.aborted
                },
            },
        }],
    }


def write_sarif(reports: Sequence[CheckReport], path: str) -> None:
    with open(path, "w") as fh:
        json.dump(to_sarif(reports), fh, indent=2, sort_keys=False)
        fh.write("\n")

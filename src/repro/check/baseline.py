"""Finding baselines: accept known findings, fail only on new ones.

A baseline file is a JSON document of stable finding *fingerprints*
(``rule_id:workload:buffer``).  ``repro check --baseline FILE`` marks
every finding whose fingerprint appears in the file as *suppressed*:
it stays in the JSON/SARIF output (SARIF carries an explicit
``suppressions`` entry so code-scanning UIs show it as reviewed), but
it no longer fails the run.  ``--write-baseline`` records the current
findings as the accepted set.

Fingerprints deliberately exclude line numbers and messages: moving a
known defect around a file or rewording a rule must not resurrect it.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Sequence, Set

from .findings import CheckReport, Finding

__all__ = [
    "fingerprint",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
]

_VERSION = 1


def fingerprint(finding: Finding) -> str:
    """Stable identity of a finding across runs and refactors."""
    return f"{finding.rule_id}:{finding.workload}:{finding.buffer}"


def load_baseline(path: str) -> Set[str]:
    with open(path) as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or "fingerprints" not in doc:
        raise ValueError(
            f"{path}: not a MapCheck baseline (missing 'fingerprints')"
        )
    return set(doc["fingerprints"])


def write_baseline(reports: Sequence[CheckReport], path: str) -> int:
    """Record every current finding as accepted; returns the count."""
    prints = sorted({
        fingerprint(f) for report in reports for f in report.findings
    })
    with open(path, "w") as fh:
        json.dump(
            {"version": _VERSION, "tool": "MapCheck", "fingerprints": prints},
            fh, indent=2,
        )
        fh.write("\n")
    return len(prints)


def apply_baseline(
    reports: Iterable[CheckReport], accepted: Set[str]
) -> Dict[str, int]:
    """Mark baselined findings suppressed; returns match statistics.

    Suppressed findings stay in the reports (and in SARIF, which emits
    ``suppressions`` for them) but stop counting toward
    :attr:`CheckReport.ok` and the CLI exit code.
    """
    suppressed = 0
    matched: Set[str] = set()
    total = 0
    for report in reports:
        for f in report.findings:
            total += 1
            fp = fingerprint(f)
            if fp in accepted:
                f.suppressed = True
                suppressed += 1
                matched.add(fp)
    return {
        "findings": total,
        "suppressed": suppressed,
        "stale_fingerprints": len(accepted - matched),
    }

"""Mapping sanitizer: present-table invariants and teardown hygiene.

Consumes the raw table-operation channel (which sees rejected operations
*before* their exceptions propagate), the map-op stream and the final
present-table state.  Unlike the portability lint these defects are
wrong under *every* configuration — the per-config sets only grade the
blast radius (device memory leak under Copy vs bookkeeping rot under
zero-copy).
"""

from __future__ import annotations

from typing import List, Optional

from ..core.config import ALL_CONFIGS, RuntimeConfig
from ..omp.mapping import AlwaysMisuseError, PresentTable, RefcountUnderflowError
from .events import CheckRecorder
from .findings import Finding

__all__ = ["run_sanitizer", "classify_abort"]

_ALL = tuple(ALL_CONFIGS)


def _underflows_and_absent(rec: CheckRecorder, workload: str) -> List[Finding]:
    findings = []
    for ev in rec.table_ops:
        if ev.op == "underflow":
            findings.append(Finding(
                rule_id="MC-S01",
                buffer=ev.name,
                workload=workload,
                time_us=ev.t,
                message=(
                    f"map-exit of {ev.name!r} at refcount {ev.refcount} — "
                    "unbalanced exit would drive the refcount negative; "
                    "under Copy this double-frees the shadow device buffer"
                ),
                breaks_under=_ALL,
            ))
        elif ev.op in ("release_absent", "retain_absent"):
            verb = "unmap" if ev.op == "release_absent" else "retain"
            findings.append(Finding(
                rule_id="MC-S03",
                buffer=ev.name,
                workload=workload,
                time_us=ev.t,
                message=(
                    f"{verb} of {ev.name!r} which has no present-table "
                    "entry (double unmap, or exit without a matching enter)"
                ),
                breaks_under=_ALL,
            ))
    return findings


def _leaks(table: Optional[PresentTable], workload: str) -> List[Finding]:
    """MC-S02: entries alive after all threads finished (device teardown)."""
    if table is None:
        return []
    findings = []
    for entry in table.entries():
        findings.append(Finding(
            rule_id="MC-S02",
            buffer=entry.host.name,
            workload=workload,
            message=(
                f"present-table entry for {entry.host.name!r} still live at "
                f"device teardown (refcount {entry.refcount}) — a device "
                "memory leak under Copy, stale presence bookkeeping under "
                "the zero-copy configurations"
            ),
            breaks_under=(RuntimeConfig.COPY,),
            passes_under=tuple(
                c for c in ALL_CONFIGS if c is not RuntimeConfig.COPY
            ),
        ))
    return findings


def _use_after_unmap(rec: CheckRecorder, workload: str) -> List[Finding]:
    """MC-S04: a kernel argument's entry was destroyed mid-flight.

    A kernel's own implicit map-exit runs after its completion signal,
    so any removal strictly inside ``(submit_us, end_us)`` came from a
    *different* construct — a concurrent thread's exit-data, or the
    launching thread tearing down a ``nowait`` region it never waited
    on.  Under Copy the kernel is then computing on freed pool memory.
    """
    removals = [ev for ev in rec.map_ops if ev.op == "exit" and ev.removed]
    findings = []
    for k in rec.kernels:
        if not k.completed:
            continue
        refs = set(k.mapped) | set(k.touched)
        for ev in removals:
            if ev.key in refs and k.submit_us < ev.t1 < k.end_us:
                findings.append(Finding(
                    rule_id="MC-S04",
                    buffer=ev.name,
                    workload=workload,
                    time_us=ev.t1,
                    tid=ev.tid,
                    message=(
                        f"map({ev.kind.value}) destroyed the mapping of "
                        f"{ev.name!r} while kernel {k.name!r} (kid {k.kid}, "
                        f"tid {k.tid}) referencing it was in flight "
                        f"[{k.submit_us:.1f}, {k.end_us:.1f}]us — under Copy "
                        "the kernel reads freed device memory"
                    ),
                    breaks_under=_ALL,
                ))
    return findings


def classify_abort(exc: BaseException, workload: str) -> Optional[Finding]:
    """Turn an instrumented-run exception into a finding when it maps to
    a sanitizer rule (the observer channel already covers most of these;
    this catches defects raised at clause *construction* time)."""
    if isinstance(exc, AlwaysMisuseError):
        return Finding(
            rule_id="MC-S05",
            buffer="",
            workload=workload,
            message=f"'always' modifier misuse: {exc}",
            breaks_under=_ALL,
        )
    if isinstance(exc, RefcountUnderflowError):
        return None  # already reported through the table observer
    return None


def run_sanitizer(
    rec: CheckRecorder,
    workload: str,
    table: Optional[PresentTable] = None,
    aborted: Optional[BaseException] = None,
) -> List[Finding]:
    """Run all mapping-sanitizer rules over one recorded run."""
    findings = _underflows_and_absent(rec, workload)
    findings += _leaks(table, workload)
    findings += _use_after_unmap(rec, workload)
    if aborted is not None:
        extra = classify_abort(aborted, workload)
        if extra is not None:
            findings.append(extra)
    return findings

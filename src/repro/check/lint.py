"""Portability lint: map clauses vs the dynamic access record (§IV.C).

The whole point of this analysis is the paper's second research
question: a program whose map clauses are wrong can still be *correct on
an APU* because zero-copy makes every map a no-op — the defect only
bites when the same binary moves to a discrete GPU (Legacy Copy
semantics) or to a configuration that runs with XNACK disabled.  Each
finding therefore carries ``breaks_under``/``passes_under`` sets over
the four runtime configurations.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..core.config import RuntimeConfig
from .events import CheckRecorder, payload_hash
from .findings import Finding

__all__ = ["run_lint"]

_COPYLIKE = (RuntimeConfig.COPY,)
_XNACK_OFF = (RuntimeConfig.COPY, RuntimeConfig.EAGER_MAPS)
_XNACK_ON = (RuntimeConfig.UNIFIED_SHARED_MEMORY, RuntimeConfig.IMPLICIT_ZERO_COPY)
_ZERO_COPY = (
    RuntimeConfig.UNIFIED_SHARED_MEMORY,
    RuntimeConfig.IMPLICIT_ZERO_COPY,
    RuntimeConfig.EAGER_MAPS,
)
_DEVICE_COPY_GLOBALS = (
    RuntimeConfig.COPY,
    RuntimeConfig.IMPLICIT_ZERO_COPY,
    RuntimeConfig.EAGER_MAPS,
)


def _missing_map(rec: CheckRecorder, workload: str) -> List[Finding]:
    """MC-P01: kernel touched memory with no live map entry / global.

    Coverage was evaluated at dispatch time against the live present
    table and the declare-target registry, so a buffer mapped for
    *earlier* kernels and unmapped since is correctly flagged.

    One finding per buffer: the first offending kernel owns the message,
    every further kernel touching the same unmapped buffer lands in the
    structured ``Finding.related`` list (rendered once, deduplicated), so
    the message stays bounded and deterministic no matter how many
    dispatches repeat the access.
    """
    findings = []
    seen: Dict[str, Finding] = {}
    for k in rec.kernels:
        for key in k.uncovered:
            if key in seen:
                ref = f"kernel {k.name!r} (kid {k.kid})"
                if ref not in seen[key].related:
                    seen[key].related += (ref,)
                continue
            buf = rec.buffers.get(key)
            name = buf.name if buf is not None else key
            f = Finding(
                rule_id="MC-P01",
                buffer=name,
                workload=workload,
                time_us=k.t_dispatch,
                tid=k.tid,
                message=(
                    f"kernel {k.name!r} (kid {k.kid}) dereferences "
                    f"{name!r} with no live map entry or declare-target "
                    "global covering it — works only because the APU "
                    "services the faults (XNACK); a discrete GPU or an "
                    "XNACK-off configuration hard-faults here"
                ),
                breaks_under=_XNACK_OFF,
                passes_under=_XNACK_ON,
            )
            seen[key] = f
            findings.append(f)
    return findings


def _tofrom_missing_from(
    rec: CheckRecorder, workload: str, outputs: Dict[str, object]
) -> List[Finding]:
    """MC-P02: device-written data discarded at the final destructive
    unmap, yet the host-side payload feeds a workload output.

    Replays each buffer's event timeline: ``last_sync`` is the payload
    hash at the last host<->device synchronization point; a destructive
    exit that neither copies back nor matches ``last_sync`` discarded
    device writes.  Under zero-copy there is one copy of the data, so
    the host "accidentally" sees those writes anyway — the classic
    works-on-APU-only bug.  Intentionally discarded scratch is filtered
    by requiring the buffer's final payload to actually appear in the
    workload's declared outputs.
    """
    out_arrays = {
        k: np.asarray(v) for k, v in outputs.items()
        if isinstance(v, np.ndarray)
    }

    class _State:
        __slots__ = ("last_sync", "current", "dirty_keys")

        def __init__(self, h):
            self.last_sync = h
            self.current = h
            self.dirty_keys = ()

    states: Dict[str, _State] = {}
    findings = []

    events = []
    for ev in rec.map_ops:
        events.append((ev.t1, 0, "map", ev))
    for k in rec.kernels:
        if k.completed:
            events.append((k.end_us, 1, "kernel", k))
    for u in rec.updates:
        events.append((u.t, 2, "update", u))
    for w in rec.host_writes:
        events.append((w.t, 3, "write", w))
    events.sort(key=lambda e: (e[0], e[1]))

    for _t, _pri, typ, ev in events:
        if typ == "map":
            st = states.setdefault(ev.key, _State(ev.payload_hash))
            st.current = ev.payload_hash
            if ev.sync_device or ev.sync_host:
                st.last_sync = ev.payload_hash
            if (ev.op == "exit" and ev.removed and not ev.sync_host
                    and st.current != st.last_sync):
                # device writes discarded; only a defect if the data
                # is an application result
                buf = rec.buffers.get(ev.key)
                matched = tuple(
                    k for k, arr in out_arrays.items()
                    if buf is not None and payload_hash(arr) == st.current
                )
                if matched:
                    findings.append(Finding(
                        rule_id="MC-P02",
                        buffer=ev.name,
                        workload=workload,
                        time_us=ev.t1,
                        tid=ev.tid,
                        message=(
                            f"buffer {ev.name!r} was written by kernels "
                            f"but its final map({ev.kind.value}) discards "
                            "the device data; the host still observes the "
                            "writes (zero-copy aliasing) and they feed "
                            f"output(s) {', '.join(matched)} — under Copy "
                            "semantics the host would keep the stale "
                            "pre-kernel values"
                        ),
                        breaks_under=_COPYLIKE,
                        passes_under=_ZERO_COPY,
                        output_keys=matched,
                    ))
        elif typ == "kernel":
            for key, h in ev.arg_hashes.items():
                st = states.setdefault(key, _State(h))
                st.current = h
        elif typ == "update":
            st = states.setdefault(ev.key, _State(ev.payload_hash))
            st.current = ev.payload_hash
            if ev.present:
                st.last_sync = ev.payload_hash
        else:  # host write
            st = states.setdefault(ev.key, _State(ev.payload_hash))
            st.current = ev.payload_hash
    return findings


def _stale_global(rec: CheckRecorder, workload: str) -> List[Finding]:
    """MC-P03: kernel read a global whose host value changed since the
    last sync.  USM kernels read *through* the host pointer, so they
    always see the latest value; every device-copy configuration reads
    the stale snapshot."""
    syncs: Dict[str, List] = {}
    for s in rec.global_syncs:
        syncs.setdefault(s.name, []).append(s)
    findings = []
    seen = set()
    for k in rec.kernels:
        for name, dispatch_hash in k.globals_read:
            if name in seen:
                continue
            synced = [s for s in syncs.get(name, []) if s.t <= k.t_dispatch]
            last = synced[-1].host_hash if synced else None
            if last is None or last != dispatch_hash:
                seen.add(name)
                findings.append(Finding(
                    rule_id="MC-P03",
                    buffer=name,
                    workload=workload,
                    time_us=k.t_dispatch,
                    tid=k.tid,
                    message=(
                        f"kernel {k.name!r} (kid {k.kid}) reads declare-target "
                        f"global {name!r} whose host value changed after the "
                        "last map(always,to:)/target-update sync — only USM's "
                        "pointer-to-host globals see the new value; every "
                        "device-copy configuration computes with the stale one"
                    ),
                    breaks_under=_DEVICE_COPY_GLOBALS,
                    passes_under=(RuntimeConfig.UNIFIED_SHARED_MEMORY,),
                ))
    return findings


def run_lint(
    rec: CheckRecorder,
    workload: str,
    outputs: Optional[Dict[str, object]] = None,
) -> List[Finding]:
    """Run all portability-lint rules over one recorded run."""
    findings = _missing_map(rec, workload)
    findings += _tofrom_missing_from(rec, workload, outputs or {})
    findings += _stale_global(rec, workload)
    return findings

"""Trace race detector: conflicting concurrency in the DES event stream.

The simulation is deterministic, but the *trace* still exhibits real
concurrency: construct spans from different host threads overlap in
simulated time whenever neither blocked on the other.  Two conflicting
operations whose spans overlap have no synchronization edge between them
— the device lock serializes the table mutation itself, but not the
order, which is exactly a data race in the OpenMP sense.

MC-R02 is the configuration-dependent one: a host thread updating a
buffer while a kernel reads it is *benign under Copy* (the kernel works
on its own shadow device copy, snapshotted at map time) but corrupts
results under every zero-copy configuration, where the kernel reads the
host memory being written.  The paper's porting story in reverse:
discrete-GPU code that relied on copy isolation breaks on the APU.
"""

from __future__ import annotations

from typing import List

from ..core.config import RuntimeConfig
from .events import CheckRecorder
from .findings import Finding

__all__ = ["run_races"]

_ZERO_COPY = (
    RuntimeConfig.UNIFIED_SHARED_MEMORY,
    RuntimeConfig.IMPLICIT_ZERO_COPY,
    RuntimeConfig.EAGER_MAPS,
)


def _overlaps(a, b) -> bool:
    return (a.start < b.start + b.nbytes) and (b.start < a.start + a.nbytes)


def _conflicting_map_ops(rec: CheckRecorder, workload: str) -> List[Finding]:
    """MC-R01: two threads' map constructs on overlapping ranges whose
    spans overlap in time, at least one of them an exit.

    Enter/enter pairs are benign (refcounting is designed for them);
    enter-vs-exit and exit-vs-exit are order-dependent: whichever side
    the lock happens to serialize first decides whether data transfers
    or deallocation happen, so the program's meaning depends on a race.
    """
    ops = rec.map_ops
    if len({op.tid for op in ops}) <= 1:
        return []
    findings = []
    seen = set()
    # time-sorted sweep: only spans overlapping in time can conflict, so
    # compare each op against the still-active window, not all pairs.
    # Ops sharing a t0 (common: a race is two ops at the same instant)
    # tie-break on the recording sequence number, so finding order and
    # pair dedup are identical across runs and --jobs workers
    active: List = []
    for a in sorted(ops, key=lambda op: (op.t0, op.seq)):
        active = [b for b in active if b.t1 > a.t0]
        for b in active:
            if a.tid is None or b.tid is None or a.tid == b.tid:
                continue
            if a.op == "enter" and b.op == "enter":
                continue
            if not _overlaps(a, b):
                continue
            pair_key = (min(a.key, b.key), max(a.key, b.key), a.op, b.op)
            if pair_key in seen:
                continue
            seen.add(pair_key)
            exit_ev = a if a.op == "exit" else b
            findings.append(Finding(
                rule_id="MC-R01",
                buffer=exit_ev.name,
                workload=workload,
                time_us=exit_ev.t0,
                tid=exit_ev.tid,
                message=(
                    f"tid {b.tid} map-{b.op}({b.kind.value}) of {b.name!r} "
                    f"[{b.t0:.1f},{b.t1:.1f}]us and tid {a.tid} "
                    f"map-{a.op}({a.kind.value}) of {a.name!r} "
                    f"[{a.t0:.1f},{a.t1:.1f}]us overlap in time on "
                    "overlapping ranges with no synchronization edge — "
                    "refcounts/transfers depend on lock arrival order"
                ),
                breaks_under=(RuntimeConfig.COPY,) + _ZERO_COPY,
            ))
        active.append(a)
    return findings


def _host_write_vs_kernel(rec: CheckRecorder, workload: str) -> List[Finding]:
    """MC-R02: host write lands inside a kernel's flight window on a
    range the kernel reads, and the writer never waited on the kernel.

    The writing thread has a synchronization edge only if it waited on
    the kernel's completion signal *before* the write; a wait completes
    at or after ``end_us``, so any write strictly inside
    ``(submit_us, end_us)`` is unsynchronized by construction.
    """
    findings = []
    # one finding per (buffer, writer-tid, kernel); loop iterations that
    # repeat the same race fold into the first finding's `related` (the
    # MC-P01 repeat-offender treatment), so a churn loop reports once
    first = {}
    for w in rec.host_writes:
        wbuf = rec.buffers.get(w.key)
        if wbuf is None:
            continue
        for k in rec.kernels:
            if not k.completed or not (k.submit_us < w.t < k.end_us):
                continue
            for key in k.reads:
                kbuf = rec.buffers.get(key)
                if kbuf is None or not kbuf.range.overlaps(wbuf.range):
                    continue
                dedup = (w.key, w.tid, k.name)
                prior = first.get(dedup)
                if prior is not None:
                    ref = f"repeat at t={w.t:.1f}us (kid {k.kid})"
                    if ref not in prior.related:
                        prior.related += (ref,)
                    break
                finding = Finding(
                    rule_id="MC-R02",
                    buffer=w.name,
                    workload=workload,
                    time_us=w.t,
                    tid=w.tid,
                    message=(
                        f"tid {w.tid} writes {w.name!r} at t={w.t:.1f}us "
                        f"while kernel {k.name!r} (kid {k.kid}, tid {k.tid}) "
                        f"reading the range is in flight "
                        f"[{k.submit_us:.1f}, {k.end_us:.1f}]us — benign "
                        "under Copy (kernel reads its shadow copy snapshot) "
                        "but a data race under every zero-copy configuration"
                    ),
                    breaks_under=_ZERO_COPY,
                    passes_under=(RuntimeConfig.COPY,),
                )
                first[dedup] = finding
                findings.append(finding)
                break
    return findings


def run_races(rec: CheckRecorder, workload: str) -> List[Finding]:
    """Run both race rules over one recorded run."""
    return _conflicting_map_ops(rec, workload) + _host_write_vs_kernel(rec, workload)

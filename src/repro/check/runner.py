"""MapCheck driver: instrumented recording run + differential confirmation.

``check_workload`` does three things:

1. runs the workload once under Implicit Zero-Copy with a
   :class:`~repro.check.events.CheckRecorder` attached (IZC is the most
   permissive configuration — XNACK papers over missing maps — so the
   recording run completes even for buggy programs, which is exactly
   what lets the lint *observe* the latent defect instead of crashing
   on it);
2. replays the recorded event streams through the three analyses;
3. optionally re-runs the workload under the other three configurations
   and compares crashes / functional outputs — a finding whose
   ``breaks_under`` set contains a configuration that actually crashed
   or diverged is marked *confirmed*, turning the paper's §IV.C
   portability argument into an executed experiment rather than a
   static claim.
"""

from __future__ import annotations

import contextlib
import pickle
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.config import ALL_CONFIGS, RuntimeConfig
from ..core.params import CostModel
from ..core.system import ApuSystem
from ..driver.kfd import GpuMemoryError
from ..omp.mapping import MappingError
from ..omp.runtime import OpenMPRuntime
from ..workloads.base import Fidelity, Workload
from .events import CheckRecorder, instrument
from .findings import CheckReport, Finding
from .lint import run_lint
from .races import run_races
from .registry import WORKLOADS, make_workload
from .sanitizer import run_sanitizer

__all__ = ["check_workload", "check_named", "check_all", "RecordedRun"]

#: exception types that count as "the program is broken under this
#: configuration" rather than a harness bug
_PROGRAM_ERRORS = (MappingError, GpuMemoryError, RuntimeError)

#: the recording configuration: most permissive, never crashes on
#: portability bugs (XNACK services every stray touch)
RECORD_CONFIG = RuntimeConfig.IMPLICIT_ZERO_COPY


@dataclass
class RecordedRun:
    """The instrumented run's artifacts."""

    recorder: CheckRecorder
    runtime: OpenMPRuntime
    outputs: Dict[str, object]
    aborted: Optional[BaseException]


def _run_instrumented(
    workload: Workload, *, cost: Optional[CostModel], seed: int
) -> RecordedRun:
    system = ApuSystem(cost=cost or CostModel(), seed=seed)
    runtime = OpenMPRuntime(system, RECORD_CONFIG)
    rec = instrument(runtime)
    aborted = None
    prepare = getattr(workload, "prepare", None)
    try:
        if prepare is not None:
            prepare(runtime)
        runtime.run(
            workload.make_body(),
            n_threads=workload.n_threads,
            outputs=workload.outputs.values,
        )
    except _PROGRAM_ERRORS as exc:
        aborted = exc
    return RecordedRun(
        recorder=rec, runtime=runtime,
        outputs=dict(workload.outputs.values), aborted=aborted,
    )


def _values_equal(a, b) -> bool:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return bool(np.array_equal(np.asarray(a), np.asarray(b)))
    return a == b


def _is_telemetry(key: str) -> bool:
    """Performance telemetry outputs (durations, fault counts) are
    *supposed* to differ between configurations — that difference is the
    paper's result, not a bug.  The workload convention is ``*_us`` for
    durations and ``*_faults`` for XNACK counters."""
    return key.endswith("_us") or key.endswith("_faults")


def _differential(
    factory: Callable[[], Workload],
    reference: Dict[str, object],
    *,
    cost: Optional[CostModel],
    seed: int,
) -> Dict[RuntimeConfig, str]:
    """Re-run under the other configurations; summarize each outcome."""
    from ..experiments.runner import execute

    outcomes: Dict[RuntimeConfig, str] = {RECORD_CONFIG: "ok (recording run)"}
    for config in ALL_CONFIGS:
        if config is RECORD_CONFIG:
            continue
        workload = factory()
        try:
            execute(workload, config, cost=cost, seed=seed)
        except _PROGRAM_ERRORS as exc:
            outcomes[config] = f"crash: {type(exc).__name__}: {exc}"
            continue
        diverged = sorted(
            key for key, ref in reference.items()
            if not _is_telemetry(key)
            and (key not in workload.outputs.values
                 or not _values_equal(workload.outputs.values[key], ref))
        )
        outcomes[config] = (
            "outputs diverge: " + ", ".join(diverged) if diverged else "ok"
        )
    return outcomes


def _confirm(findings: List[Finding],
             outcomes: Dict[RuntimeConfig, str]) -> None:
    for f in findings:
        f.confirmed_by = tuple(
            c for c in f.breaks_under
            if c in outcomes and outcomes[c] != "ok"
            and not outcomes[c].startswith("ok ")
        )


def _divergence_findings(
    findings: List[Finding],
    outcomes: Dict[RuntimeConfig, str],
    workload: str,
) -> List[Finding]:
    """MC-P04 for output divergences no other finding already explains."""
    explained = set()
    for f in findings:
        explained.update(f.output_keys)
    by_key: Dict[str, List[RuntimeConfig]] = {}
    for config, outcome in outcomes.items():
        if outcome.startswith("outputs diverge: "):
            for key in outcome[len("outputs diverge: "):].split(", "):
                if key not in explained:
                    by_key.setdefault(key, []).append(config)
    extra = []
    for key, configs in sorted(by_key.items()):
        extra.append(Finding(
            rule_id="MC-P04",
            buffer=key,
            workload=workload,
            message=(
                f"output {key!r} differs from the zero-copy reference under "
                f"{', '.join(c.label for c in configs)} — the program's "
                "result depends on the runtime configuration"
            ),
            breaks_under=tuple(configs),
            passes_under=(RECORD_CONFIG,),
            confirmed_by=tuple(configs),
            output_keys=(key,),
        ))
    return extra


def check_workload(
    factory: Callable[[], Workload],
    name: Optional[str] = None,
    *,
    cross_check: bool = True,
    cost: Optional[CostModel] = None,
    seed: int = 0,
) -> CheckReport:
    """Run MapCheck over one workload factory (fresh instance per run)."""
    workload = factory()
    wname = name or workload.name
    recorded = _run_instrumented(workload, cost=cost, seed=seed)
    rec = recorded.recorder
    findings = run_lint(rec, wname, outputs=recorded.outputs)
    findings += run_sanitizer(
        rec, wname,
        # a crashed run leaves entries behind by construction; only judge
        # teardown hygiene when all threads actually finished
        table=None if recorded.aborted else recorded.runtime.table,
        aborted=recorded.aborted,
    )
    findings += run_races(rec, wname)
    report = CheckReport(
        workload=wname,
        fidelity=workload.fidelity.value,
        findings=findings,
        aborted=None if recorded.aborted is None else
        f"{type(recorded.aborted).__name__}: {recorded.aborted}",
        stats=rec.stats(),
    )
    if cross_check and recorded.aborted is None:
        outcomes = _differential(factory, recorded.outputs, cost=cost, seed=seed)
        _confirm(findings, outcomes)
        report.findings.extend(
            _divergence_findings(findings, outcomes, wname)
        )
        report.config_outcomes = outcomes
    if any(f.source is None for f in report.findings):
        # best-effort: locate dynamic findings via the static extractor
        # (MapFix and SARIF viewers want every finding to carry a line);
        # workloads outside static scope simply keep source=None
        with contextlib.suppress(Exception):
            from .locate import backfill_sources
            from .static.extract import extract_workload

            backfill_sources(report.findings, extract_workload(factory(), wname))
    return report


def _merge_static(report: CheckReport, static: CheckReport) -> CheckReport:
    """Fold a MapFlow (static) report into a dynamic one."""
    report.findings.extend(static.findings)
    report.stats.update(static.stats)
    if static.aborted and report.aborted is None:
        report.aborted = static.aborted
    return report


def check_named(
    name: str,
    fidelity: Fidelity = Fidelity.TEST,
    *,
    cross_check: bool = True,
    cost: Optional[CostModel] = None,
    seed: int = 0,
    static: bool = False,
    dynamic: bool = True,
    perf: bool = False,
) -> CheckReport:
    """Run MapCheck over one bundled workload by registry name.

    ``static=True`` additionally runs the MapFlow static analysis and
    merges its findings; ``perf=True`` additionally runs the MapCost
    perf lint (also pure static); ``dynamic=False`` skips the
    instrumented and differential runs entirely (no simulation).
    """
    from .static import analyze_named
    from .static.cost import perf_report

    def _perf() -> CheckReport:
        return perf_report(make_workload(name, fidelity), name)

    if not dynamic:
        report = analyze_named(name, fidelity) if static else None
        if perf:
            report = _merge_static(report, _perf()) if report else _perf()
        return report if report is not None else analyze_named(name, fidelity)
    report = check_workload(
        lambda: make_workload(name, fidelity), name,
        cross_check=cross_check, cost=cost, seed=seed,
    )
    if static:
        report = _merge_static(report, analyze_named(name, fidelity))
    if perf:
        report = _merge_static(report, _perf())
    return report


def _check_one(
    spec: Tuple[str, Fidelity, bool, bool, bool, bool],
) -> Tuple[str, CheckReport]:
    """Worker entry point (module-level so it pickles)."""
    name, fidelity, cross_check, static, dynamic, perf = spec
    return name, check_named(
        name, fidelity, cross_check=cross_check,
        static=static, dynamic=dynamic, perf=perf,
    )


def check_all(
    fidelity: Fidelity = Fidelity.TEST,
    *,
    cross_check: bool = True,
    progress: Optional[Callable[[str], None]] = None,
    jobs: int = 1,
    static: bool = False,
    dynamic: bool = True,
    perf: bool = False,
) -> List[CheckReport]:
    """Run MapCheck over every bundled workload.

    Workloads are independent (fresh instance, fresh simulated system,
    fixed seed each), so ``jobs > 1`` fans them out over a process pool;
    reports come back keyed by name and are re-assembled in sorted-name
    order, and every finding list is itself emitted in sorted order —
    parallel and serial output are byte-identical.
    """
    names = sorted(WORKLOADS)
    specs = [(name, fidelity, cross_check, static, dynamic, perf)
             for name in names]
    by_name: Dict[str, CheckReport] = {}
    if jobs > 1 and len(specs) > 1:
        try:
            pickle.dumps(specs)
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(specs))
            ) as pool:
                pending = {pool.submit(_check_one, s): s[0] for s in specs}
                while pending:
                    done, _ = wait(pending, return_when=FIRST_COMPLETED)
                    for fut in done:
                        wname = pending.pop(fut)
                        _, report = fut.result()
                        by_name[wname] = report
                        if progress is not None:
                            progress(f"check {wname} done")
            return [by_name[name] for name in names]
        except (OSError, PermissionError, pickle.PicklingError) as exc:
            # sandboxed platform / no semaphores: same results, serially
            warnings.warn(
                f"process pool unavailable ({exc}); running serially",
                RuntimeWarning,
                stacklevel=2,
            )
    reports = []
    for name in names:
        if progress is not None:
            progress(f"check {name}")
        reports.append(check_named(
            name, fidelity, cross_check=cross_check,
            static=static, dynamic=dynamic, perf=perf,
        ))
    return reports

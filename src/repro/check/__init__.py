"""MapCheck: mapping sanitizer + portability lint for OpenMP offload.

Three cooperating analyses over one instrumented (recorded) run:

* **portability lint** (``lint``) — declared map clauses vs the dynamic
  access record: missing maps, discarded device writes, stale globals;
* **mapping sanitizer** (``sanitizer``) — present-table invariants:
  refcount underflow, leaks at teardown, double unmap, use-after-unmap
  kernel arguments, ``always`` misuse;
* **trace race detector** (``races``) — conflicting concurrent map
  operations and host-write-vs-kernel-read overlaps in the DES trace.

Entry points: :func:`check_workload` / :func:`check_named` /
:func:`check_all`, surfaced on the CLI as ``python -m repro check``.
"""

from .events import CheckRecorder, buffer_key, instrument, payload_hash
from .findings import (
    RULES,
    Analysis,
    CheckReport,
    Finding,
    Rule,
    Severity,
    merge_reports,
    render_rule_table,
)
from .lint import run_lint
from .races import run_races
from .registry import WORKLOADS, make_workload, workload_names
from .runner import check_all, check_named, check_workload
from .sanitizer import run_sanitizer

__all__ = [
    "Analysis",
    "CheckRecorder",
    "CheckReport",
    "Finding",
    "RULES",
    "Rule",
    "Severity",
    "WORKLOADS",
    "buffer_key",
    "check_all",
    "check_named",
    "check_workload",
    "instrument",
    "make_workload",
    "merge_reports",
    "payload_hash",
    "render_rule_table",
    "run_lint",
    "run_races",
    "run_sanitizer",
    "workload_names",
]

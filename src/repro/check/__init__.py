"""MapCheck: mapping sanitizer + portability lint for OpenMP offload.

Three cooperating analyses over one instrumented (recorded) run:

* **portability lint** (``lint``) — declared map clauses vs the dynamic
  access record: missing maps, discarded device writes, stale globals;
* **mapping sanitizer** (``sanitizer``) — present-table invariants:
  refcount underflow, leaks at teardown, double unmap, use-after-unmap
  kernel arguments, ``always`` misuse;
* **trace race detector** (``races``) — conflicting concurrent map
  operations and host-write-vs-kernel-read overlaps in the DES trace;

plus one purely static analysis over the workload *source*:

* **MapFlow** (``static``) — abstract interpretation of the extracted
  map-operation IR: per-path refcount tracking, use-after-exit-data,
  leaks at thread end, uncovered raw-pointer touches — no simulation,
  no instrumented run (``python -m repro check --static --no-sim``);
* **MapCost** (``static.cost``) — symbolic cost prediction over the
  same IR (per-config HSA call counts, copy bytes, fault pages, with
  bit-exact validation against simulated telemetry) plus the MC-W
  perf-lint rules (``python -m repro check --perf``).

Entry points: :func:`check_workload` / :func:`check_named` /
:func:`check_all`, surfaced on the CLI as ``python -m repro check``.
Baselines (:mod:`repro.check.baseline`) let CI accept known findings
and fail only on new ones.
"""

from .baseline import apply_baseline, fingerprint, load_baseline, write_baseline
from .events import CheckRecorder, buffer_key, instrument, payload_hash
from .findings import (
    RULES,
    Analysis,
    CheckReport,
    Finding,
    Rule,
    Severity,
    merge_reports,
    render_rule_table,
)
from .lint import run_lint
from .races import run_races
from .registry import (
    CANONICAL_MATRICES,
    RULE_FAMILIES,
    WORKLOADS,
    dynamic_counterparts,
    make_workload,
    static_counterparts,
    workload_names,
)
from .runner import check_all, check_named, check_workload
from .sanitizer import run_sanitizer
from .sarif import to_sarif, write_sarif

__all__ = [
    "Analysis",
    "CANONICAL_MATRICES",
    "CheckRecorder",
    "CheckReport",
    "Finding",
    "RULES",
    "RULE_FAMILIES",
    "Rule",
    "Severity",
    "WORKLOADS",
    "apply_baseline",
    "buffer_key",
    "check_all",
    "check_named",
    "check_workload",
    "dynamic_counterparts",
    "fingerprint",
    "instrument",
    "load_baseline",
    "make_workload",
    "merge_reports",
    "payload_hash",
    "render_rule_table",
    "run_lint",
    "run_races",
    "run_sanitizer",
    "static_counterparts",
    "to_sarif",
    "workload_names",
    "write_baseline",
    "write_sarif",
]

"""Purpose-built faulty workloads: one canonical mapping defect each.

This corpus started life inside the MapCheck test suite; it moved into
the package because two consumers now share it:

* ``tests/test_check_faulty.py`` asserts the dynamic analyses emit the
  stable rule ids (and §IV.C per-config matrices) each defect encodes;
* the static/dynamic differential harness
  (:func:`repro.check.static.static_dynamic_differential`) replays the
  same corpus through MapFlow and cross-checks that every dynamic
  finding whose defect family is in static scope has a static match.

Each entry is a :class:`~repro.workloads.base.Workload` subclass whose
class docstring says what is wrong with it; :data:`CORPUS` maps a short
name to the class (all take no constructor arguments).
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from ..memory.layout import MIB
from ..omp.mapping import MapClause, MapKind, PresentEntry
from ..workloads.base import Fidelity, Workload

__all__ = [
    "CORPUS",
    "PERF_CORPUS",
    "MissingMapWorkload",
    "MissingFromWorkload",
    "StaleGlobalWorkload",
    "LeakWorkload",
    "DoubleUnmapWorkload",
    "UnderflowWorkload",
    "AlwaysMisuseWorkload",
    "UseAfterUnmapWorkload",
    "MapRaceWorkload",
    "HostWriteRaceWorkload",
    "NowaitResultRaceWorkload",
    "ExitExitRaceWorkload",
    "CrossThreadHostWriteWorkload",
    "AmbiguousReleaseWorkload",
    "EscapedBufferLeakWorkload",
    "MapChurnWorkload",
    "RedundantMapWorkload",
    "FaultStormWorkload",
    "GlobalIndirectionWorkload",
    "NoopUpdateWorkload",
]


class MissingMapWorkload(Workload):
    """Kernel dereferences a buffer that was never mapped (a pointer
    smuggled through a struct): the classic works-on-APU-only bug."""

    name = "faulty-missing-map"

    def __init__(self):
        super().__init__(Fidelity.TEST)

    def make_body(self):
        outputs = self.outputs

        def body(th, tid):
            ghost = yield from th.alloc("ghost", MIB, payload=np.ones(8))
            ok = yield from th.alloc("ok", MIB, payload=np.ones(8))
            yield from th.target_enter_data([MapClause(ok, MapKind.TO)])
            yield from th.target(
                "stray", 50.0,
                maps=[MapClause(ok, MapKind.ALLOC)],
                touches=[ghost],
                fn=lambda a, g: a["ghost"].__iadd__(1.0),
            )
            yield from th.target_exit_data([MapClause(ok, MapKind.DELETE)])
            outputs.put("ghost", ghost.payload.copy())

        return body


class MissingFromWorkload(Workload):
    """Buffer written on the device feeds an output, but the final unmap
    is a bare release: zero-copy aliasing hides the missing ``from``."""

    name = "faulty-missing-from"

    def __init__(self):
        super().__init__(Fidelity.TEST)

    def make_body(self):
        outputs = self.outputs

        def body(th, tid):
            data = yield from th.alloc("result", MIB, payload=np.zeros(16))
            yield from th.target_enter_data([MapClause(data, MapKind.TO)])
            yield from th.target(
                "compute", 100.0,
                maps=[MapClause(data, MapKind.ALLOC)],
                fn=lambda a, g: a["result"].__iadd__(3.0),
            )
            yield from th.target_exit_data([MapClause(data, MapKind.RELEASE)])
            outputs.put("result", data.payload.copy())

        return body


class StaleGlobalWorkload(Workload):
    """Host updates a declare-target global but never re-syncs it before
    the kernel reads it: only USM's pointer-globals see the new value."""

    name = "faulty-stale-global"

    def __init__(self):
        super().__init__(Fidelity.TEST)

    def prepare(self, runtime):
        self.glob = runtime.declare_target("coef", np.ones(4))

    def make_body(self):
        outputs, glob = self.outputs, self.glob

        def body(th, tid):
            out = yield from th.alloc("out", MIB, payload=np.zeros(4))
            yield from th.target_enter_data([MapClause(out, MapKind.TO)])
            glob.host_payload[0] = 42.0  # missing th.update_global(glob)
            yield from th.target(
                "use_global", 50.0,
                maps=[MapClause(out, MapKind.FROM, always=True)],
                globals_used=[glob],
                fn=lambda a, g: a["out"].__setitem__(0, g["coef"][0]),
            )
            yield from th.target_exit_data([MapClause(out, MapKind.DELETE)])
            outputs.put("out", out.payload.copy())

        return body


class LeakWorkload(Workload):
    """Maps its working set and never unmaps it."""

    name = "faulty-leak"

    def __init__(self):
        super().__init__(Fidelity.TEST)

    def make_body(self):
        def body(th, tid):
            data = yield from th.alloc("leaky", MIB, payload=np.ones(8))
            yield from th.target_enter_data([MapClause(data, MapKind.TO)])
            yield from th.target(
                "touch", 50.0, maps=[MapClause(data, MapKind.ALLOC)],
                fn=lambda a, g: None,
            )

        return body


class DoubleUnmapWorkload(Workload):
    """Exits the same mapping twice."""

    name = "faulty-double-unmap"

    def __init__(self):
        super().__init__(Fidelity.TEST)

    def make_body(self):
        def body(th, tid):
            data = yield from th.alloc("dup", MIB)
            yield from th.target_enter_data([MapClause(data, MapKind.TO)])
            yield from th.target_exit_data([MapClause(data, MapKind.DELETE)])
            yield from th.target_exit_data([MapClause(data, MapKind.DELETE)])

        return body


class UnderflowWorkload(Workload):
    """Releases an entry whose refcount is already zero (simulating a
    runtime whose bookkeeping was corrupted by unbalanced exits)."""

    name = "faulty-underflow"

    def __init__(self):
        super().__init__(Fidelity.TEST)

    def prepare(self, runtime):
        self.rt = runtime

    def make_body(self):
        rt = self.rt

        def body(th, tid):
            data = yield from th.alloc("uf", MIB)
            rt.table.insert(PresentEntry(host=data, device=None, refcount=0))
            yield from th.target_exit_data([MapClause(data, MapKind.RELEASE)])

        return body


class AlwaysMisuseWorkload(Workload):
    """``always`` on a never-transferring map kind."""

    name = "faulty-always-misuse"

    def __init__(self):
        super().__init__(Fidelity.TEST)

    def make_body(self):
        def body(th, tid):
            data = yield from th.alloc("am", MIB)
            yield from th.target_enter_data(
                [MapClause(data, MapKind.ALLOC, always=True)]
            )

        return body


class UseAfterUnmapWorkload(Workload):
    """Thread 1 destroys a mapping while thread 0's kernel referencing
    the buffer is still in flight."""

    name = "faulty-use-after-unmap"
    n_threads = 2

    def __init__(self):
        super().__init__(Fidelity.TEST)

    def make_body(self):
        shared = {}

        def body(th, tid):
            env = th.env
            if tid == 0:
                buf = yield from th.alloc("victim", MIB, payload=np.ones(8))
                yield from th.target_enter_data([MapClause(buf, MapKind.TO)])
                shared["buf"] = buf
                handle = yield from th.target(
                    "long_read", 5000.0, touches=[buf], nowait=True
                )
                shared["launched"] = True
                yield from th.wait(handle)
            else:
                while "launched" not in shared:
                    yield env.timeout(25.0)
                yield from th.target_exit_data(
                    [MapClause(shared["buf"], MapKind.DELETE)]
                )

        return body


class MapRaceWorkload(Workload):
    """Two threads issue a map-enter and a map-exit for the same buffer
    at the same simulated instant: the outcome depends on lock order."""

    name = "faulty-map-race"
    n_threads = 2

    def __init__(self):
        super().__init__(Fidelity.TEST)

    def make_body(self):
        shared = {}

        def body(th, tid):
            env = th.env
            if tid == 0:
                buf = yield from th.alloc("contested", MIB, payload=np.ones(8))
                yield from th.target_enter_data([MapClause(buf, MapKind.TO)])
                shared["buf"] = buf
                shared["go"] = env.now + 500.0
            while "go" not in shared:
                yield env.timeout(10.0)
            delay = shared["go"] - env.now
            if delay > 0:
                yield env.timeout(delay)
            if tid == 0:
                yield from th.target_enter_data(
                    [MapClause(shared["buf"], MapKind.TO)]
                )
                yield env.timeout(200.0)
                yield from th.target_exit_data(
                    [MapClause(shared["buf"], MapKind.DELETE)]
                )
            else:
                yield from th.target_exit_data(
                    [MapClause(shared["buf"], MapKind.RELEASE)]
                )

        return body


class HostWriteRaceWorkload(Workload):
    """Host writes a buffer while a nowait kernel reading it is in
    flight — benign under Copy (snapshot isolation), a data race under
    every zero-copy configuration."""

    name = "faulty-host-write-race"

    def __init__(self):
        super().__init__(Fidelity.TEST)

    def make_body(self):
        outputs = self.outputs

        def body(th, tid):
            buf = yield from th.alloc("shared_in", MIB, payload=np.ones(8))
            yield from th.target_enter_data([MapClause(buf, MapKind.TO)])
            handle = yield from th.target(
                "reader", 2000.0,
                maps=[MapClause(buf, MapKind.ALLOC)],
                fn=lambda a, g: None,
                nowait=True,
            )
            yield th.env.timeout(300.0)
            th.host_write(buf, np.full(8, 9.0))
            yield from th.wait(handle)
            yield from th.target_exit_data([MapClause(buf, MapKind.DELETE)])
            outputs.put("done", 1.0)

        return body


class NowaitResultRaceWorkload(Workload):
    """Publishes an output read from a buffer a nowait kernel is still
    writing — the wait on the completion handle is missing entirely, so
    the result is whatever the race produces (MC-S22; the leaked deferred
    exit also shows up dynamically as MC-S02)."""

    name = "faulty-nowait-result"

    def __init__(self):
        super().__init__(Fidelity.TEST)

    def make_body(self):
        outputs = self.outputs

        def body(th, tid):
            buf = yield from th.alloc("async_out", MIB, payload=np.zeros(8))
            yield from th.target_enter_data([MapClause(buf, MapKind.TO)])
            yield from th.target(
                "producer", 2000.0,
                maps=[MapClause(buf, MapKind.FROM)],
                fn=lambda a, g: a["async_out"].__iadd__(7.0),
                nowait=True,
            )
            # missing: yield from th.wait(handle)
            outputs.put("result", buf.payload.copy())

        return body


class ExitExitRaceWorkload(Workload):
    """Two threads release the same double-mapped buffer at the same
    simulated instant: which exit removes the entry depends on lock
    arrival order (dynamic MC-R01, static MC-S21)."""

    name = "faulty-exit-exit-race"
    n_threads = 2

    def __init__(self):
        super().__init__(Fidelity.TEST)

    def make_body(self):
        shared = {}

        def body(th, tid):
            env = th.env
            if tid == 0:
                buf = yield from th.alloc("torndown", MIB, payload=np.ones(8))
                yield from th.target_enter_data([MapClause(buf, MapKind.TO)])
                yield from th.target_enter_data([MapClause(buf, MapKind.TO)])
                shared["buf"] = buf
                shared["go"] = env.now + 500.0
            while "go" not in shared:
                yield env.timeout(10.0)
            delay = shared["go"] - env.now
            if delay > 0:
                yield env.timeout(delay)
            yield from th.target_exit_data(
                [MapClause(shared["buf"], MapKind.RELEASE)]
            )

        return body


class CrossThreadHostWriteWorkload(Workload):
    """Thread 1 writes a buffer while thread 0's kernel reading it is
    in flight; the writer never waits on (or even sees) the kernel's
    completion (dynamic MC-R02, static cross-thread MC-S20)."""

    name = "faulty-cross-thread-host-write"
    n_threads = 2

    def __init__(self):
        super().__init__(Fidelity.TEST)

    def make_body(self):
        outputs = self.outputs
        shared = {}

        def body(th, tid):
            env = th.env
            if tid == 0:
                buf = yield from th.alloc("hotbuf", MIB, payload=np.ones(8))
                yield from th.target_enter_data([MapClause(buf, MapKind.TO)])
                shared["buf"] = buf
                yield from th.target(
                    "crunch", 3000.0,
                    maps=[MapClause(buf, MapKind.ALLOC)],
                    fn=lambda a, g: None,
                )
                yield from th.target_exit_data(
                    [MapClause(buf, MapKind.DELETE)]
                )
                outputs.put("done", 1.0)
            else:
                while "buf" not in shared:
                    yield env.timeout(25.0)
                yield env.timeout(500.0)
                th.host_write(shared["buf"], np.full(8, 3.0))

        return body


class AmbiguousReleaseWorkload(Workload):
    """Releases its mapping behind an opaque guard *and* unconditionally:
    on the guarded path the second exit underflows (MC-S10), but deleting
    it would leak the mapping on the path where the guard is false — the
    remediation is semantically ambiguous, so MapFix must refuse to
    propose one (every candidate fails sandbox verification)."""

    name = "faulty-ambiguous-release"

    def __init__(self):
        super().__init__(Fidelity.TEST)

    def make_body(self):
        def body(th, tid):
            data = yield from th.alloc("amb", MIB, payload=np.ones(8))
            yield from th.target_enter_data([MapClause(data, MapKind.TO)])
            if th.env.now >= 0.0:  # opaque to the extractor: both arms live
                yield from th.target_exit_data(
                    [MapClause(data, MapKind.RELEASE)]
                )
            yield from th.target_exit_data([MapClause(data, MapKind.RELEASE)])

        return body


class EscapedBufferLeakWorkload(Workload):
    """Leaks a mapping whose buffer is owned by a dict entry, not a
    variable: the missing ``exit data`` is real (MC-S12), but any
    inserted exit would have to guess how to name the escaped buffer —
    MapFix's synthesis precondition (simple-name owners only) refuses."""

    name = "faulty-escaped-leak"

    def __init__(self):
        super().__init__(Fidelity.TEST)

    def make_body(self):
        bag = {}

        def body(th, tid):
            bag["buf"] = yield from th.alloc(
                "escaped", MIB, payload=np.ones(8)
            )
            yield from th.target_enter_data(
                [MapClause(bag["buf"], MapKind.TO)]
            )
            yield from th.target(
                "touch", 50.0, maps=[MapClause(bag["buf"], MapKind.ALLOC)],
                fn=lambda a, g: None,
            )

        return body


# ---------------------------------------------------------------------------
# perf-lint corpus: dynamically *clean* workloads whose mapping pattern
# is expensive under specific configurations (one MC-W rule each)
# ---------------------------------------------------------------------------


class MapChurnWorkload(Workload):
    """Maps and unmaps its working set on every iteration of a hot loop:
    correct everywhere, but under Eager Maps each enter prefaults the
    same pages again (MC-W01)."""

    name = "perf-map-churn"

    def __init__(self):
        super().__init__(Fidelity.TEST)

    def make_body(self):
        outputs = self.outputs

        def body(th, tid):
            data = yield from th.alloc("churny", MIB, payload=np.ones(8))
            for _ in range(64):
                yield from th.target_enter_data([MapClause(data, MapKind.TO)])
                yield from th.target(
                    "work", 10.0,
                    maps=[MapClause(data, MapKind.ALLOC)],
                    fn=lambda a, g: None,
                )
                yield from th.target_exit_data(
                    [MapClause(data, MapKind.DELETE)]
                )
            outputs.put("done", 1.0)

        return body


class RedundantMapWorkload(Workload):
    """Re-maps an already-present buffer with a non-``always`` ``to``:
    the second copy intent never transfers (MC-W02)."""

    name = "perf-redundant-map"

    def __init__(self):
        super().__init__(Fidelity.TEST)

    def make_body(self):
        outputs = self.outputs

        def body(th, tid):
            data = yield from th.alloc("twice", MIB, payload=np.ones(8))
            yield from th.target_enter_data([MapClause(data, MapKind.TO)])
            yield from th.target(
                "reuse", 50.0,
                maps=[MapClause(data, MapKind.TO)],
                fn=lambda a, g: None,
            )
            yield from th.target_exit_data([MapClause(data, MapKind.DELETE)])
            outputs.put("done", 1.0)

        return body


class FaultStormWorkload(Workload):
    """Allocates a fresh buffer inside a hot loop and hands it to a
    kernel: every iteration's first touch re-faults the pages under
    XNACK-serviced configurations (MC-W03)."""

    name = "perf-fault-storm"

    def __init__(self):
        super().__init__(Fidelity.TEST)

    def make_body(self):
        outputs = self.outputs

        def body(th, tid):
            for _ in range(64):
                fresh = yield from th.alloc(
                    "storm", 2 * MIB, payload=np.ones(4)
                )
                yield from th.target(
                    "touch_fresh", 10.0,
                    maps=[MapClause(fresh, MapKind.TOFROM)],
                    fn=lambda a, g: None,
                )
                yield from th.free(fresh)
            outputs.put("done", 1.0)

        return body


class GlobalIndirectionWorkload(Workload):
    """A hot loop's kernel reads a declare-target global on every
    iteration: under USM the GPU global is a pointer into host memory
    and every access double-indirects (MC-W04)."""

    name = "perf-global-indirection"

    def __init__(self):
        super().__init__(Fidelity.TEST)

    def prepare(self, runtime):
        self.glob = runtime.declare_target("gconst", np.ones(4))

    def make_body(self):
        outputs, glob = self.outputs, self.glob

        def body(th, tid):
            out = yield from th.alloc("out", MIB, payload=np.zeros(4))
            yield from th.target_enter_data([MapClause(out, MapKind.TO)])
            for _ in range(64):
                yield from th.target(
                    "read_g", 10.0,
                    maps=[MapClause(out, MapKind.ALLOC)],
                    globals_used=[glob],
                    fn=lambda a, g: None,
                )
            yield from th.target_exit_data([MapClause(out, MapKind.DELETE)])
            outputs.put("done", 1.0)

        return body


class NoopUpdateWorkload(Workload):
    """Issues a ``target update`` for a buffer every zero-copy
    configuration already shares with the device (MC-W05)."""

    name = "perf-noop-update"

    def __init__(self):
        super().__init__(Fidelity.TEST)

    def make_body(self):
        outputs = self.outputs

        def body(th, tid):
            data = yield from th.alloc("synced", MIB, payload=np.ones(8))
            yield from th.target_enter_data([MapClause(data, MapKind.TO)])
            yield from th.target_update(to=[data])
            yield from th.target(
                "consume", 50.0,
                maps=[MapClause(data, MapKind.ALLOC)],
                fn=lambda a, g: None,
            )
            yield from th.target_exit_data([MapClause(data, MapKind.DELETE)])
            outputs.put("done", 1.0)

        return body


#: short name -> zero-argument faulty workload class, in a stable order
CORPUS: Dict[str, Callable[[], Workload]] = {
    "missing-map": MissingMapWorkload,
    "missing-from": MissingFromWorkload,
    "stale-global": StaleGlobalWorkload,
    "leak": LeakWorkload,
    "double-unmap": DoubleUnmapWorkload,
    "underflow": UnderflowWorkload,
    "always-misuse": AlwaysMisuseWorkload,
    "use-after-unmap": UseAfterUnmapWorkload,
    "map-race": MapRaceWorkload,
    "host-write-race": HostWriteRaceWorkload,
    "nowait-result": NowaitResultRaceWorkload,
    "exit-exit-race": ExitExitRaceWorkload,
    "cross-thread-host-write": CrossThreadHostWriteWorkload,
    "ambiguous-release": AmbiguousReleaseWorkload,
    "escaped-buffer-leak": EscapedBufferLeakWorkload,
}

#: short name -> dynamically-clean perf-pattern workload class; kept
#: separate from CORPUS so the correctness differential (which expects
#: dynamic findings for every entry) is unaffected
PERF_CORPUS: Dict[str, Callable[[], Workload]] = {
    "map-churn": MapChurnWorkload,
    "redundant-map": RedundantMapWorkload,
    "fault-storm": FaultStormWorkload,
    "global-indirection": GlobalIndirectionWorkload,
    "noop-update": NoopUpdateWorkload,
}

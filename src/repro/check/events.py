"""MapCheck event recording: the dynamic trace the analyses replay.

:func:`instrument` attaches a :class:`CheckRecorder` to an
:class:`~repro.omp.runtime.OpenMPRuntime`; the runtime, the policies and
the present table then report every map operation, kernel dispatch,
global sync, motion update and host write as a structured event.  The
payload hashes recorded alongside are what lets the lint reason about
*data* (was the device-written value ever synced back?) instead of just
operation counts.

Hashes are CRC32 of the functional payload bytes — payloads are small by
construction (the modeled size is what drives timing), so hashing every
event is cheap; a CRC collision would at worst suppress a finding, never
invent one.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..memory.buffers import HostBuffer
from ..omp.globals_ import GlobalVar
from ..omp.mapping import MapClause, MapKind

__all__ = [
    "buffer_key",
    "payload_hash",
    "MapOpEvent",
    "TableEvent",
    "KernelEvent",
    "HostWriteEvent",
    "GlobalSyncEvent",
    "UpdateEvent",
    "CheckRecorder",
    "instrument",
]


def buffer_key(buf: HostBuffer) -> str:
    """Stable identity of a host buffer across the trace."""
    return f"{buf.name}@0x{buf.range.start:x}"


def payload_hash(arr: Optional[np.ndarray]) -> int:
    if arr is None:
        return 0
    return zlib.crc32(np.ascontiguousarray(arr).tobytes())


@dataclass
class MapOpEvent:
    """One map clause processed by a policy (enter or exit)."""

    op: str                      #: "enter" | "exit"
    tid: Optional[int]
    t0: float
    t1: float
    key: str
    name: str
    start: int
    nbytes: int
    kind: MapKind
    always: bool
    is_new: bool
    refcount: int                #: refcount after the operation
    removed: bool                #: entry removed from the table
    payload_hash: int            #: host payload at the time of the op
    sync_device: bool            #: op moved host data to the device image
    sync_host: bool              #: op moved device data back to the host
    #: recording-order sequence number: the tie-breaker that keeps
    #: analyses deterministic when two ops share a start time
    seq: int = 0


@dataclass
class TableEvent:
    """Raw present-table operation (sanitizer channel; includes rejected
    operations reported just before their exception)."""

    op: str                      #: insert/retain/release/remove/underflow/...
    t: float
    key: str
    name: str
    refcount: Optional[int]
    locked: bool                 #: device lock held during the operation


@dataclass
class KernelEvent:
    """One target-region kernel, from dispatch to completion."""

    kid: int
    name: str
    tid: int
    t_dispatch: float
    mapped: Tuple[str, ...]          #: buffer keys from map clauses
    touched: Tuple[str, ...]         #: buffer keys from raw-pointer touches
    uncovered: Tuple[str, ...]       #: touched keys with no live coverage
    writes: Tuple[str, ...]          #: keys the kernel may write (FROM/TOFROM/touch)
    reads: Tuple[str, ...]           #: keys the kernel may read
    globals_read: Tuple[Tuple[str, int], ...]  #: (name, host hash at dispatch)
    submit_us: float = 0.0
    end_us: float = 0.0
    completed: bool = False
    arg_hashes: Dict[str, int] = field(default_factory=dict)  #: post-completion
    waiter_tid: Optional[int] = None
    wait_t0: float = 0.0


@dataclass
class HostWriteEvent:
    tid: int
    t: float
    key: str
    name: str
    payload_hash: int


@dataclass
class GlobalSyncEvent:
    """Host→device refresh of a declare-target global (init, map(always,
    to:) or target update)."""

    tid: Optional[int]           #: None = device init
    t: float
    name: str
    host_hash: int


@dataclass
class UpdateEvent:
    """``target update`` motion clause."""

    tid: int
    t: float
    key: str
    name: str
    to_device: bool
    present: bool                #: motion of absent data is a no-op
    payload_hash: int


class CheckRecorder:
    """Collects the MapCheck event streams during one instrumented run."""

    def __init__(self, runtime):
        self.rt = runtime
        self.map_ops: List[MapOpEvent] = []
        self.table_ops: List[TableEvent] = []
        self.kernels: List[KernelEvent] = []
        self.host_writes: List[HostWriteEvent] = []
        self.global_syncs: List[GlobalSyncEvent] = []
        self.updates: List[UpdateEvent] = []
        self.buffers: Dict[str, HostBuffer] = {}
        self.globals: Dict[str, GlobalVar] = {}
        self._next_kid = 0

    # -- hook methods (called by runtime/policies/api) -------------------
    def note_map(self, op: str, clause: MapClause, tid: Optional[int],
                 t0: float, t1: float, *, is_new: bool, refcount: int,
                 removed: bool) -> None:
        buf = clause.buffer
        key = buffer_key(buf)
        self.buffers[key] = buf
        if op == "enter":
            sync_device = clause.kind.copies_to_device and (is_new or clause.always)
            sync_host = False
        else:
            sync_device = False
            sync_host = clause.kind.copies_to_host and (removed or clause.always)
        self.map_ops.append(MapOpEvent(
            op=op, tid=tid, t0=t0, t1=t1, key=key, name=buf.name,
            start=buf.range.start, nbytes=buf.range.nbytes,
            kind=clause.kind, always=clause.always, is_new=is_new,
            refcount=refcount, removed=removed,
            payload_hash=payload_hash(buf.payload),
            sync_device=sync_device, sync_host=sync_host,
            seq=len(self.map_ops),
        ))

    def note_table(self, op: str, buffer: Optional[HostBuffer],
                   refcount: Optional[int], locked: bool) -> None:
        key = buffer_key(buffer) if buffer is not None else ""
        name = buffer.name if buffer is not None else ""
        self.table_ops.append(TableEvent(
            op=op, t=self.rt.env.now, key=key, name=name,
            refcount=refcount, locked=locked,
        ))

    def begin_kernel(self, name: str, tid: int, t: float, maps, touches,
                     uncovered, globals_used) -> KernelEvent:
        for buf in list(touches):
            self.buffers[buffer_key(buf)] = buf
        for glob in globals_used:
            self.globals[glob.name] = glob
        mapped = tuple(buffer_key(c.buffer) for c in maps)
        touched = tuple(buffer_key(b) for b in touches)
        writes = tuple(
            {buffer_key(c.buffer) for c in maps if c.kind.copies_to_host}
            | set(touched)
        )
        reads = tuple(set(mapped) | set(touched))
        ev = KernelEvent(
            kid=self._next_kid, name=name, tid=tid, t_dispatch=t,
            mapped=mapped, touched=touched,
            uncovered=tuple(buffer_key(b) for b in uncovered),
            writes=writes, reads=reads,
            globals_read=tuple(
                (g.name, payload_hash(g.host_payload)) for g in globals_used
            ),
        )
        self._next_kid += 1
        self.kernels.append(ev)
        return ev

    def end_kernel(self, ev: KernelEvent, rec, waiter_tid: int,
                   wait_t0: float) -> None:
        ev.submit_us = rec.submit_us
        ev.end_us = rec.end_us
        ev.completed = True
        ev.waiter_tid = waiter_tid
        ev.wait_t0 = wait_t0
        for key in set(ev.mapped) | set(ev.touched):
            buf = self.buffers.get(key)
            if buf is not None:
                ev.arg_hashes[key] = payload_hash(buf.payload)

    def note_host_write(self, tid: int, t: float, buf: HostBuffer) -> None:
        key = buffer_key(buf)
        self.buffers[key] = buf
        self.host_writes.append(HostWriteEvent(
            tid=tid, t=t, key=key, name=buf.name,
            payload_hash=payload_hash(buf.payload),
        ))

    def note_global_sync(self, tid: Optional[int], t: float,
                         glob: GlobalVar) -> None:
        self.globals[glob.name] = glob
        self.global_syncs.append(GlobalSyncEvent(
            tid=tid, t=t, name=glob.name,
            host_hash=payload_hash(glob.host_payload),
        ))

    def note_update(self, tid: int, t: float, buf: HostBuffer, *,
                    to_device: bool, present: bool) -> None:
        key = buffer_key(buf)
        self.buffers[key] = buf
        self.updates.append(UpdateEvent(
            tid=tid, t=t, key=key, name=buf.name, to_device=to_device,
            present=present, payload_hash=payload_hash(buf.payload),
        ))

    # -- summary ---------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        return {
            "map_ops": len(self.map_ops),
            "kernels": len(self.kernels),
            "table_ops": len(self.table_ops),
            "host_writes": len(self.host_writes),
            "global_syncs": len(self.global_syncs),
            "buffers": len(self.buffers),
        }


def instrument(runtime) -> CheckRecorder:
    """Attach a fresh recorder to ``runtime`` (and its present table)."""
    rec = CheckRecorder(runtime)
    runtime.recorder = rec
    runtime.table.observer = rec
    runtime.table.lock_probe = lambda: runtime.lock.locked
    return rec

"""Static-vs-dynamic differential harness.

MapFlow's correctness argument is empirical and two-sided:

* **Recall** (faulty corpus): every finding the *dynamic* analyses emit
  on :data:`repro.check.corpus.CORPUS` whose defect family is in static
  scope (i.e. a static counterpart rule exists) must be matched by a
  static finding with the same family and buffer — the abstract
  interpreter sees, without running anything, what the instrumented run
  observed.
* **Precision** (clean registry): MapFlow must emit *zero* findings on
  the 11 bundled clean workloads, and the static path must be genuinely
  static — no :class:`~repro.core.system.ApuSystem` may be constructed
  and no simulation event may fire while it analyzes (enforced here by
  poisoning the constructor for the duration).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ...workloads.base import Fidelity
from ..corpus import CORPUS
from ..findings import Finding, RULES
from ..registry import WORKLOADS, static_counterparts
from .rules import analyze_named, static_report

__all__ = ["DifferentialResult", "MatchRecord", "static_dynamic_differential"]


class _SimulationForbidden(AssertionError):
    pass


@contextlib.contextmanager
def _forbid_simulation() -> Iterator[None]:
    """Poison ``ApuSystem.__init__`` so any attempt to simulate during a
    static pass fails loudly instead of silently degrading the claim."""
    from ...core import system as system_mod

    original = system_mod.ApuSystem.__init__

    def poisoned(self, *args, **kwargs):  # pragma: no cover - must not run
        raise _SimulationForbidden(
            "static analysis path instantiated ApuSystem"
        )

    system_mod.ApuSystem.__init__ = poisoned
    try:
        yield
    finally:
        system_mod.ApuSystem.__init__ = original


@dataclass(frozen=True)
class MatchRecord:
    """One dynamic finding and how the static side answered it."""

    corpus_name: str
    dynamic_rule: str
    buffer: str
    family: str
    static_rule: Optional[str]    #: the matching static finding's rule id

    @property
    def matched(self) -> bool:
        return self.static_rule is not None


@dataclass
class DifferentialResult:
    #: dynamic findings with static counterparts, matched or not
    records: List[MatchRecord] = field(default_factory=list)
    #: clean workload name -> static findings (any entry is a failure)
    false_positives: Dict[str, List[Finding]] = field(default_factory=dict)
    #: clean workload name -> static extraction/analysis abort message
    aborts: Dict[str, str] = field(default_factory=dict)

    @property
    def unmatched(self) -> List[MatchRecord]:
        return [r for r in self.records if not r.matched]

    @property
    def ok(self) -> bool:
        return (not self.unmatched and not self.false_positives
                and not self.aborts)

    def render(self) -> str:
        lines = ["static/dynamic differential", "-" * 60]
        for r in self.records:
            verdict = f"matched by {r.static_rule}" if r.matched else "UNMATCHED"
            lines.append(
                f"  {r.corpus_name:<18} {r.dynamic_rule} "
                f"{r.buffer!r:<14} ({r.family}) -> {verdict}"
            )
        if self.false_positives:
            lines.append("false positives on clean workloads:")
            for name, findings in sorted(self.false_positives.items()):
                for f in findings:
                    lines.append(f"  {name:<18} {f.rule_id} {f.buffer!r}")
        if self.aborts:
            lines.append("static analysis aborts:")
            for name, msg in sorted(self.aborts.items()):
                lines.append(f"  {name:<18} {msg}")
        lines.append(
            f"result: {'OK' if self.ok else 'FAIL'} "
            f"({len(self.records)} in-scope dynamic finding(s), "
            f"{len(self.unmatched)} unmatched, "
            f"{sum(len(v) for v in self.false_positives.values())} "
            "false positive(s))"
        )
        return "\n".join(lines)


def _family_of(rule_id: str) -> str:
    return RULES[rule_id].family


def _match(dynamic: Finding, static_findings: List[Finding]) -> Optional[str]:
    family = _family_of(dynamic.rule_id)
    for sf in static_findings:
        if _family_of(sf.rule_id) == family and sf.buffer == dynamic.buffer:
            return sf.rule_id
    return None


def static_dynamic_differential(
    *,
    corpus: bool = True,
    clean: bool = True,
    fidelity: Fidelity = Fidelity.TEST,
) -> DifferentialResult:
    """Run the two-sided differential; see the module docstring."""
    result = DifferentialResult()

    if corpus:
        from ..runner import check_workload

        for name, cls in CORPUS.items():
            dynamic = check_workload(cls, cls.name, cross_check=False)
            with _forbid_simulation():
                static = static_report(cls(), cls.name)
            if static.aborted:
                result.aborts[cls.name] = static.aborted
                continue
            for f in dynamic.findings:
                if not static_counterparts(f.rule_id):
                    continue  # family out of static scope (races, content)
                result.records.append(MatchRecord(
                    corpus_name=name,
                    dynamic_rule=f.rule_id,
                    buffer=f.buffer,
                    family=_family_of(f.rule_id),
                    static_rule=_match(f, static.findings),
                ))

    if clean:
        with _forbid_simulation():
            for name in sorted(WORKLOADS):
                report = analyze_named(name, fidelity)
                if report.aborted:
                    result.aborts[name] = report.aborted
                elif report.findings:
                    result.false_positives[name] = list(report.findings)

    return result

"""Lower the structured IR of one thread to a control-flow graph.

The interpreter wants plain basic blocks with successor edges so its
worklist handles loops (back edges) and early returns uniformly.  The
lowering is standard:

* ``Branch`` — the current block forks to both arm heads, the arm
  tails rejoin at a fresh join block.
* ``Loop`` with ``min_trips >= 1`` (``for``) — control falls *into*
  the body, and the latch both loops back and exits: the body executes
  at least once.
* ``Loop`` with ``min_trips == 0`` (``while``) — a header block
  forks to the body head and to the exit: zero executions feasible.
* ``ReturnNode`` — edge straight to the function exit block; the rest
  of the sequence becomes unreachable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .ir import Branch, Loop, Op, ReturnNode, Seq, ThreadProgram

__all__ = ["Block", "CFG", "build_cfg"]


@dataclass
class Block:
    bid: int
    ops: List[Op] = field(default_factory=list)
    succs: List["Block"] = field(default_factory=list)

    def __hash__(self) -> int:
        return self.bid

    def __repr__(self) -> str:
        return f"B{self.bid}({len(self.ops)} ops -> {[s.bid for s in self.succs]})"


@dataclass
class CFG:
    entry: Block
    exit: Block
    blocks: List[Block] = field(default_factory=list)

    def new_block(self) -> Block:
        b = Block(bid=len(self.blocks))
        self.blocks.append(b)
        return b


def _lower_seq(cfg: CFG, seq: Seq, cur: Block) -> Block:
    """Lower ``seq`` starting in ``cur``; return the block where control
    continues (possibly an unreachable continuation after a return)."""
    for item in seq.items:
        if isinstance(item, Op):
            cur.ops.append(item)
        elif isinstance(item, Branch):
            then_head = cfg.new_block()
            else_head = cfg.new_block()
            cur.succs += [then_head, else_head]
            then_tail = _lower_seq(cfg, item.then, then_head)
            else_tail = _lower_seq(cfg, item.orelse, else_head)
            join = cfg.new_block()
            for tail in (then_tail, else_tail):
                if tail is not None:
                    tail.succs.append(join)
            cur = join
        elif isinstance(item, Loop):
            body_head = cfg.new_block()
            after = cfg.new_block()
            if item.min_trips >= 1:
                cur.succs.append(body_head)
            else:
                header = cfg.new_block()
                cur.succs.append(header)
                header.succs += [body_head, after]
            body_tail = _lower_seq(cfg, item.body, body_head)
            if body_tail is not None:
                body_tail.succs += [body_head, after]
            cur = after
        elif isinstance(item, ReturnNode):
            cur.succs.append(cfg.exit)
            # anything after a return in this Seq is unreachable; park it
            # in a fresh block with no predecessors
            cur = cfg.new_block()
        else:  # pragma: no cover - extractor only emits the above
            raise TypeError(f"unlowerable IR node {type(item).__name__}")
    return cur


def build_cfg(program: ThreadProgram) -> CFG:
    entry = Block(bid=0)
    cfg = CFG(entry=entry, exit=None, blocks=[entry])  # type: ignore[arg-type]
    cfg.exit = cfg.new_block()
    tail = _lower_seq(cfg, program.body, entry)
    if tail is not None:
        tail.succs.append(cfg.exit)
    return cfg

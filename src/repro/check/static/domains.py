"""Abstract domains for MapFlow.

Two domains:

* :class:`Refcount` — the per-buffer present-table refcount lattice.
  The public shape is the four-point chain ``⊥ < 0 < 1 < ⊤`` from the
  issue; the implementation refines the middle with exact small counts
  (0..3) and a saturating ``>=SAT`` band so nested ``target data``
  regions stay precise, plus a ``POS`` point ("present, count unknown")
  so a weakly-exited nest does not immediately collapse to ``⊤``.  The
  join is *flat on distinct exact values that disagree about presence*
  — ``join(0, 1) = ⊤``, not ``1`` — because reporting rules need
  "definitely absent on some path", which a chain lub would destroy.

* :class:`IntervalSet` — a presence-interval set over byte offsets, the
  domain for partial maps.  The bundled workload API today only maps
  whole buffers, so the interpreter's coverage check degenerates to
  all-or-nothing, but the domain (union/subtract/covers) is what a
  future sub-buffer ``MapClause(buf[lo:hi])`` lowers onto and is kept
  exercised by unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

__all__ = ["Refcount", "IntervalSet"]


@dataclass(frozen=True)
class Refcount:
    """One lattice point.  ``code`` encoding:

    * ``BOT`` (-2): unreachable / never-allocated-here
    * ``0..MAX_EXACT``: exact refcount
    * ``SAT``: refcount known >= MAX_EXACT + 1
    * ``POS`` (-3): definitely present, count unknown (>= 1)
    * ``TOP`` (-1): unknown (may be absent or present)
    """

    code: int

    MAX_EXACT = 3

    def __repr__(self) -> str:
        if self is BOT or self.code == -2:
            return "⊥"
        if self.code == -1:
            return "⊤"
        if self.code == -3:
            return ">=1"
        if self.code == self.MAX_EXACT + 1:
            return f">={self.code}"
        return str(self.code)

    # -- predicates -----------------------------------------------------
    @property
    def definitely_absent(self) -> bool:
        return self.code == 0

    @property
    def definitely_present(self) -> bool:
        return self.code == -3 or 1 <= self.code <= self.MAX_EXACT + 1

    @property
    def unknown(self) -> bool:
        return self.code == -1

    @property
    def is_bottom(self) -> bool:
        return self.code == -2

    # -- transfer -------------------------------------------------------
    def enter(self) -> "Refcount":
        """Effect of a strong map-enter (retain-or-insert)."""
        if self.code == -2:          # allocated elsewhere: now present
            return POS
        if self.code in (-1, -3):
            return POS               # present for sure now, count unknown
        return exact(min(self.code + 1, self.MAX_EXACT + 1))

    def exit(self, delete: bool = False) -> "Refcount":
        """Effect of a strong map-exit.  ``delete`` zeroes the count
        (map(delete:) semantics); callers check ``definitely_absent``
        *before* applying this to decide whether to report."""
        if delete:
            return ZERO
        if self.code == -2 or self.code == -1:
            return TOP
        if self.code == -3:
            return TOP               # >=1 minus 1 may reach 0
        if self.code == 0:
            return ZERO              # underflow (reported by caller)
        if self.code == self.MAX_EXACT + 1:
            return POS               # >=4 minus 1 is >=3, keep it sound: >=1
        return exact(self.code - 1)

    def join(self, other: "Refcount") -> "Refcount":
        a, b = self.code, other.code
        if a == b:
            return self
        if a == -2:
            return other
        if b == -2:
            return self
        if a == -1 or b == -1:
            return TOP
        # both are exact or POS from here on
        sp = self.definitely_present
        op = other.definitely_present
        if sp and op:
            return POS               # disagree on count, agree on presence
        return TOP                   # one side may be 0: flat join


def exact(n: int) -> Refcount:
    return _EXACT[n]


BOT = Refcount(-2)
TOP = Refcount(-1)
POS = Refcount(-3)
_EXACT = {n: Refcount(n) for n in range(Refcount.MAX_EXACT + 2)}
ZERO = _EXACT[0]
ONE = _EXACT[1]


@dataclass(frozen=True)
class IntervalSet:
    """Finite union of half-open byte intervals ``[lo, hi)``."""

    intervals: Tuple[Tuple[int, int], ...] = ()

    @staticmethod
    def of(*pairs: Tuple[int, int]) -> "IntervalSet":
        return IntervalSet(()).union(IntervalSet(tuple(
            (lo, hi) for lo, hi in pairs if lo < hi
        )))

    @staticmethod
    def _normalize(pairs: Iterable[Tuple[int, int]]) -> Tuple[Tuple[int, int], ...]:
        merged: List[Tuple[int, int]] = []
        for lo, hi in sorted(p for p in pairs if p[0] < p[1]):
            if merged and lo <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
            else:
                merged.append((lo, hi))
        return tuple(merged)

    def union(self, other: "IntervalSet") -> "IntervalSet":
        return IntervalSet(self._normalize(self.intervals + other.intervals))

    def subtract(self, other: "IntervalSet") -> "IntervalSet":
        out: List[Tuple[int, int]] = []
        for lo, hi in self.intervals:
            cur = [(lo, hi)]
            for slo, shi in other.intervals:
                nxt: List[Tuple[int, int]] = []
                for clo, chi in cur:
                    if shi <= clo or slo >= chi:
                        nxt.append((clo, chi))
                        continue
                    if clo < slo:
                        nxt.append((clo, slo))
                    if shi < chi:
                        nxt.append((shi, chi))
                cur = nxt
            out.extend(cur)
        return IntervalSet(self._normalize(out))

    def covers(self, lo: int, hi: int) -> bool:
        """Whether ``[lo, hi)`` is entirely inside the set."""
        need = IntervalSet.of((lo, hi)).subtract(self)
        return not need.intervals

    @property
    def empty(self) -> bool:
        return not self.intervals

    def total(self) -> int:
        return sum(hi - lo for lo, hi in self.intervals)

"""MapPlace: static page-placement analysis and affinity lint.

Splits MapCost's byte/page counters into local vs. remote-link shares
per (config, topology, placement) analysis point, lints placements that
pay the inter-socket link (MC-A rules), and validates both against the
instrumented :class:`~repro.multisocket.card.ApuCard` telemetry.
"""

from .model import PLACE_BOUNDED_KEYS, PLACEMENTS, PlaceSpec
from .rules import (
    HOT_REMOTE_PAGE_VISITS,
    LINK_SATURATION_BYTES,
    PLACE_RULE_IDS,
    REMOTE_FAULT_STORM_PAGE_THRESHOLD,
    place_findings,
    place_matrix,
    place_report,
)
from .walker import predict_card, predict_place
from .differential import (
    DEFAULT_POINTS,
    PlaceCell,
    PlaceDifferentialResult,
    measure_place,
    place_differential,
)

__all__ = [
    "PLACE_BOUNDED_KEYS",
    "PLACEMENTS",
    "PlaceSpec",
    "PLACE_RULE_IDS",
    "REMOTE_FAULT_STORM_PAGE_THRESHOLD",
    "HOT_REMOTE_PAGE_VISITS",
    "LINK_SATURATION_BYTES",
    "place_matrix",
    "place_findings",
    "place_report",
    "predict_place",
    "predict_card",
    "DEFAULT_POINTS",
    "PlaceCell",
    "PlaceDifferentialResult",
    "measure_place",
    "place_differential",
]

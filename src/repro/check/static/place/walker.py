"""The MapPlace walker: per-socket local/remote split of MapCost counters.

Subclasses the MapCost abstract interpreter via its two telemetry hooks:

* ``_fault_bump`` — every pages-faulted contribution is also split into
  its remote-link share under the :class:`~.model.PlaceSpec` placement
  rule.  For a resolved site of ``P`` pages with ``R`` remote, a fault
  interval ``[lo, hi]`` contributes ``[max(0, lo-(P-R)), min(R, hi)]``
  remote pages (pigeonhole on both ends — sound for *any* subset of the
  buffer's pages, exact when the whole buffer faults, which is what the
  whole-buffer translation booleans of the base domain produce);
* ``_on_kernel`` — mirrors the card's kernel cost adjuster, which walks
  every explicit map clause's pages per launch: each resolved clause
  contributes exactly its buffer's local/remote page counts (globals
  and raw-pointer touches are *not* in the adjuster's clause list, so
  they are deliberately not counted here either).

Loop handling comes for free: the base walker's steady-state delta
multiplication and join-fixpoint widening treat the new counters like
any other, so remote totals are loop-exact whenever the base counters
are.

``predict_card`` produces the per-socket prediction the place
differential checks: the executing socket gets the full walk; idle
sockets boot their device (``device_init_counts(0)``) and do nothing
else.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir import AbstractBuffer, TargetOp, WorkloadIR
from .model import PLACE_BOUNDED_KEYS, PlaceSpec
from ..cost.intervals import ZERO, Interval
from ..cost.model import ALL_KEYS, CostEnv, device_init_counts, pages_of
from ..cost.walker import CostPrediction, CostState, _Walker

__all__ = ["predict_place", "predict_card"]


class _PlaceWalker(_Walker):
    """MapCost walker + local/remote placement split."""

    def __init__(self, ir: WorkloadIR, env: CostEnv, spec: PlaceSpec):
        super().__init__(ir, env)
        self.spec = spec

    # -- shared helpers ----------------------------------------------------
    def _site_pages(self, site: Optional[AbstractBuffer],
                    global_name: Optional[str] = None) -> Optional[int]:
        nbytes = None
        if site is not None:
            nbytes = self._site_nbytes(site)
        elif global_name is not None:
            nbytes = self.ir.global_sizes.get(global_name)
        if nbytes is None:
            return None
        return pages_of(nbytes, self.env.page_size)

    def _remote_share(self, iv: Interval, n_pages: int) -> Interval:
        """Remote portion of ``iv`` faulted/visited pages out of an
        ``n_pages`` allocation (pigeonhole bounds, exact for whole-buffer
        intervals)."""
        remote = self.spec.remote_pages(n_pages)
        local = n_pages - remote
        lo = max(0, iv.lo - local)
        hi = remote if iv.hi is None else min(remote, iv.hi)
        return Interval(lo, max(hi, lo))

    # -- hook overrides ----------------------------------------------------
    def _fault_bump(self, state: CostState, iv: Interval,
                    site: Optional[AbstractBuffer] = None,
                    global_name: Optional[str] = None) -> None:
        super()._fault_bump(state, iv, site=site, global_name=global_name)
        if iv.is_zero or self.spec.n_sockets == 1:
            return
        n_pages = self._site_pages(site, global_name)
        if n_pages is None:
            self.note("unresolved fault site; remote fault pages widened")
            state.bump("remote_fault_pages", Interval(0, None))
            return
        state.bump("remote_fault_pages", self._remote_share(iv, n_pages))

    def _on_kernel(self, state: CostState, op: TargetOp,
                   sitemap: Dict[int, Optional[AbstractBuffer]]) -> None:
        # mirror of ApuCard._make_adjuster: one pass over the launch's
        # explicit map clauses, every page of every clause's buffer
        for i, clause in enumerate(op.clauses):
            if clause.buf.unknown or not clause.buf.sites:
                self.note("unresolved kernel clause; remote kernel pages widened")
                state.bump("remote_kernel_pages", Interval(0, None))
                state.bump("local_kernel_pages", Interval(0, None))
                continue
            pinned = sitemap.get(i)
            candidates = [pinned] if pinned is not None else sorted(
                clause.buf.sites, key=lambda b: b.site
            )
            locals_: List[int] = []
            remotes: List[int] = []
            unresolved = False
            for site in candidates:
                n_pages = self._site_pages(site)
                if n_pages is None:
                    unresolved = True
                    break
                remote = self.spec.remote_pages(n_pages)
                remotes.append(remote)
                locals_.append(n_pages - remote)
            if unresolved:
                self.note("unresolved kernel clause size; "
                          "remote kernel pages widened")
                state.bump("remote_kernel_pages", Interval(0, None))
                state.bump("local_kernel_pages", Interval(0, None))
                continue
            state.bump("local_kernel_pages",
                       Interval(min(locals_), max(locals_)))
            state.bump("remote_kernel_pages",
                       Interval(min(remotes), max(remotes)))

    # -- entry -------------------------------------------------------------
    def run(self, include_init: bool = True) -> CostPrediction:
        pred = super().run(include_init=include_init)
        for key in PLACE_BOUNDED_KEYS:
            pred.counters.setdefault(key, ZERO)
        pred.counters["remote_kernel_bytes"] = pred.counters[
            "remote_kernel_pages"
        ].scale(self.env.page_size)
        return pred


def predict_place(
    ir: WorkloadIR, env: CostEnv, spec: PlaceSpec, include_init: bool = True
) -> CostPrediction:
    """Predict the executing socket's cost + local/remote counters for
    one (config, topology, placement) point."""
    return _PlaceWalker(ir, env, spec).run(include_init=include_init)


def predict_card(
    ir: WorkloadIR, env: CostEnv, spec: PlaceSpec
) -> List[CostPrediction]:
    """Per-socket predictions for a card run with every host thread
    pinned to the executing socket: the executing socket gets the full
    walk, idle sockets an exact boot-only prediction."""
    out: List[CostPrediction] = []
    for s in range(spec.n_sockets):
        if s == spec.socket:
            out.append(predict_place(ir, env, spec))
            continue
        counters: Dict[str, Interval] = {
            key: Interval.exact(count)
            for key, count in device_init_counts(0).items()
        }
        for key in ALL_KEYS + PLACE_BOUNDED_KEYS:
            counters.setdefault(key, ZERO)
        out.append(CostPrediction(
            name=ir.name, config=env.config, counters=counters,
            notes=[f"socket {s}: idle (device boot only)"],
        ))
    return out

"""Place differential: per-socket predicted counters vs. card telemetry.

The MapCost differential validates the single-socket cost walker; this
harness extends it along the topology axis.  For every clean registry
workload, every runtime configuration and a set of (topology, placement)
analysis points:

* the *predicted* side extracts the workload once and runs the MapPlace
  walker (:func:`~.walker.predict_card`) for every (config, point) pair
  with ``ApuSystem.__init__`` poisoned — the prediction phase must not
  simulate anything;
* the *measured* side runs one noise-free :class:`~repro.multisocket.card.ApuCard`
  simulation per cell with every host thread pinned to the executing
  socket, and harvests per-socket HSA traces, run ledgers and
  driver/placement counters.

The contract is MapCost's two-tier contract per socket: HSA call
counts, map-op counts and kernel launches bit-exact; byte/page counters
*and* the new remote/local placement counters inside the predicted
intervals.  Unknown traced keys with nonzero counts fail.

The harness also carries the affinity-lint false-positive gate: under
the default first-touch analysis point the clean registry must produce
zero MC-A findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ....core.config import ALL_CONFIGS, RuntimeConfig
from ....core.params import CostModel
from ....workloads.base import Fidelity
from ...findings import Finding
from ..differential import _forbid_simulation
from ..extract import extract_workload
from ..cost.model import BOUNDED_KEYS, EXACT_KEYS, HSA_KEYS, CostEnv
from ..cost.walker import CostPrediction
from .model import PLACE_BOUNDED_KEYS, PlaceSpec
from .rules import place_findings
from .walker import predict_card

__all__ = [
    "DEFAULT_POINTS",
    "PlaceCell",
    "PlaceDifferentialResult",
    "measure_place",
    "place_differential",
]

#: default (topology, placement) sweep: no remote pages, a ~50/50 split,
#: and an everything-remote point on a wider card
DEFAULT_POINTS: Tuple[PlaceSpec, ...] = (
    PlaceSpec(n_sockets=2, placement="first-touch"),
    PlaceSpec(n_sockets=2, placement="interleave"),
    PlaceSpec(n_sockets=4, placement="pinned", home=1),
)


def measure_place(
    workload,
    config: RuntimeConfig,
    spec: PlaceSpec,
    cost: Optional[CostModel] = None,
) -> Tuple[List[Dict[str, int]], int]:
    """Run one noise-free card simulation for an analysis point and
    harvest per-socket measured counters; returns ``(per_socket, sim_events)``."""
    from ....multisocket.card import ApuCard

    card = ApuCard(
        topology=spec.topology(),
        placement=spec.placement_spec(),
        cost=cost or CostModel(),
        seed=0,
    )
    res = card.run_workload(workload, config)
    per_socket: List[Dict[str, int]] = []
    for s in range(res.n_sockets):
        trace = res.per_socket_traces[s]
        ledger = res.per_socket_ledgers[s]
        counters = res.per_socket_counters[s]
        measured = {name: trace.count(name) for name in HSA_KEYS}
        for name in trace.names():
            measured.setdefault(name, trace.count(name))
        measured.update({
            "map_enters": ledger.n_map_enters,
            "map_exits": ledger.n_map_exits,
            "kernels": ledger.n_kernels,
            "h2d_bytes": ledger.h2d_bytes,
            "d2h_bytes": ledger.d2h_bytes,
            "shadow_bytes": ledger.shadow_bytes,
            "pages_prefaulted": counters["pages_prefaulted"],
            "pages_faulted": counters["pages_faulted"],
            "remote_fault_pages": counters["remote_fault_pages"],
            "remote_kernel_pages": counters["remote_kernel_pages"],
            "local_kernel_pages": counters["local_kernel_pages"],
            "remote_kernel_bytes": counters["remote_kernel_bytes"],
        })
        per_socket.append(measured)
    return per_socket, res.sim_events


@dataclass
class PlaceCell:
    """Predicted vs. measured counters for one socket of one
    (workload, config, analysis point) cell."""

    workload: str
    config: RuntimeConfig
    spec: PlaceSpec
    socket: int
    prediction: CostPrediction
    measured: Dict[str, int] = field(default_factory=dict)
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def check(self) -> "PlaceCell":
        for key in EXACT_KEYS:
            iv = self.prediction.interval(key)
            got = self.measured.get(key, 0)
            if not iv.is_exact or iv.lo != got:
                self.mismatches.append(
                    f"{key}: predicted {iv}, measured {got} (exact contract)"
                )
        for key in BOUNDED_KEYS + PLACE_BOUNDED_KEYS:
            iv = self.prediction.interval(key)
            got = self.measured.get(key, 0)
            if not iv.contains(got):
                self.mismatches.append(
                    f"{key}: predicted {iv} does not contain measured {got}"
                )
        known = set(EXACT_KEYS) | set(BOUNDED_KEYS) | set(PLACE_BOUNDED_KEYS)
        for key in sorted(set(self.measured) - known):
            if self.measured[key]:
                self.mismatches.append(
                    f"simulation traced {key!r} ({self.measured[key]}x), "
                    "which the place model does not predict"
                )
        return self

    def render(self) -> str:
        head = (
            f"{self.workload:<18} {self.config.value:<22} "
            f"{self.spec.label():<22} s{self.socket} "
            f"{'ok' if self.ok else 'FAIL'}"
        )
        if self.ok:
            return head
        return head + "".join(f"\n    {m}" for m in self.mismatches)

    def to_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "config": self.config.value,
            "spec": self.spec.label(),
            "socket": self.socket,
            "ok": self.ok,
            "predicted": {
                k: str(self.prediction.interval(k))
                for k in EXACT_KEYS + BOUNDED_KEYS + PLACE_BOUNDED_KEYS
            },
            "measured": dict(self.measured),
            "mismatches": list(self.mismatches),
        }


@dataclass
class PlaceDifferentialResult:
    """Full sweep outcome: every cell plus the lint false-positive gate."""

    cells: List[PlaceCell] = field(default_factory=list)
    #: MC-A findings on the clean registry under the default first-touch
    #: analysis point — must be empty
    false_positives: List[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.false_positives and all(c.ok for c in self.cells)

    def render(self) -> str:
        lines = [c.render() for c in self.cells]
        for f in self.false_positives:
            lines.append(
                f"FALSE POSITIVE {f.rule_id} on clean workload "
                f"{f.workload!r} ({f.buffer})"
            )
        n_fail = sum(1 for c in self.cells if not c.ok)
        lines.append(
            f"place differential: {len(self.cells) - n_fail}/{len(self.cells)} "
            f"cells ok, {len(self.false_positives)} lint false positive(s)"
        )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "n_cells": len(self.cells),
            "false_positives": [
                {"rule": f.rule_id, "workload": f.workload, "buffer": f.buffer}
                for f in self.false_positives
            ],
            "cells": [c.to_dict() for c in self.cells],
        }


def place_differential(
    names: Optional[Sequence[str]] = None,
    *,
    fidelity: Fidelity = Fidelity.TEST,
    configs: Sequence[RuntimeConfig] = ALL_CONFIGS,
    points: Sequence[PlaceSpec] = DEFAULT_POINTS,
    cost: Optional[CostModel] = None,
) -> PlaceDifferentialResult:
    """Run the predicted-vs-measured sweep over every (workload, config,
    analysis point) cell.

    The static phase (extraction + place walk for every configuration and
    point, plus the affinity-lint false-positive gate) runs with
    ``ApuSystem`` poisoned; only then does the measured phase simulate.
    """
    from ...registry import WORKLOADS, make_workload

    names = list(names) if names is not None else sorted(WORKLOADS)
    predictions: Dict[tuple, List[CostPrediction]] = {}
    result = PlaceDifferentialResult()
    with _forbid_simulation():
        for name in names:
            ir = extract_workload(make_workload(name, fidelity), name=name)
            result.false_positives.extend(place_findings(ir, PlaceSpec()))
            for config in configs:
                env = CostEnv.for_config(config, cost)
                for spec in points:
                    predictions[(name, config, spec)] = predict_card(
                        ir, env, spec
                    )
    for name in names:
        for config in configs:
            for spec in points:
                per_socket, _events = measure_place(
                    make_workload(name, fidelity), config, spec, cost
                )
                preds = predictions[(name, config, spec)]
                for s, measured in enumerate(per_socket):
                    result.cells.append(PlaceCell(
                        workload=name,
                        config=config,
                        spec=spec,
                        socket=s,
                        prediction=preds[s],
                        measured=measured,
                    ).check())
    return result

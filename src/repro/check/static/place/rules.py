"""MC-A affinity-lint rules: placements that pay the Infinity Fabric.

The MC-W perf rules ask "where does this mapping pattern cost"; the
MC-A rules add the topology axis: the *same* pattern that is harmless
on one socket becomes link traffic when the placement policy puts the
buffer's pages on a remote socket.  Every rule therefore only fires
when the analysis point's :class:`~.model.PlaceSpec` actually places
pages remotely (``remote_pages > 0`` — in particular, nothing can fire
on a 1-socket topology or under the executing socket's first-touch
placement, which is what keeps the clean registry finding-free under
the default spec).

Break/pass matrices are derived from the same
:class:`~repro.check.static.rules.ConfigSemantics` table the MC-S/MC-W
matrices come from, evaluated per configuration:

* MC-A01 — remote first-touch faults cost where XNACK services them;
* MC-A02 — cross-socket map churn costs where map-enters actually
  install/move pages (Copy's shadow copies, Eager's prefault ioctls);
* MC-A03 — the remote-access penalty applies where kernels read host
  memory directly (every zero-copy configuration);
* MC-A04 — a link-saturating shadow copy exists only where maps
  materialize shadow copies (Copy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ....core.config import ALL_CONFIGS, RuntimeConfig
from ....memory.layout import MIB
from ....workloads.base import Workload
from ...findings import CheckReport, Finding
from ..ir import (
    AbstractBuffer,
    Branch,
    EnterOp,
    ExitOp,
    Loop,
    Seq,
    TargetOp,
    WorkloadIR,
)
from ..rules import SEMANTICS, ConfigSemantics, _relative_source
from ..cost.model import CostEnv, pages_of
from .model import PlaceSpec

__all__ = [
    "PLACE_RULE_IDS",
    "REMOTE_FAULT_STORM_PAGE_THRESHOLD",
    "HOT_REMOTE_PAGE_VISITS",
    "LINK_SATURATION_BYTES",
    "place_matrix",
    "place_findings",
    "place_report",
]

#: MC-A01 fires when a single first touch faults at least this many
#: remote pages
REMOTE_FAULT_STORM_PAGE_THRESHOLD = 64
#: MC-A03 fires when a loop's kernels visit at least this many remote
#: pages in total
HOT_REMOTE_PAGE_VISITS = 256
#: MC-A04 fires when one copying enter sources at least this many
#: remote bytes
LINK_SATURATION_BYTES = 32 * MIB

#: rule id -> "pays the remote-link cost" predicate over one
#: configuration's semantics
_PLACE_RULES: Dict[str, Callable[[ConfigSemantics], bool]] = {
    # remote first-touch faults only cost where XNACK services them
    "MC-A01": lambda s: s.xnack,
    # map churn moves/installs remote pages where enters do real work:
    # Copy's shadow copies and Eager's prefault ioctls (under the XNACK
    # configs a map-enter is pure bookkeeping)
    "MC-A02": lambda s: not s.xnack,
    # the remote-access penalty applies where kernels read host memory
    # directly — every zero-copy configuration
    "MC-A03": lambda s: not s.shadow_copies,
    # a shadow copy that streams remote bytes over the link exists only
    # where maps materialize shadow copies
    "MC-A04": lambda s: s.shadow_copies,
}

PLACE_RULE_IDS: Tuple[str, ...] = tuple(_PLACE_RULES)


def place_matrix(
    rule_id: str,
) -> Tuple[Tuple[RuntimeConfig, ...], Tuple[RuntimeConfig, ...]]:
    """``(breaks_under, passes_under)`` derived from ConfigSemantics."""
    pays = _PLACE_RULES[rule_id]
    breaks_under = tuple(c for c in ALL_CONFIGS if pays(SEMANTICS[c]))
    passes_under = tuple(c for c in ALL_CONFIGS if not pays(SEMANTICS[c]))
    return breaks_under, passes_under


# ---------------------------------------------------------------------------
# detection
# ---------------------------------------------------------------------------


@dataclass
class _RawFinding:
    rule_id: str
    site_key: str
    buffer: str
    message: str
    lineno: int
    tid: int


class _PlaceDetector:
    """One structural pass over a thread body, firing MC-A rules for a
    given (topology, placement) analysis point."""

    def __init__(self, ir: WorkloadIR, env: CostEnv, spec: PlaceSpec):
        self.ir = ir
        self.env = env
        self.spec = spec
        self.raw: List[_RawFinding] = []
        self.tid = 0
        self._fired = set()
        #: canonical site registry (folded sizes may live on the thread's
        #: buffer table rather than on individual refs)
        self.sites: Dict[str, AbstractBuffer] = {}
        for th in ir.threads:
            self.sites.update(th.buffers)

    def fire(self, rule_id: str, site_key: str, buffer: str,
             message: str, lineno: int) -> None:
        self.raw.append(_RawFinding(
            rule_id, site_key, buffer, message, lineno, self.tid))
        self._fired.add((rule_id, site_key))

    def _pages(self, site: AbstractBuffer) -> Optional[int]:
        nbytes = self.sites.get(site.site, site).nbytes
        if nbytes is None:
            return None
        return pages_of(nbytes, self.env.page_size)

    def _remote(self, site: AbstractBuffer) -> Optional[int]:
        pages = self._pages(site)
        if pages is None:
            return None
        return self.spec.remote_pages(pages)

    # -- structural walk ---------------------------------------------------
    def walk(self, node) -> None:
        if isinstance(node, Seq):
            for item in node.items:
                self.walk(item)
        elif isinstance(node, Branch):
            self.walk(node.then)
            self.walk(node.orelse)
        elif isinstance(node, Loop):
            self._scan_loop(node)
            self.walk(node.body)
        elif isinstance(node, TargetOp):
            self._check_target(node)
        elif isinstance(node, EnterOp):
            self._check_copy_enter(node)

    # -- MC-A01: remote first-touch storm ---------------------------------
    def _check_target(self, op: TargetOp) -> None:
        self._check_copy_enter(op)
        seen = set()
        fault_sites: List[AbstractBuffer] = []
        for clause in op.clauses:
            if clause.buf.strong and clause.buf.only.site not in seen:
                seen.add(clause.buf.only.site)
                fault_sites.append(clause.buf.only)
        for touch in op.touches:
            if touch.strong and touch.only.site not in seen:
                seen.add(touch.only.site)
                fault_sites.append(touch.only)
        for site in fault_sites:
            if ("MC-A01", site.site) in self._fired:
                continue
            remote = self._remote(site)
            if remote is None or remote < REMOTE_FAULT_STORM_PAGE_THRESHOLD:
                continue
            self.fire(
                "MC-A01", site.site, site.name,
                f"kernel {op.kernel!r} first-touches {site.name!r}, whose "
                f"placement ({self.spec.label()}) puts {remote} of its "
                f"pages on a remote socket: each first-touch fault is "
                "serviced over the Infinity Fabric link — pin the buffer "
                "to the executing socket or prefault it locally",
                op.lineno)

    # -- MC-A04: link-saturating shadow copy -------------------------------
    def _check_copy_enter(self, op) -> None:
        for clause in op.clauses:
            if (clause.kind is None or not clause.kind.copies_to_device
                    or not clause.buf.strong):
                continue
            site = clause.buf.only
            if ("MC-A04", site.site) in self._fired:
                continue
            remote = self._remote(site)
            if remote is None:
                continue
            remote_bytes = remote * self.env.page_size
            if remote_bytes < LINK_SATURATION_BYTES:
                continue
            self.fire(
                "MC-A04", site.site, site.name,
                f"map '{clause.kind.value}: {site.name}' copies "
                f"{remote_bytes >> 20} MiB from remote-placed pages "
                f"({self.spec.label()}): under Copy the H2D shadow copy "
                "streams these bytes over the inter-socket link — place "
                "the source buffer on the executing socket",
                op.lineno)

    # -- loop-scoped rules (MC-A02 / MC-A03) --------------------------------
    def _scan_loop(self, loop: Loop) -> None:
        enters: Dict[str, Tuple[AbstractBuffer, int]] = {}
        exits: Dict[str, int] = {}
        kernel_sites: Dict[str, Tuple[AbstractBuffer, str, int]] = {}

        def scan(node):
            if isinstance(node, Seq):
                for item in node.items:
                    scan(item)
            elif isinstance(node, Branch):
                scan(node.then)
                scan(node.orelse)
            elif isinstance(node, Loop):
                scan(node.body)
            elif isinstance(node, EnterOp):
                for c in node.clauses:
                    if c.buf.strong and c.kind is not None:
                        enters[c.buf.only.site] = (c.buf.only, node.lineno)
            elif isinstance(node, ExitOp):
                for c in node.clauses:
                    if c.buf.strong and c.kind is not None:
                        exits[c.buf.only.site] = node.lineno
            elif isinstance(node, TargetOp):
                for c in node.clauses:
                    if c.buf.strong:
                        s = c.buf.only
                        kernel_sites.setdefault(
                            s.site, (s, node.kernel, node.lineno))

        scan(loop.body)
        trips = loop.trips if loop.trips is not None else loop.min_trips
        trips_txt = (
            f"{loop.trips} iterations" if loop.trips is not None
            else f">= {loop.min_trips} iteration(s)"
        )

        # MC-A02: enter/exit churn of a remote-placed site every iteration
        for key, (site, lineno) in sorted(enters.items()):
            if key not in exits or ("MC-A02", key) in self._fired:
                continue
            remote = self._remote(site)
            if not remote:
                continue
            self.fire(
                "MC-A02", key, site.name,
                f"{site.name!r} is mapped and unmapped on every iteration "
                f"of the loop at line {loop.lineno} ({trips_txt}) with "
                f"{remote} remote-placed pages ({self.spec.label()}): "
                "each enter re-installs those pages across the link under "
                "Copy/Eager Maps — hoist the pair out of the loop or pin "
                "the buffer home",
                lineno)

        # MC-A03: hot-loop kernels over remote-placed pages
        for key, (site, kernel, lineno) in sorted(kernel_sites.items()):
            if ("MC-A03", key) in self._fired:
                continue
            remote = self._remote(site)
            if not remote:
                continue
            visits = remote * max(trips, 1)
            if visits < HOT_REMOTE_PAGE_VISITS:
                continue
            self.fire(
                "MC-A03", key, site.name,
                f"kernel {kernel!r} visits {remote} remote-placed pages of "
                f"{site.name!r} ({self.spec.label()}) on every iteration "
                f"of the loop at line {loop.lineno} ({trips_txt}, ~{visits} "
                "remote page visits): every zero-copy access pays the "
                "remote-socket penalty — pin the buffer to the executing "
                "socket",
                lineno)

    # -- entry --------------------------------------------------------------
    def run(self) -> List[_RawFinding]:
        for program in self.ir.threads:
            self.tid = program.tid
            self.walk(program.body)
        return self.raw


def place_findings(
    ir: WorkloadIR,
    spec: Optional[PlaceSpec] = None,
    env: Optional[CostEnv] = None,
) -> List[Finding]:
    """Run the MC-A detectors over one extracted workload IR at one
    (topology, placement) analysis point."""
    spec = spec or PlaceSpec()
    env = env or CostEnv.for_config(RuntimeConfig.IMPLICIT_ZERO_COPY)
    raw = _PlaceDetector(ir, env, spec).run()
    grouped: Dict[Tuple[str, str], List[_RawFinding]] = {}
    for r in raw:
        grouped.setdefault((r.rule_id, r.site_key), []).append(r)
    source = _relative_source(ir.source_file)
    findings: List[Finding] = []
    for (rule_id, _key), items in sorted(grouped.items()):
        primary = items[0]
        breaks_under, passes_under = place_matrix(rule_id)
        findings.append(Finding(
            rule_id=rule_id,
            buffer=primary.buffer,
            workload=ir.name,
            message=primary.message,
            tid=primary.tid,
            breaks_under=breaks_under,
            passes_under=passes_under,
            related=tuple(
                f"line {r.lineno} (tid {r.tid})" for r in items[1:]
            ),
            source=(source, primary.lineno) if source else None,
        ))
    return findings


def place_report(
    workload: Workload, name: str = "", spec: Optional[PlaceSpec] = None
) -> CheckReport:
    """Extract one workload and run the affinity lint (pure static path)."""
    from ..extract import ExtractionError, extract_workload

    spec = spec or PlaceSpec()
    wname = name or getattr(workload, "name", type(workload).__name__)
    fidelity = getattr(workload, "fidelity", None)
    report = CheckReport(
        workload=wname,
        fidelity=fidelity.value if fidelity is not None else "?",
    )
    try:
        ir = extract_workload(workload, name=wname)
    except ExtractionError as exc:
        report.aborted = f"static extraction failed: {exc}"
        return report
    report.findings = place_findings(ir, spec)
    report.stats = {
        "place_threads": len(ir.threads),
        "place_sockets": spec.n_sockets,
    }
    return report

"""MapPlace model: placement analysis points and the remote-page rule.

A :class:`PlaceSpec` is one (topology, placement) point of the static
analysis, viewed from the *executing* socket (the socket every host
thread of the workload is pinned to — the default plan of
:meth:`repro.multisocket.card.ApuCard.run_workload`).  Its
:meth:`~PlaceSpec.remote_pages` is the pure placement rule the
simulator's :class:`~repro.multisocket.topology.PlacementView` follows:
for a page-aligned allocation of ``P`` pages performed by the executing
socket, how many of its pages land on a *remote* socket's HBM?

* first-touch — pages land on the allocating socket: 0 remote
  (exhaustion spill is out of static scope; the differential keeps
  per-socket HBM large enough that it never triggers);
* interleave — page ``i`` lands on socket ``i % N``: ``P`` minus the
  executing socket's stripe count;
* pinned:<home> — everything on the home socket: 0 if the executing
  socket *is* home, else all ``P`` pages.

The remote counter keys extend MapCost's bounded tier: the place
differential requires the measured card telemetry to land inside the
predicted intervals (HSA/map-op counts stay on the exact tier).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ....multisocket.topology import PlacementPolicy, Topology, make_placement

__all__ = ["PlaceSpec", "PLACE_BOUNDED_KEYS", "PLACEMENTS"]

#: remote/local counter keys MapPlace adds to MapCost's bounded tier
PLACE_BOUNDED_KEYS: Tuple[str, ...] = (
    "remote_fault_pages",
    "remote_kernel_pages",
    "local_kernel_pages",
    "remote_kernel_bytes",
)

#: placement policy names accepted by ``PlaceSpec`` / ``--placement``
PLACEMENTS: Tuple[str, ...] = ("first-touch", "interleave", "pinned")


@dataclass(frozen=True)
class PlaceSpec:
    """One (topology, placement) static-analysis point."""

    n_sockets: int = 2
    placement: str = "first-touch"
    home: int = 0        #: home socket of the ``pinned`` policy
    socket: int = 0      #: the executing socket

    def __post_init__(self):
        if self.n_sockets < 1:
            raise ValueError(f"n_sockets must be >= 1, got {self.n_sockets}")
        if self.placement not in PLACEMENTS:
            raise ValueError(
                f"unknown placement {self.placement!r}; choose one of "
                f"{', '.join(PLACEMENTS)}"
            )
        if not 0 <= self.socket < self.n_sockets:
            raise ValueError(
                f"executing socket {self.socket} on a "
                f"{self.n_sockets}-socket card"
            )
        if self.placement == "pinned" and not 0 <= self.home < self.n_sockets:
            raise ValueError(
                f"home socket {self.home} on a {self.n_sockets}-socket card"
            )

    # -- the placement rule (mirrors multisocket.topology policies) --------
    def remote_pages(self, n_pages: int) -> int:
        """Remote-HBM pages of a ``n_pages``-page allocation performed by
        the executing socket."""
        if n_pages <= 0 or self.n_sockets == 1:
            return 0
        if self.placement == "first-touch":
            return 0
        if self.placement == "interleave":
            if n_pages <= self.socket:
                return n_pages
            local = (n_pages - self.socket + self.n_sockets - 1) // self.n_sockets
            return n_pages - local
        # pinned
        return 0 if self.home == self.socket else n_pages

    # -- bridges to the simulator side -------------------------------------
    def label(self) -> str:
        name = self.placement
        if self.placement == "pinned":
            name = f"pinned:{self.home}"
        return f"{self.n_sockets}-socket/{name}"

    def placement_spec(self) -> str:
        """The ``make_placement`` string for the measured side."""
        if self.placement == "pinned":
            return f"pinned:{self.home}"
        return self.placement

    def topology(self) -> Topology:
        return Topology(n_sockets=self.n_sockets)

    def make_policy(self) -> PlacementPolicy:
        return make_placement(self.placement_spec())

    @classmethod
    def parse(cls, n_sockets: int, placement: str, socket: int = 0) -> "PlaceSpec":
        """Build a spec from CLI-style ``--topology N --placement P``
        values; ``placement`` accepts ``pinned:<home>``."""
        home = 0
        placement = (placement or "first-touch").strip()
        if placement.startswith("pinned:"):
            home = int(placement.split(":", 1)[1])
            placement = "pinned"
        return cls(
            n_sockets=n_sockets, placement=placement, home=home, socket=socket
        )

    def describe(self) -> Dict[str, object]:
        return {
            "n_sockets": self.n_sockets,
            "placement": self.placement_spec(),
            "socket": self.socket,
        }

"""Map-operation IR: what MapFlow sees of a workload thread body.

The extractor partially evaluates ``make_body``/``body`` over a real
workload instance, so everything that is constant at construction time
(fidelity-derived trip counts, buffer sizes, ``tid``) is already folded
away; what remains is the structured sequence of mapping-relevant
operations below.  Buffers are *allocation sites* — one
:class:`AbstractBuffer` per ``th.alloc`` call site per unroll context —
and every operand is a :class:`BufRef`, a may-set of sites: a singleton
set is an exact ("strong") operand, a larger set is a weak one the
interpreter must treat conservatively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ...omp.mapping import MapKind

__all__ = [
    "AbstractBuffer",
    "BufRef",
    "ClauseIR",
    "Op",
    "AllocOp",
    "FreeOp",
    "EnterOp",
    "ExitOp",
    "TargetOp",
    "WaitOp",
    "UpdateOp",
    "GlobalSyncOp",
    "HostWriteOp",
    "OutputOp",
    "Node",
    "Seq",
    "Branch",
    "Loop",
    "ReturnNode",
    "ThreadProgram",
    "WorkloadIR",
]


@dataclass(frozen=True)
class AbstractBuffer:
    """One allocation site (AST position x unroll context) of one thread."""

    site: str          #: stable key, e.g. ``"t0:L42.8[3]"``
    name: str          #: the buffer name passed to ``th.alloc`` (best effort)
    tid: int           #: thread whose extraction created the site
    lineno: int = 0
    #: folded byte size of the allocation, when the extractor resolved it
    #: (excluded from identity: two evaluation passes of one site must
    #: stay the same buffer even if the size folds differently)
    nbytes: Optional[int] = field(default=None, compare=False)

    def __repr__(self) -> str:  # compact in interp traces
        return f"<{self.name}@{self.site}>"


@dataclass(frozen=True)
class BufRef:
    """A may-set of allocation sites an operand can denote.

    ``unknown`` marks operands the extractor could not resolve at all
    (opaque expressions); ``weak`` marks resolved operands whose
    multiplicity is uncertain (clauses from a summarized list).  The
    interpreter only applies strong updates — and only ever *reports* —
    through operands that are neither.
    """

    sites: FrozenSet[AbstractBuffer]
    display: str = ""
    unknown: bool = False
    weak: bool = False

    @property
    def strong(self) -> bool:
        return not self.unknown and not self.weak and len(self.sites) == 1

    @property
    def only(self) -> AbstractBuffer:
        (b,) = self.sites
        return b

    def label(self) -> str:
        if self.display:
            return self.display
        if self.sites:
            return "|".join(sorted(b.name for b in self.sites))
        return "<?>"

    def nbytes_bounds(self) -> Tuple[int, Optional[int]]:
        """Symbolic ``[lo, hi]`` byte-size interval of the operand.

        ``hi is None`` means unbounded (an unresolved operand or a site
        whose allocation size did not fold).  Sizes live on the sites, so
        callers should prefer resolving through the owning
        :class:`ThreadProgram`'s canonical buffer registry when they have
        one — the extractor may refine a site's size after a ref to it
        was built.
        """
        if self.unknown or not self.sites:
            return (0, None)
        sizes = [b.nbytes for b in self.sites]
        if any(s is None for s in sizes):
            return (0, None)
        return (min(sizes), max(sizes))


@dataclass(frozen=True)
class ClauseIR:
    """One map clause of an enter/exit/target construct."""

    buf: BufRef
    kind: Optional[MapKind]      #: None when the kind itself is opaque
    always: bool = False

    def nbytes_bounds(self) -> Tuple[int, Optional[int]]:
        """Byte-size interval of the clause operand (see BufRef)."""
        return self.buf.nbytes_bounds()


_next_op_id = [0]


def _op_id() -> int:
    _next_op_id[0] += 1
    return _next_op_id[0]


@dataclass
class Op:
    """Base class for primitive IR operations."""

    lineno: int = 0
    op_id: int = field(default_factory=_op_id)


@dataclass
class AllocOp(Op):
    buf: Optional[AbstractBuffer] = None


@dataclass
class FreeOp(Op):
    buf: BufRef = None  # type: ignore[assignment]


@dataclass
class EnterOp(Op):
    clauses: Tuple[ClauseIR, ...] = ()


@dataclass
class ExitOp(Op):
    clauses: Tuple[ClauseIR, ...] = ()


@dataclass
class TargetOp(Op):
    kernel: str = ""
    clauses: Tuple[ClauseIR, ...] = ()
    touches: Tuple[BufRef, ...] = ()
    globals_used: Tuple[str, ...] = ()
    nowait: bool = False
    handle_id: Optional[int] = None   #: set when nowait


@dataclass
class WaitOp(Op):
    handle_ids: FrozenSet[int] = frozenset()
    unknown: bool = False             #: waits on an unresolvable handle


@dataclass
class UpdateOp(Op):
    to: Tuple[BufRef, ...] = ()
    from_: Tuple[BufRef, ...] = ()


@dataclass
class GlobalSyncOp(Op):
    name: str = ""


@dataclass
class HostWriteOp(Op):
    buf: BufRef = None  # type: ignore[assignment]


@dataclass
class OutputOp(Op):
    key: Optional[str] = None
    bufs: Tuple[BufRef, ...] = ()


# ---------------------------------------------------------------------------
# structured control flow (lowered to a CFG by cfg.py)
# ---------------------------------------------------------------------------


@dataclass
class Seq:
    items: List[object] = field(default_factory=list)  #: Op | Branch | Loop | ReturnNode


@dataclass
class Branch:
    """Unresolved conditional: both arms are feasible."""

    then: Seq = field(default_factory=Seq)
    orelse: Seq = field(default_factory=Seq)
    lineno: int = 0


@dataclass
class Loop:
    """A loop whose trip count the extractor could not fold away.

    ``min_trips=1`` encodes the documented soundness assumption that a
    ``for`` over a workload-supplied range runs at least once (every
    fidelity produces >= 2 steps); ``while`` loops get ``min_trips=0``.
    ``trips`` carries the exact trip count when the iterable's length
    folded against the workload instance but exceeded the unroll limit
    (``None`` for ``while`` loops and unresolvable iterables) — the cost
    analysis iterates such loops symbolically instead of widening.
    """

    body: Seq = field(default_factory=Seq)
    min_trips: int = 1
    kind: str = "for"
    lineno: int = 0
    trips: Optional[int] = None


@dataclass
class ReturnNode:
    lineno: int = 0


Node = object  # documentation alias: Op | Seq | Branch | Loop | ReturnNode


@dataclass
class ThreadProgram:
    """The extracted IR of one OpenMP host thread."""

    tid: int
    body: Seq = field(default_factory=Seq)
    buffers: Dict[str, AbstractBuffer] = field(default_factory=dict)
    #: nowait handle id -> (exit clauses to apply at wait, referenced sites)
    handles: Dict[int, Tuple[Tuple[ClauseIR, ...], FrozenSet[AbstractBuffer]]] = (
        field(default_factory=dict)
    )


@dataclass
class WorkloadIR:
    """Everything MapFlow extracted from one workload."""

    name: str
    n_threads: int
    threads: List[ThreadProgram] = field(default_factory=list)
    globals_declared: FrozenSet[str] = frozenset()
    source_file: str = ""
    #: places where extraction lost precision (for diagnostics/tests)
    imprecision: List[str] = field(default_factory=list)
    #: declare-target global name -> folded byte size (None = unresolved),
    #: recovered from the same ``prepare`` AST scan as globals_declared
    global_sizes: Dict[str, Optional[int]] = field(default_factory=dict)

    def thread(self, tid: int) -> ThreadProgram:
        return self.threads[tid]

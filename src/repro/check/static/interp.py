"""Abstract interpretation of the map-operation IR.

State = (present-table abstraction, in-flight nowait handles).  The
present table maps each allocation site to a :mod:`~.domains` refcount
lattice point; the interpreter pushes *sets* of states through the CFG
with a worklist (path-sensitivity: a branch forks the state, a join
keeps both), so "definitely absent on some path" and "present on every
path" are both directly observable.

Update discipline:

* **strong** operations (operand resolves to exactly one site) apply the
  precise transfer function and may report;
* **weak** operations (may-sets, summarized clauses) *join* the old and
  new lattice points and never report — the extractor's imprecision can
  hide a defect but cannot invent one;
* **unknown** operands (opaque expressions) poison conservatively: an
  unknown exit weakens every present site, so a later leak verdict
  ("mapped on every path") can never be manufactured by ignorance.

``target`` regions are atomic: the implicit enter/exit bracket is
net-zero on every refcount (a ``delete`` clause still forces zero), so
only ``nowait`` regions — whose exit half is deferred to ``wait`` —
leave state behind, tracked in the in-flight set for MC-S11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ...omp.mapping import MapKind
from .cfg import build_cfg
from .domains import BOT, POS, TOP, ZERO, Refcount
from .ir import (
    AbstractBuffer,
    AllocOp,
    ClauseIR,
    EnterOp,
    ExitOp,
    FreeOp,
    TargetOp,
    ThreadProgram,
    WaitOp,
    WorkloadIR,
)

__all__ = ["analyze_ir", "ThreadSummary", "InterpResult", "Defect"]

#: per-block state-set explosion guard: past this many distinct states the
#: block's states are joined into one (soundness: join only loses precision)
_STATE_CAP = 256

#: per-thread processed-state budget (worklist hard stop; generous — the
#: bundled workloads need < 2k)
_WORK_CAP = 200_000

State = Tuple[Tuple[Tuple[AbstractBuffer, int], ...], FrozenSet[int]]


def _heap_of(state: State) -> Dict[AbstractBuffer, Refcount]:
    return {site: Refcount(code) for site, code in state[0]}


def _freeze(heap: Dict[AbstractBuffer, Refcount],
            inflight: FrozenSet[int]) -> State:
    items = tuple(sorted(
        ((site, rc.code) for site, rc in heap.items() if not rc.is_bottom),
        key=lambda kv: kv[0].site,
    ))
    return items, inflight


@dataclass(frozen=True)
class Defect:
    """One raw interpreter observation, pre-rule-mapping."""

    kind: str                 #: "underflow" | "inflight" | "leak" | "uncovered"
    site: AbstractBuffer
    tid: int
    lineno: int
    op_id: int
    context: str = ""         #: e.g. the kernel or clause description


@dataclass
class ThreadSummary:
    tid: int
    defects: List[Defect] = field(default_factory=list)
    exit_states: List[State] = field(default_factory=list)
    #: sites this thread map-exits (strongly or weakly) — other threads'
    #: leak verdicts consult this
    exited_sites: Set[AbstractBuffer] = field(default_factory=set)
    #: sites referenced by this thread's nowait regions
    nowait_refs: Set[AbstractBuffer] = field(default_factory=set)
    states_explored: int = 0
    capped: bool = False


@dataclass
class InterpResult:
    ir: WorkloadIR
    threads: List[ThreadSummary] = field(default_factory=list)
    defects: List[Defect] = field(default_factory=list)

    @property
    def states_explored(self) -> int:
        return sum(t.states_explored for t in self.threads)


class _ThreadInterp:
    def __init__(self, program: ThreadProgram):
        self.program = program
        self.summary = ThreadSummary(tid=program.tid)
        #: must-analysis bookkeeping for MC-P10: executions vs bad executions
        self.touch_exec: Dict[Tuple[int, AbstractBuffer], int] = {}
        self.touch_bad: Dict[Tuple[int, AbstractBuffer], int] = {}
        self._touch_ctx: Dict[Tuple[int, AbstractBuffer], Tuple[int, str]] = {}
        self._reported: Set[Tuple[str, int, AbstractBuffer]] = set()

    # -- defect recording ----------------------------------------------
    def _defect(self, kind: str, site: AbstractBuffer, lineno: int,
                op_id: int, context: str = "") -> None:
        key = (kind, op_id, site)
        if key in self._reported:
            return
        self._reported.add(key)
        self.summary.defects.append(Defect(
            kind=kind, site=site, tid=self.program.tid,
            lineno=lineno, op_id=op_id, context=context,
        ))

    # -- clause transfer -----------------------------------------------
    def _weaken_all(self, heap: Dict[AbstractBuffer, Refcount]) -> None:
        """An unknown exit may have removed anything."""
        for site, rc in list(heap.items()):
            heap[site] = rc.join(rc.exit())

    def _apply_enter(self, heap, clause: ClauseIR) -> None:
        if clause.buf.unknown:
            return  # entering an unknown buffer adds no obligations
        if clause.buf.strong:
            site = clause.buf.only
            heap[site] = heap.get(site, BOT).enter()
            return
        for site in clause.buf.sites:
            rc = heap.get(site, BOT)
            joined = rc.join(rc.enter())
            heap[site] = POS if rc.is_bottom else joined

    def _apply_exit(self, heap, clause: ClauseIR, op, *,
                    report: bool = True) -> None:
        delete = clause.kind is MapKind.DELETE
        if clause.buf.unknown:
            self._weaken_all(heap)
            return
        if clause.buf.strong:
            site = clause.buf.only
            rc = heap.get(site, BOT)
            if rc.definitely_absent and report:
                self._defect(
                    "underflow", site, op.lineno, op.op_id,
                    context=f"map({(clause.kind or MapKind.TOFROM).value}:)",
                )
            # bottom = a buffer this thread never saw (cross-thread)
            heap[site] = TOP if rc.is_bottom else rc.exit(delete=delete)
            return
        for site in clause.buf.sites:
            rc = heap.get(site, BOT)
            heap[site] = (TOP if rc.is_bottom
                          else rc.join(rc.exit(delete=delete)))

    # -- op transfer ----------------------------------------------------
    def _transfer(self, heap: Dict[AbstractBuffer, Refcount],
                  inflight: FrozenSet[int], op) -> FrozenSet[int]:
        program = self.program
        if isinstance(op, AllocOp):
            heap[op.buf] = ZERO
            return inflight
        if isinstance(op, FreeOp):
            return inflight  # the present table does not change on free
        if isinstance(op, EnterOp):
            for clause in op.clauses:
                self._apply_enter(heap, clause)
            return inflight
        if isinstance(op, ExitOp):
            for clause in op.clauses:
                self._check_inflight(heap, inflight, clause, op)
                self._apply_exit(heap, clause, op)
            return inflight
        if isinstance(op, TargetOp):
            self._check_touches(heap, op)
            if op.nowait and op.handle_id is not None:
                for clause in op.clauses:
                    self._apply_enter(heap, clause)
                return inflight | {op.handle_id}
            # synchronous region: net-zero bracket; only delete clauses
            # leave a mark
            for clause in op.clauses:
                if clause.kind is MapKind.DELETE:
                    if clause.buf.strong:
                        heap[clause.buf.only] = ZERO
                    else:
                        for site in clause.buf.sites:
                            rc = heap.get(site, BOT)
                            heap[site] = rc.join(ZERO)
            return inflight
        if isinstance(op, WaitOp):
            done = inflight if op.unknown else inflight & op.handle_ids
            for hid in sorted(done):
                clauses, _refs = program.handles.get(hid, ((), frozenset()))
                for clause in clauses:
                    self._apply_exit(heap, clause, op, report=False)
            return inflight - done if not op.unknown else frozenset()
        # Update/GlobalSync/HostWrite/Output: no present-table effect
        return inflight

    def _check_inflight(self, heap, inflight: FrozenSet[int],
                        clause: ClauseIR, op) -> None:
        """MC-S11 (same thread): exiting a buffer a nowait region holds."""
        if not clause.buf.strong:
            return
        site = clause.buf.only
        for hid in inflight:
            _clauses, refs = self.program.handles.get(hid, ((), frozenset()))
            if site in refs:
                self._defect(
                    "inflight", site, op.lineno, op.op_id,
                    context="a nowait target region of this thread is "
                    "still in flight",
                )

    def _check_touches(self, heap, op: TargetOp) -> None:
        """MC-P10 bookkeeping: a touch is uncovered in this state when the
        buffer is definitely absent and no clause of the region maps it."""
        clause_sites = frozenset(
            s for c in op.clauses for s in c.buf.sites
        )
        for touch in op.touches:
            if not touch.strong:
                continue  # weak touch: never report
            site = touch.only
            key = (op.op_id, site)
            self.touch_exec[key] = self.touch_exec.get(key, 0) + 1
            self._touch_ctx[key] = (op.lineno, op.kernel)
            if site in clause_sites:
                continue
            rc = heap.get(site, BOT)
            if rc.definitely_absent:
                self.touch_bad[key] = self.touch_bad.get(key, 0) + 1

    # -- worklist --------------------------------------------------------
    def run(self) -> ThreadSummary:
        cfg = build_cfg(self.program)
        seen: Dict[int, Set[State]] = {b.bid: set() for b in cfg.blocks}
        capped: Set[int] = set()
        init: State = ((), frozenset())
        work: List[Tuple[int, State]] = [(cfg.entry.bid, init)]
        seen[cfg.entry.bid].add(init)
        blocks = {b.bid: b for b in cfg.blocks}
        explored = 0
        while work:
            bid, state = work.pop()
            explored += 1
            if explored > _WORK_CAP:  # pragma: no cover - backstop
                self.summary.capped = True
                break
            block = blocks[bid]
            heap = _heap_of(state)
            inflight = state[1]
            for op in block.ops:
                inflight = self._transfer(heap, inflight, op)
            out = _freeze(heap, inflight)
            if block is cfg.exit or not block.succs:
                if block is cfg.exit and out not in self.summary.exit_states:
                    self.summary.exit_states.append(out)
                continue
            for succ in block.succs:
                bucket = seen[succ.bid]
                if out in bucket:
                    continue
                if len(bucket) >= _STATE_CAP and succ.bid not in capped:
                    # join everything seen so far into one summary state
                    capped.add(succ.bid)
                    self.summary.capped = True
                    joined = self._join_states(bucket | {out})
                    bucket.clear()
                    bucket.add(joined)
                    work.append((succ.bid, joined))
                    continue
                if succ.bid in capped:
                    (summary_state,) = tuple(bucket) or (out,)
                    joined = self._join_states({summary_state, out})
                    if joined not in bucket:
                        bucket.clear()
                        bucket.add(joined)
                        work.append((succ.bid, joined))
                    continue
                bucket.add(out)
                work.append((succ.bid, out))
        self.summary.states_explored = explored
        self._collect_sets()
        return self.summary

    @staticmethod
    def _join_states(states: Set[State]) -> State:
        heaps = [dict(items) for items, _ in states]
        sites = set()
        for h in heaps:
            sites.update(h)
        joined: Dict[AbstractBuffer, Refcount] = {}
        for site in sites:
            rc = BOT
            for h in heaps:
                rc = rc.join(Refcount(h.get(site, BOT.code)))
            joined[site] = rc
        inflight = frozenset().union(*(inf for _, inf in states))
        return _freeze(joined, inflight)

    def _collect_sets(self) -> None:
        """Record exited/nowait site sets for cross-thread passes."""
        def walk(seq) -> None:
            from .ir import Branch, Loop, Seq
            for item in seq.items:
                if isinstance(item, ExitOp):
                    for clause in item.clauses:
                        self.summary.exited_sites.update(clause.buf.sites)
                elif isinstance(item, Branch):
                    walk(item.then)
                    walk(item.orelse)
                elif isinstance(item, Loop):
                    walk(item.body)
                elif isinstance(item, Seq):  # pragma: no cover
                    walk(item)

        walk(self.program.body)
        for _clauses, refs in self.program.handles.values():
            self.summary.nowait_refs.update(refs)

    def must_uncovered(self) -> List[Tuple[int, AbstractBuffer, int, str]]:
        """Touches uncovered on *every* execution: (op_id, site, lineno,
        kernel)."""
        out = []
        for key, execs in sorted(
            self.touch_exec.items(), key=lambda kv: (kv[0][0], kv[0][1].site)
        ):
            bad = self.touch_bad.get(key, 0)
            if execs > 0 and bad == execs:
                lineno, kernel = self._touch_ctx[key]
                out.append((key[0], key[1], lineno, kernel))
        return out


def analyze_ir(ir: WorkloadIR) -> InterpResult:
    """Interpret every thread of a workload IR and run the cross-thread
    passes; returns raw defects for :mod:`~.rules` to turn into findings."""
    result = InterpResult(ir=ir)
    interps: List[_ThreadInterp] = []
    for program in ir.threads:
        interp = _ThreadInterp(program)
        result.threads.append(interp.run())
        interps.append(interp)

    all_defects: List[Defect] = []
    for interp, summary in zip(interps, result.threads, strict=True):
        all_defects.extend(summary.defects)
        # MC-P10: must-uncovered touches
        for op_id, site, lineno, kernel in interp.must_uncovered():
            all_defects.append(Defect(
                kind="uncovered", site=site, tid=summary.tid,
                lineno=lineno, op_id=op_id, context=kernel,
            ))

    # cross-thread MC-S11: thread A exits a site thread B's nowait region
    # references (no clean workload uses nowait, so this coarse pass is
    # false-positive-free by construction on the bundled set)
    for summary in result.threads:
        others_nowait: Dict[AbstractBuffer, int] = {}
        for other in result.threads:
            if other.tid == summary.tid:
                continue
            for site in other.nowait_refs:
                others_nowait.setdefault(site, other.tid)
        if not others_nowait:
            continue
        for defect in _cross_thread_exits(
            ir.thread(summary.tid), summary.tid, others_nowait
        ):
            all_defects.append(defect)

    # MC-S12: leak at thread end — present on every exit path, not
    # released by any other thread
    for summary in result.threads:
        if not summary.exit_states:
            continue
        exited_elsewhere: Set[AbstractBuffer] = set()
        for other in result.threads:
            if other.tid != summary.tid:
                exited_elsewhere.update(other.exited_sites)
        owned = set(ir.thread(summary.tid).buffers.values())
        candidates: Optional[Set[AbstractBuffer]] = None
        for state in summary.exit_states:
            heap = _heap_of(state)
            present = {
                site for site, rc in heap.items()
                if rc.definitely_present and site in owned
            }
            candidates = present if candidates is None else candidates & present
        for site in sorted(candidates or (), key=lambda s: s.site):
            if site in exited_elsewhere:
                continue
            all_defects.append(Defect(
                kind="leak", site=site, tid=summary.tid,
                lineno=site.lineno, op_id=0,
                context="still mapped on every path to the end of the "
                "thread body",
            ))

    result.defects = all_defects
    return result


def _cross_thread_exits(program: ThreadProgram, tid: int,
                        others_nowait: Dict[AbstractBuffer, int]) -> List[Defect]:
    from .ir import Branch, Loop

    defects: List[Defect] = []
    seen: Set[Tuple[int, AbstractBuffer]] = set()

    def walk(seq) -> None:
        for item in seq.items:
            if isinstance(item, ExitOp):
                for clause in item.clauses:
                    if not clause.buf.strong:
                        continue
                    site = clause.buf.only
                    if site in others_nowait and (item.op_id, site) not in seen:
                        seen.add((item.op_id, site))
                        defects.append(Defect(
                            kind="inflight", site=site, tid=tid,
                            lineno=item.lineno, op_id=item.op_id,
                            context=f"a nowait target region of thread "
                            f"{others_nowait[site]} may still be in flight",
                        ))
            elif isinstance(item, Branch):
                walk(item.then)
                walk(item.orelse)
            elif isinstance(item, Loop):
                walk(item.body)

    walk(program.body)
    return defects

"""MC-W perf-lint rules: mapping patterns that are *correct* everywhere
but expensive under specific runtime configurations.

The correctness rules (MC-S/MC-P) ask "where does this crash or corrupt
data"; the perf rules ask "where does this pattern pay for itself" —
per-iteration prefault ioctls under Eager Maps, re-faulted first
touches under XNACK configs, double-indirected globals under USM,
copies a zero-copy mapping makes redundant.  Each rule's
``breaks_under`` matrix ("breaks" = pays the predicted overhead there)
is *derived* by evaluating a predicate over the same
:class:`~repro.check.static.rules.ConfigSemantics` the correctness
matrices use, and frozen against :data:`repro.check.registry.CANONICAL_MATRICES`
by the snapshot tests.

Detection is purely structural + refcount-abstract: a light present-set
walk over the structured IR (configuration-independent — refcount
bookkeeping is identical under all four configs), with the loop-scoped
rules (MC-W01/W03/W04) scanning the bodies of *symbolic* loops — a
pattern the extractor unrolled is finite and already priced exactly by
the cost walker, only unbounded-per-iteration patterns warrant a lint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ....omp.mapping import MapKind
from ....workloads.base import Workload
from ...findings import CheckReport, Finding
from ..ir import (
    AbstractBuffer,
    AllocOp,
    Branch,
    ClauseIR,
    EnterOp,
    ExitOp,
    Loop,
    ReturnNode,
    Seq,
    TargetOp,
    UpdateOp,
    WorkloadIR,
)
from ..rules import SEMANTICS, ConfigSemantics, _relative_source
from .intervals import ONE, ZERO, Interval
from .model import CostEnv, pages_of

__all__ = [
    "PERF_RULE_IDS",
    "FAULT_STORM_PAGE_THRESHOLD",
    "perf_matrix",
    "perf_findings",
    "perf_report",
]

from ....core.config import ALL_CONFIGS, RuntimeConfig

#: MC-W03 fires when a loop's re-faulted pages total at least this many
FAULT_STORM_PAGE_THRESHOLD = 64

#: rule id -> overhead predicate over one configuration's semantics
_PERF_RULES: Dict[str, Callable[[ConfigSemantics], bool]] = {
    # per-iteration map churn only turns into per-iteration ioctls where
    # enters prefault but nothing else (no copies, no fault servicing)
    "MC-W01": lambda s: not s.xnack and not s.shadow_copies,
    # a redundant 'to' only ever *could* have copied where maps move data
    "MC-W02": lambda s: s.shadow_copies,
    # re-faulting fresh allocations costs where XNACK services the faults
    "MC-W03": lambda s: s.xnack,
    # double indirection exists only where globals are host pointers
    "MC-W04": lambda s: s.pointer_globals,
    # 'target update' is redundant wherever the mapping already shares
    "MC-W05": lambda s: not s.shadow_copies,
}

PERF_RULE_IDS: Tuple[str, ...] = tuple(_PERF_RULES)


def perf_matrix(
    rule_id: str,
) -> Tuple[Tuple[RuntimeConfig, ...], Tuple[RuntimeConfig, ...]]:
    """``(breaks_under, passes_under)`` derived from ConfigSemantics."""
    pays = _PERF_RULES[rule_id]
    breaks_under = tuple(c for c in ALL_CONFIGS if pays(SEMANTICS[c]))
    passes_under = tuple(c for c in ALL_CONFIGS if not pays(SEMANTICS[c]))
    return breaks_under, passes_under


# ---------------------------------------------------------------------------
# detection
# ---------------------------------------------------------------------------


@dataclass
class _RawFinding:
    rule_id: str
    site_key: str           #: dedup key (site or global name)
    buffer: str
    message: str
    lineno: int
    tid: int


class _Detector:
    """One refcount-abstract pass over a thread body, firing MC-W rules."""

    def __init__(self, ir: WorkloadIR, env: CostEnv):
        self.ir = ir
        self.env = env
        self.raw: List[_RawFinding] = []
        self.tid = 0
        #: (rule, site) pairs already reported, across threads
        self._fired = set()

    def fire(self, rule_id: str, site_key: str, buffer: str,
             message: str, lineno: int) -> None:
        if (rule_id, site_key) in self._fired:
            self.raw.append(_RawFinding(
                rule_id, site_key, buffer, message, lineno, self.tid))
            return
        self._fired.add((rule_id, site_key))
        self.raw.append(_RawFinding(
            rule_id, site_key, buffer, message, lineno, self.tid))

    # -- refcount abstraction (mirror of the cost walker, counts only) ----
    @staticmethod
    def _join(a: Dict[str, Interval], b: Dict[str, Interval]) -> Dict[str, Interval]:
        out = {}
        for k in set(a) | set(b):
            iv = a.get(k, ZERO).join(b.get(k, ZERO))
            if not iv.is_zero:
                out[k] = iv
        return out

    def _apply_enter(self, rc: Dict[str, Interval], clause: ClauseIR) -> None:
        if clause.buf.unknown or clause.buf.weak or clause.kind is None:
            return
        if clause.kind in (MapKind.RELEASE, MapKind.DELETE):
            return
        for site in clause.buf.sites:
            cur = rc.get(site.site, ZERO)
            rc[site.site] = (cur.add(ONE) if clause.buf.strong
                             else cur.join(cur.add(ONE)))

    def _apply_exit(self, rc: Dict[str, Interval], clause: ClauseIR) -> None:
        if clause.buf.unknown or clause.buf.weak or clause.kind is None:
            return
        for site in clause.buf.sites:
            cur = rc.get(site.site, ZERO)
            if clause.kind is MapKind.DELETE and clause.buf.strong:
                rc.pop(site.site, None)
            elif clause.buf.strong:
                nxt = cur.sub1_clamped()
                if nxt.is_zero:
                    rc.pop(site.site, None)
                else:
                    rc[site.site] = nxt
            else:
                rc[site.site] = cur.join(cur.sub1_clamped())

    # -- structural walk ---------------------------------------------------
    def walk(self, node, rc: Dict[str, Interval]) -> Optional[Dict[str, Interval]]:
        """Returns the post-state, or ``None`` when the path returned."""
        if isinstance(node, Seq):
            for item in node.items:
                rc = self.walk(item, rc)
                if rc is None:
                    return None
            return rc
        if isinstance(node, Branch):
            a = self.walk(node.then, dict(rc))
            b = self.walk(node.orelse, rc)
            if a is None:
                return b
            if b is None:
                return a
            return self._join(a, b)
        if isinstance(node, ReturnNode):
            return None
        if isinstance(node, Loop):
            return self._loop(node, rc)
        return self._op(node, rc)

    def _loop(self, loop: Loop, rc: Dict[str, Interval]) -> Dict[str, Interval]:
        self._scan_loop(loop, rc)
        # stabilize the entry state (join-fixpoint), then one detection pass
        cur = dict(rc)
        for _ in range(8):
            out = self._walk_silent(loop.body, dict(cur))
            merged = self._join(cur, out) if out is not None else cur
            if merged == cur:
                break
            cur = merged
        out = self.walk(loop.body, dict(cur))
        post = cur if out is None else self._join(cur, out)
        if loop.trips is not None or loop.min_trips >= 1:
            # the body definitely ran: its exit state is reachable too
            return post if out is None else self._join(out, post)
        return post

    def _walk_silent(self, node, rc):
        fired, raw = self._fired, self.raw
        self._fired, self.raw = set(self._fired), []
        try:
            return self.walk(node, rc)
        finally:
            self._fired, self.raw = fired, raw

    def _op(self, op, rc: Dict[str, Interval]) -> Dict[str, Interval]:
        if isinstance(op, AllocOp):
            if op.buf is not None:
                rc.pop(op.buf.site, None)
            return rc
        if isinstance(op, EnterOp):
            for clause in op.clauses:
                self._check_redundant(op, clause, rc)
                self._apply_enter(rc, clause)
            return rc
        if isinstance(op, ExitOp):
            for clause in op.clauses:
                self._apply_exit(rc, clause)
            return rc
        if isinstance(op, TargetOp):
            for clause in op.clauses:
                self._check_redundant(op, clause, rc)
                self._apply_enter(rc, clause)
            if not op.nowait:
                for clause in op.clauses:
                    self._apply_exit(rc, clause)
            return rc
        if isinstance(op, UpdateOp):
            self._check_noop_update(op, rc)
            return rc
        return rc

    # -- MC-W02 ------------------------------------------------------------
    def _check_redundant(self, op, clause: ClauseIR, rc: Dict[str, Interval]) -> None:
        if (clause.kind is None or not clause.kind.copies_to_device
                or clause.always or not clause.buf.strong):
            return
        site = clause.buf.only
        if rc.get(site.site, ZERO).lo >= 1:
            self.fire(
                "MC-W02", site.site, site.name,
                f"map '{clause.kind.value}: {site.name}' at a point where "
                "the buffer is definitely present: the copy never happens "
                "again (refcount bump only); drop the motion intent or use "
                "'always' if a refresh was meant",
                op.lineno)

    # -- MC-W05 ------------------------------------------------------------
    def _check_noop_update(self, op: UpdateOp, rc: Dict[str, Interval]) -> None:
        for refs in (op.to, op.from_):
            for ref in refs:
                if not ref.strong:
                    continue
                site = ref.only
                if rc.get(site.site, ZERO).lo >= 1:
                    self.fire(
                        "MC-W05", site.site, site.name,
                        f"'target update' of {site.name!r} while it is "
                        "definitely present: under every zero-copy "
                        "configuration the device already shares these "
                        "bytes and the update is pure overhead",
                        op.lineno)

    # -- loop-scoped rules (MC-W01 / MC-W03 / MC-W04) ------------------------
    def _scan_loop(self, loop: Loop, rc: Dict[str, Interval]) -> None:
        enters: Dict[str, Tuple[AbstractBuffer, int]] = {}
        exits: Dict[str, int] = {}
        allocs: Dict[str, AbstractBuffer] = {}
        kernel_sites: Dict[str, Tuple[str, int]] = {}
        globals_in_loop: Dict[str, Tuple[str, int]] = {}

        def scan(node):
            if isinstance(node, Seq):
                for item in node.items:
                    scan(item)
            elif isinstance(node, Branch):
                scan(node.then)
                scan(node.orelse)
            elif isinstance(node, Loop):
                scan(node.body)
            elif isinstance(node, AllocOp):
                if node.buf is not None:
                    allocs[node.buf.site] = node.buf
            elif isinstance(node, EnterOp):
                for c in node.clauses:
                    if c.buf.strong and c.kind is not None:
                        enters[c.buf.only.site] = (c.buf.only, node.lineno)
            elif isinstance(node, ExitOp):
                for c in node.clauses:
                    if c.buf.strong and c.kind is not None:
                        exits[c.buf.only.site] = node.lineno
            elif isinstance(node, TargetOp):
                for c in node.clauses:
                    for s in c.buf.sites:
                        kernel_sites.setdefault(s.site, (node.kernel, node.lineno))
                for t in node.touches:
                    for s in t.sites:
                        kernel_sites.setdefault(s.site, (node.kernel, node.lineno))
                for g in node.globals_used:
                    globals_in_loop.setdefault(g, (node.kernel, node.lineno))

        scan(loop.body)
        trips = loop.trips if loop.trips is not None else loop.min_trips
        trips_txt = (
            f"{loop.trips} iterations" if loop.trips is not None
            else f">= {loop.min_trips} iteration(s)"
        )

        # MC-W01: enter/exit churn of the same site every iteration
        for key, (site, lineno) in sorted(enters.items()):
            if key in exits:
                self.fire(
                    "MC-W01", key, site.name,
                    f"{site.name!r} is mapped and unmapped on every "
                    f"iteration of the loop at line {loop.lineno} "
                    f"({trips_txt}): under Eager Maps each enter pays a "
                    "prefault ioctl for the same pages — hoist the "
                    "enter/exit pair out of the loop",
                    lineno)

        # MC-W03: per-iteration fresh allocation touched by a kernel
        for key, site in sorted(allocs.items()):
            if key not in kernel_sites:
                continue
            kernel, lineno = kernel_sites[key]
            nbytes = site.nbytes
            pages = pages_of(nbytes, self.env.page_size) if nbytes else 0
            total = pages * max(trips, 1)
            if nbytes is not None and total < FAULT_STORM_PAGE_THRESHOLD:
                continue
            total_txt = f"~{total}" if nbytes is not None else "an unbounded number of"
            self.fire(
                "MC-W03", key, site.name,
                f"{site.name!r} is freshly allocated every iteration of the "
                f"loop at line {loop.lineno} and touched by kernel "
                f"{kernel!r}: each allocation re-faults its pages under "
                f"XNACK-serviced configs ({total_txt} first-touch faults "
                f"over {trips_txt}) — reuse one allocation instead",
                lineno)

        # MC-W04: kernels in a hot loop reading declare-target globals
        for gname, (kernel, lineno) in sorted(globals_in_loop.items()):
            self.fire(
                "MC-W04", f"global:{gname}", gname,
                f"kernel {kernel!r} reads declare-target global {gname!r} "
                f"on every iteration of the loop at line {loop.lineno} "
                f"({trips_txt}): under USM the GPU global is a pointer "
                "into host memory and every access double-indirects — "
                "pass the value as a kernel argument or map it",
                lineno)

    # -- entry --------------------------------------------------------------
    def run(self) -> List[_RawFinding]:
        for program in self.ir.threads:
            self.tid = program.tid
            self.walk(program.body, {})
        return self.raw


def perf_findings(ir: WorkloadIR, env: Optional[CostEnv] = None) -> List[Finding]:
    """Run the MC-W detectors over one extracted workload IR."""
    env = env or CostEnv.for_config(RuntimeConfig.COPY)
    raw = _Detector(ir, env).run()
    grouped: Dict[Tuple[str, str], List[_RawFinding]] = {}
    for r in raw:
        grouped.setdefault((r.rule_id, r.site_key), []).append(r)
    source = _relative_source(ir.source_file)
    findings: List[Finding] = []
    for (rule_id, _key), items in sorted(grouped.items()):
        primary = items[0]
        breaks_under, passes_under = perf_matrix(rule_id)
        findings.append(Finding(
            rule_id=rule_id,
            buffer=primary.buffer,
            workload=ir.name,
            message=primary.message,
            tid=primary.tid,
            breaks_under=breaks_under,
            passes_under=passes_under,
            related=tuple(
                f"line {r.lineno} (tid {r.tid})" for r in items[1:]
            ),
            source=(source, primary.lineno) if source else None,
        ))
    return findings


def perf_report(workload: Workload, name: str = "") -> CheckReport:
    """Extract one workload and run the perf lint (pure static path)."""
    from ..extract import ExtractionError, extract_workload

    wname = name or getattr(workload, "name", type(workload).__name__)
    fidelity = getattr(workload, "fidelity", None)
    report = CheckReport(
        workload=wname,
        fidelity=fidelity.value if fidelity is not None else "?",
    )
    try:
        ir = extract_workload(workload, name=wname)
    except ExtractionError as exc:
        report.aborted = f"static extraction failed: {exc}"
        return report
    report.findings = perf_findings(ir)
    report.stats = {"perf_threads": len(ir.threads)}
    return report

"""Integer intervals with an unbounded top: MapCost's base domain.

Every predicted quantity is an ``[lo, hi]`` interval over non-negative
integers; ``hi is None`` encodes +inf (an abstracted loop whose body
effect could not be bounded).  Joins take the convex hull, so branch
merges stay sound; a singleton interval is an *exact* prediction — the
differential harness requires exactness for HSA call and map-op counts
and mere containment for byte/page totals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["Interval", "ZERO", "ONE"]


@dataclass(frozen=True)
class Interval:
    """Closed integer interval ``[lo, hi]``; ``hi=None`` means unbounded."""

    lo: int = 0
    hi: Optional[int] = 0

    def __post_init__(self):
        if self.lo < 0:
            raise ValueError(f"interval lower bound must be >= 0, got {self.lo}")
        if self.hi is not None and self.hi < self.lo:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    # -- constructors ------------------------------------------------------
    @classmethod
    def exact(cls, v: int) -> "Interval":
        return cls(v, v)

    # -- predicates --------------------------------------------------------
    @property
    def is_exact(self) -> bool:
        return self.hi == self.lo

    @property
    def is_zero(self) -> bool:
        return self.lo == 0 and self.hi == 0

    def contains(self, v: int) -> bool:
        return self.lo <= v and (self.hi is None or v <= self.hi)

    # -- arithmetic --------------------------------------------------------
    def add(self, other: "Interval") -> "Interval":
        hi = None if self.hi is None or other.hi is None else self.hi + other.hi
        return Interval(self.lo + other.lo, hi)

    __add__ = add

    def sub1_clamped(self) -> "Interval":
        """Decrement with a floor of zero (bucket pops, refcount drops)."""
        hi = None if self.hi is None else max(self.hi - 1, 0)
        return Interval(max(self.lo - 1, 0), hi)

    def scale(self, k: int) -> "Interval":
        if k < 0:
            raise ValueError(f"cannot scale an interval by {k}")
        hi = None if self.hi is None else self.hi * k
        return Interval(self.lo * k, hi)

    def join(self, other: "Interval") -> "Interval":
        hi = None if self.hi is None or other.hi is None else max(self.hi, other.hi)
        return Interval(min(self.lo, other.lo), hi)

    def widen_hi(self) -> "Interval":
        return Interval(self.lo, None)

    def __repr__(self) -> str:
        if self.is_exact:
            return f"={self.lo}"
        hi = "inf" if self.hi is None else self.hi
        return f"[{self.lo},{hi}]"


ZERO = Interval(0, 0)
ONE = Interval(1, 1)

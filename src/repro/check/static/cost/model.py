"""The per-config HSA emission model MapCost predicts against.

This is the static mirror of what the runtime stack actually emits:

* device init (:mod:`repro.omp.runtime`): three ``memory_async_copy``
  calls completed by one barrier ``signal_wait_scacquire``, nine
  runtime pool allocations plus ten per registered host thread;
* the libomptarget MemoryManager (:mod:`repro.omp.memmgr`): device
  allocations at or below the threshold are served from power-of-two
  buckets after first use — steady-state small mappings never reach HSA;
* the policies (:mod:`repro.core.policies`): which map operations turn
  into copies, handlers, barrier waits, prefault ioctls or nothing at
  all under each of the four configurations.

Counter keys come in two precision classes: ``EXACT_KEYS`` (HSA call
counts by API name, map-op counts, kernel launches) must be bit-exact
against simulated telemetry for the clean registry workloads;
``BOUNDED_KEYS`` (copy bytes, prefaulted/faulted pages, shadow traffic)
only need interval containment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ....core.config import RuntimeConfig
from ....core.params import CostModel

__all__ = [
    "POOL_ALLOC",
    "POOL_FREE",
    "ASYNC_COPY",
    "ASYNC_HANDLER",
    "SCACQUIRE",
    "SVM_SET",
    "MEMORY_COPY",
    "HSA_KEYS",
    "EXACT_KEYS",
    "BOUNDED_KEYS",
    "ALL_KEYS",
    "CostEnv",
    "device_init_counts",
    "size_class",
    "pages_of",
]

# traced HSA API names (repro.hsa.api / ZeroCopyPolicy.global_update)
POOL_ALLOC = "memory_pool_allocate"
POOL_FREE = "memory_pool_free"
ASYNC_COPY = "memory_async_copy"
ASYNC_HANDLER = "signal_async_handler"
SCACQUIRE = "signal_wait_scacquire"
SVM_SET = "svm_attributes_set"
MEMORY_COPY = "memory_copy"

HSA_KEYS: Tuple[str, ...] = (
    POOL_ALLOC,
    POOL_FREE,
    ASYNC_COPY,
    ASYNC_HANDLER,
    SCACQUIRE,
    SVM_SET,
    MEMORY_COPY,
)

#: must match simulated telemetry exactly (singleton intervals)
EXACT_KEYS: Tuple[str, ...] = HSA_KEYS + ("map_enters", "map_exits", "kernels")

#: must contain the simulated value (interval semantics)
BOUNDED_KEYS: Tuple[str, ...] = (
    "h2d_bytes",
    "d2h_bytes",
    "shadow_bytes",
    "pages_prefaulted",
    "pages_faulted",
)

ALL_KEYS: Tuple[str, ...] = EXACT_KEYS + BOUNDED_KEYS

#: device-init emission (repro.omp.runtime._INIT_*): three image copies
#: + one barrier wait + nine runtime pool allocations, then ten pool
#: allocations per registered host thread
_INIT_IMAGE_COPIES = 3
_INIT_POOL_ALLOCS = 9
_PER_THREAD_POOL_ALLOCS = 10


def device_init_counts(n_threads: int) -> Dict[str, int]:
    """Config-independent HSA calls issued before the first map op."""
    return {
        ASYNC_COPY: _INIT_IMAGE_COPIES,
        SCACQUIRE: 1,
        POOL_ALLOC: _INIT_POOL_ALLOCS + _PER_THREAD_POOL_ALLOCS * n_threads,
    }


def size_class(nbytes: int) -> int:
    """MemoryManager bucket granularity: next power of two >= nbytes."""
    size = 1
    while size < nbytes:
        size <<= 1
    return size


def pages_of(nbytes: int, page_size: int) -> int:
    """GPU page-table pages a page-aligned allocation of ``nbytes`` spans."""
    return max(1, -(-nbytes // page_size)) if nbytes > 0 else 0


@dataclass(frozen=True)
class CostEnv:
    """Everything the cost walker needs to know about the deployment."""

    config: RuntimeConfig
    page_size: int
    memmgr_enabled: bool
    memmgr_threshold: int

    @classmethod
    def for_config(
        cls, config: RuntimeConfig, cost: Optional[CostModel] = None
    ) -> "CostEnv":
        cost = cost or CostModel()
        return cls(
            config=config,
            page_size=cost.page_size,
            memmgr_enabled=cost.memmgr_enabled,
            memmgr_threshold=cost.memmgr_threshold_bytes,
        )

    # -- config predicates (mirror ConfigSemantics / RuntimeConfig) --------
    @property
    def copies(self) -> bool:
        """Maps move data / allocate device storage (Copy only)."""
        return self.config is RuntimeConfig.COPY

    @property
    def xnack(self) -> bool:
        """Kernels fault untranslated pages (USM / Implicit Z-C)."""
        return self.config.needs_xnack

    @property
    def eager(self) -> bool:
        """Every map-enter issues a prefault ioctl (Eager Maps)."""
        return self.config is RuntimeConfig.EAGER_MAPS

    @property
    def pointer_globals(self) -> bool:
        """GPU globals are pointers into host memory (USM only)."""
        return self.config.globals_as_pointer

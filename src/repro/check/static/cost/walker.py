"""The MapCost abstract interpreter: per-config cost state over the IR.

Walks the *structured* IR (not the CFG): sequences compose, branches
fork-and-join, and loops are handled symbolically — a loop whose trip
count folded against the workload instance (``Loop.trips``) is iterated
with steady-state detection (once the non-counter state repeats, the
last iteration's counter delta is multiplied by the remaining trips,
which is exact), while unresolved loops fall back to a join-fixpoint
with the touched counters widened to ``[lo, inf)``.

State tracked per allocation site: the present-table refcount interval,
and a 0/1 "GPU translation installed" interval (faults, prefaults and
``mmu_unmap`` shootdowns all operate on whole page-aligned buffers, so
a boolean per site is exact).  Copy-mode additionally tracks the
MemoryManager's per-size-class free-list depths, because whether a
device allocation reaches HSA depends on them.

Ambiguity is handled by *case splitting*: an enter of a buffer whose
refcount interval straddles zero is evaluated once as "new" and once as
"present" on cloned states and the results joined — sound, and exact
whenever the refcount itself is exact.  ``target`` brackets enumerate
joint site assignments for multi-site operands (capped), so the
enter/exit halves of one bracket always agree on which buffer they
touched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Dict, List, Optional, Tuple

from ....omp.mapping import MapKind
from ..ir import (
    AbstractBuffer,
    AllocOp,
    Branch,
    ClauseIR,
    EnterOp,
    ExitOp,
    FreeOp,
    GlobalSyncOp,
    Loop,
    ReturnNode,
    Seq,
    TargetOp,
    ThreadProgram,
    UpdateOp,
    WaitOp,
    WorkloadIR,
)
from .intervals import ONE, ZERO, Interval
from .model import (
    ALL_KEYS,
    ASYNC_COPY,
    ASYNC_HANDLER,
    MEMORY_COPY,
    POOL_ALLOC,
    POOL_FREE,
    SCACQUIRE,
    SVM_SET,
    CostEnv,
    device_init_counts,
    pages_of,
    size_class,
)

__all__ = ["CostPrediction", "CostState", "predict_costs"]

#: joint site assignments enumerated per target bracket before widening
_ASSIGN_CAP = 64
#: symbolic-loop iteration budget before giving up on steady state
_ITER_CAP = 2048
#: join-fixpoint rounds for unresolved loops
_FIX_CAP = 64

#: transient counter key carrying "h2d signals produced by the current
#: enter bracket"; consumed (and removed) by the barrier that follows
_SIGS = "__h2d_sigs__"

_EXIT_ONLY = (MapKind.RELEASE, MapKind.DELETE)


def _norm(d: Dict) -> Tuple:
    return tuple(sorted((k, v) for k, v in d.items() if not v.is_zero))


def _join_dicts(a: Dict, b: Dict) -> Dict:
    out = {}
    for k in set(a) | set(b):
        iv = a.get(k, ZERO).join(b.get(k, ZERO))
        if not iv.is_zero:
            out[k] = iv
    return out


class CostState:
    """One abstract cost state (mutable; cloned at forks)."""

    __slots__ = ("counters", "rc", "trans", "gtrans", "buckets", "inflight", "dead")

    def __init__(self):
        self.counters: Dict[str, Interval] = {}
        self.rc: Dict[str, Interval] = {}        #: site -> refcount
        self.trans: Dict[str, Interval] = {}     #: site -> GPU translation (0/1)
        self.gtrans: Dict[str, Interval] = {}    #: global -> GPU translation (0/1)
        self.buckets: Dict[int, Interval] = {}   #: memmgr size class -> free blocks
        self.inflight: Dict[int, Interval] = {}  #: nowait handle -> launched (0/1)
        self.dead = False

    def clone(self) -> "CostState":
        out = CostState()
        out.counters = dict(self.counters)
        out.rc = dict(self.rc)
        out.trans = dict(self.trans)
        out.gtrans = dict(self.gtrans)
        out.buckets = dict(self.buckets)
        out.inflight = dict(self.inflight)
        out.dead = self.dead
        return out

    def bump(self, key: str, iv: Interval) -> None:
        if not iv.is_zero:
            self.counters[key] = self.counters.get(key, ZERO).add(iv)

    def join(self, other: "CostState") -> "CostState":
        out = CostState()
        out.counters = _join_dicts(self.counters, other.counters)
        out.rc = _join_dicts(self.rc, other.rc)
        out.trans = _join_dicts(self.trans, other.trans)
        out.gtrans = _join_dicts(self.gtrans, other.gtrans)
        out.buckets = _join_dicts(self.buckets, other.buckets)
        out.inflight = _join_dicts(self.inflight, other.inflight)
        out.dead = self.dead and other.dead
        return out

    def snapshot(self) -> Tuple:
        """Normalized non-counter state (steady-state detection key)."""
        return (
            _norm(self.rc),
            _norm(self.trans),
            _norm(self.gtrans),
            _norm(self.buckets),
            _norm(self.inflight),
        )

    def equals(self, other: "CostState") -> bool:
        return (
            self.snapshot() == other.snapshot()
            and _norm(self.counters) == _norm(other.counters)
        )


def _join_all(states: List[CostState]) -> CostState:
    out = states[0]
    for s in states[1:]:
        out = out.join(s)
    return out


@dataclass
class CostPrediction:
    """Predicted per-config cost intervals for one workload."""

    name: str
    config: object                       #: RuntimeConfig
    counters: Dict[str, Interval] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def interval(self, key: str) -> Interval:
        return self.counters.get(key, ZERO)

    @property
    def exact(self) -> bool:
        from .model import EXACT_KEYS

        return all(self.interval(k).is_exact for k in EXACT_KEYS)

    def to_dict(self) -> dict:
        return {
            "workload": self.name,
            "config": self.config.value,
            "counters": {
                k: [v.lo, v.hi] for k, v in sorted(self.counters.items())
            },
            "notes": list(self.notes),
        }


class _Walker:
    def __init__(self, ir: WorkloadIR, env: CostEnv):
        self.ir = ir
        self.env = env
        self.notes: List[str] = []
        self._noted = set()
        #: canonical site registry (the extractor may refine a site's
        #: folded size after refs to it were built)
        self.sites: Dict[str, AbstractBuffer] = {}
        for th in ir.threads:
            self.sites.update(th.buffers)
        self.program: Optional[ThreadProgram] = None
        self.exit_states: List[CostState] = []

    def note(self, msg: str) -> None:
        if msg not in self._noted:
            self._noted.add(msg)
            self.notes.append(msg)

    # -- subclass hooks ----------------------------------------------------
    def _fault_bump(
        self,
        state: CostState,
        iv: Interval,
        site: Optional[AbstractBuffer] = None,
        global_name: Optional[str] = None,
    ) -> None:
        """Every pages-faulted contribution flows through here.  The
        MapPlace walker overrides it to also split the faulted pages into
        the remote-link share a placement policy implies; ``site`` /
        ``global_name`` identify the faulting storage when resolved."""
        state.bump("pages_faulted", iv)

    def _on_kernel(
        self,
        state: CostState,
        op: TargetOp,
        sitemap: Dict[int, Optional[AbstractBuffer]],
    ) -> None:
        """Called once per kernel-launch bracket, after the fault pass.
        The MapPlace walker overrides it to count the local/remote pages
        the launch's map clauses visit."""

    # -- size resolution ---------------------------------------------------
    def _site_nbytes(self, site: AbstractBuffer) -> Optional[int]:
        canonical = self.sites.get(site.site, site)
        return canonical.nbytes

    def _bytes_iv(self, nbytes: Optional[int]) -> Interval:
        if nbytes is None:
            self.note("unresolved buffer size; byte totals widened")
            return Interval(0, None)
        return Interval.exact(nbytes)

    def _pages_iv(self, nbytes: Optional[int], trans: Interval) -> Interval:
        """Pages newly installed when translating a buffer whose current
        translation state is ``trans`` (0/1 interval)."""
        if nbytes is None:
            self.note("unresolved buffer size; page totals widened")
            return ZERO if trans.lo >= 1 else Interval(0, None)
        pages = pages_of(nbytes, self.env.page_size)
        if trans.lo >= 1:
            return ZERO
        if trans.hi == 0:
            return Interval.exact(pages)
        return Interval(0, pages)

    # -- structured walk ---------------------------------------------------
    def walk_seq(self, seq: Seq, state: CostState) -> CostState:
        for item in seq.items:
            if state.dead:
                break
            state = self.walk_node(item, state)
        return state

    def walk_node(self, node, state: CostState) -> CostState:
        if isinstance(node, Seq):
            return self.walk_seq(node, state)
        if isinstance(node, Branch):
            s1 = self.walk_seq(node.then, state.clone())
            s2 = self.walk_seq(node.orelse, state)
            if s1.dead:
                return s2
            if s2.dead:
                return s1
            return s1.join(s2)
        if isinstance(node, Loop):
            return self.walk_loop(node, state)
        if isinstance(node, ReturnNode):
            self.exit_states.append(state.clone())
            state.dead = True
            return state
        return self.walk_op(node, state)

    # -- loops -------------------------------------------------------------
    def walk_loop(self, loop: Loop, state: CostState) -> CostState:
        if loop.trips is not None:
            return self._counted_loop(loop, state, loop.trips)
        probe = self.walk_seq(loop.body, state.clone())
        if not probe.dead and probe.equals(state):
            # cost-free loop (e.g. a pure wait): exact no-op
            return state
        base = state if loop.min_trips == 0 else probe
        self.note(
            f"L{loop.lineno}: {loop.kind} loop with unresolved trip count; "
            "cost widened"
        )
        return self._widen_loop(loop, base)

    def _widen_loop(self, loop: Loop, base: CostState) -> CostState:
        """Join-fixpoint on non-counter state; touched counters go to
        ``[lo, inf)`` with ``lo`` the guaranteed-minimum total."""
        cur = base.clone()
        cur.dead = False
        for _ in range(_FIX_CAP):
            nxt = self.walk_seq(loop.body, cur.clone())
            merged = cur.join(nxt)
            if merged.snapshot() == cur.snapshot():
                cur = merged
                break
            cur = merged
        for k in set(cur.counters) | set(base.counters):
            bv = base.counters.get(k, ZERO)
            cv = cur.counters.get(k, ZERO)
            cur.counters[k] = bv if cv == bv else bv.widen_hi()
        cur.counters.pop(_SIGS, None)
        return cur

    def _counted_loop(self, loop: Loop, state: CostState, trips: int) -> CostState:
        if trips <= 0:
            return state
        prev_snap = state.snapshot()
        prev_counters = dict(state.counters)
        done = 0
        while done < trips:
            if done >= _ITER_CAP:
                self.note(
                    f"L{loop.lineno}: no steady state within {_ITER_CAP} "
                    "iterations; widening remainder"
                )
                return self._widen_loop(loop, state)
            state = self.walk_seq(loop.body, state)
            if state.dead:
                return state
            done += 1
            snap = state.snapshot()
            if snap == prev_snap:
                remaining = trips - done
                if remaining:
                    for k in set(state.counters) | set(prev_counters):
                        delta = self._delta(
                            state.counters.get(k, ZERO), prev_counters.get(k, ZERO)
                        )
                        if not delta.is_zero:
                            state.counters[k] = state.counters.get(k, ZERO).add(
                                delta.scale(remaining)
                            )
                return state
            prev_snap = snap
            prev_counters = dict(state.counters)
        return state

    @staticmethod
    def _delta(cur: Interval, prev: Interval) -> Interval:
        lo = max(cur.lo - prev.lo, 0)
        hi = None
        if cur.hi is not None and prev.hi is not None:
            hi = max(cur.hi - prev.hi, lo)
        return Interval(lo, hi)

    # -- ops ----------------------------------------------------------------
    def walk_op(self, op, state: CostState) -> CostState:
        if isinstance(op, AllocOp):
            if op.buf is not None:
                state.rc.pop(op.buf.site, None)     # fresh VA: definitely absent
                state.trans.pop(op.buf.site, None)  # no GPU translation yet
            return state
        if isinstance(op, FreeOp):
            return self._free(op, state)
        if isinstance(op, EnterOp):
            for clause in op.clauses:
                state = self._enter_clause(state, clause, None)
            return self._barrier(state)
        if isinstance(op, ExitOp):
            for clause in op.clauses:
                state = self._exit_clause(state, clause, None)
            return state
        if isinstance(op, TargetOp):
            return self._target(op, state)
        if isinstance(op, WaitOp):
            return self._wait(op, state)
        if isinstance(op, UpdateOp):
            return self._update(op, state)
        if isinstance(op, GlobalSyncOp):
            return self._global_sync(op, state)
        # HostWriteOp / OutputOp: no storage effect
        return state

    # -- host memory ---------------------------------------------------------
    def _free(self, op: FreeOp, state: CostState) -> CostState:
        ref = op.buf
        if ref is None or ref.unknown:
            # an unknown free may shoot down any translation
            for key, iv in list(state.trans.items()):
                state.trans[key] = iv.join(ZERO)
            return state
        if ref.strong:
            state.trans.pop(ref.only.site, None)  # mmu_unmap shootdown
            return state
        for site in ref.sites:
            key = site.site
            state.trans[key] = state.trans.get(key, ZERO).join(ZERO)
        return state

    # -- map enter -----------------------------------------------------------
    def _widen_map_ops(self, state: CostState, enter: bool, why: str) -> None:
        self.note(f"{why}; map-op counts widened")
        inf = Interval(0, None)
        state.bump("map_enters" if enter else "map_exits", inf)
        if self.env.copies:
            for k in (POOL_ALLOC, POOL_FREE, ASYNC_COPY, ASYNC_HANDLER,
                      SCACQUIRE, "h2d_bytes", "d2h_bytes"):
                state.bump(k, inf)
        if self.env.eager and enter:
            state.bump(SVM_SET, inf)
            state.bump("pages_prefaulted", inf)

    def _enter_clause(
        self, state: CostState, clause: ClauseIR, site: Optional[AbstractBuffer]
    ) -> CostState:
        if clause.kind in _EXIT_ONLY:
            self.note("exit-only map kind on an enter path (see MC-S04)")
            return state
        if clause.buf.unknown or clause.buf.weak or clause.kind is None:
            self._widen_map_ops(state, True, "unresolved map-enter operand")
            return state
        sites = [site] if site is not None else sorted(
            clause.buf.sites, key=lambda b: b.site
        )
        if len(sites) > 1:
            return _join_all(
                [self._enter_at(state.clone(), clause, s) for s in sites]
            )
        return self._enter_at(state, clause, sites[0])

    def _enter_at(
        self, state: CostState, clause: ClauseIR, site: AbstractBuffer
    ) -> CostState:
        key = site.site
        nbytes = self._site_nbytes(site)
        state.bump("map_enters", ONE)
        rc = state.rc.get(key, ZERO)
        cases: List[CostState] = []
        if rc.lo == 0:  # may be absent: fresh mapping
            s = state.clone()
            s.rc[key] = ONE
            s = self._device_alloc(s, nbytes)
            if self.env.copies and clause.kind.copies_to_device:
                self._h2d_async(s, nbytes)
            self._prefault(s, key, nbytes)
            cases.append(s)
        if rc.hi is None or rc.hi > 0:  # may be present: refcount bump
            s = state.clone()
            pre = Interval(max(rc.lo, 1), rc.hi)
            s.rc[key] = pre.add(ONE)
            if self.env.copies and clause.kind.copies_to_device and clause.always:
                self._h2d_async(s, nbytes)
            self._prefault(s, key, nbytes)
            cases.append(s)
        return _join_all(cases)

    def _device_alloc(self, state: CostState, nbytes: Optional[int]) -> CostState:
        if not self.env.copies:
            return state
        if nbytes is None:
            self.note("unresolved allocation size; pool traffic widened")
            state.bump(POOL_ALLOC, Interval(0, None))
            return state
        if not self.env.memmgr_enabled or nbytes > self.env.memmgr_threshold:
            state.bump(POOL_ALLOC, ONE)
            return state
        bucket = size_class(nbytes)
        cnt = state.buckets.get(bucket, ZERO)
        cases: List[CostState] = []
        if cnt.hi is None or cnt.hi > 0:  # free block available: cache hit
            s = state.clone()
            pre = Interval(max(cnt.lo, 1), cnt.hi)
            s.buckets[bucket] = pre.sub1_clamped()
            cases.append(s)
        if cnt.lo == 0:  # cache miss: traced pool allocation of the bucket
            s = state.clone()
            s.bump(POOL_ALLOC, ONE)
            cases.append(s)
        return _join_all(cases)

    def _device_free(self, state: CostState, nbytes: Optional[int]) -> None:
        if not self.env.copies:
            return
        if nbytes is None:
            self.note("unresolved allocation size; pool traffic widened")
            state.bump(POOL_FREE, Interval(0, None))
            return
        if not self.env.memmgr_enabled or nbytes > self.env.memmgr_threshold:
            state.bump(POOL_FREE, ONE)
            return
        bucket = size_class(nbytes)
        state.buckets[bucket] = state.buckets.get(bucket, ZERO).add(ONE)

    def _h2d_async(self, state: CostState, nbytes: Optional[int]) -> None:
        """Async H2D copy completed by handler; barrier waits on _SIGS."""
        state.bump(ASYNC_COPY, ONE)
        state.bump(ASYNC_HANDLER, ONE)
        state.bump("h2d_bytes", self._bytes_iv(nbytes))
        state.bump(_SIGS, ONE)

    def _d2h_sync(self, state: CostState, nbytes: Optional[int]) -> None:
        """Synchronous D2H copy: immediate per-clause scacquire wait."""
        state.bump(ASYNC_COPY, ONE)
        state.bump(SCACQUIRE, ONE)
        state.bump("d2h_bytes", self._bytes_iv(nbytes))

    def _prefault(self, state: CostState, key: str, nbytes: Optional[int]) -> None:
        if not self.env.eager:
            return
        state.bump(SVM_SET, ONE)
        trans = state.trans.get(key, ZERO)
        state.bump("pages_prefaulted", self._pages_iv(nbytes, trans))
        state.trans[key] = ONE

    def _barrier(self, state: CostState) -> CostState:
        """One scacquire over the bracket's async H2D signals, if any."""
        sigs = state.counters.pop(_SIGS, ZERO)
        lo = 1 if sigs.lo > 0 else 0
        hi = 0 if sigs.hi == 0 else 1
        state.bump(SCACQUIRE, Interval(lo, hi))
        return state

    # -- map exit ------------------------------------------------------------
    def _exit_clause(
        self, state: CostState, clause: ClauseIR, site: Optional[AbstractBuffer]
    ) -> CostState:
        if clause.buf.unknown or clause.buf.weak or clause.kind is None:
            self._widen_map_ops(state, False, "unresolved map-exit operand")
            return state
        sites = [site] if site is not None else sorted(
            clause.buf.sites, key=lambda b: b.site
        )
        if len(sites) > 1:
            return _join_all(
                [self._exit_at(state.clone(), clause, s) for s in sites]
            )
        return self._exit_at(state, clause, sites[0])

    def _exit_at(
        self, state: CostState, clause: ClauseIR, site: AbstractBuffer
    ) -> CostState:
        key = site.site
        nbytes = self._site_nbytes(site)
        state.bump("map_exits", ONE)
        rc = state.rc.get(key, ZERO)
        if rc.hi == 0:
            # the simulation would raise (MC-S01/S02 territory); cost-wise
            # the op never completes, so predict nothing past the bump
            self.note(f"map-exit of definitely-absent buffer {site.name!r}")
            return state
        pre = Interval(max(rc.lo, 1), rc.hi)
        delete = clause.kind is MapKind.DELETE
        copies_back = clause.kind.copies_to_host
        cases: List[CostState] = []
        if delete or pre.lo <= 1:  # may be the last reference
            s = state.clone()
            s.rc.pop(key, None)
            if self.env.copies and copies_back:
                self._d2h_sync(s, nbytes)
            self._device_free(s, nbytes)
            cases.append(s)
        if not delete and (pre.hi is None or pre.hi >= 2):  # may survive
            s = state.clone()
            post_lo = max(pre.lo, 2) - 1
            post_hi = None if pre.hi is None else pre.hi - 1
            s.rc[key] = Interval(post_lo, post_hi)
            if self.env.copies and copies_back and clause.always:
                self._d2h_sync(s, nbytes)
            cases.append(s)
        return _join_all(cases)

    # -- target regions --------------------------------------------------------
    def _target(self, op: TargetOp, state: CostState) -> CostState:
        multi = [
            i
            for i, c in enumerate(op.clauses)
            if not c.buf.unknown
            and not c.buf.weak
            and c.kind is not None
            and len(c.buf.sites) > 1
        ]
        n_assign = 1
        for i in multi:
            n_assign *= len(op.clauses[i].buf.sites)
        if n_assign > _ASSIGN_CAP:
            self.note(
                f"L{op.lineno}: {n_assign} joint site assignments exceed the "
                f"cap ({_ASSIGN_CAP}); bracket widened"
            )
            results = [self._target_once(state.clone(), op, dict.fromkeys(multi))]
        else:
            choices = [
                sorted(op.clauses[i].buf.sites, key=lambda b: b.site)
                for i in multi
            ]
            results = [
                self._target_once(
                    state.clone(), op, dict(zip(multi, assign, strict=True))
                )
                for assign in product(*choices)
            ]
        return _join_all(results)

    def _target_once(
        self,
        state: CostState,
        op: TargetOp,
        sitemap: Dict[int, Optional[AbstractBuffer]],
    ) -> CostState:
        # implicit map-enter half
        for i, clause in enumerate(op.clauses):
            if i in sitemap and sitemap[i] is None:
                self._widen_map_ops(state, True, "capped multi-site bracket")
                continue
            state = self._enter_clause(state, clause, sitemap.get(i))
        state = self._barrier(state)
        state = self._faults(state, op, sitemap)
        state.bump("kernels", ONE)
        self._on_kernel(state, op, sitemap)
        if op.nowait:
            if op.handle_id is None:
                self.note(f"L{op.lineno}: unresolved nowait handle; widening")
                state.bump(SCACQUIRE, Interval(0, None))
                state.bump("map_exits", Interval(0, None))
                return state
            state.inflight[op.handle_id] = ONE
            return state
        state.bump(SCACQUIRE, ONE)  # completion wait
        for i, clause in enumerate(op.clauses):
            if i in sitemap and sitemap[i] is None:
                self._widen_map_ops(state, False, "capped multi-site bracket")
                continue
            state = self._exit_clause(state, clause, sitemap.get(i))
        return state

    def _faults(
        self,
        state: CostState,
        op: TargetOp,
        sitemap: Dict[int, Optional[AbstractBuffer]],
    ) -> CostState:
        """First-touch XNACK servicing at kernel launch (USM / IZC)."""
        if not self.env.xnack:
            return state
        seen = set()
        fault_sites: List[AbstractBuffer] = []
        for i, clause in enumerate(op.clauses):
            if clause.buf.unknown or clause.buf.weak:
                self.note("unresolved kernel operand; fault pages widened")
                self._fault_bump(state, Interval(0, None))
                continue
            site = sitemap.get(i)
            if site is None and len(clause.buf.sites) == 1:
                site = clause.buf.only
            if site is None:
                # capped multi-site operand: any of its sites may fault
                for s in clause.buf.sites:
                    nbytes = self._site_nbytes(s)
                    t = state.trans.get(s.site, ZERO)
                    iv = self._pages_iv(nbytes, t)
                    self._fault_bump(state, Interval(0, iv.hi), site=s)
                    state.trans[s.site] = t.join(ONE)
                continue
            if site.site not in seen:
                seen.add(site.site)
                fault_sites.append(site)
        for site in fault_sites:
            key = site.site
            nbytes = self._site_nbytes(site)
            self._fault_bump(
                state, self._pages_iv(nbytes, state.trans.get(key, ZERO)), site=site
            )
            state.trans[key] = ONE
        if self.env.pointer_globals:
            for name in op.globals_used:
                nbytes = self.ir.global_sizes.get(name)
                t = state.gtrans.get(name, ZERO)
                self._fault_bump(
                    state, self._pages_iv(nbytes, t), global_name=name
                )
                state.gtrans[name] = ONE
        clause_sites = {s.site for c in op.clauses for s in c.buf.sites}
        for touch in op.touches:
            if not touch.strong:
                self.note("unresolved raw-pointer touch; fault pages widened")
                self._fault_bump(state, Interval(0, None))
                continue
            site = touch.only
            if site.site in clause_sites:
                continue  # already in the kernel's fault ranges
            rc = state.rc.get(site.site, ZERO)
            if rc.lo >= 1:
                continue  # covered by the present table: not re-faulted
            nbytes = self._site_nbytes(site)
            t = state.trans.get(site.site, ZERO)
            iv = self._pages_iv(nbytes, t)
            if rc.hi == 0:  # definitely uncovered: faults for sure
                self._fault_bump(state, iv, site=site)
                state.trans[site.site] = ONE
            else:
                self._fault_bump(state, Interval(0, iv.hi), site=site)
                state.trans[site.site] = t.join(ONE)
        return state

    def _wait(self, op: WaitOp, state: CostState) -> CostState:
        if self.program is None:
            return state
        if op.unknown:
            candidates = sorted(state.inflight)
            self.note("wait on an unresolved handle; completing all in-flight")
        else:
            candidates = sorted(h for h in op.handle_ids if h in state.inflight)
        for hid in candidates:
            pres = state.inflight.pop(hid, ZERO)
            if pres.is_zero:
                continue
            clauses, _refs = self.program.handles.get(hid, ((), frozenset()))
            done = state.clone()
            done.bump(SCACQUIRE, ONE)
            for clause in clauses:
                done = self._exit_clause(done, clause, None)
            # pres.lo >= 1: definitely launched; else some paths only
            state = done if pres.lo >= 1 else state.join(done)
        return state

    # -- update / globals ------------------------------------------------------
    def _update(self, op: UpdateOp, state: CostState) -> CostState:
        if not self.env.copies:
            return state  # zero-copy: motion is pure bookkeeping
        for to_device, refs in ((True, op.to), (False, op.from_)):
            byte_key = "h2d_bytes" if to_device else "d2h_bytes"
            for ref in refs:
                if ref.unknown or ref.weak:
                    self.note("unresolved target-update operand; widened")
                    for k in (ASYNC_COPY, SCACQUIRE, byte_key):
                        state.bump(k, Interval(0, None))
                    continue
                variants = []
                for site in sorted(ref.sites, key=lambda b: b.site):
                    s = state.clone()
                    rc = s.rc.get(site.site, ZERO)
                    nbytes = self._site_nbytes(site)
                    moved_lo = 1 if rc.lo >= 1 else 0
                    moved_hi = 0 if rc.hi == 0 else 1
                    moved = Interval(moved_lo, moved_hi)
                    s.bump(ASYNC_COPY, moved)
                    s.bump(SCACQUIRE, moved)
                    bytes_iv = self._bytes_iv(nbytes)
                    s.bump(
                        byte_key,
                        Interval(
                            bytes_iv.lo * moved.lo,
                            None if bytes_iv.hi is None else bytes_iv.hi * moved.hi,
                        ),
                    )
                    variants.append(s)
                state = _join_all(variants)
        return state

    def _global_sync(self, op: GlobalSyncOp, state: CostState) -> CostState:
        nbytes = self.ir.global_sizes.get(op.name)
        if nbytes is None:
            self.note(f"unresolved size for global {op.name!r}; bytes widened")
        iv = Interval.exact(nbytes) if nbytes is not None else Interval(0, None)
        if self.env.pointer_globals:
            return state  # USM: the device pointer aliases the host global
        if self.env.copies:
            state.bump(ASYNC_COPY, ONE)
            state.bump(SCACQUIRE, ONE)
            state.bump("h2d_bytes", iv)
        else:
            state.bump(MEMORY_COPY, ONE)  # IZC/Eager shadow-copy refresh
            state.bump("shadow_bytes", iv)
        return state

    # -- entry point -------------------------------------------------------
    def run(self, include_init: bool = True) -> CostPrediction:
        state = CostState()
        if include_init:
            for key, count in device_init_counts(self.ir.n_threads).items():
                state.counters[key] = Interval.exact(count)
        if self.ir.n_threads > 1:
            self.note(
                "multi-threaded workload: threads are walked sequentially; "
                "interleaving-dependent counts are not modeled"
            )
        for program in self.ir.threads:
            self.program = program
            self.exit_states = []
            state = self.walk_seq(program.body, state)
            ends = list(self.exit_states)
            if not state.dead:
                ends.append(state)
            state = _join_all(ends) if ends else state
            state.dead = False
        counters = {
            k: v for k, v in state.counters.items() if k != _SIGS and not v.is_zero
        }
        for k in ALL_KEYS:
            counters.setdefault(k, ZERO)
        return CostPrediction(
            name=self.ir.name,
            config=self.env.config,
            counters=counters,
            notes=list(self.notes),
        )


def predict_costs(
    ir: WorkloadIR, env: CostEnv, include_init: bool = True
) -> CostPrediction:
    """Predict per-config cost intervals for one extracted workload."""
    return _Walker(ir, env).run(include_init=include_init)

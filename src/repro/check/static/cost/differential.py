"""Static-cost-vs-simulation differential: MapCost's validation harness.

For every clean registry workload under every runtime configuration:

* the *predicted* side runs the cost walker over the extracted IR with
  ``ApuSystem.__init__`` poisoned (the prediction must be genuinely
  static — reusing the guard from the MapFlow differential);
* the *measured* side runs one noise-free simulation and harvests the
  HSA trace, the run ledger and the KFD driver counters.

The contract is two-tier (see :mod:`.model`): predicted HSA call counts
by API name, map-op counts and kernel launches must be **bit-exact**
singleton intervals equal to the measured telemetry; predicted copy
bytes, prefaulted pages and first-touch fault pages must *contain* the
measured value.  Any traced HSA API name the model does not know about
is also a failure — new simulator emission can't silently drift past
the predictor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ....core.config import ALL_CONFIGS, RuntimeConfig
from ....core.params import CostModel
from ....workloads.base import Fidelity
from ..differential import _forbid_simulation
from ..extract import extract_workload
from .model import BOUNDED_KEYS, EXACT_KEYS, HSA_KEYS, CostEnv
from .walker import CostPrediction, predict_costs

__all__ = ["CostDifferentialResult", "cost_differential", "measure_costs"]


def measure_costs(workload, config: RuntimeConfig,
                  cost: Optional[CostModel] = None) -> Dict[str, int]:
    """Run one noise-free simulation and harvest the measured counters."""
    from ....core.system import ApuSystem
    from ....omp.runtime import OpenMPRuntime

    system = ApuSystem(cost=cost or CostModel(), seed=0)
    runtime = OpenMPRuntime(system, config)
    prepare = getattr(workload, "prepare", None)
    if prepare is not None:
        prepare(runtime)
    result = runtime.run(
        workload.make_body(),
        n_threads=workload.n_threads,
        outputs=workload.outputs.values,
    )
    ledger = result.ledger
    measured = {name: system.hsa_trace.count(name) for name in HSA_KEYS}
    for name in system.hsa_trace.names():
        measured.setdefault(name, system.hsa_trace.count(name))
    measured.update({
        "map_enters": ledger.n_map_enters,
        "map_exits": ledger.n_map_exits,
        "kernels": ledger.n_kernels,
        "h2d_bytes": ledger.h2d_bytes,
        "d2h_bytes": ledger.d2h_bytes,
        "shadow_bytes": ledger.shadow_bytes,
        "pages_prefaulted": system.driver.pages_prefaulted,
        "pages_faulted": system.driver.xnack_faults_serviced,
    })
    return measured


@dataclass
class CostDifferentialResult:
    """Predicted vs. measured counters for one (workload, config) cell."""

    workload: str
    config: RuntimeConfig
    prediction: CostPrediction
    measured: Dict[str, int] = field(default_factory=dict)
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def check(self) -> "CostDifferentialResult":
        for key in EXACT_KEYS:
            iv = self.prediction.interval(key)
            got = self.measured.get(key, 0)
            if not iv.is_exact or iv.lo != got:
                self.mismatches.append(
                    f"{key}: predicted {iv}, measured {got} (exact contract)"
                )
        for key in BOUNDED_KEYS:
            iv = self.prediction.interval(key)
            got = self.measured.get(key, 0)
            if not iv.contains(got):
                self.mismatches.append(
                    f"{key}: predicted {iv} does not contain measured {got}"
                )
        known = set(EXACT_KEYS) | set(BOUNDED_KEYS)
        for key in sorted(set(self.measured) - known):
            if self.measured[key]:
                self.mismatches.append(
                    f"simulation traced {key!r} ({self.measured[key]}x), "
                    "which the cost model does not predict"
                )
        return self

    def render(self) -> str:
        head = (
            f"{self.workload:<18} {self.config.value:<22} "
            f"{'ok' if self.ok else 'FAIL'}"
        )
        if self.ok:
            return head
        return head + "".join(f"\n    {m}" for m in self.mismatches)


def cost_differential(
    names: Optional[Sequence[str]] = None,
    *,
    fidelity: Fidelity = Fidelity.TEST,
    configs: Sequence[RuntimeConfig] = ALL_CONFIGS,
    cost: Optional[CostModel] = None,
) -> List[CostDifferentialResult]:
    """Run the full predicted-vs-measured sweep.

    The static phase (extraction + cost walk for every configuration)
    runs with ``ApuSystem`` poisoned; only then does the measured phase
    simulate each cell.
    """
    from ...registry import WORKLOADS, make_workload

    names = list(names) if names is not None else sorted(WORKLOADS)
    predictions: Dict[tuple, CostPrediction] = {}
    with _forbid_simulation():
        for name in names:
            ir = extract_workload(make_workload(name, fidelity), name=name)
            for config in configs:
                predictions[(name, config)] = predict_costs(
                    ir, CostEnv.for_config(config, cost)
                )
    results = []
    for name in names:
        for config in configs:
            measured = measure_costs(make_workload(name, fidelity), config, cost)
            results.append(CostDifferentialResult(
                workload=name,
                config=config,
                prediction=predictions[(name, config)],
                measured=measured,
            ).check())
    return results

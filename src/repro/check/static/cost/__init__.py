"""MapCost: symbolic static cost prediction over the MapFlow IR.

The paper's headline artifacts are *counts and costs* — HSA call
statistics (Table I), pages prefaulted vs. XNACK-faulted, copy bytes,
and the MM/MI overhead decomposition.  MapCost predicts those per-config
counts directly from the extracted IR, without constructing a simulator:

* :mod:`.intervals` — the ``[lo, hi]`` integer interval domain;
* :mod:`.model` — the per-config HSA emission model (device init, the
  libomptarget MemoryManager buckets, counter key taxonomy);
* :mod:`.walker` — the abstract cost interpreter over the structured IR;
* :mod:`.rules` — the MC-W perf-lint rules and their config matrices;
* :mod:`.differential` — static-vs-simulated validation (bit-exact HSA
  and map-op counts, interval containment for bytes and pages).
"""

from .differential import CostDifferentialResult, cost_differential
from .intervals import Interval
from .model import (
    ALL_KEYS,
    BOUNDED_KEYS,
    EXACT_KEYS,
    HSA_KEYS,
    CostEnv,
    device_init_counts,
)
from .rules import PERF_RULE_IDS, perf_matrix, perf_report
from .walker import CostPrediction, predict_costs

__all__ = [
    "Interval",
    "CostEnv",
    "CostPrediction",
    "CostDifferentialResult",
    "ALL_KEYS",
    "BOUNDED_KEYS",
    "EXACT_KEYS",
    "HSA_KEYS",
    "PERF_RULE_IDS",
    "device_init_counts",
    "predict_costs",
    "perf_matrix",
    "perf_report",
    "cost_differential",
]

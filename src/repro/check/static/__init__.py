"""MapFlow: static map-clause dataflow analysis.

The dynamic MapCheck analyses (lint/sanitizer/races) need at least one
simulated run to observe a defect.  MapFlow is the compiler-side
counterpart the paper attributes to LLVM's implicit zero-copy handling:
it proves or flags the same defect families directly from the workload
*source*, before any simulation — exactly the situations where the
defect is invisible at runtime because zero-copy turns every map into a
no-op (§IV.C).

Pipeline::

    workload source ──ast──▶ map-operation IR  (extract.py / ir.py)
                     per-thread CFG            (cfg.py)
                     abstract interpretation   (interp.py / domains.py)
                     findings + matrices       (rules.py)

and a static-vs-dynamic differential harness (differential.py) keeps
the two rule sets honest against each other.
"""

from __future__ import annotations

from .differential import static_dynamic_differential
from .extract import ExtractionError, extract_workload
from .interp import analyze_ir
from .race import race_differential, race_findings, race_report
from .rules import analyze_factory, analyze_named, static_report

__all__ = [
    "extract_workload",
    "ExtractionError",
    "analyze_ir",
    "analyze_factory",
    "analyze_named",
    "static_report",
    "static_dynamic_differential",
    "race_differential",
    "race_findings",
    "race_report",
]

"""Extract the map-operation IR from a workload's source.

MapFlow does not execute a workload — it *partially evaluates* the AST
of ``make_body``/``body`` against a real workload instance.  Everything
the instance fixes at construction time (fidelity-derived trip counts,
buffer sizes, ``tid``, module constants) folds away; what cannot be
folded becomes abstract:

* buffers are allocation sites (:class:`~.ir.AbstractBuffer`), one per
  ``th.alloc`` call site per unroll context;
* a variable that may hold several buffers becomes a *may-set*
  (:class:`~.ir.BufRef` with several sites) — operations through it are
  weak: the interpreter joins, never reports;
* an ``if`` whose condition does not fold becomes a :class:`~.ir.Branch`
  with both arms feasible;
* a loop whose trip count folds to ``n <= UNROLL_LIMIT`` is unrolled
  (each iteration gets its own unroll context, hence its own sites);
  anything else becomes an abstract :class:`~.ir.Loop` — the loop body
  is first re-evaluated without emitting IR until the environment
  stabilizes, so bindings mutated by the loop (``kid += 1`` indexing a
  chunk list) reach their fixpoint *before* the emitted pass, and stale
  first-iteration bindings cannot leak into the IR.

The evaluator is deliberately tolerant: any expression it cannot fold
is ``OPAQUE`` and any statement it does not understand is skipped with
an imprecision note.  Opaque values never reach a reporting rule — that
is the no-false-positive discipline the differential harness enforces.
"""

from __future__ import annotations

import ast
import contextlib
import dataclasses
import inspect
import sys
import textwrap
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...omp.mapping import MapClause, MapKind
from .ir import (
    AbstractBuffer,
    AllocOp,
    Branch,
    BufRef,
    ClauseIR,
    EnterOp,
    ExitOp,
    FreeOp,
    GlobalSyncOp,
    HostWriteOp,
    Loop,
    OutputOp,
    ReturnNode,
    Seq,
    TargetOp,
    ThreadProgram,
    UpdateOp,
    WaitOp,
    WorkloadIR,
)

__all__ = ["extract_workload", "ExtractionError", "UNROLL_LIMIT"]

#: loops with a folded trip count up to this are unrolled exactly
UNROLL_LIMIT = 32

#: abstract-loop environment fixpoint passes before the emitting pass
_FIXPOINT_PASSES = 2


class ExtractionError(Exception):
    """The workload source could not be located or parsed at all."""


# ---------------------------------------------------------------------------
# abstract values
# ---------------------------------------------------------------------------


class _Opaque:
    _instance: "_Opaque" = None  # type: ignore[assignment]

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "OPAQUE"


OPAQUE = _Opaque()


@dataclass(frozen=True)
class BufVal:
    buffer: AbstractBuffer


@dataclass(frozen=True)
class MaySet:
    """A value that may be any of several buffers."""

    members: frozenset  # of BufVal


@dataclass(frozen=True)
class GlobalRef:
    name: str


@dataclass(frozen=True)
class HandleVal:
    hid: int


@dataclass(frozen=True)
class ClauseVal:
    buf: "BufRef"
    kind: Optional[MapKind]
    always: bool


@dataclass
class ListVal:
    items: List[object] = field(default_factory=list)
    exact: bool = True


@dataclass
class DictVal:
    entries: Dict[object, object] = field(default_factory=dict)
    weak: bool = False  #: a store with an unknown key happened


@dataclass(frozen=True)
class FuncVal:
    node: ast.FunctionDef


class _ThProxy:
    """Placeholder for the ``th`` parameter of a body."""


class _InstanceProxy:
    """``self`` inside ``make_body``: instance attributes resolve against
    the real workload object, with declare-target globals recovered from
    an AST scan of ``prepare`` taking precedence (``prepare`` never runs
    statically)."""

    def __init__(self, instance, global_attrs: Dict[str, GlobalRef]):
        self.instance = instance
        self.global_attrs = global_attrs


def _is_known(v) -> bool:
    """A plain Python value the evaluator may compute with."""
    return not isinstance(
        v,
        (_Opaque, BufVal, MaySet, GlobalRef, HandleVal, ClauseVal,
         ListVal, DictVal, FuncVal, _ThProxy, _InstanceProxy),
    )


def _join_values(a, b):
    if a is b:
        return a
    if isinstance(a, BufVal) and isinstance(b, BufVal):
        return a if a == b else MaySet(frozenset((a, b)))
    if isinstance(a, (BufVal, MaySet)) and isinstance(b, (BufVal, MaySet)):
        ma = a.members if isinstance(a, MaySet) else frozenset((a,))
        mb = b.members if isinstance(b, MaySet) else frozenset((b,))
        return MaySet(ma | mb)
    if _is_known(a) and _is_known(b):
        with contextlib.suppress(Exception):
            if bool(a == b):
                return a
    return OPAQUE


def _bufref(value, display: str = "") -> BufRef:
    """Lower an abstract value to an IR operand."""
    if isinstance(value, BufVal):
        return BufRef(frozenset((value.buffer,)), display or value.buffer.name)
    if isinstance(value, MaySet):
        sites = frozenset(m.buffer for m in value.members if isinstance(m, BufVal))
        if sites:
            return BufRef(sites, display)
    return BufRef(frozenset(), display or "<?>", unknown=True)


_BUILTINS = {
    "range": range, "len": len, "enumerate": enumerate, "zip": zip,
    "max": max, "min": min, "abs": abs, "int": int, "float": float,
    "str": str, "bool": bool, "round": round, "sum": sum,
    "sorted": sorted, "tuple": tuple, "list": list, "True": True,
    "False": False, "None": None,
}


class _Env:
    """Lexical scopes: [body locals, make_body locals, module globals]."""

    def __init__(self, scopes: List[dict]):
        self.scopes = scopes

    def lookup(self, name: str):
        for scope in self.scopes:
            if name in scope:
                return scope[name]
        if name in _BUILTINS:
            return _BUILTINS[name]
        return OPAQUE

    def bind(self, name: str, value) -> None:
        self.scopes[0][name] = value

    def child(self) -> "_Env":
        """Fresh innermost scope (comprehension targets)."""
        return _Env([{}] + self.scopes)

    def fork(self) -> "_Env":
        """Copy of the innermost scope for branch arms."""
        return _Env([dict(self.scopes[0])] + self.scopes[1:])

    def snapshot(self) -> dict:
        return dict(self.scopes[0])

    def merge(self, a: dict, b: dict) -> None:
        """Replace the innermost scope with the join of two snapshots."""
        merged = {}
        for key in set(a) | set(b):
            merged[key] = (_join_values(a[key], b[key])
                           if key in a and key in b else OPAQUE)
        self.scopes[0].clear()
        self.scopes[0].update(merged)


# ---------------------------------------------------------------------------
# the extractor
# ---------------------------------------------------------------------------


class _Extractor:
    def __init__(self, workload, tid: int, mb_env_scopes: List[dict],
                 body_fn: ast.FunctionDef, out: WorkloadIR):
        self.workload = workload
        self.tid = tid
        self.body_fn = body_fn
        self.out = out
        self.program = ThreadProgram(tid=tid)
        self.env = _Env([{}] + mb_env_scopes)
        self.ctx: Tuple = ()           #: unroll context stack
        self._buffers: Dict[Tuple, AbstractBuffer] = {}
        self._handle_ids: Dict[Tuple, int] = {}

    # -- diagnostics ----------------------------------------------------
    def note(self, msg: str) -> None:
        self.out.imprecision.append(f"t{self.tid}: {msg}")

    # -- stable per-site identities ------------------------------------
    def _site_key(self, node: ast.AST) -> Tuple:
        return (getattr(node, "lineno", 0), getattr(node, "col_offset", 0), self.ctx)

    def _buffer_for(self, node: ast.Call, name: str,
                    nbytes: Optional[int] = None) -> AbstractBuffer:
        key = self._site_key(node)
        buf = self._buffers.get(key)
        if buf is None:
            ctx = "".join(f"[{i}]" for i in self.ctx)
            buf = AbstractBuffer(
                site=f"t{self.tid}:L{key[0]}.{key[1]}{ctx}",
                name=name, tid=self.tid, lineno=key[0],
            )
            buf = dataclasses.replace(buf, nbytes=nbytes)
            self._buffers[key] = buf
            self.program.buffers[buf.site] = buf
        elif buf.nbytes != nbytes:
            # the same site folded to two different sizes across
            # evaluation passes: the size is not a function of the site
            if buf.nbytes is not None:
                self.note(f"buffer size at L{key[0]} varies across passes")
            buf = dataclasses.replace(buf, nbytes=None)
            self._buffers[key] = buf
            self.program.buffers[buf.site] = buf
        return buf

    def _handle_for(self, node: ast.Call) -> int:
        key = self._site_key(node)
        if key not in self._handle_ids:
            self._handle_ids[key] = len(self._handle_ids) + 1 + self.tid * 10_000
        return self._handle_ids[key]

    # ------------------------------------------------------------------
    # expression evaluation
    # ------------------------------------------------------------------
    def eval(self, node: ast.AST):
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        if method is None:
            return OPAQUE
        try:
            return method(node)
        except Exception as exc:  # tolerant by construction
            self.note(f"eval {type(node).__name__} at L{getattr(node, 'lineno', 0)}"
                      f" failed ({type(exc).__name__})")
            return OPAQUE

    def _eval_Constant(self, node: ast.Constant):
        return node.value

    def _eval_Name(self, node: ast.Name):
        return self.env.lookup(node.id)

    def _eval_Attribute(self, node: ast.Attribute):
        base = self.eval(node.value)
        attr = node.attr
        if isinstance(base, _InstanceProxy):
            if attr in base.global_attrs:
                return base.global_attrs[attr]
            return getattr(base.instance, attr, OPAQUE)
        if isinstance(base, BufVal):
            if attr == "name":
                return base.buffer.name
            return OPAQUE
        if isinstance(base, (_Opaque, MaySet, GlobalRef, HandleVal, ListVal,
                             DictVal, ClauseVal, FuncVal, _ThProxy)):
            return OPAQUE
        if attr.startswith("_"):
            return OPAQUE
        return getattr(base, attr, OPAQUE)

    def _eval_Subscript(self, node: ast.Subscript):
        base = self.eval(node.value)
        idx = self.eval(node.slice)
        if isinstance(node.slice, ast.Slice):
            lo = self.eval(node.slice.lower) if node.slice.lower else None
            hi = self.eval(node.slice.upper) if node.slice.upper else None
            if (lo is None or isinstance(lo, int)) and (hi is None or isinstance(hi, int)):
                if isinstance(base, ListVal) and base.exact:
                    return ListVal(list(base.items[lo:hi]), exact=True)
                if _is_known(base) and isinstance(base, (list, tuple, str)):
                    return base[lo:hi]
            return OPAQUE
        if isinstance(base, ListVal):
            if isinstance(idx, int) and base.exact and -len(base.items) <= idx < len(base.items):
                return base.items[idx]
            members = frozenset(m for m in base.items if isinstance(m, BufVal))
            if members and all(isinstance(m, BufVal) for m in base.items):
                return MaySet(members) if len(members) > 1 else next(iter(members))
            return OPAQUE
        if isinstance(base, DictVal):
            if _is_known(idx):
                try:
                    if idx in base.entries:
                        return base.entries[idx]
                except TypeError:
                    return OPAQUE
            return OPAQUE
        if _is_known(base) and _is_known(idx):
            try:
                return base[idx]
            except Exception:
                return OPAQUE
        return OPAQUE

    def _eval_Tuple(self, node: ast.Tuple):
        vals = [self.eval(e) for e in node.elts]
        if all(_is_known(v) for v in vals):
            return tuple(vals)
        return ListVal(vals, exact=True)

    def _eval_List(self, node: ast.List):
        return ListVal([self.eval(e) for e in node.elts], exact=True)

    def _eval_Dict(self, node: ast.Dict):
        d = DictVal()
        for k, v in zip(node.keys, node.values, strict=True):
            if k is None:
                d.weak = True
                continue
            key = self.eval(k)
            if _is_known(key):
                try:
                    d.entries[key] = self.eval(v)
                except TypeError:
                    d.weak = True
            else:
                d.weak = True
        return d

    def _eval_UnaryOp(self, node: ast.UnaryOp):
        v = self.eval(node.operand)
        if not _is_known(v):
            return OPAQUE
        if isinstance(node.op, ast.USub):
            return -v
        if isinstance(node.op, ast.UAdd):
            return +v
        if isinstance(node.op, ast.Not):
            return not v
        if isinstance(node.op, ast.Invert):
            return ~v
        return OPAQUE

    _BINOPS = {
        ast.Add: lambda a, b: a + b, ast.Sub: lambda a, b: a - b,
        ast.Mult: lambda a, b: a * b, ast.Div: lambda a, b: a / b,
        ast.FloorDiv: lambda a, b: a // b, ast.Mod: lambda a, b: a % b,
        ast.Pow: lambda a, b: a ** b, ast.LShift: lambda a, b: a << b,
        ast.RShift: lambda a, b: a >> b, ast.BitOr: lambda a, b: a | b,
        ast.BitAnd: lambda a, b: a & b, ast.BitXor: lambda a, b: a ^ b,
    }

    def _eval_BinOp(self, node: ast.BinOp):
        a, b = self.eval(node.left), self.eval(node.right)
        if isinstance(node.op, ast.Add) and isinstance(a, ListVal) and isinstance(b, ListVal):
            return ListVal(list(a.items) + list(b.items), exact=a.exact and b.exact)
        if not (_is_known(a) and _is_known(b)):
            return OPAQUE
        fn = self._BINOPS.get(type(node.op))
        return fn(a, b) if fn is not None else OPAQUE

    def _eval_BoolOp(self, node: ast.BoolOp):
        # Short-circuit like Python: a known deciding operand settles the
        # expression even when a *later* operand would be opaque (the
        # interpreter never evaluates past it either).
        want_truthy = isinstance(node.op, ast.Or)
        out = None
        for sub in node.values:
            out = self.eval(sub)
            if not _is_known(out):
                return OPAQUE
            if bool(out) == want_truthy:
                return out
        return out

    _CMPOPS = {
        ast.Eq: lambda a, b: a == b, ast.NotEq: lambda a, b: a != b,
        ast.Lt: lambda a, b: a < b, ast.LtE: lambda a, b: a <= b,
        ast.Gt: lambda a, b: a > b, ast.GtE: lambda a, b: a >= b,
    }

    def _eval_Compare(self, node: ast.Compare):
        left = self.eval(node.left)
        result = True
        for op, right_node in zip(node.ops, node.comparators, strict=True):
            right = self.eval(right_node)
            if isinstance(op, (ast.Is, ast.IsNot)):
                outcome = self._identity(left, right)
                if outcome is OPAQUE:
                    return OPAQUE
                if isinstance(op, ast.IsNot):
                    outcome = not outcome
            elif isinstance(op, (ast.In, ast.NotIn)):
                outcome = self._contains(left, right)
                if outcome is OPAQUE:
                    return OPAQUE
                if isinstance(op, ast.NotIn):
                    outcome = not outcome
            else:
                if not (_is_known(left) and _is_known(right)):
                    return OPAQUE
                fn = self._CMPOPS.get(type(op))
                if fn is None:
                    return OPAQUE
                outcome = fn(left, right)
            result = result and bool(outcome)
            if not result:
                return False
            left = right
        return result

    @staticmethod
    def _identity(a, b):
        if isinstance(a, BufVal) and isinstance(b, BufVal):
            return a == b
        # a resolved abstract object (buffer/global/list/...) is never None
        _abstract = (BufVal, MaySet, GlobalRef, HandleVal, ClauseVal,
                     ListVal, DictVal, FuncVal)
        if a is None and isinstance(b, _abstract):
            return False
        if b is None and isinstance(a, _abstract):
            return False
        if _is_known(a) and _is_known(b):
            return a is b
        return OPAQUE

    @staticmethod
    def _contains(item, container):
        if isinstance(container, DictVal):
            if not _is_known(item):
                return OPAQUE
            try:
                hit = item in container.entries
            except TypeError:
                return OPAQUE
            if hit:
                return True
            return OPAQUE if container.weak else False
        if isinstance(container, ListVal):
            if isinstance(item, BufVal):
                if item in container.items:
                    return True
                return OPAQUE if not container.exact else False
            return OPAQUE
        if _is_known(item) and _is_known(container):
            try:
                return item in container
            except Exception:
                return OPAQUE
        return OPAQUE

    def _eval_IfExp(self, node: ast.IfExp):
        cond = self.eval(node.test)
        if _is_known(cond):
            return self.eval(node.body if cond else node.orelse)
        return _join_values(self.eval(node.body), self.eval(node.orelse))

    def _eval_JoinedStr(self, node: ast.JoinedStr):
        parts = []
        for piece in node.values:
            if isinstance(piece, ast.Constant):
                parts.append(str(piece.value))
            elif isinstance(piece, ast.FormattedValue):
                v = self.eval(piece.value)
                parts.append(str(v) if _is_known(v) else "{?}")
            else:
                parts.append("{?}")
        return "".join(parts)

    def _eval_ListComp(self, node: ast.ListComp):
        if len(node.generators) != 1 or node.generators[0].ifs:
            return OPAQUE
        gen = node.generators[0]
        items = self._iterable_items(self.eval(gen.iter))
        if items is None:
            self.note(f"opaque comprehension iterable at L{node.lineno}")
            return OPAQUE
        env = self.env
        out = []
        for item in items:
            self.env = env.child()
            self._bind_target(gen.target, item)
            out.append(self.eval(node.elt))
            self.env = env
        return ListVal(out, exact=True)

    def _eval_Call(self, node: ast.Call):
        func = node.func
        # MapClause(...) is *modelled*, never constructed: constructing it
        # would run __post_init__ validation (MC-S05's always-misuse check)
        # at extraction time and abort on the corpus workloads.
        target = self.eval(func)
        if target is MapClause:
            return self._clause(node)
        if isinstance(func, ast.Attribute):
            base = self.eval(func.value)
            if isinstance(base, DictVal) and func.attr == "get":
                if node.args:
                    key = self.eval(node.args[0])
                    if _is_known(key):
                        try:
                            if key in base.entries:
                                return base.entries[key]
                        except TypeError:
                            return OPAQUE
                        if not base.weak:
                            return self.eval(node.args[1]) if len(node.args) > 1 else None
                return OPAQUE
        if target in (range, len, enumerate, zip, max, min, abs, int, float,
                      str, bool, round, sum, sorted, tuple, list):
            return self._call_builtin(target, node)
        return OPAQUE

    def _call_builtin(self, fn, node: ast.Call):
        args = [self.eval(a) for a in node.args]
        kn = {k.arg: self.eval(k.value) for k in node.keywords if k.arg}
        if fn is len:
            (arg,) = args
            if isinstance(arg, ListVal):
                return len(arg.items) if arg.exact else OPAQUE
            if _is_known(arg):
                return len(arg)
            return OPAQUE
        if fn in (enumerate, zip):
            resolved = []
            for arg in args:
                items = self._iterable_items(arg)
                if items is None:
                    return OPAQUE
                resolved.append(items)
            if fn is enumerate:
                start = kn.get("start", 0)
                if not isinstance(start, int):
                    return OPAQUE
                return ListVal(
                    [ListVal([start + i, item], exact=True)
                     for i, item in enumerate(resolved[0])],
                    exact=True,
                )
            n = min(len(r) for r in resolved)
            return ListVal(
                [ListVal([r[i] for r in resolved], exact=True) for i in range(n)],
                exact=True,
            )
        if not all(_is_known(a) for a in args) or not all(
            _is_known(v) for v in kn.values()
        ):
            return OPAQUE
        return fn(*args, **kn)

    def _iterable_items(self, value) -> Optional[List[object]]:
        """Concrete item list of an iterable value, or None."""
        if isinstance(value, ListVal):
            return list(value.items) if value.exact else None
        if _is_known(value) and isinstance(value, (range, list, tuple)):
            return list(value)
        return None

    def _clause(self, node: ast.Call) -> ClauseVal:
        args = list(node.args)
        kwargs = {k.arg: k.value for k in node.keywords if k.arg}
        buf_node = args[0] if args else kwargs.get("buf")
        kind_node = args[1] if len(args) > 1 else kwargs.get("kind")
        always_node = args[2] if len(args) > 2 else kwargs.get("always")
        buf = self.eval(buf_node) if buf_node is not None else OPAQUE
        kind: Optional[MapKind] = MapKind.TOFROM
        if kind_node is not None:
            kv = self.eval(kind_node)
            kind = kv if isinstance(kv, MapKind) else None
            if kind is None:
                self.note(f"opaque map kind at L{node.lineno}")
        always = False
        if always_node is not None:
            av = self.eval(always_node)
            always = bool(av) if _is_known(av) else False
        return ClauseVal(_bufref(buf), kind, always)

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def _bind_target(self, target: ast.AST, value) -> None:
        if isinstance(target, ast.Name):
            self.env.bind(target.id, value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            items = None
            if isinstance(value, ListVal) and value.exact:
                items = value.items
            elif _is_known(value) and isinstance(value, (tuple, list)):
                items = list(value)
            if items is not None and len(items) == len(target.elts) and not any(
                isinstance(e, ast.Starred) for e in target.elts
            ):
                for sub, item in zip(target.elts, items, strict=True):
                    self._bind_target(sub, item)
            else:
                for sub in target.elts:
                    self._bind_target(sub, OPAQUE)
        elif isinstance(target, ast.Subscript):
            base = self.eval(target.value)
            idx = self.eval(target.slice)
            if isinstance(base, DictVal):
                if _is_known(idx):
                    try:
                        prev = base.entries.get(idx)
                    except TypeError:
                        base.weak = True
                        return
                    base.entries[idx] = (
                        value if prev is None else _join_values(prev, value)
                    )
                else:
                    base.weak = True
            elif isinstance(base, ListVal):
                if isinstance(idx, int) and base.exact and 0 <= idx < len(base.items):
                    base.items[idx] = _join_values(base.items[idx], value)
                else:
                    base.exact = False
        # attribute stores (glob.host_payload[...] = x) are irrelevant here

    def _th_call(self, node: ast.AST) -> Optional[Tuple[str, ast.Call]]:
        """Recognize ``th.<method>(...)``; returns (method, call node)."""
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
                and isinstance(self.eval(node.func.value), _ThProxy)):
            return node.func.attr, node
        return None

    def _kwargs(self, node: ast.Call) -> Dict[str, ast.AST]:
        return {k.arg: k.value for k in node.keywords if k.arg}

    def _clauses_of(self, node: Optional[ast.AST]) -> Tuple[ClauseIR, ...]:
        if node is None:
            return ()
        value = self.eval(node)
        clauses: List[ClauseIR] = []
        if isinstance(value, ListVal):
            items = value.items if value.exact else value.items
            for item in items:
                if isinstance(item, ClauseVal):
                    clauses.append(ClauseIR(item.buf, item.kind, item.always))
                else:
                    self.note(f"non-clause in map list at L{getattr(node, 'lineno', 0)}")
            if not value.exact:
                # summarized list: clause multiplicity is unknown, so
                # every clause must become a weak (never-reporting) update
                clauses = [
                    ClauseIR(
                        BufRef(c.buf.sites, c.buf.display,
                               unknown=c.buf.unknown, weak=True),
                        c.kind, c.always,
                    )
                    for c in clauses
                ]
        elif isinstance(value, ClauseVal):
            clauses.append(ClauseIR(value.buf, value.kind, value.always))
        else:
            self.note(f"opaque map list at L{getattr(node, 'lineno', 0)}")
        return tuple(clauses)

    def _emit(self, seq: Optional[Seq], op) -> None:
        if seq is not None:
            seq.items.append(op)

    def _emit_th_op(self, seq: Optional[Seq], method: str, call: ast.Call,
                    assign_to: Optional[ast.AST]) -> None:
        kwargs = self._kwargs(call)
        args = list(call.args)
        lineno = call.lineno

        def arg(i: int, name: str) -> Optional[ast.AST]:
            if i < len(args):
                return args[i]
            return kwargs.get(name)

        if method == "alloc":
            name_node = arg(0, "name")
            name = self.eval(name_node) if name_node is not None else OPAQUE
            if not isinstance(name, str):
                name = "<buffer>"
            size_node = arg(1, "nbytes")
            size = self.eval(size_node) if size_node is not None else OPAQUE
            nbytes = int(size) if isinstance(size, int) and not isinstance(
                size, bool) else None
            buf = self._buffer_for(call, name, nbytes=nbytes)
            self._emit(seq, AllocOp(lineno=lineno, buf=buf))
            if assign_to is not None:
                self._bind_target(assign_to, BufVal(buf))
            return
        if method == "free":
            ref = _bufref(self.eval(arg(0, "buf")))
            self._emit(seq, FreeOp(lineno=lineno, buf=ref))
            return
        if method == "target_enter_data":
            self._emit(seq, EnterOp(lineno=lineno, clauses=self._clauses_of(arg(0, "maps"))))
            return
        if method == "target_exit_data":
            self._emit(seq, ExitOp(lineno=lineno, clauses=self._clauses_of(arg(0, "maps"))))
            return
        if method == "update_global":
            g = self.eval(arg(0, "glob"))
            self._emit(seq, GlobalSyncOp(
                lineno=lineno, name=g.name if isinstance(g, GlobalRef) else ""
            ))
            return
        if method == "target_update":
            def refs(node: Optional[ast.AST]) -> Tuple[BufRef, ...]:
                if node is None:
                    return ()
                v = self.eval(node)
                items = self._iterable_items(v)
                if items is None:
                    return (_bufref(v),) if isinstance(v, (BufVal, MaySet)) else ()
                return tuple(_bufref(i) for i in items)

            self._emit(seq, UpdateOp(
                lineno=lineno, to=refs(kwargs.get("to")), from_=refs(kwargs.get("from_")),
            ))
            return
        if method == "host_write":
            self._emit(seq, HostWriteOp(lineno=lineno, buf=_bufref(self.eval(arg(0, "buf")))))
            return
        if method == "wait":
            h = self.eval(arg(0, "handle"))
            if isinstance(h, HandleVal):
                self._emit(seq, WaitOp(lineno=lineno, handle_ids=frozenset((h.hid,))))
            elif isinstance(h, MaySet):
                hids = frozenset(m.hid for m in h.members if isinstance(m, HandleVal))
                self._emit(seq, WaitOp(lineno=lineno, handle_ids=hids, unknown=not hids))
            else:
                self._emit(seq, WaitOp(lineno=lineno, unknown=True))
                self.note(f"opaque wait handle at L{lineno}")
            if assign_to is not None:
                self._bind_target(assign_to, OPAQUE)
            return
        if method == "target":
            name_node = arg(0, "name")
            kname = self.eval(name_node) if name_node is not None else OPAQUE
            clauses = self._clauses_of(kwargs.get("maps") or arg(2, "maps"))
            touch_node = kwargs.get("touches")
            touches: Tuple[BufRef, ...] = ()
            if touch_node is not None:
                tv = self.eval(touch_node)
                items = self._iterable_items(tv)
                if items is None:
                    self.note(f"opaque touches list at L{lineno}")
                else:
                    touches = tuple(_bufref(i) for i in items)
            gnode = kwargs.get("globals_used")
            gnames: Tuple[str, ...] = ()
            if gnode is not None:
                gv = self.eval(gnode)
                items = self._iterable_items(gv) or []
                gnames = tuple(
                    i.name for i in items if isinstance(i, GlobalRef)
                )
            nowait_node = kwargs.get("nowait")
            nowait_val = self.eval(nowait_node) if nowait_node is not None else False
            nowait = bool(nowait_val) if _is_known(nowait_val) else False
            if not _is_known(nowait_val):
                self.note(f"opaque nowait at L{lineno}")
            op = TargetOp(
                lineno=lineno,
                kernel=kname if isinstance(kname, str) else "<kernel>",
                clauses=clauses, touches=touches, globals_used=gnames,
                nowait=nowait,
            )
            if nowait:
                hid = self._handle_for(call)
                op.handle_id = hid
                refs = frozenset(
                    s for c in clauses for s in c.buf.sites
                ) | frozenset(s for t in touches for s in t.sites)
                self.program.handles[hid] = (clauses, refs)
                if assign_to is not None:
                    self._bind_target(assign_to, HandleVal(hid))
            elif assign_to is not None:
                self._bind_target(assign_to, OPAQUE)
            self._emit(seq, op)
            return
        if method in ("mark",):
            return
        self.note(f"unmodelled th.{method} at L{lineno}")

    # ------------------------------------------------------------------
    def extract_stmts(self, stmts: List[ast.stmt], seq: Optional[Seq]) -> bool:
        """Process statements; returns False when a ``return`` ended the
        straight-line flow (callers stop extracting the sequence)."""
        return all(self.extract_stmt(stmt, seq) for stmt in stmts)

    def extract_stmt(self, stmt: ast.stmt, seq: Optional[Seq]) -> bool:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            self._stmt_assign(stmt, seq)
            return True
        if isinstance(stmt, ast.AugAssign):
            # accumulators (acc += ..., kid += 1) leave the folded world
            self._bind_target(stmt.target, OPAQUE)
            return True
        if isinstance(stmt, ast.Expr):
            self._stmt_expr(stmt, seq)
            return True
        if isinstance(stmt, ast.If):
            self._stmt_if(stmt, seq)
            return True
        if isinstance(stmt, ast.For):
            self._stmt_for(stmt, seq)
            return True
        if isinstance(stmt, ast.While):
            self._stmt_while(stmt, seq)
            return True
        if isinstance(stmt, ast.Return):
            self._emit(seq, ReturnNode(lineno=stmt.lineno))
            return False
        if isinstance(stmt, ast.FunctionDef):
            self.env.bind(stmt.name, FuncVal(stmt))
            return True
        if isinstance(stmt, (ast.Pass, ast.Import, ast.ImportFrom, ast.Global,
                             ast.Nonlocal, ast.Assert, ast.Delete)):
            return True
        self.note(f"unmodelled statement {type(stmt).__name__} at L{stmt.lineno}")
        return True

    def _stmt_assign(self, stmt, seq: Optional[Seq]) -> None:
        if isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target] if stmt.target is not None else []
            value = stmt.value
        else:
            targets = stmt.targets
            value = stmt.value
        if value is None:
            return
        inner = value.value if isinstance(value, (ast.YieldFrom, ast.Yield)) else value
        th = self._th_call(inner) if isinstance(value, ast.YieldFrom) else None
        if th is not None:
            method, call = th
            assign_to = targets[0] if len(targets) == 1 else None
            self._emit_th_op(seq, method, call, assign_to)
            if assign_to is None:
                for t in targets:
                    self._bind_target(t, OPAQUE)
            return
        if isinstance(value, (ast.YieldFrom, ast.Yield)):
            for t in targets:
                self._bind_target(t, OPAQUE)
            return
        v = self.eval(value)
        for t in targets:
            self._bind_target(t, v)

    def _stmt_expr(self, stmt: ast.Expr, seq: Optional[Seq]) -> None:
        value = stmt.value
        if isinstance(value, ast.YieldFrom):
            th = self._th_call(value.value)
            if th is not None:
                self._emit_th_op(seq, th[0], th[1], None)
            return
        if isinstance(value, ast.Yield):
            return  # env.timeout etc: simulated time only
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Attribute):
            base = self.eval(value.func.value)
            attr = value.func.attr
            if isinstance(base, _ThProxy):
                if attr == "host_write":
                    self._emit_th_op(seq, "host_write", value, None)
                return  # th.mark & friends: no mapping effect
            if isinstance(base, ListVal) and attr == "append":
                item = self.eval(value.args[0]) if value.args else OPAQUE
                if item in base.items:
                    base.exact = False  # refolding an abstract iteration
                else:
                    base.items.append(item)
                return
            if attr == "put" and base is getattr(self.workload, "outputs", None):
                key = self.eval(value.args[0]) if value.args else None
                bufs = []
                if len(value.args) > 1:
                    for name_node in ast.walk(value.args[1]):
                        if isinstance(name_node, ast.Name):
                            bound = self.env.lookup(name_node.id)
                            if isinstance(bound, BufVal):
                                bufs.append(_bufref(bound))
                self._emit(seq, OutputOp(
                    lineno=stmt.lineno,
                    key=key if isinstance(key, str) else None,
                    bufs=tuple(bufs),
                ))
                return
        # any other expression statement is mapping-irrelevant

    def _stmt_if(self, stmt: ast.If, seq: Optional[Seq]) -> None:
        cond = self.eval(stmt.test)
        if _is_known(cond):
            self.extract_stmts(stmt.body if cond else stmt.orelse, seq)
            return
        snap = self.env.snapshot()
        then_seq = Seq() if seq is not None else None
        self.extract_stmts(stmt.body, then_seq)
        then_env = self.env.snapshot()
        self.env.scopes[0].clear()
        self.env.scopes[0].update(snap)
        else_seq = Seq() if seq is not None else None
        self.extract_stmts(stmt.orelse, else_seq)
        else_env = self.env.snapshot()
        self.env.merge(then_env, else_env)
        if seq is not None:
            seq.items.append(Branch(then=then_seq, orelse=else_seq, lineno=stmt.lineno))

    def _stmt_for(self, stmt: ast.For, seq: Optional[Seq]) -> None:
        items = self._iterable_items(self.eval(stmt.iter))
        if items is not None and len(items) <= UNROLL_LIMIT:
            for i, item in enumerate(items):
                saved_ctx = self.ctx
                self.ctx = self.ctx + (i,)
                self._bind_target(stmt.target, item)
                self.extract_stmts(stmt.body, seq)
                self.ctx = saved_ctx
            return
        if items is not None:
            self.note(f"loop at L{stmt.lineno} has {len(items)} trips > "
                      f"{UNROLL_LIMIT}; abstracting")
        self._abstract_loop(stmt, seq, min_trips=1, kind="for",
                            trips=len(items) if items is not None else None,
                            bind=lambda: self._bind_loop_var(stmt, items))

    def _bind_loop_var(self, stmt: ast.For, items) -> None:
        if items:
            joined = items[0]
            for item in items[1:]:
                joined = _join_values(joined, item)
            self._bind_target(stmt.target, joined)
        else:
            self._bind_target(stmt.target, OPAQUE)

    def _stmt_while(self, stmt: ast.While, seq: Optional[Seq]) -> None:
        cond = self.eval(stmt.test)
        if _is_known(cond) and not cond:
            return
        self._abstract_loop(stmt, seq, min_trips=0, kind="while", bind=lambda: None)

    def _abstract_loop(self, stmt, seq: Optional[Seq], *, min_trips: int,
                       kind: str, bind, trips: Optional[int] = None) -> None:
        """Env-fixpoint extraction: re-evaluate the body without emitting
        until bindings stabilize, then emit IR once from the stable env."""
        pre = self.env.snapshot()
        saved_ctx = self.ctx
        self.ctx = self.ctx + (f"{kind}{stmt.lineno}",)
        for _pass in range(_FIXPOINT_PASSES):
            bind()
            self.extract_stmts(stmt.body, None)
        bind()
        body_seq = Seq() if seq is not None else None
        self.extract_stmts(stmt.body, body_seq)
        self.ctx = saved_ctx
        if min_trips == 0:
            self.env.merge(pre, self.env.snapshot())
        if seq is not None:
            seq.items.append(Loop(body=body_seq, min_trips=min_trips,
                                  kind=kind, lineno=stmt.lineno, trips=trips))

    # ------------------------------------------------------------------
    def run(self) -> ThreadProgram:
        args = self.body_fn.args.args
        if args:
            self.env.bind(args[0].arg, _ThProxy())
        if len(args) > 1:
            self.env.bind(args[1].arg, self.tid)
        self.extract_stmts(self.body_fn.body, self.program.body)
        return self.program


# ---------------------------------------------------------------------------
# top-level driver
# ---------------------------------------------------------------------------


def _fold_global_size(call: ast.Call, workload) -> Optional[int]:
    """Fold the byte size ``declare_target`` would allocate for a global.

    Mirrors ``OpenMPRuntime.declare_target``: the backing range is
    ``max(nbytes or 0, value.nbytes, 8)``.  The value/nbytes expressions
    are evaluated against the real workload instance (as ``self``) and
    its module globals; any failure yields ``None`` (size unresolved).
    """
    make_body = getattr(getattr(workload, "make_body", None), "__func__", None)
    mod_globals = getattr(make_body, "__globals__", None)
    if mod_globals is None:
        module = sys.modules.get(type(workload).__module__)
        mod_globals = dict(vars(module)) if module is not None else {}
    value_node = call.args[1] if len(call.args) > 1 else None
    nbytes_node = call.args[2] if len(call.args) > 2 else None
    for kw in call.keywords:
        if kw.arg == "value":
            value_node = kw.value
        elif kw.arg == "nbytes":
            nbytes_node = kw.value

    def _fold(node: Optional[ast.AST]):
        if node is None:
            return None
        return eval(  # noqa: S307 - same trust level as running prepare()
            compile(ast.Expression(body=node), "<prepare>", "eval"),
            mod_globals, {"self": workload},
        )

    try:
        value = _fold(value_node)
        nbytes = _fold(nbytes_node)
        vbytes = getattr(value, "nbytes", None)
        if vbytes is None:
            return None
        return max(int(nbytes or 0), int(vbytes), 8)
    except Exception:
        return None


def _scan_prepare(workload) -> Tuple[
    Dict[str, GlobalRef], Tuple[str, ...], Dict[str, Optional[int]]
]:
    """AST-scan ``prepare`` for ``self.<attr> = runtime.declare_target(
    "<name>", ...)`` without running it (it needs a live runtime)."""
    prepare = getattr(workload, "prepare", None)
    if prepare is None:
        return {}, (), {}
    try:
        src = textwrap.dedent(inspect.getsource(prepare))
        tree = ast.parse(src)
    except (OSError, TypeError, SyntaxError):
        return {}, (), {}
    attrs: Dict[str, GlobalRef] = {}
    names: List[str] = []
    sizes: Dict[str, Optional[int]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        value = node.value
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "declare_target"
            and value.args
            and isinstance(value.args[0], ast.Constant)
            and isinstance(value.args[0].value, str)
        ):
            gname = value.args[0].value
            attrs[target.attr] = GlobalRef(gname)
            names.append(gname)
            sizes[gname] = _fold_global_size(value, workload)
    return attrs, tuple(names), sizes


def _body_function(make_body_fn) -> Tuple[ast.FunctionDef, List[ast.stmt], dict, str]:
    """Parse ``make_body`` and locate the returned thread-body function."""
    try:
        lines, start = inspect.getsourcelines(make_body_fn)
        src = textwrap.dedent("".join(lines))
        tree = ast.parse(src)
        ast.increment_lineno(tree, start - 1)  # real file line numbers
    except (OSError, TypeError, SyntaxError) as exc:
        raise ExtractionError(f"cannot read make_body source: {exc}") from exc
    fn = tree.body[0]
    if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
        raise ExtractionError("make_body source does not start with a def")
    # The function's own __globals__ IS the defining module's namespace,
    # even for modules loaded via importlib.spec_from_file_location that
    # never land in sys.modules (the examples-smoke loader does this).
    fn_obj = getattr(make_body_fn, "__func__", make_body_fn)
    mod_globals = getattr(fn_obj, "__globals__", None)
    if mod_globals is None:
        module = sys.modules.get(make_body_fn.__module__)
        mod_globals = vars(module) if module is not None else {}
    source_file = mod_globals.get("__file__", "") or ""
    return fn, fn.body, mod_globals, source_file


def extract_workload(workload, name: str = "") -> WorkloadIR:
    """Extract the full :class:`WorkloadIR` of one workload instance."""
    make_body = getattr(workload, "make_body", None)
    if make_body is None:
        raise ExtractionError(f"{workload!r} has no make_body")
    fn, mb_stmts, mod_globals, source_file = _body_function(make_body)
    global_attrs, global_names, global_sizes = _scan_prepare(workload)
    out = WorkloadIR(
        name=name or getattr(workload, "name", type(workload).__name__),
        n_threads=getattr(workload, "n_threads", 1),
        globals_declared=frozenset(global_names),
        source_file=source_file,
        global_sizes=global_sizes,
    )
    proxy = _InstanceProxy(workload, global_attrs)
    # one make_body evaluation shared by every thread: module-level
    # closure objects (shared chunk lists, publication dicts) must be the
    # *same* abstract values across per-tid extractions
    mb_scope: dict = {}
    mb_env_scopes = [mb_scope, mod_globals]
    seed = _Extractor(workload, tid=0, mb_env_scopes=mb_env_scopes,
                      body_fn=fn, out=out)  # env machinery for mb-level eval
    seed.env = _Env([mb_scope, mod_globals])
    fn_args = fn.args.args
    if fn_args:
        mb_scope[fn_args[0].arg] = proxy
    body_fn: Optional[ast.FunctionDef] = None
    for stmt in mb_stmts:
        if isinstance(stmt, ast.FunctionDef):
            mb_scope[stmt.name] = FuncVal(stmt)
            continue
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                returned = seed.eval(stmt.value)
                if isinstance(returned, FuncVal):
                    body_fn = returned.node
            break
        seed.extract_stmt(stmt, None)
    if body_fn is None:
        raise ExtractionError(
            f"make_body of {out.name!r} does not return a local function"
        )
    for tid in range(out.n_threads):
        ex = _Extractor(workload, tid=tid, mb_env_scopes=mb_env_scopes,
                        body_fn=body_fn, out=out)
        out.threads.append(ex.run())
    return out

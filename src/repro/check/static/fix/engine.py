"""The MapFix remediation engine: synthesize -> verify -> rank.

``remediate`` drives rounds of *fix one finding, re-analyze everything*:

1. run the full static report (MapFlow + MapRace + MapCost lint) over
   the current source;
2. for the highest-ranked located finding with a registered synthesizer,
   propose candidate edits (:mod:`.synthesize`);
3. apply each candidate to a scratch copy, re-import it as a sandbox
   module and re-run the same 27-rule report (:mod:`.sandbox`); accept
   only if the target finding disappears *and* zero new findings appear
   (fingerprinted by ``rule:buffer`` — the baseline discipline);
4. on acceptance, record the fix with its MapCost-predicted per-config
   cost delta (HSA calls bit-exact, byte/page intervals) and continue
   from the patched source — some defects (the nowait-result pair) only
   become fixable after another fix lands.

When the rounds converge, an *instrumented dynamic re-run* under the
formerly-breaking configurations classifies the workload: ``fixed``
(statically and dynamically clean), ``partial`` (fixes verified, known
residual findings unchanged) or ``unfixable`` — a dynamic regression
rejects the whole fix set rather than ship a statically-pretty edit
that still breaks at runtime (the corpus' refcount-corruption workload
exists to pin exactly that).
"""

from __future__ import annotations

import ast
import os
import tempfile
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ....core.config import ALL_CONFIGS
from ....workloads.base import Workload
from ...findings import _SEV_ORDER, CheckReport, Finding
from ..cost import BOUNDED_KEYS, EXACT_KEYS, CostEnv, predict_costs
from ..cost.intervals import Interval
from ..extract import ExtractionError, extract_workload
from ..ir import WorkloadIR
from ..rules import _relative_source
from .edits import (
    EditError,
    SourceEdit,
    apply_edits,
    line_map,
    rebase_edit,
    render_diff,
)
from .sandbox import SandboxError, analyze_instance, load_patched
from .synthesize import FixContext, Refusal, synthesize_fixes

__all__ = ["AppliedFix", "RemediationResult", "remediate", "write_patches"]

_ZERO = Interval(0, 0)


@dataclass
class AppliedFix:
    """One sandbox-verified fix, expressed against the original source."""

    workload: str
    rule_id: str
    buffer: str
    kind: str
    description: str
    round: int
    path: str                               #: repo-relative source path
    edits: Tuple[SourceEdit, ...]           #: original-file coordinates
    #: config label -> {"exact": {key: {before, after, saved}},
    #:                  "bounded": {key: {before: [lo,hi], after: [lo,hi]}}}
    cost_delta: Dict[str, Dict[str, object]] = field(default_factory=dict)
    #: rank score: total exact-counter reduction summed over all configs
    saved_exact: int = 0

    def delta_summary(self) -> str:
        parts = []
        for label, entry in self.cost_delta.items():
            exact = entry.get("exact", {})
            saved = sum(d["saved"] for d in exact.values())
            chunk = f"{label}: {-saved:+d} ops" if exact else f"{label}: ±0"
            bounded = entry.get("bounded", {})
            for key in ("h2d_bytes", "d2h_bytes"):
                if key in bounded:
                    b, a = bounded[key]["before"], bounded[key]["after"]
                    chunk += f", {key} {b}->{a}"
            parts.append(chunk)
        return "; ".join(parts)

    def to_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "rule": self.rule_id,
            "buffer": self.buffer,
            "kind": self.kind,
            "description": self.description,
            "round": self.round,
            "path": self.path,
            "edits": [e.to_dict() for e in self.edits],
            "cost_delta": self.cost_delta,
            "saved_exact": self.saved_exact,
        }

    def finding_attachment(self) -> Dict[str, object]:
        """The ``Finding.fix`` payload (SARIF ``fixes[]`` feeds off it)."""
        return {
            "description": self.description,
            "kind": self.kind,
            "round": self.round,
            "path": self.path,
            "edits": [e.to_dict() for e in self.edits],
            "cost_delta": self.cost_delta,
            "saved_exact": self.saved_exact,
        }


@dataclass
class RemediationResult:
    """Everything ``remediate`` decided about one workload."""

    workload: str
    path: str
    status: str                              #: clean|fixed|partial|unfixable
    fixes: List[AppliedFix] = field(default_factory=list)
    refusals: List[Refusal] = field(default_factory=list)
    rejected: List[str] = field(default_factory=list)
    residual: List[str] = field(default_factory=list)
    dynamic: Optional[str] = None
    original_text: str = ""
    patched_text: Optional[str] = None
    #: the round-0 static+perf report (fixes attached to its findings)
    report: Optional[CheckReport] = None
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status in ("clean", "fixed")

    def ranked_fixes(self) -> List[AppliedFix]:
        return sorted(self.fixes, key=lambda f: (-f.saved_exact, f.round))

    def diff(self) -> str:
        if self.patched_text is None or self.patched_text == self.original_text:
            return ""
        return render_diff(self.original_text, self.patched_text, self.path)

    def to_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "path": self.path,
            "status": self.status,
            "fixes": [f.to_dict() for f in self.ranked_fixes()],
            "refusals": [r.render() for r in self.refusals],
            "rejected": list(self.rejected),
            "residual": list(self.residual),
            "dynamic": self.dynamic,
            "notes": list(self.notes),
        }

    def render(self) -> str:
        lines = [f"MapFix — workload {self.workload!r} ({self.path})",
                 "-" * 72,
                 f"status : {self.status}"
                 + (f"  [dynamic: {self.dynamic}]" if self.dynamic else "")]
        for i, fix in enumerate(self.ranked_fixes(), 1):
            lines.append(f"fix {i}  : [{fix.rule_id} {fix.buffer!r}] "
                         f"{fix.description}")
            lines.append(f"         cost delta: {fix.delta_summary()}")
        for r in self.refusals:
            lines.append(f"refused: {r.render()}")
        for r in self.rejected:
            lines.append(f"reject : {r}")
        if self.residual:
            lines.append("residual: " + ", ".join(self.residual))
        for n in self.notes:
            lines.append(f"note   : {n}")
        return "\n".join(lines)


def _sorted_active(findings: List[Finding]) -> List[Finding]:
    return sorted(
        (f for f in findings if not f.suppressed),
        key=lambda f: (_SEV_ORDER[f.severity],) + f.sort_key(),
    )


def _fingerprints(findings: List[Finding]) -> set:
    return {(f.rule_id, f.buffer) for f in findings if not f.suppressed}


def _cost_delta(before: WorkloadIR, after: WorkloadIR
                ) -> Tuple[Dict[str, Dict[str, object]], int]:
    delta: Dict[str, Dict[str, object]] = {}
    saved_total = 0
    for cfg in ALL_CONFIGS:
        env = CostEnv.for_config(cfg)
        b = predict_costs(before, env).counters
        a = predict_costs(after, env).counters
        exact: Dict[str, object] = {}
        for key in EXACT_KEYS:
            bi, ai = b.get(key, _ZERO), a.get(key, _ZERO)
            if (bi.lo, bi.hi) != (ai.lo, ai.hi):
                saved = bi.lo - ai.lo
                exact[key] = {"before": bi.lo, "after": ai.lo, "saved": saved}
                saved_total += saved
        bounded: Dict[str, object] = {}
        for key in BOUNDED_KEYS:
            bi, ai = b.get(key, _ZERO), a.get(key, _ZERO)
            if (bi.lo, bi.hi) != (ai.lo, ai.hi):
                bounded[key] = {"before": [bi.lo, bi.hi],
                                "after": [ai.lo, ai.hi]}
        delta[cfg.value] = {"exact": exact, "bounded": bounded}
    return delta, saved_total


def _make_context(name: str, ir: WorkloadIR, path: str,
                  text: str) -> FixContext:
    return FixContext(name=name, ir=ir, path=path,
                      lines=text.splitlines(), tree=ast.parse(text))


def _dedupe_refusals(refusals: List[Refusal]) -> List[Refusal]:
    seen, out = set(), []
    for r in refusals:
        key = (r.rule_id, r.buffer, r.reason)
        if key not in seen:
            seen.add(key)
            out.append(r)
    return out


def remediate(
    factory: Callable[[], Workload],
    name: Optional[str] = None,
    *,
    dynamic: bool = True,
    max_rounds: int = 8,
    rebuild: Optional[Callable[[object], Workload]] = None,
) -> RemediationResult:
    """Synthesize, verify and rank fixes for one workload.

    ``dynamic=False`` stops after static verification (the bench tier
    and the advisor's in-process phase use it); the corpus differential
    and CI always run the dynamic gate.  ``rebuild`` instantiates the
    workload from a sandbox module when the class needs constructor
    arguments (see :func:`.sandbox.load_patched`).
    """
    instance = factory()
    wname = name or instance.name
    cls_name = type(instance).__name__
    origin_module = type(instance).__module__
    try:
        ir0 = extract_workload(factory(), name=wname)
    except ExtractionError as exc:
        return RemediationResult(
            workload=wname, path="", status="unfixable",
            notes=[f"static extraction failed: {exc}"],
        )
    path = ir0.source_file
    rel = _relative_source(path) or path
    with open(path) as fh:
        original_text = fh.read()

    result = RemediationResult(workload=wname, path=rel, status="clean",
                               original_text=original_text)
    base = analyze_instance(factory, wname)
    result.report = CheckReport(
        workload=wname,
        fidelity=getattr(instance.fidelity, "value", "?"),
        findings=list(base.findings),
    )
    refusals: List[Refusal] = []

    cur_text, cur_build, cur_ir = original_text, factory, base.ir or ir0
    cur_findings = _sorted_active(base.findings)
    with tempfile.TemporaryDirectory(prefix="mapfix-") as tmpdir:
        for rnd in range(1, max_rounds + 1):
            if not cur_findings:
                break
            accepted = False
            cur_fps = _fingerprints(cur_findings)
            ctx = _make_context(wname, cur_ir, path, cur_text)
            for finding in cur_findings:
                candidates, refs = synthesize_fixes(finding, ctx)
                refusals.extend(refs)
                target_fp = (finding.rule_id, finding.buffer)
                for cand in candidates:
                    try:
                        new_text = apply_edits(cur_text, cand.edits)
                        build = load_patched(new_text, origin_module,
                                             cls_name, tmpdir,
                                             rebuild=rebuild)
                        analysis = analyze_instance(build, wname)
                    except (EditError, SandboxError,
                            ExtractionError) as exc:
                        result.rejected.append(
                            f"{cand.kind} for {finding.rule_id} "
                            f"{finding.buffer!r}: sandbox failed ({exc})")
                        continue
                    if analysis.aborted or analysis.ir is None:
                        result.rejected.append(
                            f"{cand.kind} for {finding.rule_id} "
                            f"{finding.buffer!r}: patched source no longer "
                            f"analyzes ({analysis.aborted})")
                        continue
                    new_fps = analysis.fingerprints()
                    if target_fp in new_fps:
                        result.rejected.append(
                            f"{cand.kind} for {finding.rule_id} "
                            f"{finding.buffer!r}: finding survives the edit")
                        continue
                    introduced = new_fps - (cur_fps - {target_fp})
                    if introduced:
                        result.rejected.append(
                            f"{cand.kind} for {finding.rule_id} "
                            f"{finding.buffer!r}: edit introduces "
                            + ", ".join(f"{r}:{b}" for r, b
                                        in sorted(introduced)))
                        continue
                    # verified: rebase the edits onto original coordinates
                    try:
                        mapping = line_map(original_text, cur_text)
                        n_cur = len(cur_text.splitlines())
                        rebased = tuple(rebase_edit(e, mapping, n_cur)
                                        for e in cand.edits)
                    except EditError as exc:
                        result.rejected.append(
                            f"{cand.kind} for {finding.rule_id} "
                            f"{finding.buffer!r}: cannot express the edit "
                            f"against the original source ({exc})")
                        continue
                    delta, saved = _cost_delta(cur_ir, analysis.ir)
                    result.fixes.append(AppliedFix(
                        workload=wname, rule_id=finding.rule_id,
                        buffer=finding.buffer, kind=cand.kind,
                        description=cand.description, round=rnd,
                        path=rel, edits=rebased, cost_delta=delta,
                        saved_exact=saved,
                    ))
                    cur_text, cur_build, cur_ir = (
                        new_text, analysis.build, analysis.ir)
                    cur_findings = _sorted_active(analysis.findings)
                    accepted = True
                    break
                if accepted:
                    break
            if not accepted:
                break

        result.refusals = _dedupe_refusals(refusals)
        result.residual = sorted(
            {f"{r}:{b}" for r, b in _fingerprints(cur_findings)})
        result.patched_text = cur_text if result.fixes else None

        if not result.fixes:
            result.status = "clean" if not base.findings else "unfixable"
        elif not dynamic:
            result.status = "partial" if result.residual else "fixed"
            result.dynamic = "skipped (static-only verification)"
        else:
            _dynamic_gate(result, factory, cur_build, wname)

    if result.fixes:
        _attach_fixes(result)
    return result


def _dynamic_gate(result: RemediationResult,
                  factory: Callable[[], Workload],
                  patched_build: Callable[[], Workload],
                  wname: str) -> None:
    """Instrumented re-run of the patched workload; rejects regressions."""
    from ...runner import check_workload

    if not result.residual:
        full = check_workload(patched_build, wname, cross_check=True)
        if full.ok:
            result.status = "fixed"
            result.dynamic = (
                "clean under all four configurations (instrumented re-run "
                "+ differential)")
            return
    base_dyn = check_workload(factory, wname, cross_check=False)
    patched_dyn = check_workload(patched_build, wname, cross_check=False)
    new_dyn = (_fingerprints(patched_dyn.findings)
               - _fingerprints(base_dyn.findings))
    new_abort = patched_dyn.aborted is not None and base_dyn.aborted is None
    if new_dyn or new_abort:
        what = ", ".join(f"{r}:{b}" for r, b in sorted(new_dyn)) or \
            f"abort ({patched_dyn.aborted})"
        result.rejected.extend(
            f"{f.kind} for {f.rule_id} {f.buffer!r}: dynamic re-run "
            f"regressed ({what})" for f in result.fixes)
        result.fixes = []
        result.patched_text = None
        result.status = "unfixable"
        result.dynamic = f"rejected: patched run introduces {what}"
    else:
        result.status = "partial"
        result.dynamic = (
            "no dynamic regression; pre-existing dynamic findings remain")


def _attach_fixes(result: RemediationResult) -> None:
    """Attach each fix to the matching finding of the round-0 report."""
    if result.report is None:
        return
    by_fp: Dict[Tuple[str, str], AppliedFix] = {}
    for fix in result.ranked_fixes():
        by_fp.setdefault((fix.rule_id, fix.buffer), fix)
    for finding in result.report.findings:
        fix = by_fp.get((finding.rule_id, finding.buffer))
        if fix is not None and finding.fix is None:
            finding.fix = fix.finding_attachment()


def write_patches(results: List[RemediationResult], out_dir: str) -> List[str]:
    """Write one unified-diff patch file per remediated workload."""
    os.makedirs(out_dir, exist_ok=True)
    written = []
    for res in results:
        diff = res.diff()
        if not diff:
            continue
        fname = os.path.join(out_dir, f"{res.workload}.patch")
        with open(fname, "w") as fh:
            fh.write(diff)
        written.append(fname)
    return written

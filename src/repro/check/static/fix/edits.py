"""Line-oriented source edits: MapFix's patch representation.

A :class:`SourceEdit` replaces an inclusive 1-based line range with new
lines (``end == start - 1`` encodes a pure insertion *before* ``start``).
Whole-line granularity is all the synthesizers need — every map construct
the extractor records is a statement — and it keeps three consumers
trivially consistent: :func:`apply_edits` (the sandbox rewrite),
:func:`render_diff` (the ``--fix-out`` patch files) and
:func:`sarif_replacements` (SARIF 2.1.0 ``fixes[].artifactChanges``).
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

__all__ = [
    "SourceEdit",
    "EditError",
    "apply_edits",
    "render_diff",
    "sarif_replacements",
]


class EditError(ValueError):
    """An edit does not apply cleanly (overlap or out of bounds)."""


@dataclass(frozen=True)
class SourceEdit:
    """Replace source lines ``start..end`` (1-based, inclusive) with
    ``new_lines``; ``end == start - 1`` inserts before ``start``."""

    start: int
    end: int
    new_lines: Tuple[str, ...] = ()
    note: str = ""

    def __post_init__(self):
        if self.start < 1 or self.end < self.start - 1:
            raise EditError(f"bad edit range [{self.start}, {self.end}]")

    @property
    def is_insertion(self) -> bool:
        return self.end == self.start - 1

    def to_dict(self) -> Dict[str, object]:
        return {
            "start": self.start,
            "end": self.end,
            "new_lines": list(self.new_lines),
            "note": self.note,
        }


def _check_disjoint(edits: Sequence[SourceEdit], n_lines: int) -> None:
    last_end = 0
    for e in sorted(edits, key=lambda e: (e.start, e.end)):
        if e.end > n_lines:
            raise EditError(
                f"edit [{e.start}, {e.end}] past end of file ({n_lines} lines)"
            )
        # an insertion occupies the zero-width gap before `start`; a
        # replacement occupies start..end — either way `start` must lie
        # strictly after every previously claimed line
        if e.start <= last_end:
            raise EditError(f"overlapping edits at line {e.start}")
        last_end = max(last_end, e.end)


def apply_edits(text: str, edits: Sequence[SourceEdit]) -> str:
    """Apply disjoint edits to source text; raises :class:`EditError`."""
    lines = text.splitlines()
    _check_disjoint(edits, len(lines))
    for e in sorted(edits, key=lambda e: e.start, reverse=True):
        lines[e.start - 1 : e.end] = list(e.new_lines)
    return "\n".join(lines) + ("\n" if text.endswith("\n") else "")


def render_diff(before: str, after: str, path: str) -> str:
    """Unified diff of a whole-file rewrite, `git apply`-able."""
    out = difflib.unified_diff(
        before.splitlines(keepends=True),
        after.splitlines(keepends=True),
        fromfile=f"a/{path}",
        tofile=f"b/{path}",
    )
    return "".join(out)


def sarif_replacements(edits: Sequence[SourceEdit]) -> List[Dict[str, object]]:
    """SARIF ``replacements`` for one artifactChange.

    Whole-line convention: a replacement's ``deletedRegion`` spans the
    replaced lines (column-less, i.e. the entire lines); an insertion's
    ``deletedRegion`` is the zero-width region at column 1 of ``start``.
    ``insertedContent.text`` always ends in a newline.
    """
    out: List[Dict[str, object]] = []
    for e in sorted(edits, key=lambda e: e.start):
        region: Dict[str, object] = {"startLine": e.start}
        if e.is_insertion:
            region.update(
                {"startColumn": 1, "endLine": e.start, "endColumn": 1}
            )
        else:
            region["endLine"] = e.end
        rep: Dict[str, object] = {"deletedRegion": region}
        if e.new_lines:
            rep["insertedContent"] = {"text": "\n".join(e.new_lines) + "\n"}
        out.append(rep)
    return out


@dataclass(frozen=True)
class _LineMap:
    """Maps line numbers of an edited text back to the original text."""

    #: 1-based edited line -> 1-based original line, for unchanged lines
    back: Dict[int, int] = field(default_factory=dict)


def line_map(original: str, edited: str) -> _LineMap:
    """Line correspondence original<-edited for unchanged lines."""
    a = original.splitlines()
    b = edited.splitlines()
    back: Dict[int, int] = {}
    matcher = difflib.SequenceMatcher(None, a, b, autojunk=False)
    for tag, i1, i2, j1, j2 in matcher.get_opcodes():
        if tag == "equal":
            for off in range(i2 - i1):
                back[j1 + off + 1] = i1 + off + 1
    return _LineMap(back)


def rebase_edit(edit: SourceEdit, mapping: _LineMap,
                edited_len: int) -> SourceEdit:
    """Express an edit against an edited text in original coordinates.

    Only edits whose replaced lines all survive unchanged from the
    original (and whose insertion anchors do) can be rebased; anything
    else raises :class:`EditError` — the caller treats that as a
    verification failure rather than emit a fix it cannot locate.
    """
    back = mapping.back
    if edit.is_insertion:
        # anchor on the first unchanged line at/after the insertion
        # point; past end-of-file anchors after the last mapped line
        for ln in range(edit.start, edited_len + 1):
            if ln in back:
                return SourceEdit(back[ln], back[ln] - 1,
                                  edit.new_lines, edit.note)
        if back:
            tail = max(back.values()) + 1
            return SourceEdit(tail, tail - 1, edit.new_lines, edit.note)
        raise EditError("cannot anchor insertion in original text")
    mapped = [back.get(ln) for ln in range(edit.start, edit.end + 1)]
    if any(m is None for m in mapped):
        raise EditError(
            f"lines [{edit.start}, {edit.end}] were already rewritten by "
            "an earlier fix; cannot rebase"
        )
    lo, hi = mapped[0], mapped[-1]
    if hi - lo != edit.end - edit.start:
        raise EditError("replaced lines are not contiguous in the original")
    return SourceEdit(lo, hi, edit.new_lines, edit.note)

"""MapFix: verified auto-remediation for the static rule catalog.

The analyses (MapFlow/MapRace/MapCost) say *what* is wrong; MapFix
closes the loop and proposes the edit — never heuristically:

* :mod:`.synthesize` — per-rule fixers over the map-op IR + source AST,
  with explicit refusal preconditions (no speculative edits);
* :mod:`.edits` — the line-oriented patch representation shared by the
  sandbox rewrite, the ``--fix-out`` diff files and SARIF ``fixes[]``;
* :mod:`.sandbox` — temp-copy import + full 27-rule re-analysis of
  every candidate;
* :mod:`.engine` — the round-based remediation driver with MapCost
  cost-delta ranking and the instrumented dynamic acceptance gate;
* :mod:`.differential` — the corpus-wide expected-class gate CI runs.
"""

from __future__ import annotations

from .differential import (
    EXPECTED_STATUS,
    FixDifferentialResult,
    fix_differential,
)
from .edits import SourceEdit, apply_edits, render_diff, sarif_replacements
from .engine import AppliedFix, RemediationResult, remediate, write_patches
from .synthesize import (
    FIXABLE_RULES,
    UNFIXABLE_REASONS,
    CandidateFix,
    Refusal,
    synthesize_fixes,
)

__all__ = [
    "AppliedFix",
    "CandidateFix",
    "EXPECTED_STATUS",
    "FIXABLE_RULES",
    "FixDifferentialResult",
    "Refusal",
    "RemediationResult",
    "SourceEdit",
    "UNFIXABLE_REASONS",
    "apply_edits",
    "fix_differential",
    "remediate",
    "render_diff",
    "sarif_replacements",
    "synthesize_fixes",
    "write_patches",
]

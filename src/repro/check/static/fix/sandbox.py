"""Sandboxed re-analysis of candidate fixes.

A candidate edit is never trusted on syntactic grounds: the patched
source is written to a temp file, imported as a sibling module of the
workload's package (so its relative imports resolve), and the rebuilt
workload class is pushed through the *same* extraction + 27-rule static
report + perf lint the original went through — and, at the engine's
request, through the full instrumented dynamic re-run under every
runtime configuration.  A fix is only ever accepted on the strength of
those re-analyses.
"""

from __future__ import annotations

import importlib.util
import itertools
import os
import sys
from dataclasses import dataclass, field
from types import ModuleType
from typing import Callable, List, Optional

from ....workloads.base import Workload
from ...findings import CheckReport, Finding
from ..extract import extract_workload
from ..ir import WorkloadIR

__all__ = ["SandboxError", "SandboxAnalysis", "analyze_instance", "load_patched"]

_counter = itertools.count(1)


class SandboxError(RuntimeError):
    """The patched source failed to import, rebuild or re-extract."""


@dataclass
class SandboxAnalysis:
    """One static+perf analysis of a (possibly patched) workload."""

    findings: List[Finding] = field(default_factory=list)
    ir: Optional[WorkloadIR] = None
    #: builds a fresh workload instance (for dynamic re-runs)
    build: Callable[[], Workload] = None  # type: ignore[assignment]
    aborted: Optional[str] = None

    def fingerprints(self) -> set:
        return {(f.rule_id, f.buffer) for f in self.findings}


def _static_perf_findings(workload: Workload, name: str) -> CheckReport:
    """The full static side: MapFlow + MapRace + MapCost perf lint."""
    from ..cost import perf_report
    from ..rules import static_report

    report = static_report(workload, name)
    perf = perf_report(workload, name)
    report.findings.extend(perf.findings)
    if perf.aborted and report.aborted is None:
        report.aborted = perf.aborted
    return report


def analyze_instance(build: Callable[[], Workload],
                     name: str) -> SandboxAnalysis:
    """Run the static report + extraction over fresh instances."""
    report = _static_perf_findings(build(), name)
    if report.aborted:
        return SandboxAnalysis(findings=list(report.findings), ir=None,
                               build=build, aborted=report.aborted)
    ir = extract_workload(build(), name=name)
    return SandboxAnalysis(
        findings=sorted(report.findings, key=Finding.sort_key),
        ir=ir, build=build,
    )


def _load_module(text: str, origin_module: str, tmpdir: str) -> ModuleType:
    """Import patched source as a sibling of the original's package.

    Naming the temp module ``<package>._mapfix_sandboxN`` makes its
    ``__package__`` the workload's own package, so relative imports in
    the patched source resolve against the installed tree while the
    module body itself comes from the temp file.
    """
    n = next(_counter)
    if "." in origin_module:
        package = origin_module.rsplit(".", 1)[0]
        mod_name = f"{package}._mapfix_sandbox{n}"
    else:
        mod_name = f"_mapfix_sandbox{n}"
    path = os.path.join(tmpdir, f"mapfix_{n}.py")
    with open(path, "w") as fh:
        fh.write(text)
    spec = importlib.util.spec_from_file_location(mod_name, path)
    if spec is None or spec.loader is None:  # pragma: no cover
        raise SandboxError(f"cannot load patched source as {mod_name}")
    module = importlib.util.module_from_spec(spec)
    sys.modules[mod_name] = module
    try:
        spec.loader.exec_module(module)
    except Exception as exc:
        sys.modules.pop(mod_name, None)
        raise SandboxError(f"patched source failed to import: {exc}") from exc
    return module


def load_patched(
    text: str,
    origin_module: str,
    cls_name: str,
    tmpdir: str,
    rebuild: Optional[Callable[[ModuleType], Workload]] = None,
) -> Callable[[], Workload]:
    """Import patched source; return a fresh-instance factory.

    ``rebuild`` customizes instantiation for workload classes that take
    constructor arguments (the porting advisor's profiled apps); the
    default calls the class with no arguments, like the corpus.
    """
    module = _load_module(text, origin_module, tmpdir)
    if rebuild is not None:
        return lambda: rebuild(module)
    try:
        cls = getattr(module, cls_name)
    except AttributeError as exc:
        raise SandboxError(
            f"patched source no longer defines {cls_name!r}"
        ) from exc
    return lambda: cls()

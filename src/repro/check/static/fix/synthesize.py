"""Per-rule fix synthesizers: finding + IR + AST -> candidate edits.

Each synthesizer proposes *mechanical* source edits for one static rule
family, against the same recorded line numbers the extractor attached to
the finding.  The discipline mirrors the analyses' strong-ops-only
false-positive rule: a synthesizer refuses (returns a
:class:`Refusal`, never a guess) whenever the remediation would be
speculative — the owning variable is not a simple name, the construct
sits inside control flow the edit cannot see, or the buffer has several
allocation sites.  Whatever *is* proposed still has to survive sandbox
verification (:mod:`.engine`); nothing here is trusted.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ...findings import Finding
from ..ir import (
    AbstractBuffer,
    Branch,
    EnterOp,
    ExitOp,
    Loop,
    Op,
    OutputOp,
    Seq,
    TargetOp,
    WorkloadIR,
)
from .edits import SourceEdit

__all__ = [
    "CandidateFix",
    "Refusal",
    "FixContext",
    "FIXABLE_RULES",
    "UNFIXABLE_REASONS",
    "synthesize_fixes",
]


@dataclass(frozen=True)
class CandidateFix:
    """One unverified candidate remediation for one finding."""

    rule_id: str
    buffer: str
    kind: str
    description: str
    edits: Tuple[SourceEdit, ...]


@dataclass(frozen=True)
class Refusal:
    """A deliberate non-proposal, with the reason on record."""

    rule_id: str
    buffer: str
    reason: str

    def render(self) -> str:
        tag = f"{self.rule_id} {self.buffer!r}" if self.buffer else self.rule_id
        return f"{tag}: {self.reason}"


#: static rules MapFix cannot mechanically remediate, and why — surfaced
#: verbatim as refusals so "no fix" is always a statement, not silence
UNFIXABLE_REASONS: Dict[str, str] = {
    "MC-S11": "an exit racing an in-flight nowait region needs the region's "
              "completion ordered first — which wait to insert depends on "
              "intent the source does not state",
    "MC-S21": "cross-thread map constructs need a synchronization protocol "
              "(barrier or handle hand-off), not a local edit",
    "MC-W04": "hoisting a declare-target global read requires changing the "
              "kernel's signature to take the value as an argument",
}


@dataclass
class FixContext:
    """Everything a synthesizer may consult about the *current* source."""

    name: str
    ir: WorkloadIR
    path: str                 #: file the line numbers refer to
    lines: List[str]          #: its source lines (no trailing newlines)
    tree: ast.Module

    # -- AST helpers -------------------------------------------------------

    def functions(self) -> List[ast.FunctionDef]:
        return [n for n in ast.walk(self.tree)
                if isinstance(n, ast.FunctionDef)]

    def stmt_lists(self) -> List[List[ast.stmt]]:
        out: List[List[ast.stmt]] = []
        for node in ast.walk(self.tree):
            for attr in ("body", "orelse", "finalbody"):
                block = getattr(node, attr, None)
                if (isinstance(block, list) and block
                        and isinstance(block[0], ast.stmt)):
                    out.append(block)
        return out

    def stmt_at(self, line: int) -> Optional[Tuple[ast.stmt, List[ast.stmt]]]:
        """Innermost statement covering ``line``, with its parent block."""
        best: Optional[Tuple[ast.stmt, List[ast.stmt]]] = None
        for block in self.stmt_lists():
            for stmt in block:
                end = stmt.end_lineno or stmt.lineno
                if stmt.lineno <= line <= end:
                    if best is None or stmt.lineno >= best[0].lineno:
                        best = (stmt, block)
        return best

    def enclosing_function(self, line: int) -> Optional[ast.FunctionDef]:
        best = None
        for fn in self.functions():
            end = fn.end_lineno or fn.lineno
            if fn.lineno <= line <= end and (
                    best is None or fn.lineno > best.lineno):
                best = fn
        return best

    def enclosing_loop(self, line: int):
        best = None
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.For, ast.While)):
                end = node.end_lineno or node.lineno
                if node.lineno <= line <= end and (
                        best is None or node.lineno > best.lineno):
                    best = node
        return best

    def indent(self, line: int) -> str:
        text = self.lines[line - 1]
        return text[: len(text) - len(text.lstrip())]

    def thread_param(self, line: int) -> Optional[str]:
        fn = self.enclosing_function(line)
        if fn is None or not fn.args.args:
            return None
        return fn.args.args[0].arg

    def module_binds(self, name: str) -> bool:
        """Is ``name`` bound at module level (import or assignment)?"""
        for node in self.tree.body:
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    if (alias.asname or alias.name.split(".")[0]) == name:
                        return True
            elif isinstance(node, ast.Assign):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name) and tgt.id == name:
                        return True
        return False

    # -- IR helpers --------------------------------------------------------

    def alloc_sites(self, buffer: str) -> List[AbstractBuffer]:
        return sorted(
            (b for th in self.ir.threads for b in th.buffers.values()
             if b.name == buffer),
            key=lambda b: b.lineno,
        )

    def iter_ops(self):
        def walk(seq: Seq):
            for item in seq.items:
                if isinstance(item, Op):
                    yield item
                elif isinstance(item, Branch):
                    yield from walk(item.then)
                    yield from walk(item.orelse)
                elif isinstance(item, Loop):
                    yield from walk(item.body)

        for th in self.ir.threads:
            yield from walk(th.body)

    def output_reading(self, site: AbstractBuffer) -> Optional[OutputOp]:
        for op in self.iter_ops():
            if isinstance(op, OutputOp) and any(
                    site in ref.sites for ref in op.bufs):
                return op
        return None


def _names_in(node: ast.AST) -> set:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _yield_from_call(stmt: ast.stmt,
                     attrs: Sequence[str]) -> Optional[ast.Call]:
    """Match ``yield from th.<attr>(...)`` (bare or assigned)."""
    if isinstance(stmt, ast.Expr):
        value = stmt.value
    elif isinstance(stmt, ast.Assign):
        value = stmt.value
    else:
        return None
    if not isinstance(value, ast.YieldFrom):
        return None
    call = value.value
    if (isinstance(call, ast.Call)
            and isinstance(call.func, ast.Attribute)
            and call.func.attr in attrs):
        return call
    return None


def _alloc_assignment(
    ctx: FixContext, finding: Finding
) -> Tuple[Optional[AbstractBuffer], Optional[ast.Assign], Optional[str],
           Optional[Refusal]]:
    """Resolve the finding's buffer to its unique ``var = yield from
    th.alloc(...)`` statement; a :class:`Refusal` explains any failure."""

    def refuse(reason: str):
        return None, None, None, Refusal(finding.rule_id, finding.buffer,
                                         reason)

    sites = ctx.alloc_sites(finding.buffer)
    if len(sites) != 1:
        return refuse(
            f"buffer {finding.buffer!r} has {len(sites)} allocation sites; "
            "an edit would need to pick one"
        )
    site = sites[0]
    found = ctx.stmt_at(site.lineno)
    if found is None:
        return refuse("allocation statement not found in source")
    stmt, _block = found
    if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
            and _yield_from_call(stmt, ("alloc",)) is not None):
        return refuse("allocation site is not a plain alloc assignment")
    target = stmt.targets[0]
    if not isinstance(target, ast.Name):
        return refuse(
            "the allocation's owner is not a simple variable — the buffer "
            "escapes through a container/attribute, so any inserted map "
            "construct would alias it speculatively"
        )
    return site, stmt, target.id, None


def _require_clause_names(ctx: FixContext, finding: Finding
                          ) -> Optional[Refusal]:
    for name in ("MapClause", "MapKind"):
        if not ctx.module_binds(name):
            return Refusal(
                finding.rule_id, finding.buffer,
                f"source module does not bind {name!r}; cannot spell the "
                "inserted map construct",
            )
    return None


def _dedent_lines(ctx: FixContext, first: int, last: int,
                  strip: int) -> List[str]:
    out = []
    for ln in range(first, last + 1):
        text = ctx.lines[ln - 1]
        out.append(text[strip:] if text[:strip].strip() == "" else text)
    return out


# ---------------------------------------------------------------------------
# the synthesizers
# ---------------------------------------------------------------------------


def _conditional_op_ids(ir: WorkloadIR) -> set:
    """IDs of ops nested under a :class:`Branch` or :class:`Loop`."""
    out: set = set()

    def walk(seq: Seq, nested: bool) -> None:
        for item in seq.items:
            if isinstance(item, Op):
                if nested:
                    out.add(item.op_id)
            elif isinstance(item, Branch):
                walk(item.then, True)
                walk(item.orelse, True)
            elif isinstance(item, Loop):
                walk(item.body, True)

    for th in ir.threads:
        walk(th.body, False)
    return out


def _fix_drop_exit(finding: Finding, ctx: FixContext
                   ) -> Tuple[List[CandidateFix], List[Refusal]]:
    """MC-S10: delete the map-exit that runs against an absent entry."""
    assert finding.source is not None
    # MC-S10 is a *some-path* rule: if any map construct on this buffer
    # is control-dependent, the underflow exists only on the paths that
    # construct does (not) take — which exit is the redundant one then
    # depends on the path, and deleting either would trade the underflow
    # for a leak on the other path.  Mirroring the strong-ops-only
    # discipline, refuse rather than guess.
    conditional = _conditional_op_ids(ctx.ir)
    for op in ctx.iter_ops():
        if (isinstance(op, (EnterOp, ExitOp)) and op.op_id in conditional
                and any(finding.buffer in {b.name for b in c.buf.sites}
                        for c in op.clauses)):
            return [], [Refusal(
                finding.rule_id, finding.buffer,
                f"a map construct for {finding.buffer!r} at line "
                f"{op.lineno} is control-dependent: removing the flagged "
                "exit is only safe on some paths")]
    found = ctx.stmt_at(finding.source[1])
    if found is None or _yield_from_call(
            found[0], ("target_exit_data",)) is None:
        return [], [Refusal(finding.rule_id, finding.buffer,
                            "flagged line is not a direct target_exit_data "
                            "statement")]
    stmt = found[0]
    edit = SourceEdit(stmt.lineno, stmt.end_lineno or stmt.lineno, (),
                      note=f"drop unmatched map-exit of {finding.buffer!r}")
    return [CandidateFix(
        finding.rule_id, finding.buffer, "drop-exit",
        f"delete the map-exit of {finding.buffer!r} at line "
        f"{stmt.lineno} — no matching enter reaches it on the flagged path",
        (edit,),
    )], []


def _fix_insert_exit(finding: Finding, ctx: FixContext
                     ) -> Tuple[List[CandidateFix], List[Refusal]]:
    """MC-S12: insert the missing ``exit data`` for a leaked mapping."""
    site, assign, var, refusal = _alloc_assignment(ctx, finding)
    if refusal is not None:
        return [], [refusal]
    refusal = _require_clause_names(ctx, finding)
    if refusal is not None:
        return [], [refusal]
    assign_indent = ctx.indent(assign.lineno)
    # last statement (in the allocating function) mentioning the variable
    fn = ctx.enclosing_function(assign.lineno)
    anchor = assign
    for block in ctx.stmt_lists():
        for stmt in block:
            if (fn.lineno <= stmt.lineno <= (fn.end_lineno or fn.lineno)
                    and stmt is not fn and var in _names_in(stmt)
                    and stmt.lineno > anchor.lineno):
                anchor = stmt
    out = ctx.output_reading(site)
    if out is not None and out.lineno:
        # data flows into an application output: exit with ``from`` right
        # before the read so the host sees the device's bytes under Copy
        found = ctx.stmt_at(out.lineno)
        if found is None:
            return [], [Refusal(finding.rule_id, finding.buffer,
                                "output-read statement not found in source")]
        read_stmt = found[0]
        if ctx.indent(read_stmt.lineno) != assign_indent:
            return [], [Refusal(
                finding.rule_id, finding.buffer,
                "the output read sits in nested control flow relative to "
                "the allocation; an inserted exit would not dominate it")]
        kind, where = "FROM", read_stmt.lineno
        edit = SourceEdit(where, where - 1, (
            f"{assign_indent}yield from "
            f"{ctx.thread_param(assign.lineno)}.target_exit_data("
            f"[MapClause({var}, MapKind.{kind})])",
        ), note=f"insert missing exit data ({kind.lower()}) for {var!r}")
        desc = (f"insert `exit data [from: {var}]` before the output read "
                f"at line {where} — releases the mapping and copies the "
                "device bytes back where shadow copies exist")
    else:
        if ctx.indent(anchor.lineno) != assign_indent:
            return [], [Refusal(
                finding.rule_id, finding.buffer,
                "the buffer's last use sits in nested control flow; an "
                "exit inserted after it would be conditional")]
        kind, where = "DELETE", (anchor.end_lineno or anchor.lineno) + 1
        edit = SourceEdit(where, where - 1, (
            f"{assign_indent}yield from "
            f"{ctx.thread_param(assign.lineno)}.target_exit_data("
            f"[MapClause({var}, MapKind.{kind})])",
        ), note=f"insert missing exit data (delete) for {var!r}")
        desc = (f"insert `exit data [delete: {var}]` after the last use at "
                f"line {anchor.end_lineno or anchor.lineno} — releases the "
                "mapping before thread end")
    return [CandidateFix(finding.rule_id, finding.buffer, "insert-exit",
                         desc, (edit,))], []


def _fix_widen_coverage(finding: Finding, ctx: FixContext
                        ) -> Tuple[List[CandidateFix], List[Refusal]]:
    """MC-P10: add the uncovered buffer to the dispatch's map clauses."""
    assert finding.source is not None
    _site, _assign, var, refusal = _alloc_assignment(ctx, finding)
    if refusal is not None:
        return [], [refusal]
    refusal = _require_clause_names(ctx, finding)
    if refusal is not None:
        return [], [refusal]
    found = ctx.stmt_at(finding.source[1])
    call = found and _yield_from_call(found[0], ("target",))
    if not call:
        return [], [Refusal(finding.rule_id, finding.buffer,
                            "flagged line is not a target dispatch")]
    maps_kw = next((kw for kw in call.keywords if kw.arg == "maps"), None)
    if maps_kw is None or not isinstance(maps_kw.value, ast.List):
        return [], [Refusal(
            finding.rule_id, finding.buffer,
            "dispatch has no literal maps= list to widen")]
    lst = maps_kw.value
    if lst.lineno != lst.end_lineno:
        return [], [Refusal(
            finding.rule_id, finding.buffer,
            "maps= list spans multiple lines; widening it mechanically "
            "would mangle formatting")]
    line = ctx.lines[lst.lineno - 1]
    col = lst.end_col_offset - 1          # the closing ']'
    new = (f"{line[:col]}, MapClause({var}, MapKind.TOFROM){line[col:]}"
           if lst.elts else
           f"{line[:col]}MapClause({var}, MapKind.TOFROM){line[col:]}")
    edit = SourceEdit(lst.lineno, lst.lineno, (new,),
                      note=f"map {var!r} tofrom at the dispatch")
    return [CandidateFix(
        finding.rule_id, finding.buffer, "widen-coverage",
        f"add `map(tofrom: {var})` to the dispatch at line "
        f"{finding.source[1]} — covers the raw-pointer touch on every "
        "path", (edit,),
    )], []


def _fix_bind_wait(finding: Finding, ctx: FixContext
                   ) -> Tuple[List[CandidateFix], List[Refusal]]:
    """MC-S22: bind the nowait handle and wait before the output read."""
    assert finding.source is not None
    sites = ctx.alloc_sites(finding.buffer)
    target_op = next(
        (op for op in ctx.iter_ops()
         if isinstance(op, TargetOp) and op.nowait and any(
             any(b in ref.sites for b in sites)
             for ref in tuple(c.buf for c in op.clauses) + op.touches)),
        None,
    )
    if target_op is None or not target_op.lineno:
        return [], [Refusal(finding.rule_id, finding.buffer,
                            "could not locate the nowait dispatch writing "
                            "the buffer")]
    t_found = ctx.stmt_at(target_op.lineno)
    r_found = ctx.stmt_at(finding.source[1])
    if t_found is None or r_found is None:
        return [], [Refusal(finding.rule_id, finding.buffer,
                            "dispatch or read statement not found in source")]
    t_stmt, t_block = t_found
    r_stmt, r_block = r_found
    if t_block is not r_block or t_block.index(t_stmt) >= r_block.index(r_stmt):
        return [], [Refusal(
            finding.rule_id, finding.buffer,
            "the nowait dispatch and the result read are not siblings in "
            "one statement block; the wait's placement would be "
            "speculative")]
    th = ctx.thread_param(t_stmt.lineno)
    edits = []
    if isinstance(t_stmt, ast.Assign) and isinstance(
            t_stmt.targets[0], ast.Name):
        handle = t_stmt.targets[0].id
    else:
        fn = ctx.enclosing_function(t_stmt.lineno)
        used = _names_in(fn) if fn else set()
        handle = "handle" if "handle" not in used else "_mapfix_handle"
        first = ctx.lines[t_stmt.lineno - 1]
        indent = ctx.indent(t_stmt.lineno)
        edits.append(SourceEdit(
            t_stmt.lineno, t_stmt.lineno,
            (f"{indent}{handle} = {first.lstrip()}",),
            note=f"bind the nowait completion handle as {handle!r}",
        ))
    edits.append(SourceEdit(
        r_stmt.lineno, r_stmt.lineno - 1,
        (f"{ctx.indent(r_stmt.lineno)}yield from {th}.wait({handle})",),
        note="wait on the kernel before reading its result",
    ))
    return [CandidateFix(
        finding.rule_id, finding.buffer, "bind-wait",
        f"bind the nowait dispatch's completion handle and wait on it "
        f"before the result read at line {r_stmt.lineno}", tuple(edits),
    )], []


def _fix_move_wait(finding: Finding, ctx: FixContext
                   ) -> Tuple[List[CandidateFix], List[Refusal]]:
    """MC-S20: move the existing wait above the racing host write."""
    assert finding.source is not None
    w_found = ctx.stmt_at(finding.source[1])
    if w_found is None:
        return [], [Refusal(finding.rule_id, finding.buffer,
                            "host-write statement not found in source")]
    write_stmt, block = w_found
    w_idx = block.index(write_stmt)
    wait_stmt = wait_call = None
    for stmt in block[w_idx + 1:]:
        call = _yield_from_call(stmt, ("wait",))
        if call is not None and isinstance(stmt, ast.Expr):
            wait_stmt, wait_call = stmt, call
            break
    if wait_stmt is None:
        return [], [Refusal(
            finding.rule_id, finding.buffer,
            "no wait on the racing kernel's completion handle is visible "
            "in the writing thread's block — ordering it would require a "
            "cross-thread protocol")]
    if not (wait_call.args and isinstance(wait_call.args[0], ast.Name)):
        return [], [Refusal(finding.rule_id, finding.buffer,
                            "the wait's handle operand is not a simple "
                            "variable")]
    handle = wait_call.args[0].id
    bound = any(
        isinstance(s, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == handle for t in s.targets)
        for s in block[:w_idx]
    )
    if not bound:
        return [], [Refusal(finding.rule_id, finding.buffer,
                            "the waited handle is not bound before the "
                            "host write in this block")]
    indent = ctx.indent(write_stmt.lineno)
    edits = (
        SourceEdit(write_stmt.lineno, write_stmt.lineno - 1,
                   (ctx.lines[wait_stmt.lineno - 1]
                    if ctx.indent(wait_stmt.lineno) == indent else
                    f"{indent}yield from "
                    f"{ctx.thread_param(write_stmt.lineno)}.wait({handle})",),
                   note="wait for the reading kernel first"),
        SourceEdit(wait_stmt.lineno, wait_stmt.end_lineno or wait_stmt.lineno,
                   (), note="original wait moved above the host write"),
    )
    return [CandidateFix(
        finding.rule_id, finding.buffer, "move-wait",
        f"move the wait on {handle!r} above the host write at line "
        f"{write_stmt.lineno} so the kernel's read completes first",
        edits,
    )], []


def _hoist_loop_pair(finding: Finding, ctx: FixContext, kind: str,
                     first_attr: Tuple[str, ...],
                     last_attr: Tuple[str, ...],
                     desc: str) -> Tuple[List[CandidateFix], List[Refusal]]:
    loop = ctx.enclosing_loop(finding.source[1])
    if loop is None or getattr(loop, "orelse", None):
        return [], [Refusal(finding.rule_id, finding.buffer,
                            "flagged construct is not inside a plain loop")]
    first, last = loop.body[0], loop.body[-1]
    if first is last or _yield_from_call(first, first_attr) is None \
            or _yield_from_call(last, last_attr) is None:
        return [], [Refusal(
            finding.rule_id, finding.buffer,
            f"the {'/'.join(first_attr + last_attr)} pair does not bracket "
            "the loop body; iterations are not interchangeable under a "
            "mechanical hoist")]
    loop_indent, body_indent = ctx.indent(loop.lineno), ctx.indent(first.lineno)
    strip = len(body_indent) - len(loop_indent)
    if strip <= 0:
        return [], [Refusal(finding.rule_id, finding.buffer,
                            "could not compute the loop body's indent")]
    new_lines = (
        _dedent_lines(ctx, first.lineno, first.end_lineno or first.lineno,
                      strip)
        + ctx.lines[loop.lineno - 1 : first.lineno - 1]     # loop header
        + ctx.lines[(first.end_lineno or first.lineno) : last.lineno - 1]
        + _dedent_lines(ctx, last.lineno, last.end_lineno or last.lineno,
                        strip)
    )
    edit = SourceEdit(loop.lineno, loop.end_lineno or loop.lineno,
                      tuple(new_lines), note=desc)
    return [CandidateFix(
        finding.rule_id, finding.buffer, kind,
        f"{desc} (loop at line {loop.lineno})", (edit,),
    )], []


def _fix_hoist_map_pair(finding: Finding, ctx: FixContext
                        ) -> Tuple[List[CandidateFix], List[Refusal]]:
    """MC-W01: hoist the loop-invariant enter/exit pair out of the loop."""
    return _hoist_loop_pair(
        finding, ctx, "hoist-map-pair",
        ("target_enter_data",), ("target_exit_data",),
        f"hoist the enter/exit pair for {finding.buffer!r} out of the hot "
        "loop — one mapping outlives all iterations",
    )


def _fix_hoist_alloc(finding: Finding, ctx: FixContext
                     ) -> Tuple[List[CandidateFix], List[Refusal]]:
    """MC-W03: hoist the per-iteration alloc/free out of the loop."""
    return _hoist_loop_pair(
        finding, ctx, "hoist-alloc",
        ("alloc",), ("free",),
        f"hoist the allocation of {finding.buffer!r} out of the hot loop — "
        "pages fault once instead of every iteration",
    )


def _fix_demote_to_alloc(finding: Finding, ctx: FixContext
                         ) -> Tuple[List[CandidateFix], List[Refusal]]:
    """MC-W02: demote the redundant non-always ``to`` map to ``alloc``."""
    assert finding.source is not None
    found = ctx.stmt_at(finding.source[1])
    if found is None:
        return [], [Refusal(finding.rule_id, finding.buffer,
                            "flagged statement not found in source")]
    stmt = found[0]
    hits = [
        node for node in ast.walk(stmt)
        if isinstance(node, ast.Attribute) and node.attr == "TO"
        and isinstance(node.value, ast.Name) and node.value.id == "MapKind"
    ]
    if len(hits) != 1:
        return [], [Refusal(
            finding.rule_id, finding.buffer,
            f"expected exactly one MapKind.TO clause on the flagged "
            f"statement, found {len(hits)}")]
    attr = hits[0]
    if attr.lineno != attr.end_lineno:
        return [], [Refusal(finding.rule_id, finding.buffer,
                            "clause kind spans lines")]
    line = ctx.lines[attr.lineno - 1]
    new = line[: attr.col_offset] + "MapKind.ALLOC" + line[attr.end_col_offset:]
    edit = SourceEdit(attr.lineno, attr.lineno, (new,),
                      note=f"demote redundant 'to' of {finding.buffer!r}")
    return [CandidateFix(
        finding.rule_id, finding.buffer, "demote-to-alloc",
        f"replace the redundant `to` map of {finding.buffer!r} at line "
        f"{attr.lineno} with `alloc` — the buffer is already present, the "
        "copy intent is dead", (edit,),
    )], []


def _fix_drop_update(finding: Finding, ctx: FixContext
                     ) -> Tuple[List[CandidateFix], List[Refusal]]:
    """MC-W05: delete the no-op ``target update``."""
    assert finding.source is not None
    found = ctx.stmt_at(finding.source[1])
    if found is None or _yield_from_call(
            found[0], ("target_update",)) is None:
        return [], [Refusal(finding.rule_id, finding.buffer,
                            "flagged line is not a target_update statement")]
    stmt = found[0]
    edit = SourceEdit(stmt.lineno, stmt.end_lineno or stmt.lineno, (),
                      note=f"drop no-op update of {finding.buffer!r}")
    return [CandidateFix(
        finding.rule_id, finding.buffer, "drop-update",
        f"delete the `target update` of {finding.buffer!r} at line "
        f"{stmt.lineno} — the mapping already shares the bytes under every "
        "zero-copy configuration", (edit,),
    )], []


_FIXERS: Dict[str, Callable[[Finding, FixContext],
                            Tuple[List[CandidateFix], List[Refusal]]]] = {
    "MC-S10": _fix_drop_exit,
    "MC-S12": _fix_insert_exit,
    "MC-P10": _fix_widen_coverage,
    "MC-S20": _fix_move_wait,
    "MC-S22": _fix_bind_wait,
    "MC-W01": _fix_hoist_map_pair,
    "MC-W02": _fix_demote_to_alloc,
    "MC-W03": _fix_hoist_alloc,
    "MC-W05": _fix_drop_update,
}

#: rules a synthesizer exists for (README's "fixable" column)
FIXABLE_RULES = frozenset(_FIXERS)


def synthesize_fixes(finding: Finding, ctx: FixContext
                     ) -> Tuple[List[CandidateFix], List[Refusal]]:
    """Candidate fixes (and refusals) for one located static finding."""
    if finding.rule_id in UNFIXABLE_REASONS:
        return [], [Refusal(finding.rule_id, finding.buffer,
                            UNFIXABLE_REASONS[finding.rule_id])]
    fixer = _FIXERS.get(finding.rule_id)
    if fixer is None:
        return [], [Refusal(finding.rule_id, finding.buffer,
                            "no synthesizer registered for this rule")]
    if finding.source is None:
        return [], [Refusal(finding.rule_id, finding.buffer,
                            "finding carries no source location")]
    try:
        return fixer(finding, ctx)
    except (ValueError, IndexError, AttributeError) as exc:
        return [], [Refusal(finding.rule_id, finding.buffer,
                            f"synthesis failed: {exc}")]

"""Corpus-wide fix differential: the MapFix acceptance gate.

Runs :func:`~.engine.remediate` over the whole faulty corpus (CORPUS +
PERF_CORPUS) and checks every workload lands in its *expected* class:

* ``fixed`` — at least one verified fix, statically clean afterwards,
  and the instrumented dynamic re-run under the formerly-breaking
  configurations is clean too;
* ``partial`` — fixes verified, but residual findings outside MapFix's
  mechanical scope remain (and the dynamic re-run did not regress);
* ``unfixable`` — zero proposed fixes, either by synthesis refusal, by
  sandbox rejection of every candidate, or by the dynamic gate; the two
  deliberately ambiguous corpus workloads *must* land here with zero
  proposals — a speculative edit on them fails the differential;
* ``clean`` — no static findings for MapFix to act on (dynamic-only
  defect families).

The expectations are pinned per workload, so a synthesizer that starts
guessing (or stops fixing) fails CI, exactly like the static/dynamic
and race differentials that precede this one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ...corpus import CORPUS, PERF_CORPUS
from .engine import RemediationResult, remediate

__all__ = ["EXPECTED_STATUS", "FixDifferentialResult", "fix_differential"]

#: corpus short name -> expected remediation class (dynamic gate on)
EXPECTED_STATUS: Dict[str, str] = {
    # CORPUS — one canonical correctness defect each
    "missing-map": "fixed",          # widen-coverage at the dispatch
    "missing-from": "clean",         # dynamic-only family (MC-P02)
    "stale-global": "clean",         # dynamic-only family (MC-P03)
    "leak": "fixed",                 # insert the missing exit data
    "double-unmap": "fixed",         # drop the second exit
    "underflow": "unfixable",        # statically plausible fix is rejected
                                     # by the dynamic gate: the refcount
                                     # corruption is invisible to the IR
    "always-misuse": "partial",      # the leaked mapping is fixed; the
                                     # 'always' misuse is dynamic-only
    "use-after-unmap": "unfixable",  # MC-S11/MC-S21: cross-thread intent
    "map-race": "partial",           # the redundant re-map is demoted;
                                     # the MC-S21 race needs a protocol
    "host-write-race": "fixed",      # move the wait above the write
    "nowait-result": "fixed",        # two rounds: bind+wait, then exit
    "exit-exit-race": "partial",     # as map-race
    "cross-thread-host-write": "unfixable",  # no wait visible to writer
    "ambiguous-release": "unfixable",        # removal only safe on some
                                             # paths: synthesis refuses
                                             # (control-dependent exit)
    "escaped-buffer-leak": "unfixable",      # owner is not a simple name:
                                             # synthesis refuses outright
    # PERF_CORPUS — dynamically clean, expensive patterns
    "map-churn": "fixed",
    "redundant-map": "fixed",
    "fault-storm": "fixed",
    "global-indirection": "unfixable",       # MC-W04 needs an API change
    "noop-update": "fixed",
}

#: workloads that must receive *zero* proposed fixes (no speculative
#: edits) — the satellite-2 pin plus the dynamic-gate rejection case
ZERO_FIX_EXPECTED = frozenset({
    "underflow", "use-after-unmap", "cross-thread-host-write",
    "ambiguous-release", "escaped-buffer-leak", "global-indirection",
})


@dataclass
class FixDifferentialResult:
    results: Dict[str, RemediationResult] = field(default_factory=dict)
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "mismatches": list(self.mismatches),
            "expected": dict(EXPECTED_STATUS),
            "workloads": {
                name: res.to_dict() for name, res in self.results.items()
            },
        }

    def render(self) -> str:
        lines = [
            f"{'workload':<26}{'status':<11}{'expected':<11}"
            f"{'fixes':>6}  dynamic",
            "-" * 78,
        ]
        for name, res in self.results.items():
            lines.append(
                f"{name:<26}{res.status:<11}"
                f"{EXPECTED_STATUS.get(name, '?'):<11}"
                f"{len(res.fixes):>6}  {res.dynamic or '-'}"
            )
        lines.append("-" * 78)
        if self.mismatches:
            lines.append(f"FIX DIFFERENTIAL FAILED "
                         f"({len(self.mismatches)} mismatch(es)):")
            lines.extend(f"  {m}" for m in self.mismatches)
        else:
            n_fixes = sum(len(r.fixes) for r in self.results.values())
            lines.append(
                f"fix differential OK: {n_fixes} verified fix(es) across "
                f"{len(self.results)} corpus workloads, every class as "
                "expected")
        return "\n".join(lines)


def fix_differential(
    *,
    dynamic: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> FixDifferentialResult:
    """Remediate the whole corpus and gate against the expected classes.

    With ``dynamic=False`` only the static verdicts are checked (the
    dynamic-gate-dependent workloads are exempted from class matching);
    CI runs the full dynamic gate.
    """
    out = FixDifferentialResult()
    entries = {**CORPUS, **PERF_CORPUS}
    for name, cls in entries.items():
        if progress is not None:
            progress(f"mapfix {name}")
        res = remediate(cls, cls().name, dynamic=dynamic)
        out.results[name] = res
        expected = EXPECTED_STATUS.get(name)
        if expected is None:
            out.mismatches.append(f"{name}: no expected class recorded — "
                                  "extend EXPECTED_STATUS")
            continue
        if not dynamic and expected in ("fixed", "partial", "unfixable"):
            # without the dynamic gate only the zero-fix pins stay exact
            if name in ZERO_FIX_EXPECTED and name not in (
                    "underflow",) and res.fixes:
                out.mismatches.append(
                    f"{name}: proposed {len(res.fixes)} fix(es) but must "
                    "refuse")
            continue
        if res.status != expected:
            out.mismatches.append(
                f"{name}: status {res.status!r}, expected {expected!r}")
        if expected == "fixed":
            if not res.fixes:
                out.mismatches.append(f"{name}: expected >=1 verified fix")
            if res.residual:
                out.mismatches.append(
                    f"{name}: residual findings after remediation: "
                    + ", ".join(res.residual))
        if name in ZERO_FIX_EXPECTED and res.fixes:
            out.mismatches.append(
                f"{name}: proposed {len(res.fixes)} fix(es) but must refuse "
                "(speculative edit)")
        for fix in res.fixes:
            if set(fix.cost_delta) != {c.value for c in _all_configs()}:
                out.mismatches.append(
                    f"{name}: fix {fix.kind} lacks a per-config cost delta")
            if not fix.edits:
                out.mismatches.append(
                    f"{name}: fix {fix.kind} carries no edits")
    return out


def _all_configs():
    from ....core.config import ALL_CONFIGS

    return ALL_CONFIGS

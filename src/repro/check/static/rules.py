"""Turn raw MapFlow interpreter defects into MapCheck findings.

This is the config-parametric half of the analysis: the interpreter
(:mod:`~.interp`) decides *whether* a defect exists on some/every path;
this module decides *under which runtime configurations it bites*, by
evaluating a per-defect-kind break predicate against each
configuration's semantics (XNACK servicing, shadow copies).  The
resulting ``breaks_under``/``passes_under`` matrices are — by
construction and frozen by the registry snapshot test — identical to
the matrices the dynamic analyses attach to the same defect families.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ...core.config import ALL_CONFIGS, RuntimeConfig, ZERO_COPY_CONFIGS
from ...workloads.base import Fidelity, Workload
from ..findings import CheckReport, Finding
from ..registry import dynamic_counterparts, make_workload
from .extract import ExtractionError, extract_workload
from .interp import Defect, InterpResult, analyze_ir
from .ir import AbstractBuffer, Branch, Loop, Op, Seq, WorkloadIR

__all__ = [
    "ConfigSemantics",
    "SEMANTICS",
    "static_matrix",
    "static_report",
    "analyze_factory",
    "analyze_named",
]


@dataclass(frozen=True)
class ConfigSemantics:
    """The three facts about a runtime configuration the static rules
    depend on (the dynamic analyses consult the same ones)."""

    config: RuntimeConfig
    #: XNACK page-fault servicing makes stray device touches of host
    #: memory *work* instead of crash (paper §IV.C)
    xnack: bool
    #: the configuration materializes device shadow copies, so a leaked
    #: present-table entry pins real device memory
    shadow_copies: bool
    #: GPU declare-target globals are pointers into host memory, so
    #: every device access double-indirects (USM only)
    pointer_globals: bool = False


SEMANTICS: Dict[RuntimeConfig, ConfigSemantics] = {
    cfg: ConfigSemantics(
        config=cfg,
        xnack=cfg in (RuntimeConfig.UNIFIED_SHARED_MEMORY,
                      RuntimeConfig.IMPLICIT_ZERO_COPY),
        shadow_copies=cfg not in ZERO_COPY_CONFIGS,
        pointer_globals=cfg.globals_as_pointer,
    )
    for cfg in ALL_CONFIGS
}

#: defect kind -> (rule id, break predicate over one config's semantics)
_KIND_RULES: Dict[str, Tuple[str, Callable[[ConfigSemantics], bool]]] = {
    # an underflowing exit corrupts the present table in every runtime —
    # refcount bookkeeping exists under zero-copy too
    "underflow": ("MC-S10", lambda s: True),
    # destroying a mapping out from under an in-flight region is a
    # use-after-free of runtime metadata regardless of configuration
    "inflight": ("MC-S11", lambda s: True),
    # a leaked entry only pins memory where a shadow copy exists
    "leak": ("MC-S12", lambda s: s.shadow_copies),
    # an uncovered raw-pointer touch is serviced by XNACK or nothing
    "uncovered": ("MC-P10", lambda s: not s.xnack),
}


def static_matrix(
    kind: str,
) -> Tuple[Tuple[RuntimeConfig, ...], Tuple[RuntimeConfig, ...]]:
    """``(breaks_under, passes_under)`` for a defect kind, derived by
    evaluating its break predicate per configuration."""
    _rule_id, breaks = _KIND_RULES[kind]
    breaks_under = tuple(c for c in ALL_CONFIGS if breaks(SEMANTICS[c]))
    passes_under = tuple(c for c in ALL_CONFIGS if not breaks(SEMANTICS[c]))
    return breaks_under, passes_under


# ---------------------------------------------------------------------------
# finding construction
# ---------------------------------------------------------------------------

_REPRO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))  # .../src/repro
_SRC_ROOT = os.path.dirname(_REPRO_ROOT)  # .../src


def _relative_source(path: str) -> str:
    if path and os.path.isabs(path):
        try:
            rel = os.path.relpath(path, _SRC_ROOT)
        except ValueError:  # pragma: no cover - windows cross-drive
            return path
        if not rel.startswith(".."):
            return rel
    return path


def _xref(rule_id: str) -> str:
    dyn = dynamic_counterparts(rule_id)
    if not dyn:  # pragma: no cover - every static rule has counterparts
        return ""
    return f" [dynamic counterpart{'s' if len(dyn) > 1 else ''}: {', '.join(dyn)}]"


def _message(defect: Defect) -> str:
    name = defect.site.name
    if defect.kind == "underflow":
        core = (
            f"a path exists on which {defect.context or 'a map-exit'} of "
            f"{name!r} runs while its present-table entry is definitely "
            "absent (refcount 0): double unmap or exit without a matching "
            "enter"
        )
    elif defect.kind == "inflight":
        core = (
            f"a map-exit can destroy the mapping of {name!r} while "
            f"{defect.context or 'a nowait target region'}"
        )
    elif defect.kind == "leak":
        core = (
            f"{name!r} is {defect.context or 'still mapped at thread end'}"
        )
    else:  # uncovered
        kernel = f" by kernel {defect.context!r}" if defect.context else ""
        core = (
            f"raw-pointer touch of {name!r}{kernel} is covered by no live "
            "map entry or target map clause on any path to the dispatch"
        )
    rule_id, _ = _KIND_RULES[defect.kind]
    return core + _xref(rule_id)


def _findings_from(result: InterpResult, workload_name: str) -> List[Finding]:
    # one finding per (rule, site); further occurrences -> `related`
    grouped: Dict[Tuple[str, AbstractBuffer], List[Defect]] = {}
    for defect in result.defects:
        rule_id, _ = _KIND_RULES[defect.kind]
        grouped.setdefault((rule_id, defect.site), []).append(defect)
    source = _relative_source(result.ir.source_file)
    findings: List[Finding] = []
    for (rule_id, site), defects in sorted(
        grouped.items(), key=lambda kv: (kv[0][0], kv[0][1].site)
    ):
        defects = sorted(defects, key=lambda d: (d.lineno, d.op_id))
        primary = defects[0]
        breaks_under, passes_under = static_matrix(primary.kind)
        related = tuple(
            f"line {d.lineno} (tid {d.tid})" for d in defects[1:]
        )
        findings.append(Finding(
            rule_id=rule_id,
            buffer=site.name,
            workload=workload_name,
            message=_message(primary),
            tid=primary.tid,
            breaks_under=breaks_under,
            passes_under=passes_under,
            related=related,
            source=(source, primary.lineno or site.lineno)
            if source else None,
        ))
    return findings


def _count_ops(ir: WorkloadIR) -> int:
    def walk(seq: Seq) -> int:
        n = 0
        for item in seq.items:
            if isinstance(item, Op):
                n += 1
            elif isinstance(item, Branch):
                n += walk(item.then) + walk(item.orelse)
            elif isinstance(item, Loop):
                n += walk(item.body)
        return n

    return sum(walk(t.body) for t in ir.threads)


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------


def static_report(workload: Workload, name: str = "") -> CheckReport:
    """Extract, interpret and rule-map one workload instance.

    Pure static path: no :class:`~repro.core.system.ApuSystem` is
    instantiated and no simulation event is emitted — the workload
    object is only used as a constant environment for partial
    evaluation of its thread-body source.
    """
    wname = name or getattr(workload, "name", type(workload).__name__)
    fidelity = getattr(workload, "fidelity", None)
    report = CheckReport(
        workload=wname,
        fidelity=fidelity.value if fidelity is not None else "?",
    )
    try:
        ir = extract_workload(workload, name=wname)
    except ExtractionError as exc:
        report.aborted = f"static extraction failed: {exc}"
        return report
    result = analyze_ir(ir)
    report.findings = _findings_from(result, wname)
    # MapRace rides the same extraction: MHP race findings (MC-S20/21/22)
    # join the dataflow findings so `check --static`, the differentials,
    # SARIF and CI all see one static report (local import: race.rules
    # imports ConfigSemantics from this module)
    from .race.rules import race_findings

    race = race_findings(ir)
    for f in race:
        f.workload = wname
    report.findings.extend(race)
    report.stats = {
        "static_threads": len(ir.threads),
        "static_ops": _count_ops(ir),
        "static_states": result.states_explored,
        "static_imprecision": len(ir.imprecision),
        "static_race_findings": len(race),
    }
    return report


def analyze_factory(
    factory: Callable[[], Workload], name: Optional[str] = None
) -> CheckReport:
    """Static-analyze the workload a factory produces."""
    workload = factory()
    return static_report(workload, name or workload.name)


def analyze_named(
    name: str, fidelity: Fidelity = Fidelity.TEST
) -> CheckReport:
    """Static-analyze one bundled workload by registry name."""
    return static_report(make_workload(name, fidelity), name)

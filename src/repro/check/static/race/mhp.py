"""May-happen-in-parallel dataflow over the per-thread CFGs.

One forward fixpoint per thread over the CFG :func:`~..cfg.build_cfg`
produces, computing at every block entry a single joined sync state:

* the barrier **phase interval** (how many ``GlobalSyncOp`` barriers
  this thread has passed — widened to unbounded when a barrier sits in
  a loop),
* the **may-set of in-flight nowait handles** (union at joins, exactly
  the abstract interpreter's in-flight discipline: a wait subtracts the
  handles it names, an unresolvable wait clears everything),
* the **must-set of completed handles** (intersection at joins) — the
  wait edges that suppress cross-thread pairs.

A second pass over the stabilized states collects the
:class:`~.model.Access` and :class:`~.model.KernelFlight` records the
rules intersect.  Joining only widens phase intervals and in-flight
sets, so imprecision can add MHP *candidate* pairs but never remove a
wait edge that does not exist — and candidate pairs still need a
conflicting access on a shared allocation site to become findings.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from ..cfg import build_cfg
from ..ir import (
    EnterOp,
    ExitOp,
    GlobalSyncOp,
    HostWriteOp,
    OutputOp,
    TargetOp,
    ThreadProgram,
    WaitOp,
)
from .model import Access, KernelFlight, PhaseInterval, ThreadAccesses

__all__ = ["analyze_thread", "mhp"]

#: joins a block tolerates before its phase upper bound is widened to
#: unbounded (a barrier inside a loop would otherwise grow hi forever)
_WIDEN_AFTER = 4

#: (phase, inflight-may, completed-must)
_State = Tuple[PhaseInterval, FrozenSet[int], FrozenSet[int]]


def _join(a: _State, b: _State) -> _State:
    return (a[0].join(b[0]), a[1] | b[1], a[2] & b[2])


def _transfer(state: _State, op) -> _State:
    phase, inflight, completed = state
    if isinstance(op, GlobalSyncOp):
        return phase.bump(), inflight, completed
    if isinstance(op, TargetOp) and op.nowait and op.handle_id is not None:
        return phase, inflight | {op.handle_id}, completed
    if isinstance(op, WaitOp):
        done = inflight if op.unknown else inflight & op.handle_ids
        named = done if op.unknown else frozenset(op.handle_ids)
        return phase, inflight - done, completed | named
    return state


class _ThreadMHP:
    def __init__(self, program: ThreadProgram):
        self.program = program
        self.cfg = build_cfg(program)

    # -- fixpoint over block-entry states --------------------------------
    def _fixpoint(self) -> Dict[int, _State]:
        entry: Dict[int, _State] = {}
        updates: Dict[int, int] = {}
        init: _State = (PhaseInterval(), frozenset(), frozenset())
        blocks = {b.bid: b for b in self.cfg.blocks}
        entry[self.cfg.entry.bid] = init
        work: List[int] = [self.cfg.entry.bid]
        self._explored = 0
        while work:
            bid = work.pop()
            self._explored += 1
            state = entry[bid]
            for op in blocks[bid].ops:
                state = _transfer(state, op)
            for succ in blocks[bid].succs:
                old = entry.get(succ.bid)
                new = state if old is None else _join(old, state)
                if old is not None:
                    updates[succ.bid] = updates.get(succ.bid, 0) + 1
                    if updates[succ.bid] > _WIDEN_AFTER:
                        new = (new[0].widen(), new[1], new[2])
                if new != old:
                    entry[succ.bid] = new
                    work.append(succ.bid)
        return entry

    # -- collection over the stabilized states ---------------------------
    def run(self) -> ThreadAccesses:
        entry = self._fixpoint()
        out = ThreadAccesses(tid=self.program.tid,
                             states_explored=self._explored)
        launches: List[Tuple[TargetOp, PhaseInterval]] = []
        waits: Dict[int, PhaseInterval] = {}
        for block in self.cfg.blocks:
            if block.bid not in entry:
                continue  # unreachable (e.g. code after a return)
            state = entry[block.bid]
            for op in block.ops:
                self._collect(op, state, out, launches, waits)
                state = _transfer(state, op)
        end_phase = entry.get(self.cfg.exit.bid,
                              (PhaseInterval().widen(),))[0]
        for op, launch in launches:
            out.flights.append(self._flight(op, launch, waits, end_phase))
        return out

    def _collect(self, op, state: _State, out: ThreadAccesses,
                 launches, waits: Dict[int, PhaseInterval]) -> None:
        phase, inflight, completed = state
        tid = self.program.tid

        def access(kind: str, ref, context: str = "") -> None:
            if ref is None or not ref.strong:
                return  # weak/unknown operand: never report through it
            out.accesses.append(Access(
                kind=kind, ref=ref, tid=tid, lineno=op.lineno,
                op_id=op.op_id, phase=phase, inflight=inflight,
                completed=completed, context=context,
            ))

        if isinstance(op, EnterOp):
            for clause in op.clauses:
                access("map_enter", clause.buf)
        elif isinstance(op, ExitOp):
            for clause in op.clauses:
                access("map_exit", clause.buf)
        elif isinstance(op, HostWriteOp):
            access("host_write", op.buf)
        elif isinstance(op, OutputOp):
            for ref in op.bufs:
                access("output_read", ref, context=op.key or "")
        elif isinstance(op, TargetOp):
            launches.append((op, phase))
        elif isinstance(op, WaitOp):
            done = inflight if op.unknown else inflight & op.handle_ids
            for hid in done:
                waits[hid] = waits[hid].join(phase) if hid in waits else phase

    def _flight(self, op: TargetOp, launch: PhaseInterval,
                waits: Dict[int, PhaseInterval],
                end_phase: PhaseInterval) -> KernelFlight:
        reads = tuple(c.buf for c in op.clauses) + tuple(op.touches)
        writes = tuple(
            c.buf for c in op.clauses
            if c.kind is not None and c.kind.copies_to_host
        ) + tuple(op.touches)
        if op.nowait and op.handle_id is not None:
            end = waits.get(op.handle_id, end_phase)
            span = launch.join(end)
        else:
            span = launch  # synchronous: flight contained at the op
        return KernelFlight(
            kernel=op.kernel, tid=self.program.tid, lineno=op.lineno,
            op_id=op.op_id, launch=launch, span=span,
            reads=reads, writes=writes,
            handle_id=op.handle_id if op.nowait else None,
            nowait=op.nowait,
        )


def analyze_thread(program: ThreadProgram) -> ThreadAccesses:
    """Run the MHP dataflow over one thread and collect its accesses."""
    return _ThreadMHP(program).run()


def mhp(a_phase: PhaseInterval, b_phase: PhaseInterval) -> bool:
    """Cross-thread may-happen-in-parallel: barrier phases overlap.

    The k-th ``GlobalSyncOp`` of every thread is modeled as one aligned
    barrier, so disjoint phase intervals are ordered by a barrier
    crossing and cannot race; anything else may interleave.
    """
    return a_phase.overlaps(b_phase)

"""MapRace: static may-happen-in-parallel race analysis.

The dynamic race detector (:mod:`repro.check.races`) needs a full
instrumented simulation to observe a race window in the trace; MapRace
proves the same hazards from the MapFlow IR alone.  A happens-before
abstraction over the extracted synchronization ops — ``WaitOp``
completion edges for nowait regions, ``GlobalSyncOp`` barrier phase
alignment across threads, intra-thread program order — yields
may-happen-in-parallel region pairs, which are then intersected with
buffer access summaries (host writes, kernel reads/writes, map
enter/exit mutations) over shared allocation sites.

Pipeline::

    MapFlow IR ──cfg──▶ per-thread sync dataflow   (mhp.py / model.py)
                 MHP pairs x access summaries      (rules.py)
                 findings MC-S20/S21/S22           (rules.py)

and a static-vs-dynamic race differential (differential.py) validates
recall on the faulty corpus and zero false positives on every clean
workload under all four configurations.
"""

from __future__ import annotations

from .differential import (
    RaceCell,
    RaceDifferentialResult,
    race_differential,
)
from .mhp import analyze_thread, mhp
from .model import Access, KernelFlight, PhaseInterval, ThreadAccesses
from .rules import RACE_RULE_IDS, race_findings, race_matrix, race_report

__all__ = [
    "Access",
    "KernelFlight",
    "PhaseInterval",
    "RACE_RULE_IDS",
    "RaceCell",
    "RaceDifferentialResult",
    "ThreadAccesses",
    "analyze_thread",
    "mhp",
    "race_differential",
    "race_findings",
    "race_matrix",
    "race_report",
]

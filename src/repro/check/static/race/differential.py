"""Static-race-vs-dynamic-detector differential: MapRace's validation.

Two sides, in the established MapFlow/MapCost style:

* **Recall** (faulty corpus): every finding the *dynamic* race detector
  (MC-R01/MC-R02) emits on :data:`repro.check.corpus.CORPUS` must be
  matched by a static finding with the same family and buffer — the
  MHP analysis sees, without simulating, every race the instrumented
  trace exhibited.
* **Precision** (clean registry, per configuration): zero static race
  findings on every clean bundled workload under each of the four
  runtime configurations — one cell per ``(workload, config)`` pair,
  where a cell fails if any race finding exists at all (and, belt and
  braces, if any claims to break under that cell's configuration).

The static phase of both sides runs with ``ApuSystem.__init__``
poisoned (the guard shared with the MapFlow differential), so a single
simulation event fails the harness loudly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ....core.config import ALL_CONFIGS, RuntimeConfig
from ....workloads.base import Fidelity
from ...corpus import CORPUS
from ...findings import Finding, RULES
from ..differential import _forbid_simulation
from ..rules import static_report

__all__ = ["RaceCell", "RaceDifferentialResult", "race_differential"]

#: the dynamic race rules the recall side must answer statically
_DYNAMIC_RACE_RULES = ("MC-R01", "MC-R02")


@dataclass(frozen=True)
class RaceMatch:
    """One dynamic race finding and how the static side answered it."""

    corpus_name: str
    dynamic_rule: str
    buffer: str
    family: str
    static_rule: Optional[str]

    @property
    def matched(self) -> bool:
        return self.static_rule is not None


@dataclass(frozen=True)
class RaceCell:
    """Static race findings for one clean ``(workload, config)`` cell."""

    workload: str
    config: RuntimeConfig
    findings: int                 #: any static race finding = failure
    breaking_here: int            #: findings whose matrix breaks this cell

    @property
    def ok(self) -> bool:
        return self.findings == 0


@dataclass
class RaceDifferentialResult:
    records: List[RaceMatch] = field(default_factory=list)
    cells: List[RaceCell] = field(default_factory=list)
    #: workload name -> static extraction/analysis abort message
    aborts: Dict[str, str] = field(default_factory=dict)

    @property
    def unmatched(self) -> List[RaceMatch]:
        return [r for r in self.records if not r.matched]

    @property
    def false_positive_cells(self) -> List[RaceCell]:
        return [c for c in self.cells if not c.ok]

    @property
    def ok(self) -> bool:
        return (not self.unmatched and not self.false_positive_cells
                and not self.aborts)

    def render(self) -> str:
        lines = ["static/dynamic race differential", "-" * 60]
        for r in self.records:
            verdict = (f"matched by {r.static_rule}" if r.matched
                       else "UNMATCHED")
            lines.append(
                f"  {r.corpus_name:<22} {r.dynamic_rule} "
                f"{r.buffer!r:<14} ({r.family}) -> {verdict}"
            )
        bad = self.false_positive_cells
        n_ok = sum(1 for c in self.cells if c.ok)
        lines.append(
            f"clean sweep: {n_ok}/{len(self.cells)} (workload, config) "
            "cells race-free"
        )
        for c in bad:
            lines.append(
                f"  FP {c.workload:<18} {c.config.value:<22} "
                f"{c.findings} finding(s), {c.breaking_here} breaking here"
            )
        if self.aborts:
            lines.append("static analysis aborts:")
            for name, msg in sorted(self.aborts.items()):
                lines.append(f"  {name:<18} {msg}")
        lines.append(
            f"result: {'OK' if self.ok else 'FAIL'} "
            f"({len(self.records)} dynamic race finding(s), "
            f"{len(self.unmatched)} unmatched, "
            f"{len(bad)} false-positive cell(s))"
        )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "records": [{
                "corpus": r.corpus_name,
                "dynamic_rule": r.dynamic_rule,
                "buffer": r.buffer,
                "family": r.family,
                "static_rule": r.static_rule,
                "matched": r.matched,
            } for r in self.records],
            "cells": [{
                "workload": c.workload,
                "config": c.config.value,
                "findings": c.findings,
                "breaking_here": c.breaking_here,
                "ok": c.ok,
            } for c in self.cells],
            "aborts": dict(self.aborts),
        }


def _family_of(rule_id: str) -> str:
    return RULES[rule_id].family


def _match(dynamic: Finding, static_findings: List[Finding]) -> Optional[str]:
    family = _family_of(dynamic.rule_id)
    for sf in static_findings:
        if _family_of(sf.rule_id) == family and sf.buffer == dynamic.buffer:
            return sf.rule_id
    return None


def race_differential(
    *,
    corpus: bool = True,
    clean: bool = True,
    fidelity: Fidelity = Fidelity.TEST,
) -> RaceDifferentialResult:
    """Run the two-sided race differential; see the module docstring."""
    from .rules import RACE_RULE_IDS

    result = RaceDifferentialResult()

    if corpus:
        from ...runner import check_workload

        for name, cls in CORPUS.items():
            dynamic = check_workload(cls, cls.name, cross_check=False)
            with _forbid_simulation():
                static = static_report(cls(), cls.name)
            if static.aborted:
                result.aborts[cls.name] = static.aborted
                continue
            for f in dynamic.findings:
                if f.rule_id not in _DYNAMIC_RACE_RULES:
                    continue
                result.records.append(RaceMatch(
                    corpus_name=name,
                    dynamic_rule=f.rule_id,
                    buffer=f.buffer,
                    family=_family_of(f.rule_id),
                    static_rule=_match(f, static.findings),
                ))

    if clean:
        from ...registry import WORKLOADS, make_workload
        from ..extract import ExtractionError, extract_workload
        from .rules import race_findings

        with _forbid_simulation():
            for name in sorted(WORKLOADS):
                try:
                    ir = extract_workload(
                        make_workload(name, fidelity), name=name
                    )
                except ExtractionError as exc:  # pragma: no cover
                    result.aborts[name] = str(exc)
                    continue
                findings = [f for f in race_findings(ir)
                            if f.rule_id in RACE_RULE_IDS]
                for config in ALL_CONFIGS:
                    result.cells.append(RaceCell(
                        workload=name,
                        config=config,
                        findings=len(findings),
                        breaking_here=sum(
                            1 for f in findings if config in f.breaks_under
                        ),
                    ))

    return result

"""Data model of the MapRace analysis: phase intervals, buffer
accesses and kernel flights.

The happens-before abstraction is deliberately coarse and only ever
*suppresses* may-happen-in-parallel pairs:

* **phase interval** — how many :class:`~..ir.GlobalSyncOp` barriers a
  thread has passed when an access executes, as an integer interval
  ``[lo, hi]`` (``hi is None`` = unbounded, e.g. a barrier inside an
  unbounded loop).  The k-th barrier of every thread is modeled as one
  aligned phase boundary, so two accesses in different threads can only
  happen in parallel when their phase intervals overlap.
* **wait edges** — the set of nowait handles a thread has *definitely*
  waited on before an access (a must-set: intersection at joins).  A
  cross-thread access ordered after a kernel's completion wait can
  never race with that kernel's flight.
* **in-flight handles** — the set of nowait handles *possibly* still in
  flight (a may-set: union at joins), mirroring the abstract
  interpreter's in-flight tracking.  Same-thread race rules (a host
  write or output read overtaking this thread's own nowait region)
  consult this set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Tuple

from ..ir import AbstractBuffer, BufRef

__all__ = [
    "PhaseInterval",
    "Access",
    "KernelFlight",
    "ThreadAccesses",
    "may_overlap",
]


@dataclass(frozen=True)
class PhaseInterval:
    """Barrier-phase interval ``[lo, hi]``; ``hi is None`` = unbounded."""

    lo: int = 0
    hi: Optional[int] = 0

    def bump(self) -> "PhaseInterval":
        """Passed one more :class:`GlobalSyncOp` barrier."""
        return PhaseInterval(
            self.lo + 1, None if self.hi is None else self.hi + 1
        )

    def widen(self) -> "PhaseInterval":
        return PhaseInterval(self.lo, None)

    def join(self, other: "PhaseInterval") -> "PhaseInterval":
        hi = (None if self.hi is None or other.hi is None
              else max(self.hi, other.hi))
        return PhaseInterval(min(self.lo, other.lo), hi)

    def overlaps(self, other: "PhaseInterval") -> bool:
        """Two accesses can coincide iff their phase intervals overlap."""
        if self.hi is not None and other.lo > self.hi:
            return False
        if other.hi is not None and self.lo > other.hi:
            return False
        return True

    def __repr__(self) -> str:
        hi = "inf" if self.hi is None else self.hi
        return f"[{self.lo},{hi}]"


@dataclass(frozen=True)
class Access:
    """One mapping-relevant buffer access of one thread."""

    kind: str                     #: "host_write" | "map_enter" | "map_exit" | "output_read"
    ref: BufRef                   #: the operand (strong refs only are reported)
    tid: int
    lineno: int
    op_id: int
    phase: PhaseInterval
    #: nowait handles possibly in flight in this thread at this access
    inflight: FrozenSet[int] = frozenset()
    #: nowait handles this thread definitely waited on before this access
    completed: FrozenSet[int] = frozenset()
    context: str = ""             #: e.g. the output key

    @property
    def site(self) -> AbstractBuffer:
        return self.ref.only


@dataclass(frozen=True)
class KernelFlight:
    """The static flight window of one target region.

    A synchronous region's flight is contained at the dispatch op
    (``handle_id is None``, ``span == launch``); a ``nowait`` region's
    flight spans from the dispatch to the matching wait — or to the end
    of the thread when no wait ever names its handle.
    """

    kernel: str
    tid: int
    lineno: int
    op_id: int
    launch: PhaseInterval
    span: PhaseInterval           #: launch joined with the completion phase
    reads: Tuple[BufRef, ...]     #: map-clause operands + raw-pointer touches
    writes: Tuple[BufRef, ...]    #: copy-back clauses + raw-pointer touches
    handle_id: Optional[int] = None
    nowait: bool = False


@dataclass
class ThreadAccesses:
    """Everything MapRace collected from one thread's CFG."""

    tid: int
    accesses: List[Access] = field(default_factory=list)
    flights: List[KernelFlight] = field(default_factory=list)
    #: number of dataflow states processed (diagnostics)
    states_explored: int = 0


def may_overlap(a: BufRef, b: BufRef) -> bool:
    """Byte-range overlap of two refs to the *same* allocation site.

    Distinct sites never alias (each is its own allocation), so callers
    pair refs by site first; this confirms via the symbolic
    ``nbytes_bounds`` interval that both operands may cover at least one
    byte of the shared allocation (ranges start at the allocation base,
    so any two non-empty prefixes intersect).
    """
    for ref in (a, b):
        _lo, hi = ref.nbytes_bounds()
        if hi is not None and hi < 1:
            return False
    return True

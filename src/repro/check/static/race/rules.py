"""MapRace rules: intersect MHP pairs with buffer access summaries.

Three rules, matrices *derived* from :class:`~..rules.ConfigSemantics`
exactly like the MapFlow/MapCost rules (never hand-copied; frozen by
the registry snapshot test):

* **MC-S20** — a host write may happen in parallel with a kernel
  reading the same allocation.  Benign under Copy (the kernel reads its
  shadow-copy snapshot), a data race under every zero-copy
  configuration — the static twin of dynamic MC-R02.
* **MC-S21** — two threads' map constructs on the same allocation, at
  least one an exit, may happen in parallel: whichever side the device
  lock serializes first decides refcounts and transfers, under every
  configuration — the static twin of dynamic MC-R01.
* **MC-S22** — an application output reads a buffer a nowait region may
  still be writing (no wait on its handle orders the read): the result
  is nondeterministic everywhere, shadow copies included.

Reporting discipline matches the interpreter: only strong operands
(single allocation site, not weak/unknown) ever report, and two
operands must share a site *and* may-cover >= 1 byte by the symbolic
``nbytes_bounds`` interval before a pair becomes a finding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ....core.config import ALL_CONFIGS, RuntimeConfig
from ....workloads.base import Workload
from ...findings import CheckReport, Finding
from ...registry import dynamic_counterparts
from ..ir import AbstractBuffer, WorkloadIR
from ..rules import SEMANTICS, ConfigSemantics, _relative_source
from .mhp import analyze_thread, mhp
from .model import Access, KernelFlight, ThreadAccesses, may_overlap

__all__ = [
    "RACE_RULE_IDS",
    "race_matrix",
    "race_findings",
    "race_report",
]

#: rule id -> break predicate over one configuration's semantics
_RACE_RULES: Dict[str, Callable[[ConfigSemantics], bool]] = {
    # the kernel only sees the racing host write where no shadow copy
    # isolates it (every zero-copy configuration)
    "MC-S20": lambda s: not s.shadow_copies,
    # present-table mutation order is racy under every runtime: the
    # refcount bookkeeping exists under zero-copy too
    "MC-S21": lambda s: True,
    # an unwaited nowait result is nondeterministic everywhere — the
    # copy-back itself is deferred to the missing wait
    "MC-S22": lambda s: True,
}

RACE_RULE_IDS: Tuple[str, ...] = tuple(_RACE_RULES)


def race_matrix(
    rule_id: str,
) -> Tuple[Tuple[RuntimeConfig, ...], Tuple[RuntimeConfig, ...]]:
    """``(breaks_under, passes_under)`` derived from ConfigSemantics."""
    breaks = _RACE_RULES[rule_id]
    breaks_under = tuple(c for c in ALL_CONFIGS if breaks(SEMANTICS[c]))
    passes_under = tuple(c for c in ALL_CONFIGS if not breaks(SEMANTICS[c]))
    return breaks_under, passes_under


def _xref(rule_id: str) -> str:
    dyn = dynamic_counterparts(rule_id)
    if not dyn:
        return ""  # MC-S22 has no dynamic twin: the race is pre-runtime
    return (f" [dynamic counterpart{'s' if len(dyn) > 1 else ''}: "
            f"{', '.join(dyn)}]")


@dataclass
class _RawFinding:
    rule_id: str
    site: AbstractBuffer
    message: str
    lineno: int
    tid: int
    op_id: int


class _RaceDetector:
    """Pair accesses/flights across (and within) threads into findings."""

    def __init__(self, threads: List[ThreadAccesses]):
        self.threads = threads
        self.raw: List[_RawFinding] = []
        self._seen = set()

    def fire(self, rule_id: str, site: AbstractBuffer, message: str,
             lineno: int, tid: int, op_id: int, pair_key) -> None:
        key = (rule_id, site, pair_key)
        if key in self._seen:
            return
        self._seen.add(key)
        self.raw.append(_RawFinding(rule_id, site, message, lineno, tid,
                                    op_id))

    # -- same-thread: an access overtakes this thread's own nowait flight
    def _same_thread(self, ta: ThreadAccesses) -> None:
        flights = {f.handle_id: f for f in ta.flights
                   if f.handle_id is not None}
        for acc in ta.accesses:
            if acc.kind not in ("host_write", "output_read"):
                continue
            for hid in sorted(acc.inflight):
                flight = flights.get(hid)
                if flight is None:
                    continue
                if acc.kind == "host_write":
                    self._write_vs_flight(acc, flight)
                else:
                    self._read_vs_flight(acc, flight)

    def _write_vs_flight(self, acc: Access, flight: KernelFlight) -> None:
        """MC-S20: host write while a kernel reading the range is in
        flight and the writer holds no wait edge to its completion."""
        for ref in flight.reads:
            if not ref.strong or ref.only != acc.site:
                continue
            if not may_overlap(acc.ref, ref):
                continue
            hb = (f"thread {flight.tid}'s" if flight.tid != acc.tid
                  else "its own")
            self.fire(
                "MC-S20", acc.site,
                f"host write of {acc.site.name!r} (tid {acc.tid}, line "
                f"{acc.lineno}) may happen while {hb} kernel "
                f"{flight.kernel!r} reading the range is in flight "
                f"(line {flight.lineno}) — no wait edge orders the "
                "write after completion; benign under Copy's shadow "
                "snapshot, a data race under every zero-copy "
                "configuration" + _xref("MC-S20"),
                acc.lineno, acc.tid, acc.op_id,
                pair_key=(acc.op_id, flight.op_id),
            )
            return

    def _read_vs_flight(self, acc: Access, flight: KernelFlight) -> None:
        """MC-S22: output read of a buffer a nowait region may write."""
        for ref in flight.writes:
            if not ref.strong or ref.only != acc.site:
                continue
            if not may_overlap(acc.ref, ref):
                continue
            key = f" into output {acc.context!r}" if acc.context else ""
            self.fire(
                "MC-S22", acc.site,
                f"result read of {acc.site.name!r}{key} (tid {acc.tid}, "
                f"line {acc.lineno}) while nowait kernel "
                f"{flight.kernel!r} writing it may still be in flight "
                f"(line {flight.lineno}) — no wait on its handle orders "
                "the read after the kernel" + _xref("MC-S22"),
                acc.lineno, acc.tid, acc.op_id,
                pair_key=(acc.op_id, flight.op_id),
            )
            return

    # -- cross-thread MHP pairs ------------------------------------------
    def _cross_thread(self, ta: ThreadAccesses, tb: ThreadAccesses) -> None:
        self._map_vs_map(ta, tb)
        for writer, runner in ((ta, tb), (tb, ta)):
            self._writes_vs_flights(writer, runner)
            self._reads_vs_flights(writer, runner)

    def _map_vs_map(self, ta: ThreadAccesses, tb: ThreadAccesses) -> None:
        """MC-S21: cross-thread enter/exit pairs, at least one exit."""
        for a in ta.accesses:
            if a.kind not in ("map_enter", "map_exit"):
                continue
            for b in tb.accesses:
                if b.kind not in ("map_enter", "map_exit"):
                    continue
                if a.kind == "map_enter" and b.kind == "map_enter":
                    continue  # enter/enter is what refcounting is for
                if a.site != b.site or not may_overlap(a.ref, b.ref):
                    continue
                if not mhp(a.phase, b.phase):
                    continue  # ordered by a barrier crossing
                ex = a if a.kind == "map_exit" else b
                other = b if ex is a else a
                self.fire(
                    "MC-S21", ex.site,
                    f"tid {other.tid} {other.kind.replace('_', '-')} "
                    f"(line {other.lineno}) and tid {ex.tid} map-exit "
                    f"(line {ex.lineno}) of {ex.site.name!r} may happen "
                    "in parallel — no barrier or wait edge orders them, "
                    "so refcounts/transfers depend on lock arrival "
                    "order" + _xref("MC-S21"),
                    ex.lineno, ex.tid, ex.op_id,
                    pair_key=(min(a.op_id, b.op_id), max(a.op_id, b.op_id)),
                )

    def _writes_vs_flights(self, writer: ThreadAccesses,
                           runner: ThreadAccesses) -> None:
        """MC-S20, cross-thread: a host write MHP with a kernel flight."""
        for acc in writer.accesses:
            if acc.kind != "host_write":
                continue
            for flight in runner.flights:
                if not mhp(acc.phase, flight.span):
                    continue
                if (flight.handle_id is not None
                        and flight.handle_id in acc.completed):
                    continue  # wait edge: write ordered after completion
                self._write_vs_flight(acc, flight)

    def _reads_vs_flights(self, reader: ThreadAccesses,
                          runner: ThreadAccesses) -> None:
        """MC-S22, cross-thread: an output read MHP with a nowait
        flight that may still be writing the buffer."""
        for acc in reader.accesses:
            if acc.kind != "output_read":
                continue
            for flight in runner.flights:
                if not flight.nowait:
                    continue
                if not mhp(acc.phase, flight.span):
                    continue
                if (flight.handle_id is not None
                        and flight.handle_id in acc.completed):
                    continue
                self._read_vs_flight(acc, flight)

    def run(self) -> List[_RawFinding]:
        for ta in self.threads:
            self._same_thread(ta)
        for i, ta in enumerate(self.threads):
            for tb in self.threads[i + 1:]:
                self._cross_thread(ta, tb)
        return self.raw


def race_findings(ir: WorkloadIR) -> List[Finding]:
    """Run the MHP race analysis over one extracted workload IR."""
    threads = [analyze_thread(program) for program in ir.threads]
    raw = _RaceDetector(threads).run()
    grouped: Dict[Tuple[str, AbstractBuffer], List[_RawFinding]] = {}
    for r in raw:
        grouped.setdefault((r.rule_id, r.site), []).append(r)
    source = _relative_source(ir.source_file)
    findings: List[Finding] = []
    for (rule_id, site), items in sorted(
        grouped.items(), key=lambda kv: (kv[0][0], kv[0][1].site)
    ):
        items = sorted(items, key=lambda r: (r.lineno, r.op_id))
        primary = items[0]
        breaks_under, passes_under = race_matrix(rule_id)
        findings.append(Finding(
            rule_id=rule_id,
            buffer=site.name,
            workload=ir.name,
            message=primary.message,
            tid=primary.tid,
            breaks_under=breaks_under,
            passes_under=passes_under,
            related=tuple(
                f"line {r.lineno} (tid {r.tid})" for r in items[1:]
            ),
            source=(source, primary.lineno or site.lineno)
            if source else None,
        ))
    return findings


def race_report(workload: Workload, name: str = "") -> CheckReport:
    """Extract one workload and run only the race analysis (pure static
    path: no simulation)."""
    from ..extract import ExtractionError, extract_workload

    wname = name or getattr(workload, "name", type(workload).__name__)
    fidelity = getattr(workload, "fidelity", None)
    report = CheckReport(
        workload=wname,
        fidelity=fidelity.value if fidelity is not None else "?",
    )
    try:
        ir = extract_workload(workload, name=wname)
    except ExtractionError as exc:
        report.aborted = f"static extraction failed: {exc}"
        return report
    report.findings = race_findings(ir)
    report.stats = {"race_threads": len(ir.threads)}
    return report

"""Bundled-workload registry and rule cross-referencing for
``python -m repro check``.

Workload side: each entry is a factory ``fidelity -> Workload``
producing a *fresh* instance — the runner executes a workload several
times (one instrumented recording run plus one differential run per
remaining configuration), and simulated state must not leak between
runs.

Rule side: the registry is also where the dynamic (MapCheck) and static
(MapFlow) rule sets are stitched together.  Rules carry a ``family``
(see :mod:`repro.check.findings`); :data:`RULE_FAMILIES` groups ids by
family, :func:`static_counterparts`/:func:`dynamic_counterparts`
translate between the two analyses, and :data:`CANONICAL_MATRICES`
freezes each rule's per-configuration applicability so snapshot tests
and the SARIF exporter share one source of truth.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..core.config import ALL_CONFIGS, RuntimeConfig
from ..memory.layout import MIB
from ..workloads import (
    AllocChurn,
    Bt470,
    Ep452,
    Fidelity,
    FirstTouchSweep,
    GlobalBroadcast,
    Lbm404,
    OpenFoamUsm,
    QmcPackNio,
    SpC457,
    Stencil403,
    TriadStream,
    Workload,
)
from .findings import Analysis, RULES

__all__ = [
    "WORKLOADS",
    "make_workload",
    "workload_names",
    "RULE_FAMILIES",
    "CANONICAL_MATRICES",
    "static_counterparts",
    "dynamic_counterparts",
]

WorkloadFactory = Callable[[Fidelity], Workload]

WORKLOADS: Dict[str, WorkloadFactory] = {
    "qmcpack": lambda f: QmcPackNio(size=2, n_threads=1, fidelity=f),
    "stencil": lambda f: Stencil403(fidelity=f),
    "lbm": lambda f: Lbm404(fidelity=f),
    "ep": lambda f: Ep452(fidelity=f),
    "spC": lambda f: SpC457(fidelity=f),
    "bt": lambda f: Bt470(fidelity=f),
    "openfoam": lambda f: OpenFoamUsm(fidelity=f),
    "triad": lambda f: TriadStream(fidelity=f),
    "first-touch": lambda f: FirstTouchSweep(nbytes=64 * MIB, fidelity=f),
    "global-broadcast": lambda f: GlobalBroadcast(fidelity=f),
    "alloc-churn": lambda f: AllocChurn(nbytes=64 * MIB, cycles=10, fidelity=f),
}


# ---------------------------------------------------------------------------
# rule cross-referencing
# ---------------------------------------------------------------------------

#: family -> rule ids carrying it, in declaration order
RULE_FAMILIES: Dict[str, Tuple[str, ...]] = {}
for _rule in RULES.values():
    if _rule.family:
        RULE_FAMILIES.setdefault(_rule.family, ())
        RULE_FAMILIES[_rule.family] += (_rule.id,)
del _rule


def static_counterparts(rule_id: str) -> Tuple[str, ...]:
    """Static (MapFlow) rule ids covering the same defect family as a
    dynamic rule — empty when the family is out of static scope (races,
    payload-content rules, differential-only rules)."""
    family = RULES[rule_id].family
    return tuple(
        rid for rid in RULE_FAMILIES.get(family, ())
        if RULES[rid].analysis is Analysis.STATIC and rid != rule_id
    )


def dynamic_counterparts(rule_id: str) -> Tuple[str, ...]:
    """Dynamic MapCheck rule ids a static rule cross-references."""
    family = RULES[rule_id].family
    return tuple(
        rid for rid in RULE_FAMILIES.get(family, ())
        if RULES[rid].analysis is not Analysis.STATIC and rid != rule_id
    )


_COPY = RuntimeConfig.COPY
_USM = RuntimeConfig.UNIFIED_SHARED_MEMORY
_IZC = RuntimeConfig.IMPLICIT_ZERO_COPY
_EAGER = RuntimeConfig.EAGER_MAPS
_ALL = tuple(ALL_CONFIGS)

#: rule id -> canonical ``(breaks_under, passes_under)`` as emitted by the
#: analyses; ``None`` marks rules whose matrix is finding-dependent
#: (MC-P04's is whatever configurations actually diverged).
CANONICAL_MATRICES: Dict[
    str,
    Optional[Tuple[Tuple[RuntimeConfig, ...], Tuple[RuntimeConfig, ...]]],
] = {
    "MC-P01": ((_COPY, _EAGER), (_USM, _IZC)),
    "MC-P02": ((_COPY,), (_USM, _IZC, _EAGER)),
    "MC-P03": ((_COPY, _IZC, _EAGER), (_USM,)),
    "MC-P04": None,
    "MC-S01": (_ALL, ()),
    "MC-S02": ((_COPY,), (_USM, _IZC, _EAGER)),
    "MC-S03": (_ALL, ()),
    "MC-S04": (_ALL, ()),
    "MC-S05": (_ALL, ()),
    "MC-R01": (_ALL, ()),
    "MC-R02": ((_USM, _IZC, _EAGER), (_COPY,)),
    "MC-S10": (_ALL, ()),
    "MC-S11": (_ALL, ()),
    "MC-S12": ((_COPY,), (_USM, _IZC, _EAGER)),
    "MC-P10": ((_COPY, _EAGER), (_USM, _IZC)),
    # MapRace static race rules: matrices derived from ConfigSemantics
    # (race/rules.py) — MC-S20 mirrors MC-R02's shadow-isolation argument
    "MC-S20": ((_USM, _IZC, _EAGER), (_COPY,)),
    "MC-S21": (_ALL, ()),
    "MC-S22": (_ALL, ()),
    # MapCost perf-lint: "breaks" = pays the predicted overhead there
    "MC-W01": ((_EAGER,), (_COPY, _USM, _IZC)),
    "MC-W02": ((_COPY,), (_USM, _IZC, _EAGER)),
    "MC-W03": ((_USM, _IZC), (_COPY, _EAGER)),
    "MC-W04": ((_USM,), (_COPY, _IZC, _EAGER)),
    "MC-W05": ((_USM, _IZC, _EAGER), (_COPY,)),
    # MapPlace affinity lint: "breaks" = pays the remote-link cost there
    # (place/rules.py derives these from ConfigSemantics × topology)
    "MC-A01": ((_USM, _IZC), (_COPY, _EAGER)),
    "MC-A02": ((_COPY, _EAGER), (_USM, _IZC)),
    "MC-A03": ((_USM, _IZC, _EAGER), (_COPY,)),
    "MC-A04": ((_COPY,), (_USM, _IZC, _EAGER)),
}


def workload_names():
    return sorted(WORKLOADS)


def make_workload(name: str, fidelity: Fidelity) -> Workload:
    try:
        factory = WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; choose from {', '.join(workload_names())}"
        ) from None
    return factory(fidelity)

"""Bundled-workload registry for ``python -m repro check``.

Each entry is a factory ``fidelity -> Workload`` producing a *fresh*
instance — the runner executes a workload several times (one
instrumented recording run plus one differential run per remaining
configuration), and simulated state must not leak between runs.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..memory.layout import MIB
from ..workloads import (
    AllocChurn,
    Bt470,
    Ep452,
    Fidelity,
    FirstTouchSweep,
    GlobalBroadcast,
    Lbm404,
    OpenFoamUsm,
    QmcPackNio,
    SpC457,
    Stencil403,
    TriadStream,
    Workload,
)

__all__ = ["WORKLOADS", "make_workload", "workload_names"]

WorkloadFactory = Callable[[Fidelity], Workload]

WORKLOADS: Dict[str, WorkloadFactory] = {
    "qmcpack": lambda f: QmcPackNio(size=2, n_threads=1, fidelity=f),
    "stencil": lambda f: Stencil403(fidelity=f),
    "lbm": lambda f: Lbm404(fidelity=f),
    "ep": lambda f: Ep452(fidelity=f),
    "spC": lambda f: SpC457(fidelity=f),
    "bt": lambda f: Bt470(fidelity=f),
    "openfoam": lambda f: OpenFoamUsm(fidelity=f),
    "triad": lambda f: TriadStream(fidelity=f),
    "first-touch": lambda f: FirstTouchSweep(nbytes=64 * MIB, fidelity=f),
    "global-broadcast": lambda f: GlobalBroadcast(fidelity=f),
    "alloc-churn": lambda f: AllocChurn(nbytes=64 * MIB, cycles=10, fidelity=f),
}


def workload_names():
    return sorted(WORKLOADS)


def make_workload(name: str, fidelity: Fidelity) -> Workload:
    try:
        factory = WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; choose from {', '.join(workload_names())}"
        ) from None
    return factory(fidelity)

"""MapCheck rules, findings and report rendering.

A *rule* is a stable identifier for one class of mapping defect; a
*finding* is one detected instance, carrying the buffer, the workload it
came from and — the part that encodes the paper's §IV.C portability
argument — the per-configuration applicability: the same program can be
correct under USM/Implicit Zero-Copy on an MI300A yet crash or corrupt
data under Legacy Copy (the discrete-GPU deployment model), and a
finding says under which of the four runtime configurations it bites.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import ALL_CONFIGS, RuntimeConfig

__all__ = [
    "Severity",
    "Analysis",
    "Rule",
    "RULES",
    "Finding",
    "CheckReport",
]


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


class Analysis(enum.Enum):
    """The cooperating MapCheck analyses (three dynamic, two static)."""

    LINT = "portability-lint"
    SANITIZER = "mapping-sanitizer"
    RACES = "race-detector"
    STATIC = "static-dataflow"
    PERF = "perf-lint"
    PLACE = "place-lint"


@dataclass(frozen=True)
class Rule:
    """One MapCheck rule (stable id, never renumber).

    ``family`` groups dynamic rules with their static (MapFlow)
    counterparts: a dynamic finding and a static finding with the same
    family describe the same defect class observed through different
    analyses (e.g. MC-S01/MC-S03 vs MC-S10 are all family "refcount").
    """

    id: str
    title: str
    analysis: Analysis
    severity: Severity
    summary: str
    family: str = ""


_ALL_RULES = (
    Rule("MC-P01", "missing-map", Analysis.LINT, Severity.ERROR,
         "kernel touches host memory no live map entry or declare-target "
         "global covers", family="missing-map"),
    Rule("MC-P02", "tofrom-missing-from", Analysis.LINT, Severity.ERROR,
         "kernel-written buffer feeds an application output but is never "
         "copied back to the host", family="missing-from"),
    Rule("MC-P03", "stale-global", Analysis.LINT, Severity.ERROR,
         "kernel reads a declare-target global whose host value changed "
         "after the last update/sync", family="stale-global"),
    Rule("MC-P04", "config-divergent-output", Analysis.LINT, Severity.ERROR,
         "workload outputs differ between runtime configurations "
         "(differential evidence of a latent mapping bug)",
         family="config-divergence"),
    Rule("MC-S01", "refcount-underflow", Analysis.SANITIZER, Severity.ERROR,
         "map-exit would drive a present entry's refcount below zero",
         family="refcount"),
    Rule("MC-S02", "map-leak-at-teardown", Analysis.SANITIZER, Severity.WARNING,
         "present-table entry still live at device teardown", family="leak"),
    Rule("MC-S03", "unmap-of-absent", Analysis.SANITIZER, Severity.ERROR,
         "unmap/release of a buffer with no present-table entry "
         "(double unmap or never mapped)", family="refcount"),
    Rule("MC-S04", "use-after-unmap-kernel-arg", Analysis.SANITIZER, Severity.ERROR,
         "a kernel argument's mapping was destroyed while the kernel was "
         "in flight", family="inflight-unmap"),
    Rule("MC-S05", "always-clause-misuse", Analysis.SANITIZER, Severity.ERROR,
         "'always' modifier on a map kind that never transfers",
         family="always-misuse"),
    Rule("MC-R01", "concurrent-map-race", Analysis.RACES, Severity.WARNING,
         "host threads perform conflicting map-enter/map-exit on "
         "overlapping ranges with no synchronization edge", family="map-race"),
    Rule("MC-R02", "host-write-kernel-read-race", Analysis.RACES, Severity.ERROR,
         "host writes a buffer while a kernel reading it is in flight, "
         "without waiting on its completion signal", family="host-write-race"),
    # -- MapFlow: static map-clause dataflow analysis (repro.check.static)
    Rule("MC-S10", "refcount-underflow-on-some-path", Analysis.STATIC,
         Severity.ERROR,
         "a program path exists on which a map-exit runs against a "
         "definitely-absent present-table entry (double unmap, unbalanced "
         "exit, or exit without a matching enter)", family="refcount"),
    Rule("MC-S11", "use-after-exit-data", Analysis.STATIC, Severity.ERROR,
         "a map-exit can destroy a mapping while a nowait target region "
         "referencing the buffer is statically in flight", family="inflight-unmap"),
    Rule("MC-S12", "map-leak-at-thread-end", Analysis.STATIC, Severity.WARNING,
         "a buffer is still mapped on every path reaching the end of its "
         "owning thread's body", family="leak"),
    Rule("MC-P10", "touches-not-covered-on-any-path", Analysis.STATIC,
         Severity.ERROR,
         "a kernel raw-pointer touch is covered by no live map entry, "
         "target map clause, or declare-target global on any path to the "
         "dispatch", family="missing-map"),
    # -- MapRace: static may-happen-in-parallel race analysis
    # (repro.check.static.race)
    Rule("MC-S20", "static-host-write-kernel-read-race", Analysis.STATIC,
         Severity.ERROR,
         "a host write may happen in parallel with a kernel reading the "
         "same buffer (no wait edge orders them): benign under Copy's "
         "shadow isolation, a data race under every zero-copy "
         "configuration", family="host-write-race"),
    Rule("MC-S21", "static-concurrent-map-race", Analysis.STATIC,
         Severity.WARNING,
         "two threads' map constructs on the same buffer, at least one an "
         "exit, may happen in parallel: refcounts and transfers depend on "
         "lock arrival order", family="map-race"),
    Rule("MC-S22", "unsynchronized-nowait-result-read", Analysis.STATIC,
         Severity.ERROR,
         "an application output reads a buffer a nowait target region may "
         "still be writing — no wait on its completion handle orders the "
         "read after the kernel", family="nowait-result"),
    # -- MapCost: static cost prediction / perf lint (repro.check.static.cost)
    Rule("MC-W01", "map-churn-in-hot-loop", Analysis.PERF, Severity.WARNING,
         "a map-enter/map-exit pair cycles inside a hot loop: under Eager "
         "Maps every iteration pays a prefault ioctl for the same pages",
         family="perf-map-churn"),
    Rule("MC-W02", "redundant-map-of-present", Analysis.PERF, Severity.WARNING,
         "a non-always 'to' map of a buffer that is already present never "
         "transfers again: dead copy intent, misleading under Copy",
         family="perf-redundant-map"),
    Rule("MC-W03", "first-touch-fault-storm", Analysis.PERF, Severity.WARNING,
         "a loop reallocates a buffer a kernel touches: each fresh "
         "allocation re-faults its pages under XNACK-serviced configs",
         family="perf-fault-storm"),
    Rule("MC-W04", "global-indirection-in-loop", Analysis.PERF, Severity.WARNING,
         "a kernel inside a hot loop reads declare-target globals: USM's "
         "pointer-globals double-indirect on every access",
         family="perf-global-indirection"),
    Rule("MC-W05", "noop-target-update", Analysis.PERF, Severity.WARNING,
         "'target update' moves bytes a zero-copy mapping already shares "
         "with the device: pure overhead outside Copy",
         family="perf-noop-update"),
    # -- MapPlace: static page-placement / affinity lint
    # (repro.check.static.place)
    Rule("MC-A01", "remote-first-touch-storm", Analysis.PLACE, Severity.WARNING,
         "a kernel's first touch faults a large buffer whose pages the "
         "placement puts on a remote socket: every XNACK service crosses "
         "the Infinity Fabric link", family="place-remote-fault"),
    Rule("MC-A02", "cross-socket-map-churn", Analysis.PLACE, Severity.WARNING,
         "a map-enter/map-exit pair cycles a remote-placed buffer inside "
         "a hot loop: each enter re-prefaults pages over the link under "
         "prefaulting configs", family="place-map-churn"),
    Rule("MC-A03", "unpinned-hot-buffer", Analysis.PLACE, Severity.WARNING,
         "a kernel inside a hot loop reads a buffer with remote-placed "
         "pages under a zero-copy mapping: every iteration pays the "
         "remote-access penalty instead of pinning the buffer home",
         family="place-hot-buffer"),
    Rule("MC-A04", "link-saturating-shadow-copy", Analysis.PLACE,
         Severity.WARNING,
         "a copying map-enter sources a large remote-placed buffer: the "
         "H2D shadow copy streams its bytes over the inter-socket link",
         family="place-shadow-copy"),
)

#: rule id -> rule, in stable declaration order
RULES: Dict[str, Rule] = {r.id: r for r in _ALL_RULES}

#: shorthand applicability sets
ALL = tuple(ALL_CONFIGS)
NONE: Tuple[RuntimeConfig, ...] = ()


@dataclass
class Finding:
    """One detected instance of a rule."""

    rule_id: str
    buffer: str                    #: buffer/global name ("" when n/a)
    message: str
    workload: str = ""
    time_us: Optional[float] = None
    tid: Optional[int] = None
    #: configurations under which this defect crashes or corrupts data
    breaks_under: Tuple[RuntimeConfig, ...] = ()
    #: configurations under which the program happens to work anyway
    passes_under: Tuple[RuntimeConfig, ...] = ()
    #: configurations whose differential run actually crashed/diverged
    confirmed_by: Tuple[RuntimeConfig, ...] = ()
    #: output keys this finding explains (MC-P02/MC-P04 bookkeeping)
    output_keys: Tuple[str, ...] = ()
    #: structured references to further sites exhibiting the same defect
    #: (e.g. MC-P01: every extra kernel touching the same unmapped buffer)
    related: Tuple[str, ...] = ()
    #: ``(path, line)`` of the defect in the workload source, when the
    #: analysis knows it (static findings do; dynamic ones usually don't)
    source: Optional[Tuple[str, int]] = None
    #: matched a baseline fingerprint (``repro check --baseline``):
    #: stays in reports and SARIF but no longer fails the run
    suppressed: bool = False
    #: MapFix attachment: a sandbox-verified remediation for this finding
    #: (``AppliedFix.finding_attachment()``), rendered as SARIF ``fixes[]``
    fix: Optional[Dict[str, object]] = None

    @property
    def rule(self) -> Rule:
        return RULES[self.rule_id]

    @property
    def severity(self) -> Severity:
        return self.rule.severity

    def breaks(self, config: RuntimeConfig) -> bool:
        return config in self.breaks_under

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule_id,
            "title": self.rule.title,
            "analysis": self.rule.analysis.value,
            "severity": self.severity.value,
            "buffer": self.buffer,
            "workload": self.workload,
            "message": self.message,
            "time_us": self.time_us,
            "tid": self.tid,
            "breaks_under": [c.value for c in self.breaks_under],
            "passes_under": [c.value for c in self.passes_under],
            "confirmed_by": [c.value for c in self.confirmed_by],
            "related": list(self.related),
            "source": list(self.source) if self.source else None,
            "suppressed": self.suppressed,
            "fix": self.fix,
        }

    def sort_key(self) -> Tuple[str, str, str, float, int, str]:
        """Total order over findings, independent of discovery order.

        Reports assembled from parallel workers (``--jobs``) interleave
        findings nondeterministically; sorting by this key before any
        rendering/JSON emission makes parallel and serial output
        byte-identical.
        """
        return (
            self.rule_id,
            self.workload,
            self.buffer,
            self.time_us if self.time_us is not None else -1.0,
            self.tid if self.tid is not None else -1,
            self.message,
        )


_SEV_ORDER = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}


@dataclass
class CheckReport:
    """Everything one ``repro check`` invocation of a workload produced."""

    workload: str
    fidelity: str
    findings: List[Finding] = field(default_factory=list)
    #: per-config outcome of the differential runs ("ok", "crash: ...",
    #: "outputs diverge: ...", "skipped")
    config_outcomes: Dict[RuntimeConfig, str] = field(default_factory=dict)
    #: exception message if the instrumented run itself aborted
    aborted: Optional[str] = None
    stats: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.aborted is None and not self.active_findings()

    def active_findings(self) -> List[Finding]:
        """Findings not suppressed by a baseline."""
        return [f for f in self.findings if not f.suppressed]

    def sorted_findings(self) -> List[Finding]:
        return sorted(
            self.findings,
            key=lambda f: (_SEV_ORDER[f.severity],) + f.sort_key(),
        )

    def by_rule(self) -> Dict[str, List[Finding]]:
        out: Dict[str, List[Finding]] = {}
        for f in self.findings:
            out.setdefault(f.rule_id, []).append(f)
        return out

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def _config_flags(self, finding: Finding) -> str:
        cells = []
        for cfg in ALL_CONFIGS:
            mark = ("break" if cfg in finding.breaks_under
                    else "ok" if cfg in finding.passes_under else "-")
            if cfg in finding.confirmed_by:
                mark += "!"
            cells.append(f"{cfg.label}={mark}")
        return " ".join(cells)

    def render(self) -> str:
        lines = [
            f"MapCheck report — workload {self.workload!r} "
            f"(fidelity={self.fidelity})",
            "=" * 72,
        ]
        if self.aborted:
            lines.append(f"instrumented run ABORTED: {self.aborted}")
        if not self.findings:
            lines.append("no findings: mapping is clean and portable across "
                         "all 4 runtime configurations")
        else:
            n_err = sum(1 for f in self.findings if f.severity is Severity.ERROR)
            n_sup = sum(1 for f in self.findings if f.suppressed)
            lines.append(
                f"{len(self.findings)} finding(s), {n_err} error(s)"
                + (f", {n_sup} suppressed by baseline" if n_sup else "")
            )
            for f in self.sorted_findings():
                loc = f"t={f.time_us:.1f}us" if f.time_us is not None else ""
                tid = f"tid={f.tid}" if f.tid is not None else ""
                head = " ".join(x for x in (loc, tid) if x)
                lines.append("-" * 72)
                lines.append(
                    f"[{f.severity.value.upper():7s}] {f.rule_id} "
                    f"{f.rule.title}  ({f.rule.analysis.value})"
                    + ("  [suppressed]" if f.suppressed else "")
                )
                if f.buffer:
                    lines.append(f"  buffer : {f.buffer}" + (f"  ({head})" if head else ""))
                elif head:
                    lines.append(f"  at     : {head}")
                lines.append(f"  detail : {f.message}")
                if f.related:
                    lines.append(
                        f"  also   : {len(f.related)} more site(s): "
                        + "; ".join(f.related)
                    )
                if f.source:
                    lines.append(f"  source : {f.source[0]}:{f.source[1]}")
                lines.append(f"  configs: {self._config_flags(f)}")
        if self.config_outcomes:
            lines.append("-" * 72)
            lines.append("differential runs ('!' above = confirmed there):")
            for cfg in ALL_CONFIGS:
                if cfg in self.config_outcomes:
                    lines.append(f"  {cfg.label:<24} {self.config_outcomes[cfg]}")
        if self.stats:
            lines.append("-" * 72)
            lines.append(
                "trace: " + ", ".join(f"{k}={v}" for k, v in sorted(self.stats.items()))
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "fidelity": self.fidelity,
            "ok": self.ok,
            "aborted": self.aborted,
            "findings": [f.to_dict() for f in self.sorted_findings()],
            "config_outcomes": {
                c.value: o for c, o in self.config_outcomes.items()
            },
            "stats": dict(self.stats),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


def render_rule_table() -> str:
    """ASCII table of all rules (``repro check --rules``)."""
    lines = [f"{'rule':<8}{'title':<34}{'analysis':<19}{'severity':<9}summary"]
    lines.append("-" * 106)
    for r in RULES.values():
        lines.append(
            f"{r.id:<8}{r.title:<34}{r.analysis.value:<19}"
            f"{r.severity.value:<9}{r.summary}"
        )
    return "\n".join(lines)


def merge_reports(reports: Sequence[CheckReport]) -> str:
    """Summary block for ``repro check all``."""
    lines = [f"{'workload':<22}{'findings':>9}  status"]
    lines.append("-" * 56)
    for rep in reports:
        status = "CLEAN" if rep.ok else ("ABORTED" if rep.aborted else "FINDINGS")
        lines.append(f"{rep.workload:<22}{len(rep.findings):>9}  {status}")
    return "\n".join(lines)

"""Backfill source locations onto dynamic findings from the static IR.

The dynamic analyses observe *events*, not source, so their findings
historically carried ``source=None`` while every static/perf finding
carried a real ``(path, line)``.  MapFix (and SARIF viewers) want every
finding located, so after a dynamic check the runner re-extracts the
workload and maps each unlocated finding to the best line the IR knows:

* a buffer name resolves to its allocation site;
* a declare-target global resolves to the first dispatch/sync that
  uses it;
* an output-divergence finding (MC-P04) resolves to the ``outputs.put``
  site of its key;
* an ``always``-misuse finding resolves to the offending clause's
  enter/exit.

Backfilling is best-effort and purely additive: extraction failures are
swallowed and findings that cannot be resolved keep ``source=None``.
The baseline fingerprint (``rule:workload:buffer``) never includes the
line, so backfilled locations are baseline-compatible by construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .findings import Finding
from .static.ir import (
    Branch,
    EnterOp,
    ExitOp,
    GlobalSyncOp,
    Loop,
    Op,
    OutputOp,
    Seq,
    TargetOp,
    WorkloadIR,
)
from .static.rules import _relative_source

__all__ = ["backfill_sources"]

#: map kinds whose ``always`` modifier never transfers (mirrors the
#: dynamic sanitizer's MC-S05 predicate)
_NON_TRANSFER = frozenset({"alloc", "release", "delete"})


def _iter_ops(ir: WorkloadIR):
    def walk(seq: Seq):
        for item in seq.items:
            if isinstance(item, Op):
                yield item
            elif isinstance(item, Branch):
                yield from walk(item.then)
                yield from walk(item.orelse)
            elif isinstance(item, Loop):
                yield from walk(item.body)

    for th in ir.threads:
        yield from walk(th.body)


def _index(ir: WorkloadIR) -> Tuple[Dict[str, int], Dict[str, int],
                                    Dict[str, int], Optional[int]]:
    alloc: Dict[str, int] = {}
    for th in ir.threads:
        for buf in th.buffers.values():
            if buf.lineno and (buf.name not in alloc
                               or buf.lineno < alloc[buf.name]):
                alloc[buf.name] = buf.lineno
    globals_: Dict[str, int] = {}
    outputs: Dict[str, int] = {}
    always_line: Optional[int] = None
    for op in _iter_ops(ir):
        if isinstance(op, TargetOp):
            for g in op.globals_used:
                globals_.setdefault(g, op.lineno)
        elif isinstance(op, GlobalSyncOp):
            globals_.setdefault(op.name, op.lineno)
        elif isinstance(op, OutputOp):
            if op.key is not None:
                outputs.setdefault(op.key, op.lineno)
        elif isinstance(op, (EnterOp, ExitOp)):
            for clause in op.clauses:
                kind = getattr(clause.kind, "value", None)
                if (clause.always and kind in _NON_TRANSFER
                        and always_line is None and op.lineno):
                    always_line = op.lineno
    return alloc, globals_, outputs, always_line


def backfill_sources(findings: List[Finding], ir: WorkloadIR) -> int:
    """Fill ``source`` on unlocated findings; returns how many resolved."""
    rel = _relative_source(ir.source_file)
    if not rel:
        return 0
    alloc, globals_, outputs, always_line = _index(ir)
    n = 0
    for f in findings:
        if f.source is not None:
            continue
        line: Optional[int] = None
        if f.buffer and f.buffer in alloc:
            line = alloc[f.buffer]
        elif f.buffer and f.buffer in globals_:
            line = globals_[f.buffer]
        elif f.output_keys:
            line = next((outputs[k] for k in f.output_keys
                         if k in outputs), None)
        elif not f.buffer and always_line is not None:
            line = always_line
        if line:
            f.source = (rel, line)
            n += 1
    return n

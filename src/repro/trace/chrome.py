"""Chrome-trace (Perfetto) export of detailed HSA timelines.

A detailed trace (``ApuSystem(detailed_trace=True)``) keeps every HSA
call with its start time and duration.  This module converts it to the
Chrome Trace Event JSON format, so a simulated run can be inspected in
``chrome://tracing`` / https://ui.perfetto.dev exactly like a rocprof
capture of the real system: one row per HSA entry point, kernel and copy
spans, queue-wait visible as gaps.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .hsa_trace import HsaTrace

__all__ = ["to_chrome_trace", "write_chrome_trace"]

#: stable row ordering: storage ops first, then sync, then kernels
_ROW_ORDER = (
    "memory_pool_allocate",
    "memory_pool_free",
    "memory_async_copy",
    "signal_async_handler",
    "svm_attributes_set",
    "signal_wait_scacquire",
    "memory_copy",
)


def to_chrome_trace(
    trace: HsaTrace,
    process_name: str = "repro-apu",
    extra_meta: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Build a Chrome Trace Event dict from a detailed HSA trace.

    Raises if the trace was not collected in detailed mode (aggregate
    counters cannot be laid out on a timeline).
    """
    if not trace.detailed:
        raise ValueError(
            "chrome export needs a detailed trace: build the system with "
            "detailed_trace=True"
        )
    tids = {name: i + 1 for i, name in enumerate(_ROW_ORDER)}
    next_tid = len(_ROW_ORDER) + 1
    events: List[Dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": process_name},
        }
    ]
    for name, tid in tids.items():
        events.append(
            {"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
             "args": {"name": name}}
        )
    for ev in trace.events:
        tid = tids.get(ev.name)
        if tid is None:
            tid = tids[ev.name] = next_tid
            next_tid += 1
            events.append(
                {"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
                 "args": {"name": ev.name}}
            )
        events.append(
            {
                "name": ev.tag or ev.name,
                "cat": ev.name,
                "ph": "X",           # complete event (start + duration)
                "pid": 1,
                "tid": tid,
                "ts": ev.start_us,   # chrome expects microseconds
                "dur": ev.duration_us,
            }
        )
    out: Dict[str, object] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if extra_meta:
        out["otherData"] = dict(extra_meta)
    return out


def write_chrome_trace(
    trace: HsaTrace,
    fh_or_path,
    process_name: str = "repro-apu",
    extra_meta: Optional[Dict[str, object]] = None,
) -> None:
    """Serialize :func:`to_chrome_trace` to a file or path."""
    doc = to_chrome_trace(trace, process_name=process_name, extra_meta=extra_meta)
    if hasattr(fh_or_path, "write"):
        json.dump(doc, fh_or_path)
    else:
        with open(fh_or_path, "w") as fh:
            json.dump(doc, fh)

"""Trace analyses that regenerate the paper's tables.

* :func:`hsa_call_comparison` — Table I: per-HSA-call counts for two
  configurations plus the Copy/* total-latency ratio.
* :func:`overhead_decomposition` — Table III: MM and MI overheads of one
  run, both numerically and as the paper's order-of-magnitude strings.
* :func:`first_n_kernel_fault_advantage` — the §V.A.4 analysis comparing
  fault stalls absorbed by the first N kernel launches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .hsa_trace import HsaTrace
from .kernel_trace import KernelTrace, RunLedger
from .stats import order_of_magnitude

__all__ = [
    "HsaCallRow",
    "hsa_call_comparison",
    "OverheadRow",
    "overhead_decomposition",
    "first_n_kernel_fault_advantage",
]

#: The HSA calls Table I reports, with the paper's "Used for" annotation.
TABLE1_CALLS = (
    ("signal_wait_scacquire", "Kernel Completion"),
    ("memory_pool_allocate", "Allocate device memory"),
    ("memory_async_copy", "Memory copy"),
    ("signal_async_handler", "Memory copy"),
)


@dataclass(frozen=True)
class HsaCallRow:
    """One row of a Table I-style comparison."""

    call: str
    used_for: str
    count_a: int
    count_b: int
    latency_ratio: Optional[float]  #: total_us(a) / total_us(b); None = N/A

    def ratio_str(self) -> str:
        if self.latency_ratio is None:
            return "N/A"
        if self.latency_ratio >= 1e4:
            return f"{self.latency_ratio:.2e}"
        if self.latency_ratio >= 100:
            return f"{self.latency_ratio:,.0f}"
        return f"{self.latency_ratio:.2f}"


def hsa_call_comparison(
    trace_a: HsaTrace,
    trace_b: HsaTrace,
    calls: Sequence[tuple] = TABLE1_CALLS,
) -> List[HsaCallRow]:
    """Compare two HSA traces call-by-call (Table I's Copy vs Implicit Z-C)."""
    rows = []
    for call, used_for in calls:
        rows.append(
            HsaCallRow(
                call=call,
                used_for=used_for,
                count_a=trace_a.count(call),
                count_b=trace_b.count(call),
                latency_ratio=trace_a.latency_ratio(trace_b, call),
            )
        )
    return rows


@dataclass(frozen=True)
class OverheadRow:
    """One configuration row of a Table III-style decomposition."""

    config_label: str
    mm_us: float
    mi_us: float

    @property
    def mm_magnitude(self) -> str:
        return order_of_magnitude(self.mm_us)

    @property
    def mi_magnitude(self) -> str:
        return order_of_magnitude(self.mi_us)


def overhead_decomposition(config_label: str, ledger: RunLedger) -> OverheadRow:
    """MM/MI decomposition of one run (Table III semantics).

    MM is memory-management overhead (pool allocation + mapping copies +
    Eager prefaulting); MI is GPU first-touch fault stall inside kernels.
    """
    return OverheadRow(config_label=config_label, mm_us=ledger.mm_us, mi_us=ledger.mi_us)


def first_n_kernel_fault_advantage(
    ktrace_faulting: KernelTrace, n: int = 100
) -> Dict[str, float]:
    """§V.A.4: how much fault stall the first ``n`` launches absorb vs the
    rest of the run (the Eager-vs-IZC initial-phase analysis)."""
    head = ktrace_faulting.total_fault_stall_us(first_n=n)
    total = ktrace_faulting.total_fault_stall_us()
    return {
        "first_n_stall_us": head,
        "remaining_stall_us": total - head,
        "total_stall_us": total,
    }

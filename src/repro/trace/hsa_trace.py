"""rocprof-style HSA API call tracing.

Table I of the paper is produced by ``rocprof`` HSA call tracing: per API
name, the number of calls and the total time spent in the call.  This
module collects exactly that, cheaply (two floats and an int per name on
the hot path), with an optional detailed mode that keeps every event for
timeline debugging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["HsaTrace", "CallStats", "TraceEvent"]


@dataclass
class CallStats:
    """Aggregate statistics for one HSA API entry point."""

    count: int = 0
    total_us: float = 0.0

    @property
    def mean_us(self) -> float:
        return self.total_us / self.count if self.count else 0.0


@dataclass(frozen=True)
class TraceEvent:
    """One traced call (detailed mode only)."""

    name: str
    start_us: float
    duration_us: float
    tag: str = ""


class HsaTrace:
    """Collector of HSA call counts and latencies."""

    def __init__(self, detailed: bool = False):
        self.stats: Dict[str, CallStats] = {}
        self.detailed = detailed
        self.events: List[TraceEvent] = []

    def record(self, name: str, start_us: float, duration_us: float, tag: str = "") -> None:
        st = self.stats.get(name)
        if st is None:
            st = CallStats()
            self.stats[name] = st
        st.count += 1
        st.total_us += duration_us
        if self.detailed:
            self.events.append(TraceEvent(name, start_us, duration_us, tag))

    # -- queries -----------------------------------------------------------
    def count(self, name: str) -> int:
        st = self.stats.get(name)
        return st.count if st else 0

    def total_us(self, name: str) -> float:
        st = self.stats.get(name)
        return st.total_us if st else 0.0

    def names(self) -> List[str]:
        return sorted(self.stats)

    def total_all_us(self) -> float:
        return sum(s.total_us for s in self.stats.values())

    def latency_ratio(self, other: "HsaTrace", name: str) -> Optional[float]:
        """Total-latency ratio ``self/other`` for one call name.

        Returns ``None`` when the other trace never issued the call (the
        paper prints "N/A" for signal_async_handler under Implicit Z-C).
        """
        mine = self.total_us(name)
        theirs = other.total_us(name)
        if theirs == 0.0:
            return None
        return mine / theirs

    def merge(self, other: "HsaTrace", detailed: Optional[bool] = None) -> "HsaTrace":
        """Combined trace (e.g. summing repetitions).

        ``detailed`` defaults to "both inputs are detailed": merging two
        timeline-bearing traces keeps their events (self's first, then
        other's — timeline order within each input is preserved).  Pass
        ``detailed=False`` to force a stats-only merge, or ``True`` to
        keep whatever events the inputs carry.
        """
        if detailed is None:
            detailed = self.detailed and other.detailed
        out = HsaTrace(detailed=detailed)
        for src in (self, other):
            for name, st in src.stats.items():
                dst = out.stats.setdefault(name, CallStats())
                dst.count += st.count
                dst.total_us += st.total_us
            if detailed:
                out.events.extend(src.events)
        return out

    def as_rows(self) -> List[tuple]:
        """(name, count, total_us, mean_us) rows sorted by total time."""
        rows = [
            (name, st.count, st.total_us, st.mean_us)
            for name, st in self.stats.items()
        ]
        rows.sort(key=lambda r: -r[2])
        return rows

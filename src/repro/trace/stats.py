"""Statistics used by the paper's methodology.

§V: "Each SPECaccel 2023 experiment is run 8 times.  QMCPack experiments
are run 4 times each […] The median value is used to compute ratios and
we report the Coefficient of Variation (CoV) to support statistical
robustness."  We reproduce both estimators plus helpers for aggregating
repetition vectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["median", "cov", "RepetitionStats", "order_of_magnitude"]


def median(values: Sequence[float]) -> float:
    """Sample median (the paper's central estimator)."""
    if len(values) == 0:
        raise ValueError("median of empty sequence")
    return float(np.median(np.asarray(values, dtype=np.float64)))


def cov(values: Sequence[float]) -> float:
    """Coefficient of variation: sample std / mean.

    Zero for constant samples and for a single observation; raises on an
    all-zero sample, where the statistic is undefined.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("CoV of empty sequence")
    if arr.size == 1:
        return 0.0
    mean = float(arr.mean())
    if mean == 0.0:
        raise ValueError("CoV undefined for zero-mean sample")
    return float(arr.std(ddof=1)) / mean


def order_of_magnitude(value_us: float) -> str:
    """Render a duration the way Table III does: ``O(10^k)`` or ``O(0)``.

    The paper uses O(0) for overheads that are identically absent.
    """
    if value_us <= 0.0:
        return "O(0)"
    exp = int(np.floor(np.log10(value_us)))
    return f"O(10^{exp})"


@dataclass(frozen=True)
class RepetitionStats:
    """Aggregate over one experiment's repetitions."""

    values: tuple

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "RepetitionStats":
        if len(values) == 0:
            raise ValueError("no repetitions")
        return cls(tuple(float(v) for v in values))

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def median(self) -> float:
        return median(self.values)

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def cov(self) -> float:
        return cov(self.values)

    @property
    def min(self) -> float:
        return float(np.min(self.values))

    @property
    def max(self) -> float:
        return float(np.max(self.values))

    def ratio_of_medians(self, other: "RepetitionStats") -> float:
        """median(self) / median(other) — the paper's ratio estimator.

        Degenerate inputs raise :class:`ValueError` with a clear message
        (never a bare ``ZeroDivisionError``): an empty sample has no
        median, and a zero-median denominator has no defined ratio.
        """
        if len(self.values) == 0 or len(other.values) == 0:
            raise ValueError("ratio_of_medians over an empty sample")
        denom = other.median
        if denom == 0.0:
            raise ValueError(
                "ratio_of_medians against a zero-median sample is undefined"
            )
        return self.median / denom

"""Tracing and analysis: HSA call traces, kernel traces, statistics."""

from .chrome import to_chrome_trace, write_chrome_trace
from .analysis import (
    HsaCallRow,
    OverheadRow,
    first_n_kernel_fault_advantage,
    hsa_call_comparison,
    overhead_decomposition,
)
from .hsa_trace import CallStats, HsaTrace, TraceEvent
from .kernel_trace import KernelTrace, RunLedger
from .stats import RepetitionStats, cov, median, order_of_magnitude

__all__ = [
    "CallStats",
    "HsaCallRow",
    "HsaTrace",
    "KernelTrace",
    "OverheadRow",
    "RepetitionStats",
    "RunLedger",
    "TraceEvent",
    "cov",
    "to_chrome_trace",
    "write_chrome_trace",
    "first_n_kernel_fault_advantage",
    "hsa_call_comparison",
    "median",
    "order_of_magnitude",
    "overhead_decomposition",
]

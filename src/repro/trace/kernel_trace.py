"""Kernel-level tracing and the MM/MI overhead ledger.

Table III of the paper decomposes runtime overheads with
``LIBOMPTARGET_KERNEL_TRACE=3``:

* **MM** (memory management): GPU-specific memory allocation and CPU-GPU
  memory copies issued by the OpenMP runtime;
* **MI** (memory initialization): first-touch cost on the GPU — the
  XNACK-replay stalls kernels absorb while running.

The :class:`RunLedger` accumulates both, plus the Eager-Maps prefault
time (which the paper folds into MM for the Eager row of Table III), the
pure compute time, and host-side blocked time.  Ledgers are cheap —
plain float adds — so every run carries one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover - avoids a circular import with hsa.api
    from ..hsa.api import KernelRecord

__all__ = ["RunLedger", "KernelTrace"]


@dataclass
class RunLedger:
    """Per-run overhead decomposition (all µs of summed durations)."""

    mm_alloc_us: float = 0.0    #: pool allocate/free durations
    mm_copy_us: float = 0.0     #: mapping-induced transfer durations
    prefault_us: float = 0.0    #: svm_attributes_set durations (Eager)
    mi_us: float = 0.0          #: XNACK fault stalls inside kernels
    kernel_compute_us: float = 0.0
    wait_us: float = 0.0        #: host time blocked in signal waits
    n_kernels: int = 0
    n_map_enters: int = 0
    n_map_exits: int = 0
    n_faulted_pages: int = 0
    h2d_bytes: int = 0          #: mapping-induced host-to-device bytes
    d2h_bytes: int = 0          #: mapping-induced device-to-host bytes
    shadow_bytes: int = 0       #: global shadow-copy refresh bytes (IZC/Eager)

    @property
    def mm_us(self) -> float:
        """Total memory-management overhead (Table III's MM).

        For Eager Maps the prefault syscalls *are* the mapping cost, so
        they count here; for other configurations ``prefault_us`` is zero.
        """
        return self.mm_alloc_us + self.mm_copy_us + self.prefault_us

    def merge(self, other: "RunLedger") -> "RunLedger":
        out = RunLedger()
        for f in self.__dataclass_fields__:
            setattr(out, f, getattr(self, f) + getattr(other, f))
        return out

    def summary(self) -> dict:
        return {
            "MM_us": self.mm_us,
            "MM_alloc_us": self.mm_alloc_us,
            "MM_copy_us": self.mm_copy_us,
            "prefault_us": self.prefault_us,
            "MI_us": self.mi_us,
            "kernel_compute_us": self.kernel_compute_us,
            "wait_us": self.wait_us,
            "n_kernels": self.n_kernels,
            "n_faulted_pages": self.n_faulted_pages,
            "h2d_bytes": self.h2d_bytes,
            "d2h_bytes": self.d2h_bytes,
            "shadow_bytes": self.shadow_bytes,
        }


class KernelTrace:
    """Optional per-kernel record collection (LIBOMPTARGET_KERNEL_TRACE).

    Disabled by default for big runs; when enabled it keeps every
    :class:`KernelRecord` so analyses can ask questions like "how much
    fault stall did the first hundred launches absorb" (§V.A.4).
    """

    def __init__(self, enabled: bool = False, max_records: Optional[int] = None):
        self.enabled = enabled
        self.max_records = max_records
        self.records: List["KernelRecord"] = []
        self.dropped = 0

    def record(self, rec: "KernelRecord") -> None:
        if not self.enabled:
            return
        if self.max_records is not None and len(self.records) >= self.max_records:
            self.dropped += 1
            return
        self.records.append(rec)

    def total_fault_stall_us(self, first_n: Optional[int] = None) -> float:
        recs = self.records[:first_n] if first_n else self.records
        return sum(r.fault_stall_us for r in recs)

    def total_compute_us(self) -> float:
        return sum(r.compute_us for r in self.records)

    def __len__(self) -> int:
        return len(self.records)

"""The traced HSA/ROCr runtime facade.

Everything the OpenMP plugin does to the hardware flows through this
class, so the rocprof-style trace it feeds is complete by construction.
Call names match the paper's Table I (leading ``hsa_``/``hsa_amd_``
prefixes dropped, as in the paper): ``signal_wait_scacquire``,
``memory_pool_allocate``, ``memory_async_copy``, ``signal_async_handler``,
``svm_attributes_set``.

Methods that consume simulated time are generators meant to be driven with
``yield from`` inside a host-thread process; operations that proceed
asynchronously (SDMA copies, kernel dispatches) spawn their own process
and hand back a :class:`Signal`.

Fixed uncontended delays are charged via ``env.charge(us)`` rather than
``env.timeout(us)``: back-to-back HSA calls on a host thread fuse into a
single clock adjustment with no heap traffic, and the engine settles the
accumulator before any resource acquire, signal wait or ``env.now`` read,
so every traced timestamp is identical to the per-timeout engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..core.params import CostModel
from ..driver.kfd import Kfd, PrefaultResult
from ..driver.syscall import SyscallModel
from ..memory.layout import AddressRange
from ..sim import AllOf, Environment, Jitter, Resource, RngHub
from ..trace.hsa_trace import HsaTrace
from .memory_pool import MemoryPool
from .signals import Signal

__all__ = ["HsaRuntime", "KernelRecord"]


@dataclass(frozen=True)
class KernelRecord:
    """Completion record carried on a kernel's signal."""

    name: str
    submit_us: float
    start_us: float
    end_us: float
    compute_us: float
    fault_stall_us: float
    n_faults: int

    @property
    def queue_wait_us(self) -> float:
        return self.start_us - self.submit_us


def _functional_copy(dst: np.ndarray, src: np.ndarray) -> None:
    """Move payload data; sizes may differ (modeled >> payload)."""
    n = min(dst.size, src.size)
    if n:
        dst.reshape(-1)[:n] = src.reshape(-1)[:n]


class HsaRuntime:
    """One GPU agent's ROCr runtime: pools, engines, queues, signals."""

    def __init__(
        self,
        env: Environment,
        cost: CostModel,
        driver: Kfd,
        trace: HsaTrace,
        rng_hub: Optional[RngHub] = None,
    ):
        self.env = env
        self.cost = cost
        self.driver = driver
        self.trace = trace
        hub = rng_hub or RngHub(0)
        # one correlated machine-state factor for the whole run
        speed = 1.0
        if cost.run_sigma > 0.0:
            speed = float(np.exp(hub.stream("machine").normal(0.0, cost.run_sigma)))
        self.speed = speed
        self.op_jitter = Jitter(
            hub.stream("hsa.ops"), sigma=cost.jitter_sigma, scale=speed
        )
        syscall_jitter = Jitter(
            hub.stream("hsa.syscalls"),
            sigma=cost.jitter_sigma,
            tail_p=cost.syscall_tail_p,
            tail_scale_us=cost.syscall_tail_scale_us,
            scale=speed,
        )
        self.syscalls = SyscallModel(env, cost.syscall_base_us, syscall_jitter)
        self.pool = MemoryPool(cost, driver)
        self.sdma = Resource(env, capacity=cost.n_sdma_engines, name="sdma")
        self.queues = Resource(env, capacity=cost.n_gpu_queues, name="gpu-queues")
        self.kernels_dispatched = 0
        #: optional segment-boundary callback (``repro.sim.macro``): pool
        #: allocations and SDMA copies mark phase boundaries for the
        #: macro engine's steady-state segment detection.  None when no
        #: macro executor is attached.
        self.on_boundary = None

    # ------------------------------------------------------------------
    # memory pool
    # ------------------------------------------------------------------
    def memory_pool_allocate(self, nbytes: int):
        """(generator) Allocate device-pool memory; returns the range."""
        if self.on_boundary is not None:
            self.on_boundary("memory_pool_allocate")
        t0 = self.env.now
        rng, dur, _cached = self.pool.allocate(nbytes)
        dur = self.op_jitter.apply(dur)
        yield self.env.charge(dur)
        self.trace.record("memory_pool_allocate", t0, dur)
        return rng

    def memory_pool_free(self, rng: AddressRange):
        """(generator) Free device-pool memory."""
        if self.on_boundary is not None:
            self.on_boundary("memory_pool_free")
        t0 = self.env.now
        dur = self.op_jitter.apply(self.pool.free(rng))
        yield self.env.charge(dur)
        self.trace.record("memory_pool_free", t0, dur)

    # ------------------------------------------------------------------
    # copies
    # ------------------------------------------------------------------
    def memory_async_copy(
        self,
        dst: Optional[np.ndarray],
        src: Optional[np.ndarray],
        nbytes: int,
        tag: str = "",
    ) -> Signal:
        """Submit an SDMA copy; returns its completion signal.

        The traced latency spans submit→complete, so engine queueing under
        multi-threaded load shows up in Table I's latency ratios exactly as
        it does under rocprof.
        """
        if nbytes < 0:
            raise ValueError(f"negative copy size {nbytes}")
        if self.on_boundary is not None:
            self.on_boundary("memory_async_copy")
        sig = Signal(self.env, tag=tag or "copy")
        t_submit = self.env.now

        def _copy_proc():
            grant = yield self.sdma.acquire()
            try:
                dur = self.op_jitter.apply(self.cost.copy_us(nbytes))
                yield self.env.charge(dur)
                if dst is not None and src is not None:
                    _functional_copy(dst, src)
            finally:
                self.sdma.release(grant)
            self.trace.record("memory_async_copy", t_submit, self.env.now - t_submit, tag=tag)
            sig.complete()

        self.env.process(_copy_proc(), name=f"sdma:{tag}")
        return sig

    def attach_async_handler(self, sig: Signal) -> None:
        """Complete a copy via the async-handler path (no host wait).

        Legacy Copy uses this for host-to-device transfers that a later
        barrier wait covers; each handler invocation is traced as
        ``signal_async_handler`` (zero-copy configurations never use it —
        the paper prints N/A for them in Table I).
        """

        def _handler_proc():
            yield sig.event
            dur = self.op_jitter.apply(self.cost.signal_handler_us)
            yield self.env.charge(dur)
            self.trace.record("signal_async_handler", sig.completed_at, dur, tag=sig.tag)

        self.env.process(_handler_proc(), name="async-handler")

    # ------------------------------------------------------------------
    # signal waits
    # ------------------------------------------------------------------
    def signal_wait_scacquire(self, sig: Signal):
        """(generator) Block until the signal completes.

        Traced latency is the blocked duration — dominated by kernel time
        for kernel-completion waits, which is why the paper's Copy/IZC
        latency ratio for this call (2.07–2.71) is far smaller than its
        call-count ratio.
        """
        t0 = self.env.now
        yield sig.event
        base = self.op_jitter.apply(self.cost.signal_wait_base_us)
        yield self.env.charge(base)
        self.trace.record("signal_wait_scacquire", t0, self.env.now - t0)

    def signal_wait_scacquire_all(self, sigs: Sequence[Signal]):
        """(generator) One barrier wait over several signals (one traced
        scacquire call, as when waiting a completion-signal barrier)."""
        t0 = self.env.now
        pending = [s.event for s in sigs if not s.done]
        if pending:
            yield AllOf(self.env, pending)
        base = self.op_jitter.apply(self.cost.signal_wait_base_us)
        yield self.env.charge(base)
        self.trace.record("signal_wait_scacquire", t0, self.env.now - t0)

    # ------------------------------------------------------------------
    # Eager-Maps prefault
    # ------------------------------------------------------------------
    def svm_attributes_set(self, rng: AddressRange):
        """(generator) GPU page-table prefault ioctl over a host range.

        Returns the driver's :class:`PrefaultResult`.
        """
        t0 = self.env.now
        res: PrefaultResult = self.driver.prefault(rng)
        extra = max(0.0, self.cost.prefault_call_us - self.cost.syscall_base_us)
        dur = self.syscalls.duration(extra + res.work_us)
        yield self.env.charge(dur)
        self.trace.record("svm_attributes_set", t0, dur)
        return res

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------
    def dispatch_kernel(
        self,
        name: str,
        compute_us: float,
        fn: Optional[Callable[[], None]] = None,
        fault_ranges: Optional[List[AddressRange]] = None,
        on_complete: Optional[Callable[[KernelRecord], None]] = None,
    ) -> Signal:
        """Submit a kernel; returns its completion signal.

        ``fault_ranges`` are the host ranges the kernel touches through
        unified memory: any page without a GPU translation triggers the
        XNACK-replay protocol *while the kernel runs*, extending its
        duration (the MI overhead of Table III).  ``fn`` is the functional
        payload, executed at kernel completion.
        """
        if compute_us < 0:
            raise ValueError(f"negative kernel time {compute_us}")
        sig = Signal(self.env, tag=name)
        t_submit = self.env.now
        self.kernels_dispatched += 1

        def _kernel_proc():
            grant = yield self.queues.acquire()
            t_start = self.env.now
            try:
                fr = self.driver.service_xnack_faults(fault_ranges or [])
                dur = self.op_jitter.apply(
                    self.cost.dispatch_us + compute_us + fr.stall_us
                )
                yield self.env.charge(dur)
                if fn is not None:
                    fn()
            finally:
                self.queues.release(grant)
            rec = KernelRecord(
                name=name,
                submit_us=t_submit,
                start_us=t_start,
                end_us=self.env.now,
                compute_us=compute_us,
                fault_stall_us=fr.stall_us,
                n_faults=fr.n_faults,
            )
            if on_complete is not None:
                on_complete(rec)
            sig.complete(rec)

        self.env.process(_kernel_proc(), name=f"kernel:{name}")
        return sig

"""ROCr memory pool: "device" allocations on an APU.

On MI300A there is no separate device memory: "the driver invokes the OS
memory allocator to fulfill the request" (§III.B).  What the pool adds is
*reuse*: freed blocks up to a retention threshold stay in the pool's
free-lists and are handed back without driver work, while very large
blocks (the GB-scale allocations of 457.spC / 470.bt) are returned to the
driver and must be re-created — with bulk page-table mapping and zeroing —
on every allocation cycle.  This split is what makes steady-state QMCPack
pool allocations ~100× cheaper than first-time ones (Table I latency
ratios) while keeping spC's allocations painfully slow every cycle (§V.B).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.params import CostModel
from ..driver.kfd import Kfd
from ..memory.layout import AddressRange, align_up

__all__ = ["MemoryPool"]


class MemoryPool:
    """Size-bucketed free-list over driver bulk-mapped memory."""

    def __init__(self, cost: CostModel, driver: Kfd):
        self.cost = cost
        self.driver = driver
        self._buckets: Dict[int, List[AddressRange]] = {}
        self._live: Dict[int, AddressRange] = {}
        # statistics
        self.cache_hits = 0
        self.cache_misses = 0
        self.bytes_retained = 0

    def _bucket_size(self, nbytes: int) -> int:
        return align_up(max(nbytes, 1), self.cost.page_size)

    # -- allocate / free ------------------------------------------------------
    def allocate(self, nbytes: int) -> Tuple[AddressRange, float, bool]:
        """Allocate ``nbytes``; returns (range, duration_us, from_cache).

        Cache hits cost only the base allocation bookkeeping; misses grow
        the pool through the driver (frames + bulk GPU mapping + zeroing).
        """
        if nbytes <= 0:
            raise ValueError(f"pool allocation must be positive, got {nbytes}")
        bucket = self._bucket_size(nbytes)
        free = self._buckets.get(bucket)
        if free:
            rng = free.pop()
            self.cache_hits += 1
            self.bytes_retained -= bucket
            out = AddressRange(rng.start, nbytes)
            self._live[out.start] = AddressRange(out.start, bucket)
            return out, self.cost.pool_alloc_base_us, True
        self.cache_misses += 1
        grown, driver_us = self.driver.bulk_map_new_memory(bucket)
        out = AddressRange(grown.start, nbytes)
        self._live[out.start] = AddressRange(out.start, bucket)
        return out, self.cost.pool_alloc_base_us + driver_us, False

    def free(self, rng: AddressRange) -> float:
        """Free an allocation; returns the operation duration.

        Blocks at or below ``pool_retain_max_bytes`` return to the bucket
        cache; larger ones are released to the driver.
        """
        backing = self._live.pop(rng.start, None)
        if backing is None:
            raise ValueError(f"pool free of unknown range {rng}")
        bucket = backing.nbytes
        if bucket <= self.cost.pool_retain_max_bytes:
            self._buckets.setdefault(bucket, []).append(backing)
            self.bytes_retained += bucket
            return self.cost.pool_free_base_us
        release_us = self.driver.release_pool_memory(backing)
        return self.cost.pool_free_base_us + release_us

    # -- introspection ---------------------------------------------------------
    @property
    def live_bytes(self) -> int:
        return sum(r.nbytes for r in self._live.values())

    def drain(self) -> float:
        """Release every retained block to the driver (pool teardown)."""
        total = 0.0
        for blocks in self._buckets.values():
            for rng in blocks:
                total += self.driver.release_pool_memory(rng)
        self._buckets.clear()
        self.bytes_retained = 0
        return total

"""HSA/ROCr runtime model: pools, signals, SDMA copies, kernel dispatch."""

from .api import HsaRuntime, KernelRecord
from .memory_pool import MemoryPool
from .signals import Signal

__all__ = ["HsaRuntime", "KernelRecord", "MemoryPool", "Signal"]

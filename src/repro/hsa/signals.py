"""HSA signals: completion objects for kernels and async copies.

ROCr exposes signals as the synchronization primitive for everything the
paper traces: kernel completion (``signal_wait_scacquire``) and async
memory copies (either waited on or completed through
``signal_async_handler``).  A signal here wraps one engine event plus
bookkeeping for the trace layer.
"""

from __future__ import annotations

from typing import Any, Optional

from ..sim import Environment, Event

__all__ = ["Signal"]


class Signal:
    """A one-shot completion signal."""

    __slots__ = ("env", "event", "created_at", "completed_at", "tag")

    def __init__(self, env: Environment, tag: str = ""):
        self.env = env
        self.event: Event = env.event()
        self.created_at = env.now
        self.completed_at: Optional[float] = None
        self.tag = tag

    @property
    def done(self) -> bool:
        return self.event.triggered

    @property
    def value(self) -> Any:
        return self.event.value

    def complete(self, value: Any = None) -> None:
        self.completed_at = self.env.now
        self.event.succeed(value)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Signal {self.tag!r} done={self.done}>"

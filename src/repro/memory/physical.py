"""Physical HBM model: a frame allocator over the unified store.

On MI300A all eight HBM stacks form one logical memory visible to both the
CPU cores and the XCDs (paper Fig. 1).  We model it as a pool of physical
*frames* at huge-page granularity.  The interesting outputs are footprint
accounting: the Legacy Copy configuration allocates device-side frames for
memory that already exists host-side, and the resulting duplication (paper
§III.B: "effectively results in unnecessary memory duplication") is
directly observable via :attr:`PhysicalMemory.bytes_in_use` /
:attr:`peak_bytes`.
"""

from __future__ import annotations

from typing import List

from .layout import GIB

__all__ = ["PhysicalMemory", "OutOfMemoryError"]


class OutOfMemoryError(MemoryError):
    """Raised when the HBM store cannot satisfy a frame allocation."""


class PhysicalMemory:
    """Frame allocator over a fixed-size physical store.

    Frames are identified by integer frame numbers; a free-list recycles
    released frames so long-running simulations do not leak identifiers.
    Frame *contents* are not stored here — functional data lives in numpy
    payloads on buffers — so the allocator is O(1) per operation.
    """

    def __init__(self, total_bytes: int = 128 * GIB, frame_bytes: int = 2 * 1024 * 1024):
        if total_bytes <= 0 or frame_bytes <= 0 or total_bytes % frame_bytes:
            raise ValueError("total_bytes must be a positive multiple of frame_bytes")
        self.total_bytes = total_bytes
        self.frame_bytes = frame_bytes
        self.total_frames = total_bytes // frame_bytes
        self._next_fresh = 0
        self._free: List[int] = []
        self._in_use = 0
        self.peak_frames = 0
        self.alloc_count = 0
        self.free_count = 0

    # -- accounting ----------------------------------------------------------
    @property
    def frames_in_use(self) -> int:
        return self._in_use

    @property
    def bytes_in_use(self) -> int:
        return self._in_use * self.frame_bytes

    @property
    def peak_bytes(self) -> int:
        return self.peak_frames * self.frame_bytes

    @property
    def frames_free(self) -> int:
        return self.total_frames - self._in_use

    # -- allocation ------------------------------------------------------------
    def alloc_frame(self) -> int:
        """Allocate one frame; returns its frame number."""
        if self._in_use >= self.total_frames:
            raise OutOfMemoryError(
                f"HBM exhausted: {self.total_frames} frames of {self.frame_bytes}B in use"
            )
        if self._free:
            frame = self._free.pop()
        else:
            frame = self._next_fresh
            self._next_fresh += 1
        self._in_use += 1
        self.alloc_count += 1
        if self._in_use > self.peak_frames:
            self.peak_frames = self._in_use
        return frame

    def alloc_frames(self, count: int) -> List[int]:
        """Allocate ``count`` frames in one batch.

        Same LIFO recycle order as ``count`` calls to :meth:`alloc_frame`
        (free list drained newest-first, then fresh identifiers), but
        without the per-frame bookkeeping loop — the bulk-map and
        allocation paths hand whole runs of frames to the page tables.
        """
        if count < 0:
            raise ValueError(f"negative frame count: {count}")
        if self._in_use + count > self.total_frames:
            raise OutOfMemoryError(
                f"HBM exhausted: need {count} frames, only {self.frames_free} free"
            )
        recycled = min(len(self._free), count)
        frames: List[int] = []
        if recycled:
            frames = self._free[-recycled:]
            frames.reverse()
            del self._free[-recycled:]
        fresh = count - recycled
        if fresh:
            frames.extend(range(self._next_fresh, self._next_fresh + fresh))
            self._next_fresh += fresh
        self._in_use += count
        self.alloc_count += count
        if self._in_use > self.peak_frames:
            self.peak_frames = self._in_use
        return frames

    def free_frame(self, frame: int) -> None:
        if frame < 0 or frame >= self._next_fresh:
            raise ValueError(f"unknown frame {frame}")
        self._in_use -= 1
        self.free_count += 1
        if self._in_use < 0:
            raise RuntimeError("double free detected: negative frame occupancy")
        self._free.append(frame)

    def free_frames(self, frames: List[int]) -> None:
        """Release a batch of frames (validated up front, one extend)."""
        for f in frames:
            if f < 0 or f >= self._next_fresh:
                raise ValueError(f"unknown frame {f}")
        self._in_use -= len(frames)
        self.free_count += len(frames)
        if self._in_use < 0:
            raise RuntimeError("double free detected: negative frame occupancy")
        self._free.extend(frames)

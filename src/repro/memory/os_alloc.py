"""OS-side virtual memory allocator (the malloc/mmap model).

Host allocations in the paper come from ordinary OS allocators; what
matters for the zero-copy study is *which pages exist where*:

* Allocation populates the **CPU page table** immediately (the benchmarks
  initialize their data host-side or via I/O before offloading, so host
  lazy-fault timing is never on the critical path; we charge a small
  per-page populate cost).
* Freeing returns a large block to the OS — glibc ``munmap``\\ s big
  allocations — so the virtual range is *retired*, its physical frames are
  released, and any GPU page-table entries are shot down.  Fresh
  allocations get fresh virtual addresses.  This is precisely the
  mechanism that makes 452.ep re-fault on the GPU after every
  allocate/initialize cycle and makes the spC/bt per-invocation stack
  arrays re-fault on every host function call (§V.B).

Two regions exist: a heap (malloc/mmap) and a stack region (per-invocation
automatic arrays).  Both are monotonic bump allocators over page-aligned
ranges; determinism and the retire-on-free semantics above are the point,
not fragmentation realism.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .layout import (
    HOST_HEAP_BASE,
    HOST_STACK_BASE,
    AddressRange,
    align_up,
)
from .pagetable import MapOrigin, PageTable
from .physical import PhysicalMemory

__all__ = ["OsAllocator", "AllocationError"]


class AllocationError(RuntimeError):
    """Raised for invalid alloc/free sequences."""


class OsAllocator:
    """Virtual allocator backed by :class:`PhysicalMemory` + the CPU
    page table.

    ``on_unmap`` is invoked with each freed range *before* frames are
    released — the driver hooks this to shoot down GPU page-table entries
    (a real ``mmu_notifier``).
    """

    def __init__(
        self,
        physical: PhysicalMemory,
        cpu_pagetable: PageTable,
        on_unmap: Optional[Callable[[AddressRange], None]] = None,
        heap_base: int = HOST_HEAP_BASE,
        stack_base: int = HOST_STACK_BASE,
    ):
        self.physical = physical
        self.cpu_pt = cpu_pagetable
        self.page_size = cpu_pagetable.page_size
        self.on_unmap = on_unmap
        self._heap_cursor = heap_base
        self._stack_cursor = stack_base
        self._live: Dict[int, AddressRange] = {}
        self.alloc_count = 0
        self.free_count = 0

    # -- allocation ---------------------------------------------------------
    def alloc(self, nbytes: int, region: str = "heap") -> AddressRange:
        """Allocate a page-aligned virtual range and populate the CPU PT.

        ``region`` is ``"heap"`` (malloc/mmap) or ``"stack"`` (automatic
        per-invocation arrays).  Returns the new range.
        """
        if nbytes <= 0:
            raise AllocationError(f"allocation size must be positive, got {nbytes}")
        size = align_up(nbytes, self.page_size)
        if region == "heap":
            start = self._heap_cursor
            self._heap_cursor += size
        elif region == "stack":
            start = self._stack_cursor
            self._stack_cursor += size
        else:
            raise AllocationError(f"unknown region {region!r}")
        rng = AddressRange(start, nbytes)
        frames = self.physical.alloc_frames(rng.n_pages(self.page_size))
        self.cpu_pt.install_range(rng, frames, MapOrigin.OS_TOUCH)
        self._live[start] = rng
        self.alloc_count += 1
        return rng

    def free(self, rng: AddressRange) -> None:
        """Release a range: GPU shootdown hook, CPU PT eviction, frame free.

        The virtual addresses are retired, never reused.
        """
        live = self._live.pop(rng.start, None)
        if live is None or live.nbytes != rng.nbytes:
            raise AllocationError(f"free of unknown or mismatched range {rng}")
        if self.on_unmap is not None:
            self.on_unmap(rng)
        n, frames = self.cpu_pt.evict_range_frames(rng)
        if n != rng.n_pages(self.page_size):
            raise AllocationError(
                f"free of {rng} found only {n} CPU translations"
            )
        self.physical.free_frames(frames)
        self.free_count += 1

    # -- queries -----------------------------------------------------------
    def is_live(self, rng: AddressRange) -> bool:
        live = self._live.get(rng.start)
        return live is not None and live.nbytes == rng.nbytes

    def live_ranges(self) -> List[AddressRange]:
        return list(self._live.values())

    @property
    def live_bytes(self) -> int:
        return sum(r.nbytes for r in self._live.values())

    def populate_cost_pages(self, nbytes: int) -> int:
        """Number of pages an allocation of ``nbytes`` populates (for the
        host-side populate latency charge)."""
        return AddressRange(0, nbytes).n_pages(self.page_size) if nbytes else 0

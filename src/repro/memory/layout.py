"""Address-space geometry: pages, alignment, virtual address ranges.

The MI300A exposes one physical HBM store to both CPU and GPU, but the
*virtual* layout still matters: the paper's mechanisms are all phrased in
terms of pages (XNACK replay is per page, prefaulting is per page, THP
changes the page size both configurations operate at).  Everything here is
pure arithmetic — no simulation time, no state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "PAGE_4K",
    "PAGE_2M",
    "AddressRange",
    "align_up",
    "align_down",
    "page_base",
    "page_span",
    "pages_in",
    "HOST_HEAP_BASE",
    "HOST_STACK_BASE",
    "DEVICE_POOL_BASE",
]

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Base (small) page size used when Transparent Huge Pages are off.
PAGE_4K = 4 * KIB
#: Huge page size; the paper runs all experiments with THP on (§V).
PAGE_2M = 2 * MIB

#: Virtual regions.  Host OS allocations (malloc/mmap) grow upward from the
#: heap base; per-thread stack allocations live in a distinct region so the
#: stack-reuse semantics of spC/bt are visible in traces; ROCr "device"
#: pool allocations get their own window, mirroring how the real driver
#: carves GPU VA space even though the backing store is the same HBM.
HOST_HEAP_BASE = 0x7F00_0000_0000
HOST_STACK_BASE = 0x7FFF_0000_0000
DEVICE_POOL_BASE = 0x7400_0000_0000


def align_up(value: int, alignment: int) -> int:
    """Smallest multiple of ``alignment`` that is >= ``value``."""
    if alignment <= 0 or alignment & (alignment - 1):
        raise ValueError(f"alignment must be a power of two, got {alignment}")
    return (value + alignment - 1) & ~(alignment - 1)


def align_down(value: int, alignment: int) -> int:
    """Largest multiple of ``alignment`` that is <= ``value``."""
    if alignment <= 0 or alignment & (alignment - 1):
        raise ValueError(f"alignment must be a power of two, got {alignment}")
    return value & ~(alignment - 1)


def page_base(addr: int, page_size: int) -> int:
    """Base address of the page containing ``addr``."""
    return align_down(addr, page_size)


def page_span(start: int, nbytes: int, page_size: int) -> tuple[int, int]:
    """(first_page_base, n_pages) covering ``[start, start+nbytes)``.

    A zero-length range covers zero pages.
    """
    if nbytes < 0:
        raise ValueError(f"negative span: {nbytes}")
    if nbytes == 0:
        return (page_base(start, page_size), 0)
    first = page_base(start, page_size)
    last = page_base(start + nbytes - 1, page_size)
    return (first, (last - first) // page_size + 1)


def pages_in(start: int, nbytes: int, page_size: int) -> Iterator[int]:
    """Iterate the base addresses of all pages overlapping the range."""
    first, count = page_span(start, nbytes, page_size)
    for i in range(count):
        yield first + i * page_size


@dataclass(frozen=True)
class AddressRange:
    """A half-open virtual address interval ``[start, start + nbytes)``."""

    start: int
    nbytes: int

    def __post_init__(self):
        if self.start < 0 or self.nbytes < 0:
            raise ValueError(f"invalid range start={self.start} nbytes={self.nbytes}")

    @property
    def end(self) -> int:
        return self.start + self.nbytes

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end

    def contains_range(self, other: "AddressRange") -> bool:
        return self.start <= other.start and other.end <= self.end

    def overlaps(self, other: "AddressRange") -> bool:
        return self.start < other.end and other.start < self.end

    def page_span(self, page_size: int) -> tuple[int, int]:
        return page_span(self.start, self.nbytes, page_size)

    def pages(self, page_size: int) -> Iterator[int]:
        return pages_in(self.start, self.nbytes, page_size)

    def n_pages(self, page_size: int) -> int:
        return self.page_span(page_size)[1]

    def __repr__(self) -> str:
        return f"AddressRange(0x{self.start:x}, {self.nbytes}B)"

"""Memory substrate: pages, page tables, physical HBM, OS allocator, buffers."""

from .buffers import DeviceBuffer, HostBuffer
from .layout import (
    DEVICE_POOL_BASE,
    GIB,
    HOST_HEAP_BASE,
    HOST_STACK_BASE,
    KIB,
    MIB,
    PAGE_2M,
    PAGE_4K,
    AddressRange,
    align_down,
    align_up,
    page_base,
    page_span,
    pages_in,
)
from .os_alloc import AllocationError, OsAllocator
from .pagetable import FlatPageTable, MapOrigin, PageTable, Pte
from .physical import OutOfMemoryError, PhysicalMemory

__all__ = [
    "AddressRange",
    "AllocationError",
    "DEVICE_POOL_BASE",
    "DeviceBuffer",
    "FlatPageTable",
    "GIB",
    "HOST_HEAP_BASE",
    "HOST_STACK_BASE",
    "HostBuffer",
    "KIB",
    "MIB",
    "MapOrigin",
    "OsAllocator",
    "OutOfMemoryError",
    "PAGE_2M",
    "PAGE_4K",
    "PageTable",
    "PhysicalMemory",
    "Pte",
    "align_down",
    "align_up",
    "page_base",
    "page_span",
    "pages_in",
]

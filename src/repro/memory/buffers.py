"""Buffers: the functional/timed duality at the heart of the reproduction.

Every buffer couples

* a **modeled extent** — a virtual :class:`AddressRange` whose size drives
  all timing (copy durations, page counts for faults and prefaults), with
* a **numpy payload** — real data that kernels actually read and write, so
  that OpenMP mapping semantics are executable and the four runtime
  configurations can be checked for bit-identical results.

The payload may be *smaller* than the modeled extent (a 12 GiB spline
table is modeled at full size but carries, say, a 64 Ki-element payload);
kernels are written against payloads and cost models against extents.
When the payload size equals the modeled size the two coincide exactly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .layout import AddressRange

__all__ = ["HostBuffer", "DeviceBuffer"]


class HostBuffer:
    """Host-allocated memory (OS allocator) with a functional payload."""

    __slots__ = ("name", "range", "payload", "region", "freed")

    def __init__(
        self,
        name: str,
        rng: AddressRange,
        payload: Optional[np.ndarray] = None,
        region: str = "heap",
    ):
        self.name = name
        self.range = rng
        if payload is None:
            # default payload: capped so huge modeled buffers stay cheap
            elems = min(max(rng.nbytes // 8, 1), 4096)
            payload = np.zeros(elems, dtype=np.float64)
        if payload.nbytes > rng.nbytes:
            raise ValueError(
                f"payload of {payload.nbytes}B exceeds modeled size {rng.nbytes}B"
            )
        self.payload = payload
        self.region = region
        self.freed = False

    @property
    def nbytes(self) -> int:
        """Modeled size in bytes (drives all timing)."""
        return self.range.nbytes

    def check_alive(self) -> None:
        if self.freed:
            raise RuntimeError(f"use-after-free of host buffer {self.name!r}")

    def __repr__(self) -> str:
        state = "freed" if self.freed else "live"
        return f"<HostBuffer {self.name!r} {self.nbytes}B {state}>"


class DeviceBuffer:
    """ROCr pool allocation shadowing a host buffer (Legacy Copy only).

    Carries its own payload array: under Copy, kernels operate on this
    copy, and the ``to``/``from`` map semantics transfer data between the
    two payloads.  The modeled extent lives in the device-pool VA window.
    """

    __slots__ = ("range", "payload", "freed")

    def __init__(self, rng: AddressRange, payload_like: np.ndarray):
        self.range = rng
        self.payload = np.zeros_like(payload_like)
        self.freed = False

    @property
    def nbytes(self) -> int:
        return self.range.nbytes

    def check_alive(self) -> None:
        if self.freed:
            raise RuntimeError("use-after-free of device buffer")

    def __repr__(self) -> str:
        state = "freed" if self.freed else "live"
        return f"<DeviceBuffer 0x{self.range.start:x} {self.nbytes}B {state}>"

"""Page tables for the CPU (OS) and GPU address-translation domains.

The paper's central mechanism (§III.B) is the asymmetry between the two
tables:

* the **CPU page table** is populated by the OS on host first-touch (or at
  allocation time in our model, since host-side lazy faulting is not a
  factor in any experiment);
* the **GPU page table** starts empty for OS-allocated memory.  Entries
  arrive either page-by-page via the XNACK-replay protocol while a kernel
  runs, in bulk when ROCr allocates "device" memory with XNACK disabled,
  or ahead of time via the Eager-Maps prefault syscall.

Translation state is *extent*-shaped in practice — every mechanism the
paper measures operates on contiguous runs of pages (a buffer prefault, a
bulk pool map, an mmu shootdown of a freed allocation), and even XNACK
replay faults arrive as contiguous spans of a kernel's touched ranges.
:class:`PageTable` therefore stores **coalesced interval runs**: a sorted
list of ``(start_page, frames, origin)`` extents with ``bisect``-based
lookup.  Batched operations (:meth:`install_range`, :meth:`evict_range`,
:meth:`missing_runs`, :meth:`coverage`) are O(log runs + touched runs)
instead of O(pages); the single-page API survives as thin wrappers so
existing callers and tests keep working unchanged.

PTEs record which mechanism installed them so traces can attribute MI
(memory initialization) cost to the right configuration behaviour
(Table III).  Per-page install/evict counters and the per-origin
histogram are maintained exactly as the historical flat-dict table did —
:class:`FlatPageTable` keeps that reference implementation alive for
differential tests and the ``repro bench`` micro-benchmarks.
"""

from __future__ import annotations

import enum
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .layout import AddressRange

__all__ = ["PageTable", "FlatPageTable", "Pte", "MapOrigin"]


class MapOrigin(enum.Enum):
    """How a PTE got into a page table."""

    OS_TOUCH = "os_touch"          # CPU-side fault / allocation-time populate
    XNACK_REPLAY = "xnack_replay"  # GPU-side fault while a kernel runs
    BULK_ALLOC = "bulk_alloc"      # driver bulk map at ROCr pool allocation
    PREFAULT = "prefault"          # Eager-Maps svm_attributes_set syscall


@dataclass
class Pte:
    """Page table entry: physical frame plus provenance."""

    frame: int
    origin: MapOrigin


class _Run:
    """One coalesced extent: ``len(frames)`` pages starting at ``start``.

    Frames within a run need not be physically contiguous (the frame
    allocator recycles a free list); virtual contiguity plus a shared
    origin is what allows coalescing.
    """

    __slots__ = ("start", "frames", "origin")

    def __init__(self, start: int, frames: List[int], origin: MapOrigin):
        self.start = start
        self.frames = frames
        self.origin = origin

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<run 0x{self.start:x} n={len(self.frames)} {self.origin.value}>"


class PageTable:
    """Single-level page table over huge (or base) pages, stored as runs.

    ``page_size`` is fixed per table instance; with THP on (the paper's
    setting) both CPU and GPU tables use 2 MiB pages.
    """

    def __init__(self, page_size: int, name: str = ""):
        if page_size <= 0 or page_size & (page_size - 1):
            raise ValueError(f"page_size must be a power of two, got {page_size}")
        self.page_size = page_size
        self.name = name or "pagetable"
        self._runs: List[_Run] = []
        self._starts: List[int] = []  # parallel to _runs, for bisect
        self._n_pages = 0
        # counters for trace/analysis (per *page*, exactly as the flat
        # table counted them)
        self.install_count = 0
        self.evict_count = 0

    def __len__(self) -> int:
        return self._n_pages

    def __contains__(self, page: int) -> bool:
        return self._find(page) is not None

    @property
    def run_count(self) -> int:
        """Number of coalesced extents currently stored."""
        return len(self._runs)

    # -- run plumbing ----------------------------------------------------
    def _run_end(self, run: _Run) -> int:
        return run.start + len(run.frames) * self.page_size

    def _find(self, page: int) -> Optional[Tuple[_Run, int]]:
        """(run, index-within-run) containing ``page``, or None."""
        if page % self.page_size:
            return None
        i = bisect_right(self._starts, page) - 1
        if i < 0:
            return None
        run = self._runs[i]
        if page >= self._run_end(run):
            return None
        return run, (page - run.start) // self.page_size

    def _overlapping(self, rng: AddressRange) -> Iterator[Tuple[int, _Run, int, int]]:
        """Yield ``(run_index, run, lo_idx, hi_idx)`` for every run that
        overlaps ``rng``, clipped to the range, in ascending order."""
        first, n = rng.page_span(self.page_size)
        if n == 0:
            return
        end = first + n * self.page_size
        i = bisect_right(self._starts, first) - 1
        if i < 0 or self._run_end(self._runs[i]) <= first:
            i += 1
        while i < len(self._runs):
            run = self._runs[i]
            if run.start >= end:
                break
            lo = max(run.start, first)
            hi = min(self._run_end(run), end)
            yield i, run, (lo - run.start) // self.page_size, (hi - run.start) // self.page_size
            i += 1

    # -- queries ---------------------------------------------------------
    def lookup(self, page: int) -> Optional[Pte]:
        hit = self._find(page)
        if hit is None:
            return None
        run, idx = hit
        return Pte(run.frames[idx], run.origin)

    def present(self, page: int) -> bool:
        return self._find(page) is not None

    def missing_pages(self, rng: AddressRange) -> List[int]:
        """Pages of ``rng`` with no translation in this table."""
        ps = self.page_size
        return [
            p
            for gap in self.missing_runs(rng)
            for p in range(gap.start, gap.end, ps)
        ]

    def present_pages(self, rng: AddressRange) -> List[int]:
        ps = self.page_size
        out: List[int] = []
        for _, run, lo, hi in self._overlapping(rng):
            base = run.start + lo * ps
            out.extend(range(base, base + (hi - lo) * ps, ps))
        return out

    def coverage(self, rng: AddressRange) -> Tuple[int, int]:
        """(present, missing) page counts over the range."""
        total = rng.n_pages(self.page_size)
        present = sum(hi - lo for _, _, lo, hi in self._overlapping(rng))
        return present, total - present

    def missing_runs(self, rng: AddressRange) -> List[AddressRange]:
        """Maximal contiguous untranslated extents of ``rng``, page
        aligned, in ascending order.  The batch-shaped complement of
        :meth:`missing_pages`."""
        first, n = rng.page_span(self.page_size)
        if n == 0:
            return []
        end = first + n * self.page_size
        out: List[AddressRange] = []
        cursor = first
        for _, run, lo, hi in self._overlapping(rng):
            lo_addr = run.start + lo * self.page_size
            if lo_addr > cursor:
                out.append(AddressRange(cursor, lo_addr - cursor))
            cursor = run.start + hi * self.page_size
        if cursor < end:
            out.append(AddressRange(cursor, end - cursor))
        return out

    def present_runs(
        self, rng: AddressRange
    ) -> List[Tuple[int, List[int], MapOrigin]]:
        """``(start_page, frames, origin)`` for every translated extent
        overlapping ``rng``, clipped to the range."""
        ps = self.page_size
        return [
            (run.start + lo * ps, run.frames[lo:hi], run.origin)
            for _, run, lo, hi in self._overlapping(rng)
        ]

    def frames_for(self, rng: AddressRange) -> List[int]:
        out: List[int] = []
        for _, run, lo, hi in self._overlapping(rng):
            out.extend(run.frames[lo:hi])
        return out

    def origins_histogram(self) -> Dict[MapOrigin, int]:
        hist: Dict[MapOrigin, int] = {}
        for run in self._runs:
            hist[run.origin] = hist.get(run.origin, 0) + len(run.frames)
        return hist

    def pages(self) -> Iterable[int]:
        ps = self.page_size
        for run in self._runs:
            yield from range(run.start, self._run_end(run), ps)

    # -- mutation -----------------------------------------------------------
    def install(self, page: int, frame: int, origin: MapOrigin) -> None:
        """Install a translation.  Installing over an existing entry is an
        error — every code path in the stack checks presence first, and a
        silent overwrite would hide accounting bugs."""
        if page % self.page_size:
            raise ValueError(f"page 0x{page:x} not aligned to {self.page_size}")
        self.install_range(AddressRange(page, self.page_size), [frame], origin)

    def install_range(
        self, rng: AddressRange, frames: Sequence[int], origin: MapOrigin
    ) -> int:
        """Install translations for every page of ``rng`` as one run.

        ``frames`` supplies one physical frame per covered page.  The new
        extent coalesces with virtually-adjacent neighbours of the same
        origin.  Any overlap with an existing translation raises
        ``KeyError`` (same contract as single-page :meth:`install`).
        Returns the number of pages installed.
        """
        ps = self.page_size
        first, n = rng.page_span(ps)
        if n != len(frames):
            raise ValueError(
                f"frame count {len(frames)} != page count {n} for {rng}"
            )
        if n == 0:
            return 0
        end = first + n * ps
        i = bisect_right(self._starts, first)
        prev = self._runs[i - 1] if i > 0 else None
        if prev is not None and self._run_end(prev) > first:
            raise KeyError(f"page 0x{first:x} already mapped in {self.name}")
        nxt = self._runs[i] if i < len(self._runs) else None
        if nxt is not None and nxt.start < end:
            raise KeyError(f"page 0x{nxt.start:x} already mapped in {self.name}")
        merge_prev = (
            prev is not None and self._run_end(prev) == first and prev.origin is origin
        )
        merge_next = nxt is not None and nxt.start == end and nxt.origin is origin
        if merge_prev and merge_next:
            prev.frames.extend(frames)
            prev.frames.extend(nxt.frames)
            del self._runs[i]
            del self._starts[i]
        elif merge_prev:
            prev.frames.extend(frames)
        elif merge_next:
            nxt.frames[:0] = frames
            nxt.start = first
            self._starts[i] = first
        else:
            self._runs.insert(i, _Run(first, list(frames), origin))
            self._starts.insert(i, first)
        self._n_pages += n
        self.install_count += n
        return n

    def evict(self, page: int) -> Pte:
        """Remove and return a translation (TLB shootdown / unmap)."""
        hit = self._find(page)
        if hit is None:
            raise KeyError(f"page 0x{page:x} not mapped in {self.name}")
        run, idx = hit
        pte = Pte(run.frames[idx], run.origin)
        self._evict_overlap(AddressRange(page, self.page_size))
        return pte

    def _evict_overlap(
        self, rng: AddressRange
    ) -> List[Tuple[int, List[int], MapOrigin]]:
        """Drop every translation overlapping ``rng``; partial overlaps
        split the run.  Returns evicted ``(start_page, frames, origin)``
        extents in page order."""
        ps = self.page_size
        spans = [
            (i, run, lo, hi) for i, run, lo, hi in self._overlapping(rng)
        ]
        out: List[Tuple[int, List[int], MapOrigin]] = []
        removed = 0
        # mutate from the back so earlier indices stay valid
        for i, run, lo, hi in reversed(spans):
            out.append((run.start + lo * ps, run.frames[lo:hi], run.origin))
            removed += hi - lo
            left = run.frames[:lo]
            right = run.frames[hi:]
            if left and right:
                right_start = run.start + hi * ps
                run.frames = left
                self._runs.insert(i + 1, _Run(right_start, right, run.origin))
                self._starts.insert(i + 1, right_start)
            elif left:
                run.frames = left
            elif right:
                run.start += hi * ps
                run.frames = right
                self._starts[i] = run.start
            else:
                del self._runs[i]
                del self._starts[i]
        out.reverse()
        self._n_pages -= removed
        self.evict_count += removed
        return out

    def evict_range(self, rng: AddressRange) -> List[Pte]:
        """Evict every present page of ``rng``; absent pages are skipped.

        One run-granular walk — no per-page membership probe followed by a
        second lookup in the evict itself."""
        return [
            Pte(frame, origin)
            for _, frames, origin in self._evict_overlap(rng)
            for frame in frames
        ]

    def evict_range_frames(self, rng: AddressRange) -> Tuple[int, List[int]]:
        """Batched evict returning ``(n_pages, frames)`` without
        materializing per-page PTE objects (the driver bulk paths only
        need the frames back)."""
        frames: List[int] = []
        for _, fr, _ in self._evict_overlap(rng):
            frames.extend(fr)
        return len(frames), frames


class FlatPageTable:
    """The historical flat ``Dict[page, Pte]`` page table.

    Kept as the reference implementation: ``repro bench`` measures the run
    engine against it, and the differential tests in
    ``tests/test_pagetable_runs.py`` assert observable-state parity
    between the two on randomized operation sequences.
    """

    def __init__(self, page_size: int, name: str = ""):
        if page_size <= 0 or page_size & (page_size - 1):
            raise ValueError(f"page_size must be a power of two, got {page_size}")
        self.page_size = page_size
        self.name = name or "pagetable"
        self._entries: Dict[int, Pte] = {}
        self.install_count = 0
        self.evict_count = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, page: int) -> bool:
        return page in self._entries

    @property
    def run_count(self) -> int:
        return len(self._entries)

    # -- queries ---------------------------------------------------------
    def lookup(self, page: int) -> Optional[Pte]:
        return self._entries.get(page)

    def present(self, page: int) -> bool:
        return page in self._entries

    def missing_pages(self, rng: AddressRange) -> List[int]:
        return [p for p in rng.pages(self.page_size) if p not in self._entries]

    def present_pages(self, rng: AddressRange) -> List[int]:
        return [p for p in rng.pages(self.page_size) if p in self._entries]

    def coverage(self, rng: AddressRange) -> Tuple[int, int]:
        present = missing = 0
        for p in rng.pages(self.page_size):
            if p in self._entries:
                present += 1
            else:
                missing += 1
        return present, missing

    def missing_runs(self, rng: AddressRange) -> List[AddressRange]:
        ps = self.page_size
        out: List[AddressRange] = []
        for p in self.missing_pages(rng):
            if out and out[-1].end == p:
                out[-1] = AddressRange(out[-1].start, out[-1].nbytes + ps)
            else:
                out.append(AddressRange(p, ps))
        return out

    def present_runs(
        self, rng: AddressRange
    ) -> List[Tuple[int, List[int], MapOrigin]]:
        out: List[Tuple[int, List[int], MapOrigin]] = []
        for p in rng.pages(self.page_size):
            pte = self._entries.get(p)
            if pte is None:
                continue
            if (
                out
                and out[-1][0] + len(out[-1][1]) * self.page_size == p
                and out[-1][2] is pte.origin
            ):
                out[-1][1].append(pte.frame)
            else:
                out.append((p, [pte.frame], pte.origin))
        return out

    def frames_for(self, rng: AddressRange) -> List[int]:
        return [
            self._entries[p].frame
            for p in rng.pages(self.page_size)
            if p in self._entries
        ]

    def origins_histogram(self) -> Dict[MapOrigin, int]:
        hist: Dict[MapOrigin, int] = {}
        for pte in self._entries.values():
            hist[pte.origin] = hist.get(pte.origin, 0) + 1
        return hist

    def pages(self) -> Iterable[int]:
        return self._entries.keys()

    # -- mutation -----------------------------------------------------------
    def install(self, page: int, frame: int, origin: MapOrigin) -> None:
        if page % self.page_size:
            raise ValueError(f"page 0x{page:x} not aligned to {self.page_size}")
        if page in self._entries:
            raise KeyError(f"page 0x{page:x} already mapped in {self.name}")
        self._entries[page] = Pte(frame, origin)
        self.install_count += 1

    def install_range(
        self, rng: AddressRange, frames: Sequence[int], origin: MapOrigin
    ) -> int:
        pages = list(rng.pages(self.page_size))
        if len(pages) != len(frames):
            raise ValueError(
                f"frame count {len(frames)} != page count {len(pages)} for {rng}"
            )
        for p in pages:  # atomic, like the run engine: check before install
            if p in self._entries:
                raise KeyError(f"page 0x{p:x} already mapped in {self.name}")
        for p, f in zip(pages, frames, strict=True):
            self._entries[p] = Pte(f, origin)
        self.install_count += len(pages)
        return len(pages)

    def evict(self, page: int) -> Pte:
        try:
            pte = self._entries.pop(page)
        except KeyError:
            raise KeyError(f"page 0x{page:x} not mapped in {self.name}") from None
        self.evict_count += 1
        return pte

    def evict_range(self, rng: AddressRange) -> List[Pte]:
        out = []
        for p in rng.pages(self.page_size):
            pte = self._entries.pop(p, None)
            if pte is not None:
                self.evict_count += 1
                out.append(pte)
        return out

    def evict_range_frames(self, rng: AddressRange) -> Tuple[int, List[int]]:
        frames = [pte.frame for pte in self.evict_range(rng)]
        return len(frames), frames

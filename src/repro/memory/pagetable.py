"""Page tables for the CPU (OS) and GPU address-translation domains.

The paper's central mechanism (§III.B) is the asymmetry between the two
tables:

* the **CPU page table** is populated by the OS on host first-touch (or at
  allocation time in our model, since host-side lazy faulting is not a
  factor in any experiment);
* the **GPU page table** starts empty for OS-allocated memory.  Entries
  arrive either page-by-page via the XNACK-replay protocol while a kernel
  runs, in bulk when ROCr allocates "device" memory with XNACK disabled,
  or ahead of time via the Eager-Maps prefault syscall.

The table is a flat dict keyed by page base address.  PTEs record which
mechanism installed them so traces can attribute MI (memory initialization)
cost to the right configuration behaviour (Table III).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from .layout import AddressRange

__all__ = ["PageTable", "Pte", "MapOrigin"]


class MapOrigin(enum.Enum):
    """How a PTE got into a page table."""

    OS_TOUCH = "os_touch"          # CPU-side fault / allocation-time populate
    XNACK_REPLAY = "xnack_replay"  # GPU-side fault while a kernel runs
    BULK_ALLOC = "bulk_alloc"      # driver bulk map at ROCr pool allocation
    PREFAULT = "prefault"          # Eager-Maps svm_attributes_set syscall


@dataclass
class Pte:
    """Page table entry: physical frame plus provenance."""

    frame: int
    origin: MapOrigin


class PageTable:
    """Single-level page table over huge (or base) pages.

    ``page_size`` is fixed per table instance; with THP on (the paper's
    setting) both CPU and GPU tables use 2 MiB pages.
    """

    def __init__(self, page_size: int, name: str = ""):
        if page_size <= 0 or page_size & (page_size - 1):
            raise ValueError(f"page_size must be a power of two, got {page_size}")
        self.page_size = page_size
        self.name = name or "pagetable"
        self._entries: Dict[int, Pte] = {}
        # counters for trace/analysis
        self.install_count = 0
        self.evict_count = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, page: int) -> bool:
        return page in self._entries

    # -- queries ---------------------------------------------------------
    def lookup(self, page: int) -> Optional[Pte]:
        return self._entries.get(page)

    def present(self, page: int) -> bool:
        return page in self._entries

    def missing_pages(self, rng: AddressRange) -> List[int]:
        """Pages of ``rng`` with no translation in this table."""
        return [p for p in rng.pages(self.page_size) if p not in self._entries]

    def present_pages(self, rng: AddressRange) -> List[int]:
        return [p for p in rng.pages(self.page_size) if p in self._entries]

    def coverage(self, rng: AddressRange) -> Tuple[int, int]:
        """(present, missing) page counts over the range."""
        present = missing = 0
        for p in rng.pages(self.page_size):
            if p in self._entries:
                present += 1
            else:
                missing += 1
        return present, missing

    # -- mutation -----------------------------------------------------------
    def install(self, page: int, frame: int, origin: MapOrigin) -> None:
        """Install a translation.  Installing over an existing entry is an
        error — every code path in the stack checks presence first, and a
        silent overwrite would hide accounting bugs."""
        if page % self.page_size:
            raise ValueError(f"page 0x{page:x} not aligned to {self.page_size}")
        if page in self._entries:
            raise KeyError(f"page 0x{page:x} already mapped in {self.name}")
        self._entries[page] = Pte(frame, origin)
        self.install_count += 1

    def evict(self, page: int) -> Pte:
        """Remove and return a translation (TLB shootdown / unmap)."""
        try:
            pte = self._entries.pop(page)
        except KeyError:
            raise KeyError(f"page 0x{page:x} not mapped in {self.name}") from None
        self.evict_count += 1
        return pte

    def evict_range(self, rng: AddressRange) -> List[Pte]:
        out = []
        for p in rng.pages(self.page_size):
            if p in self._entries:
                out.append(self.evict(p))
        return out

    def frames_for(self, rng: AddressRange) -> List[int]:
        return [
            self._entries[p].frame
            for p in rng.pages(self.page_size)
            if p in self._entries
        ]

    def origins_histogram(self) -> Dict[MapOrigin, int]:
        hist: Dict[MapOrigin, int] = {}
        for pte in self._entries.values():
            hist[pte.origin] = hist.get(pte.origin, 0) + 1
        return hist

    def pages(self) -> Iterable[int]:
        return self._entries.keys()

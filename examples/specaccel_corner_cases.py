#!/usr/bin/env python3
"""SPECaccel corner cases: when does zero-copy lose, and why?

Runs the five SPECaccel 2023 proxies under all configurations and prints
Table II (ratios) and Table III (MM/MI overhead decomposition), then
explains each benchmark's behaviour the way the paper's §V.B does.

Run:  python examples/specaccel_corner_cases.py          (~2-4 minutes)
      python examples/specaccel_corner_cases.py --quick  (scaled down)
"""

import sys

from repro.experiments import (
    render_table2,
    render_table3,
    table2_specaccel,
    table3_overheads,
)
from repro.workloads import Fidelity

EXPLANATIONS = """
Reading the results (paper §V.B):

403.stencil (≈0.99): Copy pays two grid transfers + a one-time pool
  allocation (MM ~1e5 µs); zero-copy instead absorbs first-touch XNACK
  replay for the multi-GiB grids inside the first kernels (MI ~1e6 µs).
  Over a ~100 s run that is a ~1 % loss.

404.lbm (≈1.05): one big initial transfer plus per-timestep parameter
  and field-store maps; Copy pays per-step copies and waits that
  zero-copy folds.  A small net win for zero-copy.

452.ep (0.89): allocates big buffers and initializes them *inside a
  target region*, every cycle, from fresh OS memory — so XNACK replay
  recurs every cycle under Implicit Z-C / USM.  Copy's pool memory is
  bulk-mapped at allocation time and cached, so its init kernels never
  fault.  Eager Maps prefaults per map (~25 µs/page instead of ~500) and
  recovers to ≈0.99.

457.spC (7.8) and 470.bt (4.9): GB-scale map alloc/delete every 13 (10)
  kernels.  The allocations exceed the ROCr pool's retention threshold,
  so Copy pays full driver work every cycle — tens of ms per allocation
  against kernels capped at ~6 % (30 %) of one allocation.  Zero-copy
  folds all of it.  Eager Maps wins outright because the per-invocation
  stack arrays re-fault under XNACK every host function call but are
  cheaply prefaulted by the eager path.
"""


def main():
    quick = "--quick" in sys.argv
    fidelity = Fidelity.BENCH if quick else Fidelity.FULL
    reps = 2 if quick else 3

    print(f"running SPECaccel proxies (fidelity={fidelity.value}, reps={reps}) ...")
    t2 = table2_specaccel(
        reps=reps, fidelity=fidelity, noise=True,
        progress=lambda msg: print(f"  {msg}"),
    )
    print()
    print(render_table2(t2))
    print()
    print("computing overhead decomposition (Table III) ...")
    t3 = table3_overheads(fidelity=fidelity)
    print()
    print(render_table3(t3))
    print(EXPLANATIONS)


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Multi-socket MI300A card: why thread/GPU affinity matters (§III.A).

The paper notes that multi-socket APU cards expose one GPU device per
socket and that programmers should "carefully select CPU and GPU thread
affinity (e.g., CPU thread running on a socket offloads to the GPU device
on the same socket)".  This example runs the same two-thread workload on
a 2-socket card with good and bad affinity, and shows the remote-HBM
penalty bad placement incurs.

Run:  python examples/multi_socket_affinity.py
"""

import numpy as np

from repro.memory import MIB
from repro.memory.buffers import HostBuffer
from repro.multisocket import ApuCard
from repro.omp import MapClause, MapKind

N_KERNELS = 200
KERNEL_US = 500.0
BUFFER_BYTES = 64 * MIB


def make_body(card, alloc_socket):
    """Thread body with memory explicitly placed on ``alloc_socket``."""

    def body(th, tid):
        rng = card.sockets[alloc_socket].os_alloc.alloc(BUFFER_BYTES)
        x = HostBuffer(f"x{tid}", rng, payload=np.ones(16))
        yield from th.target_enter_data([MapClause(x, MapKind.TO)])
        for _ in range(N_KERNELS):
            yield from th.target(
                "sweep", KERNEL_US,
                maps=[MapClause(x, MapKind.ALLOC)],
                fn=lambda a, g: a[f"x{tid}"].__imul__(1.0000001),
            )
        yield from th.target_exit_data([MapClause(x, MapKind.FROM)])

    return body


def run(label, plan_builder):
    card = ApuCard(n_sockets=2)
    plan = plan_builder(card)
    res = card.run(plan)
    print(
        f"  {label:<28}{res.elapsed_us / 1e3:>10.1f} ms"
        f"   remote-page fraction: {res.remote_page_fraction:.2f}"
    )
    return res.elapsed_us


def main():
    print("Two OpenMP host threads on a 2-socket MI300A card,")
    print(f"{N_KERNELS} kernels each over {BUFFER_BYTES // MIB} MiB of data:\n")

    good = run(
        "good affinity",
        lambda card: [
            (0, make_body(card, alloc_socket=0)),
            (1, make_body(card, alloc_socket=1)),
        ],
    )
    bad = run(
        "bad affinity (crossed)",
        lambda card: [
            (0, make_body(card, alloc_socket=1)),
            (1, make_body(card, alloc_socket=0)),
        ],
    )
    print(f"\n  cross-socket slowdown: {bad / good:.2f}x")
    print("\nEvery kernel in the crossed plan reads HBM on the other socket;")
    print("with first-touch NUMA placement and same-socket offload the")
    print("penalty disappears — the paper's affinity guidance (§III.A).")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""QMCPack NiO study: a compact version of the paper's Figs. 3 and 4.

Sweeps problem sizes and OpenMP host-thread counts for the QMCPack proxy
and prints the Copy/zero-copy steady-state time ratios, reproducing the
two headline trends of §V.A:

* more host threads sharing one device → bigger zero-copy advantage
  (Copy contends on the runtime's allocation lock and copy engines);
* bigger problems → smaller advantage (kernel time dominates).

Run:  python examples/qmcpack_study.py          (~2-3 minutes)
      python examples/qmcpack_study.py --quick  (subset, ~30 s)
"""

import sys

from repro.experiments import (
    ascii_chart,
    collect_qmcpack_grid,
    fig4_series,
    render_fig3,
    render_fig4,
)
from repro.workloads import Fidelity


def main():
    quick = "--quick" in sys.argv
    sizes = (2, 32) if quick else (2, 8, 32, 128)
    threads = (1, 8) if quick else (1, 2, 4, 8)

    print(f"collecting QMCPack grid: sizes={sizes}, threads={threads} ...\n")
    grid = collect_qmcpack_grid(
        sizes=sizes,
        threads=threads,
        fidelity=Fidelity.BENCH,
        reps=1,
        noise=False,
        progress=lambda msg: print(f"  running {msg}"),
    )
    print()
    print(render_fig3(grid))
    print()
    print(render_fig4(grid, threads=max(threads)))
    print()
    series = {
        cfg.label: pts for cfg, pts in fig4_series(grid, max(threads)).items()
    }
    print(ascii_chart(
        series,
        title=f"Fig. 4 shape ({max(threads)} threads)",
        x_label="NiO size",
        y_label="Copy / zero-copy ratio",
        y_floor=1.0,
    ))
    print()
    print("Reading the output:")
    print(" * every ratio > 1: zero-copy beats Legacy Copy on QMCPack")
    print(" * down a column (more threads): the ratio grows — Copy's extra")
    print("   runtime calls serialize across host threads (§V.A.2)")
    print(" * across Fig. 4 (bigger problems): the ratio falls toward ~1.2 —")
    print("   kernel execution starts dominating (§V.A.3)")
    print(" * Eager Maps trails Implicit Z-C below S128: per-map prefault")
    print("   syscalls outweigh the first-touch savings (§V.A.4)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Performance portability: one application, three deployments.

§IV.C makes Implicit Zero-Copy "the performance portable solution for
applications that are optimized for discrete GPUs": the *same binary*
runs as Copy on a discrete GPU and as zero-copy on an APU, with no source
changes — while an application compiled with the ``unified_shared_memory``
requirement can only deploy where unified memory is supported.

This example takes one QMCPack-style workload and deploys it to:

1. a discrete GPU (PCIe copies, Copy configuration selected);
2. an MI300A APU run with XNACK disabled (legacy Copy selected);
3. the same APU with XNACK enabled (Implicit Zero-Copy auto-selected).

The runtime configuration is chosen by the same environment-inspection
logic the paper describes (HSA_XNACK, APU detection) — the application
body never changes.

Run:  python examples/performance_portability.py
"""

from repro import ApuSystem, CostModel, OpenMPRuntime, RunEnvironment, select_config
from repro.workloads import Fidelity, QmcPackNio

DEPLOYMENTS = [
    (
        "discrete GPU (PCIe)",
        CostModel.discrete_gpu(),
        RunEnvironment(is_apu=False, hsa_xnack=False),
    ),
    (
        "MI300A, HSA_XNACK=0",
        CostModel(),
        RunEnvironment(is_apu=True, hsa_xnack=False),
    ),
    (
        "MI300A, HSA_XNACK=1",
        CostModel(),
        RunEnvironment(is_apu=True, hsa_xnack=True),
    ),
]


def main():
    print("One OpenMP application (QMCPack proxy, S8, 4 host threads)")
    print("deployed unchanged to three environments:\n")
    header = f"{'deployment':<24}{'selected configuration':<26}{'time (s)':>10}"
    print(header)
    print("-" * len(header))
    times = {}
    for name, cost, env in DEPLOYMENTS:
        config = select_config(env)
        workload = QmcPackNio(size=8, n_threads=4, fidelity=Fidelity.BENCH)
        system = ApuSystem(cost=cost)
        runtime = OpenMPRuntime(system, config)
        result = runtime.run(workload.make_body(), n_threads=4)
        times[name] = result.elapsed_us
        print(f"{name:<24}{config.label:<26}{result.elapsed_us / 1e6:>10.2f}")

    print()
    apu_copy = times["MI300A, HSA_XNACK=0"]
    apu_zc = times["MI300A, HSA_XNACK=1"]
    print(f"APU speedup from flipping HSA_XNACK on: {apu_copy / apu_zc:.2f}x")
    print("No source changes, no rebuild — the runtime detected the APU and")
    print("toggled zero-copy (§IV.C).  The same binary still runs correctly")
    print("on the discrete system, where mapping means copying.")


if __name__ == "__main__":
    main()

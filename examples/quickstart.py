#!/usr/bin/env python3
"""Quickstart: one OpenMP offload program under all four MI300A runtime
configurations.

Builds the paper's Fig. 2 example program — ``a[i] += b[i] * alpha`` with
a declare-target global — runs it under Copy, Unified Shared Memory,
Implicit Zero-Copy and Eager Maps, verifies the results are identical,
and prints what each configuration actually did (time, storage
operations, faults).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ALL_CONFIGS, ApuSystem, MapClause, MapKind, OpenMPRuntime
from repro.memory import MIB


def fig2_program(alpha_glob, n=1024):
    """The example program of paper Fig. 2, as a simulated thread body."""

    def body(th, tid):
        a = yield from th.alloc("a", 64 * MIB, payload=np.arange(float(n)))
        b = yield from th.alloc("b", 64 * MIB, payload=np.full(n, 2.0))
        # #pragma omp target teams loop map(tofrom: a) map(to: b) \
        #                               map(always, to: alpha)
        yield from th.update_global(alpha_glob)
        yield from th.target(
            "axpy",
            compute_us=500.0,
            maps=[MapClause(a, MapKind.TOFROM), MapClause(b, MapKind.TO)],
            fn=lambda args, g: args["a"].__iadd__(args["b"] * g["alpha"][0]),
            globals_used=[alpha_glob],
        )
        return a.payload.copy()

    return body


def main():
    print("Fig. 2 example program under the four runtime configurations\n")
    header = (
        f"{'configuration':<24}{'time (µs)':>12}{'pool allocs':>13}"
        f"{'copies':>9}{'faulted pages':>15}{'prefault µs':>13}"
    )
    print(header)
    print("-" * len(header))

    results = {}
    for config in ALL_CONFIGS:
        system = ApuSystem.mi300a()
        runtime = OpenMPRuntime(system, config)
        alpha = runtime.declare_target("alpha", np.array([3.0]))
        out = {}

        def body(th, tid, out=out, alpha=alpha):
            out["a"] = yield from fig2_program(alpha)(th, tid)

        res = runtime.run(body)
        results[config] = out["a"]
        tr = res.hsa_trace
        print(
            f"{config.label:<24}{res.elapsed_us:>12.1f}"
            f"{tr.count('memory_pool_allocate'):>13}"
            f"{tr.count('memory_async_copy'):>9}"
            f"{res.ledger.n_faulted_pages:>15}"
            f"{res.ledger.prefault_us:>13.1f}"
        )

    expected = np.arange(1024.0) + 2.0 * 3.0
    for config, a in results.items():
        assert np.array_equal(a, expected), config
    print("\nAll four configurations produced bit-identical results")
    print("(the paper's §IV: 'From an OpenMP semantics viewpoint, they are")
    print("all equivalent') — they differ only in where the time went.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Porting advisor: should *your* application change anything on MI300A?

The paper's second research question (§V): "Do I have to rewrite or
re-optimize/tune my application when moving to an APU?"  This example
shows how to answer it for an application you characterize yourself:
describe your app's offload pattern, and the advisor

1. runs **MapCheck** (``repro.check``) over the profile — the mapping
   sanitizer + portability lint — and reports any defect that would make
   the answer configuration-dependent (a program that only works because
   XNACK papers over a missing map clause ports *from* the APU badly);
2. runs **MapCost** (``repro.check.static.cost``) — the symbolic cost
   predictor — and cites the predicted per-configuration HSA call
   counts, copy bytes and fault pages *before any simulation runs*,
   plus any MC-W perf-lint pattern (map churn, fault storms, ...);
3. runs **MapFix** (``repro.check.static.fix``) — suggested
   remediations: each fix was applied to a scratch copy of this file,
   re-extracted and re-verified against the full rule catalog before
   being printed, and carries MapCost's predicted per-configuration
   cost delta; defects MapFix cannot mend mechanically come back as
   explicit refusals instead of guesses;
4. runs **MapPlace** (``repro.check.static.place``) — ranks candidate
   page placements (first-touch, interleave, pinned) for a 2-socket
   card by the statically predicted remote-link traffic, so you know
   the affinity story before buying the bigger card;
5. simulates the profile under every runtime configuration and reports
   which one wins and what the dominant overhead is.

Four canned profiles are analyzed (a streaming solver, an
allocation-churning solver, a first-touch-heavy Monte Carlo code, and a
lift-and-shift port that dropped its final copy-back); edit
``PROFILES`` to model your own.

Run:  python examples/porting_advisor.py
"""

from dataclasses import dataclass

import numpy as np

from repro import ALL_CONFIGS, MapClause, MapKind, RuntimeConfig
from repro.check import check_workload
from repro.experiments import execute
from repro.memory import GIB, KIB
from repro.workloads.base import Fidelity, Workload


@dataclass
class AppProfile:
    """A coarse offload characterization of an application."""

    name: str
    working_set_bytes: int       #: data mapped for the run
    kernels: int                 #: target launches
    kernel_us: float             #: mean kernel duration
    per_kernel_transfer_bytes: int  #: always-mapped parameter/result bytes
    remap_cycle: int             #: remap working set every N kernels (0=never)
    gpu_initializes_data: bool   #: first touch happens in a target region


PROFILES = [
    AppProfile("streaming-solver", 4 * GIB, 2000, 3000.0, 64 * KIB, 0, False),
    AppProfile("churning-solver", 3 * GIB, 1000, 2000.0, 64 * KIB, 10, False),
    AppProfile("mc-initializer", 8 * GIB, 3000, 400.0, 256 * KIB, 0, True),
]


class ProfiledApp(Workload):
    """Synthesizes an offload stream from an :class:`AppProfile`."""

    def __init__(self, profile: AppProfile):
        super().__init__(Fidelity.FULL)
        self.name = profile.name
        self.profile = profile

    def make_body(self):
        p = self.profile
        outputs = self.outputs

        def body(th, tid):
            data = yield from th.alloc("data", p.working_set_bytes,
                                       payload=np.zeros(64))
            par = yield from th.alloc("par", p.per_kernel_transfer_bytes,
                                      payload=np.ones(4))
            kind = MapKind.ALLOC if p.gpu_initializes_data else MapKind.TO
            yield from th.target_enter_data([MapClause(data, kind)])
            for k in range(p.kernels):
                if p.remap_cycle and k and k % p.remap_cycle == 0:
                    yield from th.target_exit_data(
                        [MapClause(data, MapKind.DELETE)]
                    )
                    yield from th.target_enter_data([MapClause(data, kind)])
                yield from th.target(
                    "step", p.kernel_us,
                    maps=[MapClause(data, MapKind.ALLOC),
                          MapClause(par, MapKind.TO, always=True)],
                    fn=lambda a, g: a["data"].__iadd__(g_scale(a)),
                )
            yield from th.target_exit_data([MapClause(data, MapKind.FROM)])
            outputs.put("data", data.payload.copy())

        def g_scale(a):
            return a["par"][0] * 0.001

        return body


class PortedLeakApp(Workload):
    """A lift-and-shift port: the final copy-back was dropped along with
    the ``cudaMemcpy`` calls it replaced — exactly the mechanical defect
    MapFix can mend (and verify) on its own."""

    def __init__(self, profile: AppProfile):
        super().__init__(Fidelity.FULL)
        self.name = profile.name
        self.profile = profile

    def make_body(self):
        p = self.profile
        outputs = self.outputs

        def body(th, tid):
            data = yield from th.alloc("data", p.working_set_bytes,
                                       payload=np.zeros(64))
            yield from th.target_enter_data([MapClause(data, MapKind.TO)])
            for _ in range(p.kernels):
                yield from th.target(
                    "step", p.kernel_us,
                    maps=[MapClause(data, MapKind.ALLOC)],
                    fn=lambda a, g: a["data"].__iadd__(0.001),
                )
            outputs.put("data", data.payload.copy())

        return body


#: the profile driving :class:`PortedLeakApp` in ``main``
LIFTED_PORT = AppProfile("lifted-port", GIB, 500, 1000.0, 64 * KIB, 0, False)


def lint_profile(profile: AppProfile, app_cls=ProfiledApp) -> bool:
    """MapCheck pass: is the profile's mapping portable at all?

    The differential runs are skipped (``cross_check=False``) because the
    advisor itself runs all four configurations right after — the timing
    table doubles as the confirmation evidence.
    """
    report = check_workload(
        lambda: app_cls(profile), profile.name, cross_check=False
    )
    if report.ok:
        print("  mapcheck: clean — the timing comparison below is "
              "apples-to-apples")
        return True
    print(f"  mapcheck: {len(report.findings)} finding(s) — fix these "
          "BEFORE trusting any timing comparison:")
    for f in report.sorted_findings():
        broken = ", ".join(c.label for c in f.breaks_under) or "none"
        print(f"    [{f.severity.value}] {f.rule_id} {f.rule.title} "
              f"({f.buffer}): breaks under {broken}")
    if report.aborted:
        print(f"    instrumented run aborted: {report.aborted}")
    return False


def predict_profile(profile: AppProfile, app_cls=ProfiledApp) -> None:
    """MapCost static phase: cite the predicted per-config costs.

    Everything printed here comes from the symbolic cost walk over the
    extracted IR — zero simulation events.  The timing table printed
    afterwards is the measured confirmation (the two agree bit-exactly
    on HSA call counts for resolvable patterns; see
    ``repro check --perf-json``).
    """
    from repro.check.static.cost import CostEnv, perf_report, predict_costs
    from repro.check.static.extract import ExtractionError, extract_workload
    from repro.experiments import render_cost_table

    try:
        ir = extract_workload(app_cls(profile), name=profile.name)
    except ExtractionError as exc:
        print(f"  mapcost: extraction failed ({exc}); skipping prediction")
        return
    predictions = {
        c: predict_costs(ir, CostEnv.for_config(c)) for c in ALL_CONFIGS
    }
    table = render_cost_table(profile.name, predictions)
    print("\n".join("  " + line for line in table.splitlines()))
    perf = perf_report(app_cls(profile), profile.name)
    for f in perf.sorted_findings():
        broken = ", ".join(c.label for c in f.breaks_under) or "none"
        print(f"  perf-lint {f.rule_id} {f.rule.title} ({f.buffer}): "
              f"pays the overhead under {broken}")


def rank_placements(profile: AppProfile, app_cls=ProfiledApp) -> None:
    """MapPlace phase: which page placement minimizes link traffic on a
    multi-socket card?

    Candidate placements are ranked by the *predicted* remote kernel
    bytes (then remote fault pages) under Implicit Zero-Copy on a
    2-socket card — pure static analysis over the same extracted IR,
    zero simulation events.  The differential
    (``repro check --place-json``) pins these predictions against the
    instrumented card telemetry.
    """
    from repro.check.static.cost import CostEnv
    from repro.check.static.extract import ExtractionError, extract_workload
    from repro.check.static.place import PlaceSpec, predict_place
    from repro.experiments import render_place_table

    try:
        ir = extract_workload(app_cls(profile), name=profile.name)
    except ExtractionError as exc:
        print(f"  mapplace: extraction failed ({exc}); skipping ranking")
        return
    env = CostEnv.for_config(RuntimeConfig.IMPLICIT_ZERO_COPY)
    candidates = [
        PlaceSpec(2, "first-touch"),
        PlaceSpec(2, "interleave"),
        PlaceSpec(2, "pinned", home=0),
        PlaceSpec(2, "pinned", home=1),
    ]
    ranked = sorted(
        ((spec, predict_place(ir, env, spec)) for spec in candidates),
        key=lambda item: (
            item[1].interval("remote_kernel_bytes").lo,
            item[1].interval("remote_kernel_bytes").hi is None,
            item[1].interval("remote_kernel_bytes").hi or 0,
            item[1].interval("remote_fault_pages").lo,
        ),
    )
    table = render_place_table(profile.name, ranked)
    print("\n".join("  " + line for line in table.splitlines()))
    best, _ = ranked[0]
    print(f"  mapplace: place pages '{best.label()}' when running this "
          "profile on a multi-socket card")


def remediate_profile(profile: AppProfile, app_cls=ProfiledApp) -> None:
    """MapFix phase: suggested remediations, sandbox-verified.

    Each suggestion was applied to a scratch copy of this very file,
    re-extracted and re-checked against the full rule catalog before
    being printed — the advisor never suggests an edit it could not
    verify.  The dynamic acceptance gate is skipped (``dynamic=False``)
    because the advisor's own timing table runs all four configurations
    anyway.  ``rebuild`` re-instantiates the profiled app from the
    patched module (the class takes the profile as an argument).
    """
    from repro.check.static.fix import remediate

    res = remediate(
        lambda: app_cls(profile), profile.name, dynamic=False,
        rebuild=lambda module: getattr(module, app_cls.__name__)(profile),
    )
    if res.status == "clean":
        print("  mapfix: no remediation needed")
        return
    for i, fix in enumerate(res.ranked_fixes(), 1):
        print(f"  mapfix suggestion {i}: [{fix.rule_id} {fix.buffer!r}] "
              f"{fix.description}")
        print(f"    predicted cost delta — {fix.delta_summary()}")
    for r in res.refusals:
        print(f"  mapfix refused: {r.render()}")
    if res.residual:
        print("  mapfix residual (needs a human): " + ", ".join(res.residual))


def advise(profile: AppProfile, app_cls=ProfiledApp) -> None:
    print(f"\n=== {profile.name} ===")
    portable = lint_profile(profile, app_cls)
    predict_profile(profile, app_cls)
    remediate_profile(profile, app_cls)
    rank_placements(profile, app_cls)
    times = {}
    details = {}
    for config in ALL_CONFIGS:
        res = execute(app_cls(profile), config)
        times[config] = res.elapsed_us
        details[config] = res.ledger
    best = min(times, key=times.get)
    base = times[RuntimeConfig.COPY]
    print(f"  {'configuration':<24}{'time (s)':>10}{'vs Copy':>9}"
          f"{'MM (s)':>9}{'MI (s)':>9}")
    for config in ALL_CONFIGS:
        led = details[config]
        marker = "  <-- best" if config is best else ""
        print(
            f"  {config.label:<24}{times[config] / 1e6:>10.2f}"
            f"{base / times[config]:>9.2f}"
            f"{led.mm_us / 1e6:>9.2f}{led.mi_us / 1e6:>9.2f}{marker}"
        )
    led = details[best]
    if not portable:
        print("  advice: resolve the MapCheck findings first — a mapping")
        print("  defect makes per-configuration timings incomparable (the")
        print("  configs are not computing the same thing).")
    elif best is RuntimeConfig.COPY:
        print("  advice: keep Copy semantics OR prefer Eager Maps — your app")
        print("  first-touches big memory on the GPU; plain zero-copy will")
        print("  absorb XNACK replay in your kernels.")
    elif led.prefault_us > 0:
        print("  advice: enable Eager Maps (OMPX eager prefaulting): your")
        print("  mapping pattern re-touches fresh pages.")
    else:
        print("  advice: run as-is — Implicit Zero-Copy is automatic on an")
        print("  APU with XNACK and your discrete-GPU optimizations do not")
        print("  hurt (§V conclusion).")


def main():
    print("Porting advisor — simulating your offload profile on MI300A")
    for profile in PROFILES:
        advise(profile)
    advise(LIFTED_PORT, app_cls=PortedLeakApp)


if __name__ == "__main__":
    main()

"""Tests for the SPECaccel 2023 proxies (repro.workloads.specaccel)."""

import numpy as np
import pytest

from repro.core import RuntimeConfig
from repro.experiments import execute
from repro.workloads import (
    ALL_BENCHMARKS,
    Bt470,
    Ep452,
    Fidelity,
    Lbm404,
    SpC457,
    Stencil403,
)

ALL_CONFIGS = [
    RuntimeConfig.COPY,
    RuntimeConfig.UNIFIED_SHARED_MEMORY,
    RuntimeConfig.IMPLICIT_ZERO_COPY,
    RuntimeConfig.EAGER_MAPS,
]


def run(cls, cfg, fidelity=Fidelity.TEST):
    wl = cls(fidelity=fidelity)
    res = execute(wl, cfg)
    return wl, res


# ---------------------------------------------------------------------------
# functional correctness
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", list(ALL_BENCHMARKS))
def test_functional_equivalence_all_configs(name):
    cls = ALL_BENCHMARKS[name]
    outs = {}
    for cfg in ALL_CONFIGS:
        wl, _ = run(cls, cfg)
        outs[cfg] = wl.outputs.values
    ref = outs[RuntimeConfig.COPY]
    for cfg, vals in outs.items():
        for k in ref:
            assert np.array_equal(np.asarray(ref[k]), np.asarray(vals[k])), (name, cfg, k)


def test_stencil_actually_relaxes():
    """The Jacobi payload does real work: heat diffuses off the boundary."""
    wl, _ = run(Stencil403, RuntimeConfig.IMPLICIT_ZERO_COPY)
    field = wl.outputs.get("field")
    assert field[0, 0] == 1.0  # boundary intact
    assert field[1, 1] > 0.0  # interior warmed up
    assert field[-2, -2] < field[1, 1]  # gradient away from the hot edge


def test_lbm_conserves_direction_of_relaxation():
    wl, _ = run(Lbm404, RuntimeConfig.COPY)
    assert np.isfinite(wl.outputs.get("flow_checksum"))


def test_ep_total_is_deterministic():
    wl1, _ = run(Ep452, RuntimeConfig.COPY)
    wl2, _ = run(Ep452, RuntimeConfig.COPY)
    assert wl1.outputs.get("total") == wl2.outputs.get("total")


# ---------------------------------------------------------------------------
# mechanism structure (fast fidelities; magnitudes are benched at FULL)
# ---------------------------------------------------------------------------


def test_stencil_copy_does_exactly_two_grid_transfers():
    wl, res = run(Stencil403, RuntimeConfig.COPY)
    # 3 init-image copies + begin (to) + end (from)
    assert res.hsa_trace.count("memory_async_copy") == 5


def test_stencil_zero_copy_pays_first_touch():
    _, res = run(Stencil403, RuntimeConfig.IMPLICIT_ZERO_COPY)
    assert res.ledger.mi_us > 0
    assert res.ledger.mm_copy_us == 0.0


def test_ep_faults_every_cycle():
    wl, res = run(Ep452, RuntimeConfig.IMPLICIT_ZERO_COPY)
    cycles = wl.cycles
    pages_per_batch = 192 * 1024 * 1024 // (2 * 1024 * 1024)
    assert res.ledger.n_faulted_pages >= cycles * pages_per_batch


def test_ep_copy_never_faults_and_reuses_pool():
    _, res = run(Ep452, RuntimeConfig.COPY)
    assert res.ledger.mi_us == 0.0
    # batch allocations after the first come from the pool cache
    rt_allocs = res.hsa_trace.count("memory_pool_allocate")
    assert rt_allocs < 40  # init (19) + table + batch + result buffers


def test_ep_eager_prefaults_instead():
    _, res_e = run(Ep452, RuntimeConfig.EAGER_MAPS)
    _, res_i = run(Ep452, RuntimeConfig.IMPLICIT_ZERO_COPY)
    assert res_e.ledger.mi_us == 0.0
    assert res_e.ledger.prefault_us > 0.0
    assert res_e.ledger.prefault_us < res_i.ledger.mi_us


def test_ep_ratio_direction_zero_copy_loses():
    _, rc = run(Ep452, RuntimeConfig.COPY)
    _, ri = run(Ep452, RuntimeConfig.IMPLICIT_ZERO_COPY)
    _, re_ = run(Ep452, RuntimeConfig.EAGER_MAPS)
    assert rc.elapsed_us < ri.elapsed_us            # 0.89 direction
    assert re_.elapsed_us < ri.elapsed_us           # Eager recovers


def test_spc_gb_allocations_bypass_pool_cache():
    wl, res = run(SpC457, RuntimeConfig.COPY)
    # every cycle re-allocates the big arrays through the driver
    assert res.hsa_trace.count("memory_pool_allocate") >= 3 * wl.cycles


def test_spc_ratio_direction_zero_copy_wins_big():
    # BENCH fidelity: enough cycles to amortize the one-time first touch
    _, rc = run(SpC457, RuntimeConfig.COPY, Fidelity.BENCH)
    _, ri = run(SpC457, RuntimeConfig.IMPLICIT_ZERO_COPY, Fidelity.BENCH)
    assert rc.elapsed_us / ri.elapsed_us > 2.0


def test_spc_stack_arrays_refault_every_cycle():
    wl, res = run(SpC457, RuntimeConfig.IMPLICIT_ZERO_COPY)
    stack_pages_per_cycle = 3  # 3 × 2 MiB arrays = 1 page each
    assert res.ledger.n_faulted_pages >= wl.cycles * stack_pages_per_cycle


def test_spc_eager_beats_izc():
    """Table II: spC is best under Eager Maps (8.10 vs 7.80)."""
    _, ri = run(SpC457, RuntimeConfig.IMPLICIT_ZERO_COPY, Fidelity.BENCH)
    _, re_ = run(SpC457, RuntimeConfig.EAGER_MAPS, Fidelity.BENCH)
    assert re_.elapsed_us < ri.elapsed_us


def test_bt_ratio_direction():
    _, rc = run(Bt470, RuntimeConfig.COPY, Fidelity.BENCH)
    _, ri = run(Bt470, RuntimeConfig.IMPLICIT_ZERO_COPY, Fidelity.BENCH)
    _, re_ = run(Bt470, RuntimeConfig.EAGER_MAPS, Fidelity.BENCH)
    assert rc.elapsed_us / ri.elapsed_us > 1.5
    assert re_.elapsed_us < ri.elapsed_us


def test_bt_top_kernel_is_30pct_of_largest_alloc():
    """The paper's sizing invariant for 470.bt."""
    from repro.core import CostModel
    from repro.workloads.specaccel.bt import ARRAY_BYTES, TOP_KERNEL_US

    cost = CostModel()
    pages = ARRAY_BYTES[0] // cost.page_size
    alloc_us = pages * cost.pool_alloc_page_us
    assert TOP_KERNEL_US / alloc_us == pytest.approx(0.30, abs=0.02)


def test_spc_kernel_within_6pct_of_alloc():
    """§V.B: spC kernels take ≤6 % of a single allocation."""
    from repro.core import CostModel
    from repro.workloads.specaccel.spc import ARRAY_BYTES, KERNEL_US

    cost = CostModel()
    alloc_us = (ARRAY_BYTES // cost.page_size) * cost.pool_alloc_page_us
    assert KERNEL_US / alloc_us <= 0.06


def test_usm_equals_izc_for_all_benchmarks():
    """No SPEC proxy uses declare-target globals → USM ≡ Implicit Z-C."""
    for name, cls in ALL_BENCHMARKS.items():
        _, ru = run(cls, RuntimeConfig.UNIFIED_SHARED_MEMORY)
        _, ri = run(cls, RuntimeConfig.IMPLICIT_ZERO_COPY)
        assert ru.elapsed_us == pytest.approx(ri.elapsed_us, rel=1e-9), name

"""Unit tests for runtime-configuration selection (§IV.C + footnote 1)."""

import pytest

from repro.core import ConfigError, RunEnvironment, RuntimeConfig, select_config


def test_usm_app_on_apu_with_xnack():
    env = RunEnvironment(is_apu=True, hsa_xnack=True, app_requires_usm=True)
    assert select_config(env) is RuntimeConfig.UNIFIED_SHARED_MEMORY


def test_usm_app_without_xnack_is_an_error():
    """USM apps 'can only be deployed on GPUs that support Unified
    Memory' (§IV.B)."""
    env = RunEnvironment(is_apu=True, hsa_xnack=False, app_requires_usm=True)
    with pytest.raises(ConfigError):
        select_config(env)


def test_apu_with_xnack_auto_selects_implicit_zero_copy():
    env = RunEnvironment(is_apu=True, hsa_xnack=True)
    assert select_config(env) is RuntimeConfig.IMPLICIT_ZERO_COPY


def test_apu_without_xnack_falls_back_to_copy():
    env = RunEnvironment(is_apu=True, hsa_xnack=False)
    assert select_config(env) is RuntimeConfig.COPY


def test_discrete_gpu_defaults_to_copy():
    env = RunEnvironment(is_apu=False, hsa_xnack=True)
    assert select_config(env) is RuntimeConfig.COPY


def test_discrete_gpu_opt_in_implicit_zero_copy():
    """Footnote 1: OMPX_APU_MAPS=1 + HSA_XNACK=1 on a discrete GPU."""
    env = RunEnvironment(is_apu=False, hsa_xnack=True, ompx_apu_maps=True)
    assert select_config(env) is RuntimeConfig.IMPLICIT_ZERO_COPY


def test_discrete_gpu_apu_maps_without_xnack_stays_copy():
    env = RunEnvironment(is_apu=False, hsa_xnack=False, ompx_apu_maps=True)
    assert select_config(env) is RuntimeConfig.COPY


def test_eager_maps_opt_in_overrides_implicit():
    env = RunEnvironment(is_apu=True, hsa_xnack=True, ompx_eager_maps=True)
    assert select_config(env) is RuntimeConfig.EAGER_MAPS


def test_eager_maps_works_without_xnack():
    """§IV.D: 'the GPU does not need to run with XNACK support'."""
    env = RunEnvironment(is_apu=True, hsa_xnack=False, ompx_eager_maps=True)
    assert select_config(env) is RuntimeConfig.EAGER_MAPS


def test_usm_pragma_wins_over_eager_opt_in():
    env = RunEnvironment(
        is_apu=True, hsa_xnack=True, app_requires_usm=True, ompx_eager_maps=True
    )
    assert select_config(env) is RuntimeConfig.UNIFIED_SHARED_MEMORY


def test_config_properties():
    assert not RuntimeConfig.COPY.is_zero_copy
    for cfg in (
        RuntimeConfig.UNIFIED_SHARED_MEMORY,
        RuntimeConfig.IMPLICIT_ZERO_COPY,
        RuntimeConfig.EAGER_MAPS,
    ):
        assert cfg.is_zero_copy
    assert RuntimeConfig.UNIFIED_SHARED_MEMORY.needs_xnack
    assert RuntimeConfig.IMPLICIT_ZERO_COPY.needs_xnack
    assert not RuntimeConfig.EAGER_MAPS.needs_xnack
    assert not RuntimeConfig.COPY.needs_xnack
    assert RuntimeConfig.UNIFIED_SHARED_MEMORY.globals_as_pointer
    assert not RuntimeConfig.IMPLICIT_ZERO_COPY.globals_as_pointer


def test_config_labels_match_paper():
    assert RuntimeConfig.COPY.label == "Copy"
    assert RuntimeConfig.IMPLICIT_ZERO_COPY.label == "Implicit Z-C"
    assert RuntimeConfig.UNIFIED_SHARED_MEMORY.label == "Unified Shared Memory"
    assert RuntimeConfig.EAGER_MAPS.label == "Eager Maps"

"""Integration tests for the OpenMP runtime across all four configurations."""

import numpy as np
import pytest

from conftest import ALL, make_runtime, run_single

from repro.core import RuntimeConfig
from repro.memory import MIB, PAGE_2M, MapOrigin
from repro.omp import MapClause, MapKind, MappingError


def axpy_body(nbytes=4 * PAGE_2M, compute_us=100.0, n_kernels=3):
    """A minimal offload program: y += 2*x, run n_kernels times."""

    def body(th, tid):
        x = yield from th.alloc("x", nbytes, payload=np.arange(16.0))
        y = yield from th.alloc("y", nbytes, payload=np.ones(16))
        yield from th.target_enter_data(
            [MapClause(x, MapKind.TO), MapClause(y, MapKind.TO)]
        )
        for _ in range(n_kernels):
            yield from th.target(
                "axpy",
                compute_us,
                maps=[MapClause(x, MapKind.ALLOC), MapClause(y, MapKind.ALLOC)],
                fn=lambda a, g: a["y"].__iadd__(2.0 * a["x"]),
            )
        yield from th.target_exit_data(
            [MapClause(x, MapKind.RELEASE), MapClause(y, MapKind.FROM)]
        )
        return y.payload.copy()

    return body


# ---------------------------------------------------------------------------
# functional equivalence — the paper's "all configurations are equivalent
# from an OpenMP semantics viewpoint" (§IV)
# ---------------------------------------------------------------------------


def test_all_configs_produce_identical_results():
    results = {}
    for cfg in ALL:
        rt = make_runtime(cfg)
        out = {}

        def body(th, tid, out=out):
            out["y"] = yield from axpy_body()(th, tid)

        rt.run(body)
        results[cfg] = out["y"]
    expected = 1.0 + 3 * 2.0 * np.arange(16.0)
    for cfg, y in results.items():
        assert np.array_equal(y, expected), cfg


def steady_state_body(nbytes=PAGE_2M, n_kernels=400, compute_us=10.0):
    """Per-kernel ``always`` transfer traffic: the regime where zero-copy
    wins (QMCPack steady state, §V.A).  A single bulk transfer plus a few
    kernels is the regime where Copy wins — see
    test_one_shot_transfer_program_favors_copy below."""

    def body(th, tid):
        x = yield from th.alloc(f"x{tid}", nbytes)
        r = yield from th.alloc(f"r{tid}", nbytes)
        scratch = yield from th.alloc(f"s{tid}", nbytes)
        yield from th.target_enter_data(
            [MapClause(x, MapKind.TO), MapClause(r, MapKind.TO)]
        )
        for _ in range(n_kernels):
            # per-step scratch mapping: device alloc/free every step under
            # Copy (pool-cache hits), pure bookkeeping under zero-copy
            yield from th.target_enter_data([MapClause(scratch, MapKind.TO)])
            yield from th.target(
                "step",
                compute_us,
                maps=[
                    MapClause(x, MapKind.TO, always=True),
                    MapClause(r, MapKind.FROM, always=True),
                    MapClause(scratch, MapKind.ALLOC),
                ],
            )
            yield from th.target_exit_data([MapClause(scratch, MapKind.DELETE)])
        yield from th.target_exit_data(
            [MapClause(x, MapKind.DELETE), MapClause(r, MapKind.DELETE)]
        )

    return body


def test_zero_copy_faster_than_copy_on_transfer_heavy_program():
    times = {}
    for cfg in ALL:
        _, res = run_single(cfg, steady_state_body())
        times[cfg] = res.elapsed_us - res.init_us
    assert times[RuntimeConfig.IMPLICIT_ZERO_COPY] < times[RuntimeConfig.COPY]
    assert times[RuntimeConfig.UNIFIED_SHARED_MEMORY] < times[RuntimeConfig.COPY]


def test_one_shot_transfer_program_favors_copy():
    """Bulk transfer + few kernels: first-touch cost makes zero-copy lose
    slightly — the 403.stencil / 452.ep corner case (§V.B)."""
    _, res_copy = run_single(RuntimeConfig.COPY, axpy_body(nbytes=64 * MIB))
    _, res_izc = run_single(
        RuntimeConfig.IMPLICIT_ZERO_COPY, axpy_body(nbytes=64 * MIB)
    )
    t_copy = res_copy.elapsed_us - res_copy.init_us
    t_izc = res_izc.elapsed_us - res_izc.init_us
    assert t_copy < t_izc


# ---------------------------------------------------------------------------
# Copy configuration specifics (§IV.A)
# ---------------------------------------------------------------------------


def test_copy_allocates_device_shadow_and_copies():
    rt, res = run_single(RuntimeConfig.COPY, axpy_body())
    tr = res.hsa_trace
    # init: 3 image copies; program: 2 H2D + 1 D2H = 3 more
    assert tr.count("memory_async_copy") == 6
    # init allocs (9 + 10 per-thread) + two user buffers
    assert tr.count("memory_pool_allocate") == 19 + 2


def test_copy_duplicates_memory_footprint():
    """Legacy Copy doubles the footprint of mapped data (§III.B)."""
    sizes = {}
    for cfg in (RuntimeConfig.COPY, RuntimeConfig.IMPLICIT_ZERO_COPY):
        _, res = run_single(cfg, axpy_body(nbytes=256 * MIB))
        sizes[cfg] = res.peak_hbm_bytes
    assert sizes[RuntimeConfig.COPY] >= sizes[RuntimeConfig.IMPLICIT_ZERO_COPY] + 2 * 256 * MIB


def test_copy_kernels_never_fault():
    rt, res = run_single(RuntimeConfig.COPY, axpy_body())
    assert res.ledger.mi_us == 0.0
    assert res.ledger.n_faulted_pages == 0


def test_copy_refcount_last_exit_frees_device_memory():
    def body(th, tid):
        x = yield from th.alloc("x", PAGE_2M)
        yield from th.target_enter_data([MapClause(x, MapKind.TO)])
        yield from th.target_enter_data([MapClause(x, MapKind.TO)])  # ref=2
        yield from th.target_exit_data([MapClause(x, MapKind.RELEASE)])
        assert th.rt.table.is_present(x)
        yield from th.target_exit_data([MapClause(x, MapKind.FROM)])
        assert not th.rt.table.is_present(x)

    rt, res = run_single(RuntimeConfig.COPY, body)
    assert res.hsa_trace.count("memory_pool_free") == 1


def test_copy_present_reuse_skips_transfer_unless_always():
    def body(th, tid):
        x = yield from th.alloc("x", PAGE_2M)
        yield from th.target_enter_data([MapClause(x, MapKind.TO)])
        before = th.rt.system.hsa_trace.count("memory_async_copy")
        # present, no always → no copy
        yield from th.target_enter_data([MapClause(x, MapKind.TO)])
        mid = th.rt.system.hsa_trace.count("memory_async_copy")
        # present + always → copy
        yield from th.target_enter_data([MapClause(x, MapKind.TO, always=True)])
        after = th.rt.system.hsa_trace.count("memory_async_copy")
        assert (mid - before, after - mid) == (0, 1)
        for _ in range(3):
            yield from th.target_exit_data([MapClause(x, MapKind.RELEASE)])

    run_single(RuntimeConfig.COPY, body)


def test_copy_kernel_on_unmapped_buffer_rejected():
    def body(th, tid):
        x = yield from th.alloc("x", PAGE_2M)
        with pytest.raises(MappingError):
            yield from th.target("k", 10.0, maps=[MapClause(x, MapKind.ALLOC)])

    # the implicit enter of map(alloc:) creates the entry, so use resolve
    # directly instead: exercise the internal guard
    rt = make_runtime(RuntimeConfig.COPY)

    def body2(th, tid):
        x = yield from th.alloc("x", PAGE_2M)
        with pytest.raises(MappingError):
            th.rt.policy.resolve_kernel_args([MapClause(x, MapKind.ALLOC)])
        yield th.env.timeout(0)

    rt.run(body2)


# ---------------------------------------------------------------------------
# zero-copy configurations (§IV.B–D)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "cfg",
    [RuntimeConfig.UNIFIED_SHARED_MEMORY, RuntimeConfig.IMPLICIT_ZERO_COPY],
)
def test_zero_copy_maps_do_no_storage_ops(cfg):
    rt, res = run_single(cfg, axpy_body())
    tr = res.hsa_trace
    # only the 3 init-time image transfers (Table I: Implicit Z-C = 3)
    assert tr.count("memory_async_copy") == 3
    # only init allocations: 9 runtime + 10 thread
    assert tr.count("memory_pool_allocate") == 19
    assert tr.count("signal_async_handler") == 0


@pytest.mark.parametrize(
    "cfg",
    [RuntimeConfig.UNIFIED_SHARED_MEMORY, RuntimeConfig.IMPLICIT_ZERO_COPY],
)
def test_zero_copy_kernels_fault_once_per_page(cfg):
    rt, res = run_single(cfg, axpy_body(nbytes=4 * PAGE_2M, n_kernels=5))
    # two 4-page buffers, faulted on the first kernel only
    assert res.ledger.n_faulted_pages == 8
    cost = rt.cost
    assert res.ledger.mi_us == pytest.approx(
        cost.xnack_kernel_entry_us + 8 * cost.xnack_fault_us_per_page
    )


def test_izc_gpu_pt_entries_via_xnack_origin():
    rt, res = run_single(RuntimeConfig.IMPLICIT_ZERO_COPY, axpy_body())
    hist = rt.system.gpu_pt.origins_histogram()
    assert hist.get(MapOrigin.XNACK_REPLAY, 0) == 8


def test_eager_maps_prefaults_instead_of_faulting():
    rt, res = run_single(RuntimeConfig.EAGER_MAPS, axpy_body(n_kernels=5))
    assert res.ledger.mi_us == 0.0
    assert res.ledger.n_faulted_pages == 0
    assert res.ledger.prefault_us > 0.0
    # enter-data (2 clauses) + per-target ALLOC maps (2 × 5 kernels) = 12
    assert res.hsa_trace.count("svm_attributes_set") == 12
    hist = rt.system.gpu_pt.origins_histogram()
    assert hist.get(MapOrigin.PREFAULT, 0) == 8


def test_eager_maps_runs_with_xnack_disabled():
    rt, res = run_single(RuntimeConfig.EAGER_MAPS, axpy_body())
    assert rt.system.driver.xnack_enabled is False
    assert res.ledger.n_kernels == 3


def test_eager_repeat_maps_cost_less_than_first():
    rt, res = run_single(RuntimeConfig.EAGER_MAPS, axpy_body(n_kernels=5))
    tr = res.hsa_trace
    n = tr.count("svm_attributes_set")
    # mean must be far below the first-map cost: repeats only verify
    first_cost = rt.cost.syscall_base_us + 4 * rt.cost.prefault_page_us
    assert tr.total_us("svm_attributes_set") / n < first_cost / 2


# ---------------------------------------------------------------------------
# host memory lifecycle
# ---------------------------------------------------------------------------


def test_free_while_mapped_rejected():
    def body(th, tid):
        x = yield from th.alloc("x", PAGE_2M)
        yield from th.target_enter_data([MapClause(x, MapKind.TO)])
        with pytest.raises(MappingError):
            yield from th.free(x)
        yield from th.target_exit_data([MapClause(x, MapKind.RELEASE)])
        yield from th.free(x)

    run_single(RuntimeConfig.IMPLICIT_ZERO_COPY, body)


def test_free_shootdown_forces_refault_next_alloc():
    """The ep mechanism end-to-end through the OpenMP API."""

    def body(th, tid):
        total = 0
        for i in range(3):
            x = yield from th.alloc(f"x{i}", 2 * PAGE_2M)
            yield from th.target(
                "init", 10.0, maps=[MapClause(x, MapKind.TO)]
            )
            yield from th.free(x)
        yield th.env.timeout(0)

    rt, res = run_single(RuntimeConfig.IMPLICIT_ZERO_COPY, body)
    assert res.ledger.n_faulted_pages == 6  # 2 pages × 3 cycles


def test_marks_and_steady_time():
    def body(th, tid):
        th.mark("steady_start")
        yield th.env.timeout(100.0)
        th.mark("steady_end", first=False)

    rt, res = run_single(RuntimeConfig.COPY, body)
    assert res.steady_us == pytest.approx(100.0)


def test_invalid_thread_count():
    rt = make_runtime(RuntimeConfig.COPY)
    with pytest.raises(ValueError):
        rt.run(lambda th, tid: iter(()), n_threads=0)


# ---------------------------------------------------------------------------
# multi-threaded offloading
# ---------------------------------------------------------------------------


def test_threads_share_device_and_scale_init_allocs():
    def body(th, tid):
        x = yield from th.alloc(f"x{tid}", PAGE_2M)
        yield from th.target("k", 50.0, maps=[MapClause(x, MapKind.TOFROM)])
        yield from th.free(x)

    rt = make_runtime(RuntimeConfig.IMPLICIT_ZERO_COPY)
    res = rt.run(body, n_threads=4)
    # 9 runtime + 4 × 10 per-thread init allocations
    assert res.hsa_trace.count("memory_pool_allocate") == 49
    assert res.ledger.n_kernels == 4


def test_copy_scales_worse_than_izc_with_threads():
    """§V.A.2: more threads → more runtime contention for Copy."""

    def steady(cfg, n):
        rt = make_runtime(cfg)
        res = rt.run(steady_state_body(n_kernels=300), n_threads=n)
        return res.elapsed_us - res.init_us

    ratio_1 = steady(RuntimeConfig.COPY, 1) / steady(RuntimeConfig.IMPLICIT_ZERO_COPY, 1)
    ratio_8 = steady(RuntimeConfig.COPY, 8) / steady(RuntimeConfig.IMPLICIT_ZERO_COPY, 8)
    assert ratio_8 > ratio_1 > 1.0

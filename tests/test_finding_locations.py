"""Every corpus finding must carry a concrete ``(path, line)`` source.

The dynamic analyses observe events, not source, so their findings
historically shipped ``source=None``; the runner now backfills them
from the static IR (``repro.check.locate``).  MapFix and SARIF viewers
rely on every finding being located, so this snapshot pins it for the
whole corpus across all three analysis modes.
"""

import os

import repro
from repro.check import check_workload
from repro.check.corpus import CORPUS, PERF_CORPUS
from repro.check.findings import Finding
from repro.check.locate import backfill_sources
from repro.check.static import static_report
from repro.check.static.cost import perf_report
from repro.check.static.extract import extract_workload

SRC_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _assert_located(findings, label):
    missing = [(f.rule_id, f.buffer) for f in findings if f.source is None]
    assert not missing, f"{label}: unlocated finding(s) {missing}"
    for f in findings:
        path, line = f.source
        assert line >= 1, f"{label}: bad line {line}"
        full = os.path.join(SRC_ROOT, path)
        assert os.path.exists(full), f"{label}: {path} does not resolve"
        n_lines = len(open(full).read().splitlines())
        assert line <= n_lines, f"{label}: line {line} past EOF"


def test_every_dynamic_corpus_finding_is_located():
    for name, cls in {**CORPUS, **PERF_CORPUS}.items():
        report = check_workload(cls, cls().name, cross_check=False)
        if name in CORPUS:
            # the correctness corpus misbehaves dynamically by design;
            # the perf corpus is dynamically clean (static-only cost)
            assert report.findings, f"{name}: corpus entry must misbehave"
        _assert_located(report.findings, f"dynamic:{name}")


def test_every_static_and_perf_corpus_finding_is_located():
    for name, cls in {**CORPUS, **PERF_CORPUS}.items():
        wname = cls().name
        _assert_located(static_report(cls(), wname).findings,
                        f"static:{name}")
        _assert_located(perf_report(cls(), wname).findings, f"perf:{name}")


def test_divergence_findings_locate_via_output_keys():
    # MC-P02/P04-style findings carry no buffer; they resolve through
    # the outputs.put site recorded in the IR
    report = check_workload(CORPUS["missing-from"], cross_check=True)
    _assert_located(report.findings, "missing-from:cross")


def test_backfill_is_additive_and_best_effort():
    ir = extract_workload(CORPUS["leak"](), name="faulty-leak")
    located = Finding(rule_id="MC-S02", buffer="leaky", message="m",
                      workload="faulty-leak", source=("x.py", 3))
    unknown = Finding(rule_id="MC-S02", buffer="no-such-buffer",
                      message="m", workload="faulty-leak")
    resolvable = Finding(rule_id="MC-S02", buffer="leaky", message="m",
                         workload="faulty-leak")
    n = backfill_sources([located, unknown, resolvable], ir)
    assert n == 1
    assert located.source == ("x.py", 3)        # pre-located: untouched
    assert unknown.source is None               # unresolvable: stays None
    assert resolvable.source is not None
    assert resolvable.source[0].endswith("corpus.py")

"""MapCost: symbolic cost prediction, perf lint (MC-W), and baselines.

The acceptance-critical contract lives in the parametrized differential
below: for every registry workload under all four configurations the
statically predicted HSA call counts, map-op counts and kernel launches
are bit-exact against simulated telemetry, and every bounded counter
(copy bytes, prefaulted/faulted pages, shadow traffic) lands inside the
predicted interval — with ``ApuSystem`` poisoned during prediction.
"""

import functools
import json

import numpy as np
import pytest

from repro.check import (
    apply_baseline,
    check_workload,
    fingerprint,
    load_baseline,
    make_workload,
    to_sarif,
    workload_names,
    write_baseline,
)
from repro.check.corpus import PERF_CORPUS
from repro.check.static.cost import (
    EXACT_KEYS,
    CostEnv,
    Interval,
    cost_differential,
    perf_report,
    predict_costs,
)
from repro.check.static.cost.differential import (
    CostDifferentialResult,
    measure_costs,
)
from repro.check.static.differential import (
    _forbid_simulation,
    _SimulationForbidden,
)
from repro.check.static.extract import UNROLL_LIMIT, extract_workload
from repro.check.static.ir import (
    AbstractBuffer,
    AllocOp,
    BufRef,
    ClauseIR,
    EnterOp,
    ExitOp,
    Loop,
    Seq,
    TargetOp,
    ThreadProgram,
    WorkloadIR,
)
from repro.cli import main
from repro.core import RuntimeConfig
from repro.core.config import ALL_CONFIGS
from repro.memory.layout import MIB
from repro.omp.mapping import MapClause, MapKind
from repro.workloads.base import Fidelity, Workload

_CONFIG_IDS = [c.value for c in ALL_CONFIGS]


# ---------------------------------------------------------------------------
# predicted-vs-measured differential: every registry workload x 4 configs
# ---------------------------------------------------------------------------
@functools.lru_cache(maxsize=1)
def _sweep():
    """One full differential sweep, shared by all parametrized cells."""
    return {(c.workload, c.config): c for c in cost_differential()}


@pytest.mark.parametrize("config", ALL_CONFIGS, ids=_CONFIG_IDS)
@pytest.mark.parametrize("name", sorted(workload_names()))
def test_cost_differential_is_exact(name, config):
    cell = _sweep()[(name, config)]
    assert cell.ok, cell.render()
    # the exact tier really is singleton intervals, not wide ones that
    # happen to contain the measurement
    for key in EXACT_KEYS:
        assert cell.prediction.interval(key).is_exact, (name, config, key)


def test_prediction_phase_is_simulation_free():
    """predict_costs never constructs a simulator — the poison guard
    stays armed across extraction and all four config walks."""
    with _forbid_simulation():
        ir = extract_workload(make_workload("triad", Fidelity.TEST),
                              name="triad")
        for config in ALL_CONFIGS:
            p = predict_costs(ir, CostEnv.for_config(config))
            assert p.counters
    # sanity: the guard would have tripped on any simulation attempt
    from repro.core.system import ApuSystem

    with _forbid_simulation(), pytest.raises(_SimulationForbidden):
        ApuSystem(seed=0)


# ---------------------------------------------------------------------------
# symbolic trip counts: walker semantics on hand-built IR
# ---------------------------------------------------------------------------
def _unit_ir(loop: Loop) -> WorkloadIR:
    """alloc(buf) ; enter(to: buf) ; <loop over kernel(buf)> ; exit(from)"""
    buf = AbstractBuffer(site="t0:L1.0", name="buf", tid=0, nbytes=MIB)
    ref = BufRef(sites=frozenset([buf]), display="buf")
    body = Seq([
        AllocOp(buf=buf),
        EnterOp(clauses=(ClauseIR(buf=ref, kind=MapKind.TO),)),
        loop,
        ExitOp(clauses=(ClauseIR(buf=ref, kind=MapKind.FROM),)),
    ])
    prog = ThreadProgram(tid=0, body=body, buffers={buf.site: buf})
    return WorkloadIR(name="unit", n_threads=1, threads=[prog])


def _kernel_loop(**kw) -> Loop:
    buf = AbstractBuffer(site="t0:L1.0", name="buf", tid=0, nbytes=MIB)
    ref = BufRef(sites=frozenset([buf]), display="buf")
    return Loop(body=Seq([TargetOp(kernel="k", touches=(ref,))]), **kw)


def test_walker_resolved_trip_count_is_exact():
    ir = _unit_ir(_kernel_loop(trips=100, min_trips=1, kind="for"))
    p = predict_costs(ir, CostEnv.for_config(RuntimeConfig.COPY),
                      include_init=False)
    assert p.interval("kernels") == Interval.exact(100)


def test_walker_unresolved_for_guarantees_one_trip():
    ir = _unit_ir(_kernel_loop(trips=None, min_trips=1, kind="for"))
    p = predict_costs(ir, CostEnv.for_config(RuntimeConfig.COPY),
                      include_init=False)
    iv = p.interval("kernels")
    assert iv.lo == 1 and iv.hi is None


def test_walker_while_fallback_admits_zero_trips():
    ir = _unit_ir(_kernel_loop(trips=None, min_trips=0, kind="while"))
    p = predict_costs(ir, CostEnv.for_config(RuntimeConfig.COPY),
                      include_init=False)
    iv = p.interval("kernels")
    assert iv.lo == 0 and iv.hi is None


# ---------------------------------------------------------------------------
# symbolic trip counts: extraction folding on real source
# ---------------------------------------------------------------------------
class _CountedLoopWorkload(Workload):
    """40 kernel launches behind a foldable range() beyond UNROLL_LIMIT."""

    name = "unit-counted-loop"

    def __init__(self):
        super().__init__(Fidelity.TEST)

    def make_body(self):
        outputs = self.outputs

        def body(th, tid):
            data = yield from th.alloc("data", MIB, payload=np.ones(8))
            yield from th.target_enter_data([MapClause(data, MapKind.TO)])
            for _ in range(40):
                yield from th.target("k", 10.0, touches=[data])
            yield from th.target_exit_data([MapClause(data, MapKind.FROM)])
            outputs.put("done", 1.0)

        return body


class _UnresolvedLoopsWorkload(Workload):
    """A ``while`` the extractor cannot bound, feeding a ``for`` over a
    list whose length only partially folds (built inside that while)."""

    name = "unit-unresolved-loops"

    def __init__(self):
        super().__init__(Fidelity.TEST)

    def make_body(self):
        outputs = self.outputs

        def body(th, tid):
            data = yield from th.alloc("data", MIB, payload=np.ones(8))
            yield from th.target_enter_data([MapClause(data, MapKind.TO)])
            chunks = []
            while len(chunks) < 2:
                chunks.append(1)
            for _ in chunks:
                yield from th.target("k", 10.0, touches=[data])
            yield from th.target_exit_data([MapClause(data, MapKind.FROM)])
            outputs.put("done", 1.0)

        return body


def _loops_of(seq):
    for item in seq.items:
        if isinstance(item, Loop):
            yield item
            yield from _loops_of(item.body)


def test_extraction_folds_range_beyond_unroll_limit():
    assert 40 > UNROLL_LIMIT
    ir = extract_workload(_CountedLoopWorkload(), name="unit-counted-loop")
    loops = list(_loops_of(ir.thread(0).body))
    assert [(lp.kind, lp.trips, lp.min_trips) for lp in loops] == [
        ("for", 40, 1)
    ]


def test_extraction_while_and_partially_resolved_for():
    ir = extract_workload(_UnresolvedLoopsWorkload(),
                          name="unit-unresolved-loops")
    loops = list(_loops_of(ir.thread(0).body))
    kinds = {lp.kind: lp for lp in loops}
    assert set(kinds) == {"while", "for"}
    assert kinds["while"].min_trips == 0 and kinds["while"].trips is None
    # the for's iterable came out of the abstracted while: length unknown
    assert kinds["for"].min_trips == 1 and kinds["for"].trips is None


def _cell(factory, config):
    ir = extract_workload(factory(), name=factory.name)
    pred = predict_costs(ir, CostEnv.for_config(config))
    measured = measure_costs(factory(), config)
    return CostDifferentialResult(
        workload=factory.name, config=config,
        prediction=pred, measured=measured,
    ).check()


@pytest.mark.parametrize("config", ALL_CONFIGS, ids=_CONFIG_IDS)
def test_counted_loop_prediction_is_exact_end_to_end(config):
    cell = _cell(_CountedLoopWorkload, config)
    assert cell.ok, cell.render()
    assert cell.prediction.interval("kernels") == Interval.exact(40)


@pytest.mark.parametrize("config", ALL_CONFIGS, ids=_CONFIG_IDS)
def test_unresolved_loops_prediction_still_brackets_measurement(config):
    """No exactness possible here — but the interval must be sound."""
    ir = extract_workload(_UnresolvedLoopsWorkload(),
                          name="unit-unresolved-loops")
    pred = predict_costs(ir, CostEnv.for_config(config))
    measured = measure_costs(_UnresolvedLoopsWorkload(), config)
    iv = pred.interval("kernels")
    assert iv.hi is None                      # widened, not guessed
    assert iv.contains(measured["kernels"])   # 2 trips at runtime
    for key in ("map_enters", "map_exits", "h2d_bytes", "d2h_bytes"):
        assert pred.interval(key).contains(measured[key]), key


# ---------------------------------------------------------------------------
# MC-W perf lint: zero false positives on the registry, one hit per
# PERF_CORPUS pattern, and the patterns stay dynamically clean
# ---------------------------------------------------------------------------
_EXPECTED_RULE = {
    "map-churn": "MC-W01",
    "redundant-map": "MC-W02",
    "fault-storm": "MC-W03",
    "global-indirection": "MC-W04",
    "noop-update": "MC-W05",
}


@pytest.mark.parametrize("name", sorted(workload_names()))
def test_registry_workloads_have_no_perf_findings(name):
    report = perf_report(make_workload(name, Fidelity.TEST), name)
    assert report.aborted is None, report.aborted
    assert report.findings == [], [f.rule_id for f in report.findings]


@pytest.mark.parametrize("short", sorted(PERF_CORPUS))
def test_perf_corpus_triggers_its_rule(short):
    w = PERF_CORPUS[short]()
    report = perf_report(w, w.name)
    fired = {f.rule_id for f in report.findings}
    assert _EXPECTED_RULE[short] in fired, (short, fired)


@pytest.mark.parametrize("short", sorted(PERF_CORPUS))
def test_perf_corpus_is_dynamically_clean(short):
    report = check_workload(PERF_CORPUS[short], cross_check=False)
    assert report.aborted is None, report.aborted
    assert report.findings == [], [f.rule_id for f in report.findings]


def test_perf_findings_carry_derived_matrices():
    w = PERF_CORPUS["map-churn"]()
    report = perf_report(w, w.name)
    [f] = [f for f in report.findings if f.rule_id == "MC-W01"]
    assert f.breaks_under == (RuntimeConfig.EAGER_MAPS,)
    assert set(f.passes_under) == {
        RuntimeConfig.COPY,
        RuntimeConfig.UNIFIED_SHARED_MEMORY,
        RuntimeConfig.IMPLICIT_ZERO_COPY,
    }


# ---------------------------------------------------------------------------
# baselines: write -> load -> apply round trip, SARIF suppressions
# ---------------------------------------------------------------------------
def test_baseline_round_trip_suppresses_known_findings(tmp_path):
    w = PERF_CORPUS["noop-update"]()
    report = perf_report(w, w.name)
    assert report.findings and not report.ok
    path = tmp_path / "baseline.json"
    n = write_baseline([report], str(path))
    assert n == len({fingerprint(f) for f in report.findings})

    fresh = perf_report(PERF_CORPUS["noop-update"](), w.name)
    stats = apply_baseline([fresh], load_baseline(str(path)))
    assert stats["suppressed"] == stats["findings"] == len(fresh.findings)
    assert stats["stale_fingerprints"] == 0
    assert all(f.suppressed for f in fresh.findings)
    assert fresh.ok                     # suppressed findings don't fail
    assert "suppressed" in fresh.render()

    sarif = to_sarif([fresh])
    results = sarif["runs"][0]["results"]
    assert results
    for r in results:
        assert r["suppressions"][0]["kind"] == "external"


def test_baseline_counts_stale_fingerprints():
    report = perf_report(make_workload("triad", Fidelity.TEST), "triad")
    stats = apply_baseline([report], {"MC-W99:ghost:never"})
    assert stats == {
        "findings": 0, "suppressed": 0, "stale_fingerprints": 1,
    }


def test_load_baseline_rejects_non_baseline_json(tmp_path):
    path = tmp_path / "junk.json"
    path.write_text('{"not": "a baseline"}\n')
    with pytest.raises(ValueError):
        load_baseline(str(path))


# ---------------------------------------------------------------------------
# CLI wiring: --perf / --perf-json / --baseline / --write-baseline
# ---------------------------------------------------------------------------
def test_cli_check_perf_no_sim_is_simulation_free(capsys):
    with _forbid_simulation():
        assert main(["check", "triad", "--perf", "--no-sim"]) == 0
    assert "no findings" in capsys.readouterr().out


def test_cli_perf_json_writes_exact_cells(tmp_path, capsys):
    path = tmp_path / "perf.json"
    assert main(["check", "triad", "--static", "--perf", "--no-sim",
                 "--perf-json", str(path)]) == 0
    capsys.readouterr()
    data = json.loads(path.read_text())
    assert data["ok"] is True
    assert len(data["cells"]) == len(ALL_CONFIGS)
    for cell in data["cells"]:
        assert cell["workload"] == "triad"
        assert cell["mismatches"] == []


def test_cli_baseline_flags_round_trip(tmp_path, capsys):
    base = tmp_path / "base.json"
    assert main(["check", "triad", "--perf", "--no-sim",
                 "--write-baseline", str(base)]) == 0
    assert json.loads(base.read_text())["fingerprints"] == []  # clean
    assert main(["check", "triad", "--perf", "--no-sim",
                 "--baseline", str(base)]) == 0
    capsys.readouterr()

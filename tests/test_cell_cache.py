"""Content-addressed experiment cell cache: digests, store, wiring."""

import json
import os
from functools import partial

import pytest

from repro.core.config import RuntimeConfig
from repro.core.params import CostModel
from repro.experiments.cache import (
    CACHE_SCHEMA,
    CellCache,
    cell_digest,
    workload_fingerprint,
)
from repro.experiments.parallel import CellOutcome, ExperimentCell, run_cells
from repro.experiments.runner import ratio_experiment
from repro.workloads.base import Fidelity
from repro.workloads.qmcpack import QmcPackNio


def _cell(**overrides):
    spec = dict(
        key=("k", 0),
        factory=partial(QmcPackNio, size=2, n_threads=1, fidelity=Fidelity.TEST),
        config=RuntimeConfig.IMPLICIT_ZERO_COPY,
        seed=7,
        metric="steady_us",
        noise=True,
        cost=None,
    )
    spec.update(overrides)
    return ExperimentCell(**spec)


# ---------------------------------------------------------------------------
# digests
# ---------------------------------------------------------------------------


def test_digest_is_stable_and_key_independent():
    a = cell_digest(_cell())
    b = cell_digest(_cell())
    assert a == b and len(a) == 64
    # the assembly key is presentation, not an input to the simulation
    assert cell_digest(_cell(key=("other", 99))) == a


@pytest.mark.parametrize(
    "override",
    [
        {"config": RuntimeConfig.COPY},
        {"seed": 8},
        {"metric": "elapsed_us"},
        {"noise": False},
        {"cost": CostModel(page_size=4096)},
        {"factory": partial(QmcPackNio, size=4, n_threads=1, fidelity=Fidelity.TEST)},
        {"factory": partial(QmcPackNio, size=2, n_threads=2, fidelity=Fidelity.TEST)},
        {"factory": partial(QmcPackNio, size=2, n_threads=1, fidelity=Fidelity.BENCH)},
        {"engine": "macro"},
        {"engine": "reference"},
    ],
)
def test_digest_changes_with_any_input(override):
    assert cell_digest(_cell(**override)) != cell_digest(_cell())


def test_digest_never_aliases_across_engines():
    digests = {
        engine: cell_digest(_cell(engine=engine))
        for engine in ("fast", "reference", "macro")
    }
    assert len(set(digests.values())) == 3
    # the default engine is the fast path
    assert digests["fast"] == cell_digest(_cell())


def test_warm_hit_is_per_engine(tmp_path):
    """Each engine's cells store and warm-hit under their own digests."""
    for engine in ("fast", "macro"):
        cells = [_cell(key=("e", engine), engine=engine, noise=False)]
        cold = CellCache(str(tmp_path))
        first = run_cells(cells, cache=cold)
        assert cold.misses == 1 and cold.stores == 1
        warm = CellCache(str(tmp_path))
        second = run_cells(cells, cache=warm)
        assert warm.hits == 1 and warm.misses == 0 and warm.stores == 0
        assert second == first
    # after both engines ran once, a mixed batch is fully warm
    mixed = [
        _cell(key=("e", engine), engine=engine, noise=False)
        for engine in ("fast", "macro")
    ]
    cache = CellCache(str(tmp_path))
    run_cells(mixed, cache=cache)
    assert cache.hits == 2 and cache.misses == 0


def test_workload_fingerprint_includes_scalar_attrs():
    fp = workload_fingerprint(
        QmcPackNio(size=2, n_threads=1, fidelity=Fidelity.TEST)
    )
    assert fp["name"].startswith("qmcpack-nio")
    assert fp["fidelity"] == "test"
    # scalar params beyond describe() are folded in as attr.* entries
    assert any(k.startswith("attr.") for k in fp)
    assert "outputs" not in fp and "attr.outputs" not in fp


# ---------------------------------------------------------------------------
# store
# ---------------------------------------------------------------------------


def test_cache_roundtrip(tmp_path):
    cache = CellCache(str(tmp_path))
    digest = cell_digest(_cell())
    assert cache.get(digest) is None
    out = CellOutcome(value=12.5, sim_events=100, ledger={"wait_us": 3.0})
    cache.put(digest, out)
    got = cache.get(digest)
    assert got == out
    assert cache.stats() == {"hits": 1, "misses": 1, "stores": 1}
    # sharded layout
    assert (tmp_path / digest[:2] / (digest + ".json")).exists()


def test_cache_corrupt_entry_is_a_miss(tmp_path):
    cache = CellCache(str(tmp_path))
    digest = "ab" + "0" * 62
    path = tmp_path / "ab" / (digest + ".json")
    os.makedirs(path.parent)
    path.write_text("{truncated")
    assert cache.get(digest) is None
    assert cache.misses == 1


def test_cache_schema_mismatch_is_a_miss(tmp_path):
    cache = CellCache(str(tmp_path))
    digest = "cd" + "0" * 62
    path = tmp_path / "cd" / (digest + ".json")
    os.makedirs(path.parent)
    path.write_text(json.dumps({
        "schema": "repro-cell-v0", "value": 1.0, "sim_events": 1, "ledger": {},
    }))
    assert cache.get(digest) is None


def test_cache_schema_constant_in_entries(tmp_path):
    cache = CellCache(str(tmp_path))
    digest = cell_digest(_cell())
    cache.put(digest, CellOutcome(value=1.0, sim_events=1, ledger={}))
    raw = json.loads((tmp_path / digest[:2] / (digest + ".json")).read_text())
    assert raw["schema"] == CACHE_SCHEMA


# ---------------------------------------------------------------------------
# run_cells / ratio_experiment wiring
# ---------------------------------------------------------------------------


def test_run_cells_cold_then_warm(tmp_path):
    cells = [_cell(key=("c", rep), seed=100 + rep) for rep in range(2)]
    cold_cache = CellCache(str(tmp_path))
    cold = run_cells(cells, cache=cold_cache)
    assert cold_cache.misses == 2 and cold_cache.stores == 2
    warm_cache = CellCache(str(tmp_path))
    warm = run_cells(cells, cache=warm_cache)
    assert warm_cache.hits == 2
    assert warm_cache.misses == 0 and warm_cache.stores == 0
    assert warm == cold


def test_run_cells_partial_warm_executes_only_misses(tmp_path):
    first = [_cell(key=("c", 0), seed=100)]
    both = first + [_cell(key=("c", 1), seed=101)]
    run_cells(first, cache=CellCache(str(tmp_path)))
    cache = CellCache(str(tmp_path))
    out = run_cells(both, cache=cache)
    assert cache.hits == 1 and cache.misses == 1 and cache.stores == 1
    assert set(out) == {("c", 0), ("c", 1)}


def test_ratio_experiment_cache_matches_uncached(tmp_path):
    factory = partial(QmcPackNio, size=2, n_threads=1, fidelity=Fidelity.TEST)
    configs = [RuntimeConfig.COPY, RuntimeConfig.IMPLICIT_ZERO_COPY]
    plain = ratio_experiment(factory, configs, reps=2)
    cache = CellCache(str(tmp_path))
    cold = ratio_experiment(factory, configs, reps=2, cache=cache)
    warm_cache = CellCache(str(tmp_path))
    warm = ratio_experiment(factory, configs, reps=2, cache=warm_cache)
    assert warm_cache.misses == 0
    for result in (cold, warm):
        assert result.summary() == plain.summary()
        assert result.ledgers == plain.ledgers
        assert result.sim_events == plain.sim_events

"""MapRace unit tests: the MHP edge cases the differential can't see.

The race differential (tests/test_static_differential.py drives the
combined report; ``race_differential`` gates recall/precision) covers
the corpus end-to-end.  These tests pin the *mechanism* on synthetic
IR: barrier phase re-alignment, the wait-on-the-wrong-handle hazard,
and the single-thread no-op guarantee.
"""

from repro.check.corpus import (
    CrossThreadHostWriteWorkload,
    ExitExitRaceWorkload,
    NowaitResultRaceWorkload,
)
from repro.check.static.extract import extract_workload
from repro.check.static.ir import (
    AbstractBuffer,
    BufRef,
    ClauseIR,
    EnterOp,
    ExitOp,
    GlobalSyncOp,
    OutputOp,
    Seq,
    TargetOp,
    ThreadProgram,
    WaitOp,
    WorkloadIR,
)
from repro.check.static.race import PhaseInterval, race_findings
from repro.core import RuntimeConfig
from repro.omp.mapping import MapKind

COPY = RuntimeConfig.COPY
USM = RuntimeConfig.UNIFIED_SHARED_MEMORY
IZC = RuntimeConfig.IMPLICIT_ZERO_COPY
EAGER = RuntimeConfig.EAGER_MAPS


# ---------------------------------------------------------------------------
# phase intervals
# ---------------------------------------------------------------------------


def test_phase_interval_algebra():
    p = PhaseInterval()
    assert (p.lo, p.hi) == (0, 0)
    assert p.bump() == PhaseInterval(1, 1)
    assert p.widen() == PhaseInterval(0, None)
    assert p.widen().bump() == PhaseInterval(1, None)
    assert p.join(PhaseInterval(2, 3)) == PhaseInterval(0, 3)
    assert p.join(PhaseInterval(1, None)) == PhaseInterval(0, None)


def test_phase_interval_overlap():
    assert PhaseInterval(0, 0).overlaps(PhaseInterval(0, 0))
    assert not PhaseInterval(0, 0).overlaps(PhaseInterval(1, 1))
    assert not PhaseInterval(2, 3).overlaps(PhaseInterval(0, 1))
    # unbounded intervals overlap everything at or above their lo
    assert PhaseInterval(0, None).overlaps(PhaseInterval(7, 7))
    assert not PhaseInterval(5, None).overlaps(PhaseInterval(0, 4))


# ---------------------------------------------------------------------------
# synthetic-IR helpers
# ---------------------------------------------------------------------------


def _buf(name, tid=0, lineno=1, nbytes=64):
    b = AbstractBuffer(
        site=f"t{tid}:L{lineno}", name=name, tid=tid, lineno=lineno,
        nbytes=nbytes,
    )
    return b, BufRef(sites=frozenset({b}), display=name)


def _ir(*threads):
    return WorkloadIR(
        name="synthetic", n_threads=len(threads), threads=list(threads)
    )


def _thread(tid, ops, buffers=(), handles=None):
    return ThreadProgram(
        tid=tid,
        body=Seq(items=list(ops)),
        buffers={b.name: b for b in buffers},
        handles=dict(handles or {}),
    )


# ---------------------------------------------------------------------------
# barrier re-alignment: the k-th barrier of every thread is one aligned
# phase boundary, so accesses in disjoint phases never race
# ---------------------------------------------------------------------------


def test_barriers_realign_threads_and_suppress_the_race():
    b, ref = _buf("shared")
    clause = (ClauseIR(buf=ref, kind=MapKind.RELEASE),)
    # thread 0 exits in phase 0, *then* hits the barrier; thread 1 hits
    # the barrier first and exits in phase 1 — ordered, no MC-S21
    t0 = _thread(0, [ExitOp(lineno=2, clauses=clause), GlobalSyncOp(lineno=3)],
                 buffers=[b])
    t1 = _thread(1, [GlobalSyncOp(lineno=2), ExitOp(lineno=3, clauses=clause)])
    assert race_findings(_ir(t0, t1)) == []


def test_unordered_cross_thread_exits_race():
    b, ref = _buf("shared")
    clause = (ClauseIR(buf=ref, kind=MapKind.RELEASE),)
    # same two exits with the barriers removed: both in phase 0 → MC-S21
    t0 = _thread(0, [ExitOp(lineno=2, clauses=clause)], buffers=[b])
    t1 = _thread(1, [ExitOp(lineno=3, clauses=clause)])
    findings = race_findings(_ir(t0, t1))
    assert [(f.rule_id, f.buffer) for f in findings] == [("MC-S21", "shared")]


def test_enter_enter_pairs_are_benign():
    b, ref = _buf("shared")
    clause = (ClauseIR(buf=ref, kind=MapKind.TO),)
    t0 = _thread(0, [EnterOp(lineno=2, clauses=clause)], buffers=[b])
    t1 = _thread(1, [EnterOp(lineno=3, clauses=clause)])
    assert race_findings(_ir(t0, t1)) == []


# ---------------------------------------------------------------------------
# wait edges: only a wait naming the *right* handle orders the read
# ---------------------------------------------------------------------------


def _nowait_then_read(wait_handles):
    b, ref = _buf("out")
    ops = [
        TargetOp(lineno=2, kernel="producer",
                 clauses=(ClauseIR(buf=ref, kind=MapKind.FROM),),
                 nowait=True, handle_id=1),
    ]
    if wait_handles is not None:
        ops.append(WaitOp(lineno=3, handle_ids=frozenset(wait_handles)))
    ops.append(OutputOp(lineno=4, key="result", bufs=(ref,)))
    t0 = _thread(0, ops, buffers=[b],
                 handles={1: ((), frozenset({b}))})
    return race_findings(_ir(t0))


def test_wait_on_correct_handle_orders_the_result_read():
    assert _nowait_then_read({1}) == []


def test_wait_on_wrong_handle_does_not_order_the_result_read():
    for handles in (None, {999}):
        findings = _nowait_then_read(handles)
        assert [(f.rule_id, f.buffer) for f in findings] == \
            [("MC-S22", "out")], handles


# ---------------------------------------------------------------------------
# single-thread maps are a no-op for the cross-thread rule
# ---------------------------------------------------------------------------


def test_single_thread_enter_exit_is_race_free():
    b, ref = _buf("solo")
    t0 = _thread(0, [
        EnterOp(lineno=2, clauses=(ClauseIR(buf=ref, kind=MapKind.TO),)),
        ExitOp(lineno=3, clauses=(ClauseIR(buf=ref, kind=MapKind.DELETE),)),
    ], buffers=[b])
    assert race_findings(_ir(t0)) == []


# ---------------------------------------------------------------------------
# the three racy corpus workloads trigger exactly their rule
# ---------------------------------------------------------------------------


def _corpus_races(cls):
    w = cls()
    ir = extract_workload(w, name=w.name)
    return race_findings(ir)


def test_corpus_nowait_result_read_fires_mc_s22():
    findings = _corpus_races(NowaitResultRaceWorkload)
    assert [(f.rule_id, f.buffer) for f in findings] == \
        [("MC-S22", "async_out")]
    assert findings[0].breaks_under == (COPY, USM, IZC, EAGER)


def test_corpus_exit_exit_race_fires_mc_s21():
    findings = _corpus_races(ExitExitRaceWorkload)
    assert [(f.rule_id, f.buffer) for f in findings] == \
        [("MC-S21", "torndown")]


def test_corpus_cross_thread_host_write_fires_mc_s20():
    findings = _corpus_races(CrossThreadHostWriteWorkload)
    assert [(f.rule_id, f.buffer) for f in findings] == \
        [("MC-S20", "hotbuf")]
    # the config matrix is MC-R02's: benign under Copy's shadow snapshot
    assert findings[0].breaks_under == (USM, IZC, EAGER)
    assert findings[0].passes_under == (COPY,)

"""SARIF 2.1.0 exporter: structure, rule catalog, locations, ordering."""

import json

from repro.check import CheckReport, Finding, RULES, to_sarif, write_sarif
from repro.check.corpus import LeakWorkload, MissingMapWorkload
from repro.check.static import static_report
from repro.core import RuntimeConfig

COPY = RuntimeConfig.COPY
USM = RuntimeConfig.UNIFIED_SHARED_MEMORY


def _reports():
    return [
        static_report(MissingMapWorkload(), "faulty-missing-map"),
        static_report(LeakWorkload(), "faulty-leak"),
    ]


def test_sarif_skeleton_and_version():
    log = to_sarif(_reports())
    assert log["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in log["$schema"]
    (run,) = log["runs"]
    assert run["tool"]["driver"]["name"] == "MapCheck"


def test_sarif_rule_catalog_covers_every_rule_with_metadata():
    (run,) = to_sarif([])["runs"]
    rules = {r["id"]: r for r in run["tool"]["driver"]["rules"]}
    assert set(rules) == set(RULES)
    # metadata comes from the registry, not ad-hoc strings
    p10 = rules["MC-P10"]
    assert p10["defaultConfiguration"]["level"] == "error"
    assert p10["properties"]["analysis"] == "static-dataflow"
    assert p10["properties"]["breaksUnder"] == ["copy", "eager_maps"]
    assert p10["properties"]["counterparts"] == ["MC-P01"]
    s02 = rules["MC-S02"]
    assert s02["defaultConfiguration"]["level"] == "warning"
    assert s02["properties"]["counterparts"] == ["MC-S12"]


def test_sarif_results_carry_locations_from_finding_source():
    (run,) = to_sarif(_reports())["runs"]
    results = run["results"]
    assert len(results) == 2               # MC-P10 ghost + MC-S12 leaky
    by_rule = {r["ruleId"]: r for r in results}
    loc = by_rule["MC-P10"]["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"].endswith("corpus.py")
    assert loc["region"]["startLine"] > 1
    assert by_rule["MC-S12"]["level"] == "warning"


def test_sarif_results_without_source_get_logical_location():
    f = Finding(rule_id="MC-S01", buffer="b", message="m", workload="w")
    rep = CheckReport(workload="w", fidelity="test", findings=[f])
    (run,) = to_sarif([rep])["runs"]
    (result,) = run["results"]
    assert result["locations"][0]["logicalLocations"][0]["name"] == "b"


def test_sarif_results_are_emitted_in_sort_key_order():
    reports = list(reversed(_reports()))   # feed in shuffled order
    (run,) = to_sarif(reports)["runs"]
    ids = [(r["ruleId"], r["properties"]["workload"]) for r in run["results"]]
    assert ids == sorted(ids)


def test_write_sarif_round_trips(tmp_path):
    path = tmp_path / "out.sarif"
    write_sarif(_reports(), str(path))
    data = json.loads(path.read_text())
    assert data["version"] == "2.1.0"
    assert len(data["runs"][0]["results"]) == 2

"""Unit tests for statistics and trace analysis (repro.trace)."""

import numpy as np
import pytest

from repro.trace import (
    HsaTrace,
    RepetitionStats,
    RunLedger,
    cov,
    hsa_call_comparison,
    median,
    order_of_magnitude,
    overhead_decomposition,
)
from repro.trace.kernel_trace import KernelTrace
from repro.hsa.api import KernelRecord


# ---------------------------------------------------------------------------
# stats
# ---------------------------------------------------------------------------


def test_median_odd_even():
    assert median([3.0, 1.0, 2.0]) == 2.0
    assert median([1.0, 2.0, 3.0, 4.0]) == 2.5


def test_median_empty_rejected():
    with pytest.raises(ValueError):
        median([])


def test_cov_basic():
    vals = [10.0, 12.0, 8.0, 10.0]
    expected = np.std(vals, ddof=1) / np.mean(vals)
    assert cov(vals) == pytest.approx(expected)


def test_cov_constant_is_zero():
    assert cov([5.0, 5.0, 5.0]) == 0.0


def test_cov_single_sample_is_zero():
    assert cov([42.0]) == 0.0


def test_cov_zero_mean_rejected():
    with pytest.raises(ValueError):
        cov([0.0, 0.0])


def test_cov_empty_rejected():
    with pytest.raises(ValueError):
        cov([])


def test_order_of_magnitude_rendering():
    assert order_of_magnitude(0.0) == "O(0)"
    assert order_of_magnitude(3.5e5) == "O(10^5)"
    assert order_of_magnitude(2.0e6) == "O(10^6)"
    assert order_of_magnitude(9.99e4) == "O(10^4)"


def test_repetition_stats():
    s = RepetitionStats.from_values([4.0, 2.0, 6.0, 8.0])
    assert s.n == 4
    assert s.median == 5.0
    assert s.min == 2.0 and s.max == 8.0
    other = RepetitionStats.from_values([1.0, 1.0, 1.0])
    assert s.ratio_of_medians(other) == 5.0


def test_repetition_stats_empty_rejected():
    with pytest.raises(ValueError):
        RepetitionStats.from_values([])


def test_ratio_of_medians_single_element_works():
    s = RepetitionStats.from_values([6.0])
    other = RepetitionStats.from_values([2.0])
    assert s.ratio_of_medians(other) == 3.0


def test_ratio_of_medians_empty_sample_rejected():
    # from_values refuses empties, but a directly-built instance must
    # still fail with a clear ValueError, not a StatisticsError
    empty = RepetitionStats(())
    full = RepetitionStats.from_values([1.0])
    with pytest.raises(ValueError, match="empty"):
        empty.ratio_of_medians(full)
    with pytest.raises(ValueError, match="empty"):
        full.ratio_of_medians(empty)


def test_ratio_of_medians_zero_median_rejected():
    s = RepetitionStats.from_values([1.0, 2.0])
    zero = RepetitionStats.from_values([-1.0, 0.0, 1.0])
    with pytest.raises(ValueError, match="zero-median"):
        s.ratio_of_medians(zero)


# ---------------------------------------------------------------------------
# HsaTrace
# ---------------------------------------------------------------------------


def test_hsa_trace_aggregation():
    t = HsaTrace()
    t.record("memory_async_copy", 0.0, 10.0)
    t.record("memory_async_copy", 5.0, 20.0)
    assert t.count("memory_async_copy") == 2
    assert t.total_us("memory_async_copy") == 30.0
    assert t.stats["memory_async_copy"].mean_us == 15.0


def test_hsa_trace_latency_ratio_na():
    a, b = HsaTrace(), HsaTrace()
    a.record("signal_async_handler", 0.0, 5.0)
    assert a.latency_ratio(b, "signal_async_handler") is None
    b.record("signal_async_handler", 0.0, 2.5)
    assert a.latency_ratio(b, "signal_async_handler") == 2.0


def test_hsa_trace_merge():
    a, b = HsaTrace(), HsaTrace()
    a.record("x", 0.0, 1.0)
    b.record("x", 0.0, 2.0)
    b.record("y", 0.0, 3.0)
    m = a.merge(b)
    assert m.count("x") == 2 and m.total_us("x") == 3.0
    assert m.count("y") == 1


def test_hsa_trace_merge_detailed_propagates_events():
    a, b = HsaTrace(detailed=True), HsaTrace(detailed=True)
    a.record("x", 0.0, 1.0, tag="a1")
    b.record("x", 5.0, 2.0, tag="b1")
    b.record("y", 6.0, 3.0, tag="b2")
    m = a.merge(b)
    assert m.detailed
    assert [e.tag for e in m.events] == ["a1", "b1", "b2"]
    assert m.count("x") == 2 and m.total_us("y") == 3.0


def test_hsa_trace_merge_mixed_detail_drops_events_by_default():
    a, b = HsaTrace(detailed=True), HsaTrace(detailed=False)
    a.record("x", 0.0, 1.0)
    b.record("x", 1.0, 1.0)
    m = a.merge(b)
    assert not m.detailed and m.events == []
    assert m.count("x") == 2


def test_hsa_trace_merge_detailed_override():
    a, b = HsaTrace(detailed=True), HsaTrace(detailed=True)
    a.record("x", 0.0, 1.0, tag="keepme")
    b.record("x", 1.0, 1.0)
    assert a.merge(b, detailed=False).events == []
    mixed = HsaTrace(detailed=False)
    mixed.record("y", 0.0, 1.0)
    m = a.merge(mixed, detailed=True)
    assert m.detailed and [e.tag for e in m.events] == ["keepme"]


def test_hsa_trace_detailed_mode_keeps_events():
    t = HsaTrace(detailed=True)
    t.record("x", 1.0, 2.0, tag="first")
    assert len(t.events) == 1
    assert t.events[0].tag == "first"


def test_hsa_trace_rows_sorted_by_total():
    t = HsaTrace()
    t.record("small", 0.0, 1.0)
    t.record("big", 0.0, 100.0)
    rows = t.as_rows()
    assert rows[0][0] == "big"


# ---------------------------------------------------------------------------
# analysis
# ---------------------------------------------------------------------------


def test_hsa_call_comparison_table1_shape():
    copy, izc = HsaTrace(), HsaTrace()
    for _ in range(100):
        copy.record("memory_async_copy", 0.0, 3.0)
    for _ in range(3):
        izc.record("memory_async_copy", 0.0, 0.1)
    rows = hsa_call_comparison(copy, izc)
    by_call = {r.call: r for r in rows}
    r = by_call["memory_async_copy"]
    assert (r.count_a, r.count_b) == (100, 3)
    assert r.latency_ratio == pytest.approx(1000.0)
    # calls nobody issued show as N/A
    assert by_call["signal_async_handler"].latency_ratio is None
    assert by_call["signal_async_handler"].ratio_str() == "N/A"


def test_ratio_str_formats():
    copy, izc = HsaTrace(), HsaTrace()
    copy.record("memory_async_copy", 0.0, 1.11e4)
    izc.record("memory_async_copy", 0.0, 1.0)
    row = hsa_call_comparison(copy, izc)[2]
    assert "e" in row.ratio_str() or "E" in row.ratio_str()


def test_overhead_decomposition_magnitudes():
    led = RunLedger()
    led.mm_alloc_us = 2.5e5
    led.mi_us = 0.0
    row = overhead_decomposition("Copy", led)
    assert row.mm_magnitude == "O(10^5)"
    assert row.mi_magnitude == "O(0)"


def test_ledger_mm_includes_prefault():
    led = RunLedger()
    led.mm_copy_us = 100.0
    led.prefault_us = 50.0
    assert led.mm_us == 150.0


def test_ledger_merge():
    a, b = RunLedger(), RunLedger()
    a.mi_us, b.mi_us = 1.0, 2.0
    a.n_kernels, b.n_kernels = 3, 4
    m = a.merge(b)
    assert m.mi_us == 3.0 and m.n_kernels == 7


def test_kernel_trace_cap_and_first_n():
    kt = KernelTrace(enabled=True, max_records=2)

    def rec(stall):
        return KernelRecord("k", 0.0, 0.0, 1.0, 1.0, stall, 1)

    for stall in (10.0, 20.0, 30.0):
        kt.record(rec(stall))
    assert len(kt) == 2
    assert kt.dropped == 1
    assert kt.total_fault_stall_us(first_n=1) == 10.0
    assert kt.total_fault_stall_us() == 30.0


def test_kernel_trace_disabled_records_nothing():
    kt = KernelTrace(enabled=False)
    kt.record(KernelRecord("k", 0.0, 0.0, 1.0, 1.0, 0.0, 0))
    assert len(kt) == 0

"""Engine fast path: charge fusion, event recycling, O(1) interrupt,
and the retained reference scheduler."""

import contextlib

import pytest

from repro.sim import (
    ENGINE_VERSION,
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    Mutex,
    ReferenceEnvironment,
    SimulationError,
)


# ---------------------------------------------------------------------------
# charge fusion
# ---------------------------------------------------------------------------


def test_charge_advances_clock_like_timeout():
    env = Environment()

    def proc():
        yield env.charge(3.0)
        yield env.charge(2.0)
        yield env.charge(5.0)
        return env.now

    assert env.run(env.process(proc())) == 10.0
    assert env.now == 10.0


def test_charge_counts_one_event_each():
    """Fused charges preserve processed_events exactly — the accounting
    the fused-vs-reference differential relies on."""
    results = {}
    for cls in (Environment, ReferenceEnvironment):
        env = cls()

        def proc():
            for _ in range(10):
                yield env.charge(1.0)
            yield env.timeout(4.0)

        env.run(env.process(proc()))
        results[cls] = (env.now, env.processed_events)
    assert results[Environment] == results[ReferenceEnvironment]


def test_charge_settles_before_now_read():
    env = Environment()
    seen = []

    def proc():
        yield env.charge(7.0)
        seen.append(env.now)  # must observe the fully advanced clock
        yield env.charge(3.0)

    env.run(env.process(proc()))
    assert seen == [7.0]
    assert env.now == 10.0


def test_charge_settles_before_event_creation():
    """An event scheduled mid-chain lands at the settled time."""
    env = Environment()
    marks = []

    def child():
        marks.append(("child", env.now))
        yield env.charge(1.0)

    def proc():
        yield env.charge(5.0)
        env.process(child())  # spawned at t=5, not t=0
        yield env.timeout(10.0)
        marks.append(("parent", env.now))

    env.run(env.process(proc()))
    assert marks == [("child", 5.0), ("parent", 15.0)]


def test_charge_contended_matches_timeout_interleaving():
    """When another event falls inside the charged window the charge
    degrades to a real timeout: cross-process interleaving is identical
    to the all-timeout schedule, including exact-time ties."""

    def body(env, log, label, use_charge):
        def proc():
            for _ in range(4):
                if use_charge:
                    yield env.charge(2.0)
                else:
                    yield env.timeout(2.0)
                log.append((label, env.now))

        return proc

    def run(use_charge):
        env = Environment()
        log = []

        def main():
            a = env.process(body(env, log, "a", use_charge)())
            b = env.process(body(env, log, "b", use_charge)())
            yield AllOf(env, [a, b])

        env.run(env.process(main()))
        return log

    assert run(True) == run(False)


def test_charge_negative_raises():
    env = Environment()
    with pytest.raises(ValueError):
        env.charge(-1.0)


def test_charge_marker_rejected_outside_process_yield():
    env = Environment()
    marker = env.charge(1.0)
    with pytest.raises((TypeError, AttributeError)):
        AllOf(env, [marker])


def test_reference_charge_is_plain_timeout():
    env = ReferenceEnvironment()
    t = env.charge(4.0)
    assert t.delay == 4.0

    def proc():
        yield env.charge(1.0)
        yield env.charge(2.0)

    env.run(env.process(proc()))
    assert env.now == 3.0


# ---------------------------------------------------------------------------
# event recycling
# ---------------------------------------------------------------------------


def test_timeouts_are_recycled_when_unreferenced():
    env = Environment()

    def proc():
        for _ in range(50):
            yield env.timeout(1.0)

    env.run(env.process(proc()))
    assert len(env._timeout_pool) >= 1
    # pooled objects are marked recycled and unusable
    stale = env._timeout_pool[-1]
    with pytest.raises(SimulationError):
        stale.succeed()
    with pytest.raises(SimulationError):
        _ = stale.value


def test_user_held_timeout_is_never_recycled():
    env = Environment()
    held = []

    def proc():
        t = env.timeout(2.0, value="payload")
        held.append(t)
        yield t

    env.run(env.process(proc()))
    assert held[0].processed
    assert held[0].value == "payload"
    # post-run callback on the held, processed event still fires
    fired = []
    held[0].add_callback(lambda ev: fired.append(ev.value))
    assert fired == ["payload"]


def test_yielding_recycled_event_raises():
    env = Environment()

    def warmup():
        yield env.timeout(1.0)

    env.run(env.process(warmup()))
    assert env._timeout_pool
    stale = env._timeout_pool[-1]

    def proc():
        yield stale

    with pytest.raises(SimulationError, match="recycled"):
        env.run(env.process(proc()))


def test_recycled_timeout_reuse_is_clean():
    """A pooled Timeout reinitialized through env.timeout behaves like a
    fresh one (state, value, delay, scheduling)."""
    env = Environment()

    def phase1():
        for _ in range(5):
            yield env.timeout(1.0)

    env.run(env.process(phase1()))
    pooled = set(id(t) for t in env._timeout_pool)
    got = []

    def phase2():
        t = env.timeout(3.0)
        got.append((id(t) in pooled, t.delay))
        start = env.now
        v = yield t
        got.append((env.now - start, v))

    env.run(env.process(phase2()))
    assert got[0] == (True, 3.0)
    assert got[1] == (3.0, None)


# ---------------------------------------------------------------------------
# O(1) interrupt + double-interrupt protection
# ---------------------------------------------------------------------------


def test_interrupt_detaches_via_tombstone():
    env = Environment()
    log = []

    def victim():
        try:
            yield env.timeout(100.0)
        except Interrupt as exc:
            log.append(exc.cause)
            yield env.timeout(1.0)

    def attacker(p):
        yield env.timeout(5.0)
        p.interrupt("bang")

    p = env.process(victim())
    env.run(env.process(attacker(p)))
    env.run(p)
    assert log == ["bang"]
    assert env.now == 6.0
    env.run()  # the tombstoned timeout still pops harmlessly at t=100
    assert env.now == 100.0


def test_double_interrupt_before_delivery_raises():
    env = Environment()

    def victim():
        with contextlib.suppress(Interrupt):
            yield env.timeout(100.0)

    def attacker(p):
        yield env.timeout(1.0)
        p.interrupt("first")
        with pytest.raises(SimulationError, match="queued interrupt"):
            p.interrupt("second")

    p = env.process(victim())
    env.run(env.process(attacker(p)))


def test_reinterrupt_after_delivery_is_allowed():
    env = Environment()
    causes = []

    def victim():
        for _ in range(2):
            try:
                yield env.timeout(100.0)
            except Interrupt as exc:
                causes.append(exc.cause)

    def attacker(p):
        yield env.timeout(1.0)
        p.interrupt("one")
        yield env.timeout(1.0)  # first interrupt delivered in between
        p.interrupt("two")

    p = env.process(victim())
    env.run(env.process(attacker(p)))
    env.run(p)
    assert causes == ["one", "two"]


def test_interrupt_while_waiting_on_allof():
    env = Environment()
    log = []

    def victim():
        try:
            yield AllOf(env, [env.timeout(50.0), env.timeout(80.0)])
            log.append("completed")
        except Interrupt as exc:
            log.append(("interrupted", exc.cause, env.now))

    def attacker(p):
        yield env.timeout(10.0)
        p.interrupt("allof")

    p = env.process(victim())
    env.run(env.process(attacker(p)))
    env.run(p)
    assert log == [("interrupted", "allof", 10.0)]


def test_interrupt_while_waiting_on_anyof():
    env = Environment()
    log = []

    def victim():
        try:
            yield AnyOf(env, [env.timeout(50.0), env.timeout(80.0)])
            log.append("completed")
        except Interrupt as exc:
            log.append(("interrupted", exc.cause, env.now))

    def attacker(p):
        yield env.timeout(10.0)
        p.interrupt("anyof")

    p = env.process(victim())
    env.run(env.process(attacker(p)))
    env.run(p)
    # the interrupted wait must not fire again when the timeouts complete
    env.run(until=200.0)
    assert log == [("interrupted", "anyof", 10.0)]


# ---------------------------------------------------------------------------
# run(until=...) edge cases
# ---------------------------------------------------------------------------


def test_run_until_number_landing_on_event_timestamp():
    """A horizon equal to a scheduled event's time processes that event
    and leaves the clock exactly there."""
    env = Environment()
    fired = []

    def proc():
        yield env.timeout(10.0)
        fired.append(env.now)
        yield env.timeout(10.0)
        fired.append(env.now)

    env.process(proc())
    env.run(until=10.0)
    assert fired == [10.0]
    assert env.now == 10.0
    env.run(until=20.0)
    assert fired == [10.0, 20.0]
    assert env.now == 20.0


def test_run_until_number_settles_pending_charges():
    env = Environment()

    def proc():
        yield env.charge(3.0)
        yield env.timeout(100.0)

    env.process(proc())
    env.run(until=50.0)
    assert env.now == 50.0


# ---------------------------------------------------------------------------
# fused engine vs. reference engine equivalence
# ---------------------------------------------------------------------------


def _mixed_workload(env, log):
    """Charges, timeouts, a mutex handoff, a condition and an interrupt."""
    lock = Mutex(env)

    def worker(wid):
        for i in range(5):
            yield env.charge(0.5 * (wid + 1))
            grant = yield lock.acquire()
            try:
                yield env.charge(1.0)
            finally:
                lock.release(grant)
            log.append((wid, i, env.now))
        return wid

    def interruptee():
        try:
            yield env.timeout(1000.0)
        except Interrupt:
            log.append(("intr", env.now))

    def main():
        procs = [env.process(worker(w)) for w in range(3)]
        victim = env.process(interruptee())
        yield env.timeout(2.0)
        victim.interrupt()
        got = yield AllOf(env, procs)
        log.append(("done", env.now, sorted(got.values())))

    return env.process(main())


def test_fused_and_reference_engines_bit_identical():
    logs = {}
    for cls in (Environment, ReferenceEnvironment):
        env = cls()
        log = []
        env.run(_mixed_workload(env, log))
        logs[cls] = (log, env.now, env.processed_events)
    assert logs[Environment] == logs[ReferenceEnvironment]


def test_engine_version_exported():
    assert isinstance(ENGINE_VERSION, int) and ENGINE_VERSION >= 2

"""Tests for the QMCPack NiO proxy (repro.workloads.qmcpack)."""

import numpy as np
import pytest

from repro.core import RuntimeConfig
from repro.experiments import execute
from repro.workloads import Fidelity, QmcPackNio, nio_parameters
from repro.workloads.qmcpack import (
    BATCH_ALLOCS_PER_STEP,
    NIO_SIZES,
    WALKERS,
)

ALL = [
    RuntimeConfig.COPY,
    RuntimeConfig.UNIFIED_SHARED_MEMORY,
    RuntimeConfig.IMPLICIT_ZERO_COPY,
    RuntimeConfig.EAGER_MAPS,
]


# ---------------------------------------------------------------------------
# sizing model
# ---------------------------------------------------------------------------


def test_parameters_reject_unknown_size():
    with pytest.raises(ValueError):
        nio_parameters(3, 1, Fidelity.TEST)


def test_parameters_reject_bad_threads():
    with pytest.raises(ValueError):
        nio_parameters(2, 0, Fidelity.TEST)
    with pytest.raises(ValueError):
        nio_parameters(2, WALKERS + 1, Fidelity.TEST)


def test_parameters_scale_with_size():
    small = nio_parameters(2, 1, Fidelity.TEST)
    large = nio_parameters(128, 1, Fidelity.TEST)
    assert large.spline_bytes > small.spline_bytes
    assert large.kernel_compute_us > 10 * small.kernel_compute_us
    assert large.param_bytes > small.param_bytes


def test_kernel_time_scaling_matches_paper():
    """§V.A.3: total kernel time grows ×10 from S2 to S24."""
    s2 = nio_parameters(2, 1, Fidelity.TEST).kernel_compute_us
    s24 = nio_parameters(24, 1, Fidelity.TEST).kernel_compute_us
    assert 9.0 < s24 / s2 < 12.5


def test_crowds_split_walkers():
    p1 = nio_parameters(2, 1, Fidelity.TEST)
    p8 = nio_parameters(2, 8, Fidelity.TEST)
    assert p1.walkers_per_thread == WALKERS
    assert p8.walkers_per_thread == WALKERS // 8
    # per-kernel compute shrinks with the crowd
    assert p8.kernel_compute_us < p1.kernel_compute_us


def test_all_nio_sizes_build():
    for s in NIO_SIZES:
        p = nio_parameters(s, 4, Fidelity.TEST)
        assert p.steps >= 2


# ---------------------------------------------------------------------------
# functional equivalence + structure
# ---------------------------------------------------------------------------


def run(cfg, size=2, threads=1, fidelity=Fidelity.TEST):
    wl = QmcPackNio(size=size, n_threads=threads, fidelity=fidelity)
    res = execute(wl, cfg)
    return wl, res


def test_functional_equivalence_across_configs_single_thread():
    outs = {}
    for cfg in ALL:
        wl, _ = run(cfg)
        outs[cfg] = wl.outputs.values
    ref = outs[RuntimeConfig.COPY]
    for cfg, vals in outs.items():
        assert vals.keys() == ref.keys()
        for k in ref:
            assert np.array_equal(np.asarray(vals[k]), np.asarray(ref[k])), (cfg, k)


def test_functional_equivalence_multithreaded():
    outs = {}
    for cfg in (RuntimeConfig.COPY, RuntimeConfig.IMPLICIT_ZERO_COPY):
        wl, _ = run(cfg, threads=4)
        outs[cfg] = wl.outputs.values
    ref, other = outs.values()
    for k in ref:
        assert np.array_equal(np.asarray(ref[k]), np.asarray(other[k])), k


def test_izc_trace_structure_matches_table1():
    """Implicit Z-C: 3 copies (init images), 19 init allocations, one
    signal wait per kernel, no async handlers (Table I)."""
    wl, res = run(RuntimeConfig.IMPLICIT_ZERO_COPY)
    tr = res.hsa_trace
    n_kernels = res.ledger.n_kernels
    assert tr.count("memory_async_copy") == 3
    assert tr.count("memory_pool_allocate") == 19
    assert tr.count("signal_async_handler") == 0
    assert tr.count("signal_wait_scacquire") == n_kernels + 1  # +1 init barrier


def test_copy_trace_structure_matches_table1():
    """Copy: ~3 copies + ~3 signal waits per kernel; handlers ≈ 2/kernel;
    pool allocations ≈ one per step batch-alloc (Table I relationships)."""
    wl, res = run(RuntimeConfig.COPY)
    tr = res.hsa_trace
    n_kernels = res.ledger.n_kernels
    steps = wl.params.steps
    copies = tr.count("memory_async_copy")
    handlers = tr.count("signal_async_handler")
    waits = tr.count("signal_wait_scacquire")
    allocs = tr.count("memory_pool_allocate")
    # 2 H2D + 1 D2H per kernel plus per-step scratch H2D
    assert copies == pytest.approx(3 * n_kernels + steps * BATCH_ALLOCS_PER_STEP, rel=0.1)
    # handlers ≈ 2/3 of copies (paper: 194,848 / 307,607 ≈ 0.63)
    assert 0.55 < handlers / copies < 0.72
    assert waits > 3 * n_kernels
    assert allocs == pytest.approx(steps * BATCH_ALLOCS_PER_STEP + 21, rel=0.1)


def test_kernel_count_scales_with_threads():
    """Table I: Implicit Z-C signal waits grow ~linearly with threads."""
    _, res1 = run(RuntimeConfig.IMPLICIT_ZERO_COPY, threads=1)
    _, res4 = run(RuntimeConfig.IMPLICIT_ZERO_COPY, threads=4)
    assert res4.ledger.n_kernels == 4 * res1.ledger.n_kernels


def test_eager_svm_calls_per_map():
    wl, res = run(RuntimeConfig.EAGER_MAPS)
    # every map-enter issues one svm_attributes_set
    assert res.hsa_trace.count("svm_attributes_set") == res.ledger.n_map_enters


def test_steady_ratio_stable_across_fidelity():
    """Ratios must not depend on the fidelity knob (warmup exclusion)."""

    def ratio(fidelity):
        _, rc = run(RuntimeConfig.COPY, fidelity=fidelity)
        _, ri = run(RuntimeConfig.IMPLICIT_ZERO_COPY, fidelity=fidelity)
        return rc.steady_us / ri.steady_us

    r_test, r_bench = ratio(Fidelity.TEST), ratio(Fidelity.BENCH)
    assert r_test == pytest.approx(r_bench, rel=0.06)


def test_fig3_direction_thread_scaling():
    """The central QMCPack result: ratio grows with thread count."""

    def ratio(threads):
        _, rc = run(RuntimeConfig.COPY, threads=threads)
        _, ri = run(RuntimeConfig.IMPLICIT_ZERO_COPY, threads=threads)
        return rc.steady_us / ri.steady_us

    r1, r8 = ratio(1), ratio(8)
    assert r8 > r1 > 1.0


def test_fig4_direction_size_scaling():
    """Fig. 4: the zero-copy advantage shrinks with problem size."""

    def ratio(size):
        _, rc = run(RuntimeConfig.COPY, size=size, threads=8)
        _, ri = run(RuntimeConfig.IMPLICIT_ZERO_COPY, size=size, threads=8)
        return rc.steady_us / ri.steady_us

    assert ratio(2) > ratio(32) > 1.0


def test_eager_below_izc_at_small_sizes():
    """§V.A.4: Eager Maps trails the other zero-copy configs below S128."""
    _, rc = run(RuntimeConfig.COPY, threads=4)
    _, ri = run(RuntimeConfig.IMPLICIT_ZERO_COPY, threads=4)
    _, re_ = run(RuntimeConfig.EAGER_MAPS, threads=4)
    assert rc.steady_us / ri.steady_us > rc.steady_us / re_.steady_us


def test_usm_equals_izc_no_globals():
    """§V.A.2: QMCPack uses no globals, so USM ≡ Implicit Z-C exactly."""
    _, r_usm = run(RuntimeConfig.UNIFIED_SHARED_MEMORY)
    _, r_izc = run(RuntimeConfig.IMPLICIT_ZERO_COPY)
    assert r_usm.steady_us == pytest.approx(r_izc.steady_us, rel=1e-9)
    assert r_usm.elapsed_us == pytest.approx(r_izc.elapsed_us, rel=1e-9)

"""Tests for the OpenFOAM-style USM proxy (repro.workloads.openfoam)."""

import numpy as np
import pytest

from repro.core import ConfigError, RunEnvironment, RuntimeConfig, select_config
from repro.experiments import execute
from repro.workloads import Fidelity
from repro.workloads.openfoam import OpenFoamUsm

ALL = [
    RuntimeConfig.COPY,
    RuntimeConfig.UNIFIED_SHARED_MEMORY,
    RuntimeConfig.IMPLICIT_ZERO_COPY,
    RuntimeConfig.EAGER_MAPS,
]


def run(cfg, fidelity=Fidelity.TEST):
    wl = OpenFoamUsm(fidelity=fidelity)
    res = execute(wl, cfg)
    return wl, res


def test_functional_equivalence_all_configs():
    outs = {}
    for cfg in ALL:
        wl, _ = run(cfg)
        outs[cfg] = wl.outputs.values
    ref = outs[RuntimeConfig.UNIFIED_SHARED_MEMORY]
    for cfg, vals in outs.items():
        assert np.array_equal(vals["x"], ref["x"]), cfg
        assert np.array_equal(
            vals["residual_history"], ref["residual_history"]
        ), cfg


def test_solver_actually_converges():
    wl, _ = run(RuntimeConfig.UNIFIED_SHARED_MEMORY, Fidelity.BENCH)
    hist = wl.outputs.get("residual_history")
    assert hist[-1] < 0.5 * hist[0]  # damped Jacobi reduces the residual


def test_usm_beats_izc_through_globals():
    """The deployment the app was built for wins: USM's pointer globals
    skip the per-iteration transfers Implicit Z-C pays (§IV.B/C)."""
    _, r_usm = run(RuntimeConfig.UNIFIED_SHARED_MEMORY, Fidelity.BENCH)
    _, r_izc = run(RuntimeConfig.IMPLICIT_ZERO_COPY, Fidelity.BENCH)
    assert r_usm.steady_us < r_izc.steady_us
    # and the divergence is exactly the global-update traffic
    assert r_izc.hsa_trace.count("memory_copy") > 0
    assert r_usm.hsa_trace.count("memory_copy") == 0


def test_make_body_requires_prepare():
    wl = OpenFoamUsm(fidelity=Fidelity.TEST)
    with pytest.raises(RuntimeError, match="prepare"):
        wl.make_body()


def test_usm_requirement_restricts_deployment():
    """§IV.B: USM apps 'can only be deployed on GPUs that support
    Unified Memory' — selection fails with XNACK off."""
    with pytest.raises(ConfigError):
        select_config(RunEnvironment(is_apu=True, hsa_xnack=False,
                                     app_requires_usm=True))
    cfg = select_config(RunEnvironment(is_apu=True, hsa_xnack=True,
                                       app_requires_usm=True))
    assert cfg is RuntimeConfig.UNIFIED_SHARED_MEMORY


def test_usm_globals_fault_once():
    """USM kernels read host globals through pointers: the globals' pages
    fault once and never again."""
    _, res = run(RuntimeConfig.UNIFIED_SHARED_MEMORY)
    # fields (1.0+1.5+0.5 GiB = 1536 pages) + residual + 2 global pages
    pages = res.ledger.n_faulted_pages
    assert pages >= 1536 + 1 + 2
    assert pages <= 1536 + 1 + 2 + 4  # nothing re-faults

"""Unit tests for address-space geometry (repro.memory.layout)."""

import pytest

from repro.memory import (
    PAGE_2M,
    PAGE_4K,
    AddressRange,
    align_down,
    align_up,
    page_base,
    page_span,
    pages_in,
)


def test_align_up_basic():
    assert align_up(0, PAGE_4K) == 0
    assert align_up(1, PAGE_4K) == PAGE_4K
    assert align_up(PAGE_4K, PAGE_4K) == PAGE_4K
    assert align_up(PAGE_4K + 1, PAGE_4K) == 2 * PAGE_4K


def test_align_down_basic():
    assert align_down(0, PAGE_4K) == 0
    assert align_down(PAGE_4K - 1, PAGE_4K) == 0
    assert align_down(PAGE_4K, PAGE_4K) == PAGE_4K


def test_align_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        align_up(10, 3)
    with pytest.raises(ValueError):
        align_down(10, 0)


def test_page_base():
    assert page_base(0x1234, PAGE_4K) == 0x1000
    assert page_base(PAGE_2M + 5, PAGE_2M) == PAGE_2M


def test_page_span_single_page():
    first, n = page_span(0x1000, 1, PAGE_4K)
    assert (first, n) == (0x1000, 1)


def test_page_span_straddles_boundary():
    first, n = page_span(PAGE_4K - 1, 2, PAGE_4K)
    assert first == 0
    assert n == 2


def test_page_span_exact_pages():
    first, n = page_span(0, 3 * PAGE_2M, PAGE_2M)
    assert (first, n) == (0, 3)


def test_page_span_zero_length():
    _, n = page_span(0x5000, 0, PAGE_4K)
    assert n == 0


def test_page_span_negative_rejected():
    with pytest.raises(ValueError):
        page_span(0, -1, PAGE_4K)


def test_pages_in_enumerates_bases():
    pages = list(pages_in(PAGE_2M + 10, PAGE_2M, PAGE_2M))
    assert pages == [PAGE_2M, 2 * PAGE_2M]


def test_address_range_end_and_contains():
    r = AddressRange(100, 50)
    assert r.end == 150
    assert r.contains(100) and r.contains(149)
    assert not r.contains(150)


def test_address_range_overlaps():
    a = AddressRange(0, 100)
    b = AddressRange(99, 10)
    c = AddressRange(100, 10)
    assert a.overlaps(b)
    assert not a.overlaps(c)


def test_address_range_contains_range():
    outer = AddressRange(0, 1000)
    assert outer.contains_range(AddressRange(10, 100))
    assert not outer.contains_range(AddressRange(990, 20))


def test_address_range_n_pages():
    r = AddressRange(0, 2 * PAGE_2M + 1)
    assert r.n_pages(PAGE_2M) == 3


def test_address_range_validation():
    with pytest.raises(ValueError):
        AddressRange(-1, 10)
    with pytest.raises(ValueError):
        AddressRange(0, -10)
